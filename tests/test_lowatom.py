"""Tests for the low-atomicity adapter."""

import pytest

from repro.analysis import live_eating_pairs_count
from repro.core import NADiners
from repro.lowatom import LowAtomicityAdapter, cache_var, edge_cache_var
from repro.sim import AlwaysHungry, Engine, System, edge, line, ring


@pytest.fixture
def adapted():
    return LowAtomicityAdapter(NADiners())


class TestDeclarations:
    def test_name_and_hunger(self, adapted):
        assert adapted.name == "na-diners/low-atomicity"
        assert adapted.hunger_variable == "needs"

    def test_cache_slots_declared(self, adapted):
        domains = adapted.local_domains(line(3))
        assert cache_var(1, "state") in domains
        assert edge_cache_var(1) in domains

    def test_actions_are_base_plus_refresh(self, adapted):
        names = [a.name for a in adapted.actions()]
        assert names == ["join", "leave", "enter", "exit", "fixdepth", "refresh"]

    def test_initial_caches_accurate(self, adapted):
        s = System(line(3), adapted)
        # 1's cache of 0's state matches reality initially
        assert s.read_local(1, cache_var(0, "state")) == s.read_local(0, "state")
        assert s.read_local(1, edge_cache_var(0)) == s.read_edge(edge(0, 1))

    def test_initial_state_quiescent(self, adapted):
        # accurate caches + quiescent base => nothing enabled
        assert System(line(3), adapted).is_quiescent()


class TestRefresh:
    def test_refresh_enabled_when_stale(self, adapted):
        s = System(line(3), adapted)
        s.write_local(0, "state", "H")  # 1's cache of 0 is now stale
        assert "refresh" in [a.name for a in s.enabled_actions(1)]

    def test_refresh_copies_neighbor(self, adapted):
        s = System(line(3), adapted)
        s.write_local(0, "state", "H")
        s.execute(1, adapted.action_named("refresh"))
        assert s.read_local(1, cache_var(0, "state")) == "H"

    def test_refresh_disabled_when_accurate(self, adapted):
        s = System(line(3), adapted)
        assert "refresh" not in [a.name for a in s.enabled_actions(1)]

    def test_register_mode_copies_one_slot(self):
        adapted = LowAtomicityAdapter(NADiners(), refresh_whole_neighbor=False)
        s = System(line(3), adapted)
        s.write_local(0, "state", "H")
        s.write_local(0, "depth", 5)  # initial depth of 0 on line(3) is 2
        s.execute(1, adapted.action_named("refresh"))
        state_fresh = s.read_local(1, cache_var(0, "state")) == "H"
        depth_fresh = s.read_local(1, cache_var(0, "depth")) == 5
        assert state_fresh != depth_fresh  # exactly one slot refreshed


class TestGuardsUseCaches:
    def test_stale_cache_fools_guard(self, adapted):
        s = System(line(3), adapted)
        s.write_local(1, "needs", True)
        s.write_local(0, "state", "H")  # real ancestor hungry...
        # ...but 1's cache still says T, so join (which must wait for
        # thinking ancestors) is enabled on the stale view.
        assert "join" in [a.name for a in s.enabled_actions(1)]

    def test_fresh_cache_blocks_guard(self, adapted):
        s = System(line(3), adapted)
        s.write_local(1, "needs", True)
        s.write_local(0, "state", "H")
        s.execute(1, adapted.action_named("refresh"))
        assert "join" not in [a.name for a in s.enabled_actions(1)]

    def test_exit_writes_through_edge_and_cache(self, adapted):
        s = System(line(3), adapted)
        s.write_local(1, "state", "E")
        s.execute(1, adapted.action_named("exit"))
        assert s.read_edge(edge(0, 1)) == 0
        assert s.read_local(1, edge_cache_var(0)) == 0


class TestBehaviour:
    def test_still_live(self, adapted):
        s = System(ring(5), adapted)
        e = Engine(s, hunger=AlwaysHungry(), seed=2)
        e.run(20_000)
        assert all(e.eats_of(p) > 0 for p in s.pids)

    def test_safety_violated_under_low_atomicity(self):
        """The gap [15] exists to close: stale caches let neighbours eat
        together, which composite atomicity never does (same seed)."""
        def violations(algorithm, seed=1, steps=20_000):
            s = System(ring(6), algorithm)
            e = Engine(s, hunger=AlwaysHungry(), seed=seed)
            count = 0
            for _ in range(steps):
                if not e.step():
                    break
                if live_eating_pairs_count(s.snapshot()):
                    count += 1
            return count

        assert violations(LowAtomicityAdapter(NADiners())) > 0
        assert violations(NADiners()) == 0

    def test_violations_are_transient(self):
        s = System(ring(6), LowAtomicityAdapter(NADiners()))
        e = Engine(s, hunger=AlwaysHungry(), seed=3)
        e.run(20_000)
        # stop the hunger: system must drain to a safe state
        from repro.sim import NeverHungry

        e2 = Engine(s, hunger=NeverHungry(), seed=4)
        e2.run(5_000)
        assert live_eating_pairs_count(s.snapshot()) == 0

    def test_works_with_fault_machinery(self, adapted):
        import random

        s = System(line(4), adapted)
        s.randomize(random.Random(7))  # corrupts caches too
        e = Engine(s, hunger=AlwaysHungry(), seed=7)
        e.run(10_000)
        assert e.total_eats() > 0
