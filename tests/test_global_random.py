"""Guard against use of the module-level ``random`` state.

Every stochastic component takes an explicit ``random.Random(seed)`` so
campaigns are reproducible regardless of what else runs in the process
(pytest plugins, hypothesis, other tests).  Two layers of defence:

* an AST scan of ``src/repro`` banning ``random.<fn>(...)`` calls on the
  module (constructing ``random.Random`` is the one allowed use);
* state snapshots asserting the global generator is untouched by the
  engine, shard execution, the campaign runner, and topology builders.
"""

import ast
import pathlib
import random

from repro.campaign import SweepSpec, execute_shard, run_shards
from repro.core import NADiners
from repro.sim import AlwaysHungry, Engine, System, random_connected, ring

SRC = pathlib.Path(__file__).resolve().parent.parent / "src" / "repro"


def module_level_random_calls(tree):
    """All ``random.<fn>(...)`` calls except ``random.Random(...)``."""
    bad = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == "random"
            and func.attr != "Random"
        ):
            bad.append((func.attr, node.lineno))
    return bad


class TestNoGlobalRandomInSource:
    def test_ast_scan(self):
        offenders = {}
        for path in sorted(SRC.rglob("*.py")):
            bad = module_level_random_calls(ast.parse(path.read_text()))
            if bad:
                offenders[str(path.relative_to(SRC))] = bad
        assert offenders == {}, f"global random usage: {offenders}"


def untouched(fn):
    before = random.getstate()
    fn()
    return random.getstate() == before


class TestGlobalStateUntouched:
    def test_engine_run(self):
        def run():
            system = System(ring(5), NADiners())
            Engine(system, hunger=AlwaysHungry(), seed=3).run(max_steps=200)

        assert untouched(run)

    def test_engine_accepts_explicit_rng(self):
        def trace(**kwargs):
            system = System(ring(5), NADiners())
            engine = Engine(system, hunger=AlwaysHungry(), **kwargs)
            engine.run(max_steps=200)
            return system.snapshot()

        assert trace(seed=9) == trace(rng=random.Random(9))

    def test_execute_shard(self):
        shard = SweepSpec(topologies=("ring:4",), trials=1, steps=50).shards()[0]
        assert untouched(lambda: execute_shard(shard))

    def test_campaign_runner(self):
        shards = SweepSpec(topologies=("ring:4",), trials=2, steps=50).shards()
        assert untouched(lambda: run_shards(shards, jobs=1))

    def test_topology_builder(self):
        assert untouched(lambda: random_connected(6, 0.2, seed=4))

    def test_results_do_not_depend_on_global_state(self):
        shard = SweepSpec(topologies=("ring:4",), trials=1, steps=80).shards()[0]
        random.seed(1)
        a = execute_shard(shard).result
        random.seed(999)
        b = execute_shard(shard).result
        assert a == b
