"""Transport parity: an engine on WireChannel matches one on Channel."""

import random

from repro.mp import MpEngine
from repro.mp.diners_mp import build_diners, neighbours_both_eating
from repro.net import WireChannel
from repro.sim import ring


def run_pair(steps=3000, seed=9):
    topo = ring(6)
    plain = MpEngine(topo, build_diners(topo, seed=3), seed=seed)
    wired = MpEngine(
        topo,
        build_diners(topo, seed=3),
        seed=seed,
        channel_factory=WireChannel,
    )
    plain.run(steps)
    wired.run(steps)
    return topo, plain, wired


class TestParity:
    def test_step_identical_run(self):
        topo, plain, wired = run_pair()
        for pid in topo.nodes:
            assert plain.processes[pid].eats == wired.processes[pid].eats
            assert plain.processes[pid].state == wired.processes[pid].state
        assert plain.delivered == wired.delivered
        assert plain.step_count == wired.step_count

    def test_wire_run_is_safe(self):
        topo, _, wired = run_pair()
        assert neighbours_both_eating(topo, wired.processes) == ()
        assert any(wired.processes[p].eats > 0 for p in topo.nodes)

    def test_no_garbage_on_clean_links(self):
        _, _, wired = run_pair(steps=500)
        for channel in wired.channels():
            assert channel.decoder.garbage_bytes == 0
            assert channel.malformed_frames == 0


class TestFaultMirroring:
    def test_inject_garbage_is_absorbed(self):
        channel = WireChannel(0, 1, 8)
        channel.inject_garbage(b"\x00\x01\x02 not a frame \x03")
        assert channel.empty
        assert channel.decoder.garbage_bytes > 0
        assert channel.send(("ping",))
        assert channel.deliver().payload == ("ping",)

    def test_garbage_split_with_real_traffic(self):
        channel = WireChannel(0, 1, 8)
        channel.inject_garbage(bytes(range(48)))
        channel.send(("fork", (0, 1), True))
        channel.inject_garbage(bytes(range(48)))
        channel.send(("request", (0, 1)))
        delivered = [channel.deliver().payload for _ in range(len(channel))]
        assert delivered == [("fork", (0, 1), True), ("request", (0, 1))]

    def test_corrupt_respects_capacity(self):
        rng = random.Random(5)
        channel = WireChannel(0, 1, 4)
        channel.corrupt(rng, lambda r: ("junk", r.randrange(10)))
        assert len(channel) <= channel.capacity
        for message in channel.peek_all():
            assert message.src == 0 and message.dst == 1

    def test_capacity_overflow_still_counted(self):
        channel = WireChannel(0, 1, 2)
        assert channel.send(("a",)) and channel.send(("b",))
        assert not channel.send(("c",))
        assert channel.dropped == 1
        assert len(channel) == 2
