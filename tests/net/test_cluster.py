"""Live cluster integration: real sockets, chaos, artefacts, stats CLI."""

import asyncio
import json

import pytest

from repro.cli import main
from repro.net import (
    ClusterConfig,
    read_cluster_events,
    run_cluster,
    write_cluster_events,
    write_cluster_metrics,
)
from repro.obs import read_metrics
from repro.sim import ring


def make_config(**overrides):
    defaults = dict(
        topology=ring(3),
        topology_spec="ring:3",
        seed=1,
        tick_interval=0.005,
        chaos=False,
    )
    defaults.update(overrides)
    return ClusterConfig(**defaults)


def run(config, duration=1.0):
    return asyncio.run(run_cluster(config, duration))


@pytest.fixture(scope="module")
def clean_result():
    """One chaos-free run shared by the read-only assertions."""
    return run(make_config())


@pytest.fixture(scope="module")
def chaotic_result():
    return run(make_config(chaos=True, seed=7), duration=1.5)


class TestCleanRun:
    def test_every_node_eats(self, clean_result):
        assert len(clean_result.counters) == 3
        for counters in clean_result.counters.values():
            assert counters["eats"] > 0
            assert counters["msgs_in"] > 0 and counters["msgs_out"] > 0

    def test_clean_links_carry_no_garbage(self, clean_result):
        assert clean_result.total_garbage_bytes == 0
        assert clean_result.killed == []

    def test_lifecycle_events_emitted(self, clean_result):
        kinds = {e["event"] for e in clean_result.events}
        assert {"net-node-start", "net-conn-open", "net-hello-ok",
                "net-node-stop"} <= kinds


class TestChaoticRun:
    def test_scheduled_malice_kills_its_victim(self, chaotic_result):
        schedule = chaotic_result.schedule
        victims = [
            e["node"] for e in schedule["events"]
            if e["kind"] == "malicious-crash"
        ]
        assert chaotic_result.killed == victims

    def test_schedule_reproduces_for_a_seed(self, chaotic_result):
        again = run(make_config(chaos=True, seed=7), duration=1.5)
        assert again.schedule == chaotic_result.schedule

    def test_garbage_burst_reaches_decoders(self, chaotic_result):
        # The victim sprays 16..128 junk bytes per outgoing link; at least
        # part of every burst lands in some neighbour's decoder counters.
        assert chaotic_result.total_garbage_bytes > 0


class TestArtefacts:
    def test_events_roundtrip(self, clean_result, tmp_path):
        path = write_cluster_events(tmp_path / "run.events", clean_result)
        header, events, skipped = read_cluster_events(path)
        assert header["source"] == "cluster-events"
        assert header["topology"] == "ring:3"
        assert header["version"]
        assert skipped == 0
        assert len(events) == len(clean_result.events)

    def test_metrics_artefact(self, clean_result, tmp_path):
        path = write_cluster_metrics(tmp_path / "run.metrics", clean_result)
        metrics = read_metrics(path)
        assert metrics.header["source"] == "cluster-run"
        assert metrics.header["version"]
        assert metrics.metrics["cluster/grants"]["value"] > 0
        assert metrics.metrics["cluster/nodes"]["value"] == 3

    def test_stats_sniffs_event_log(self, clean_result, tmp_path, capsys):
        path = write_cluster_events(tmp_path / "run.events", clean_result)
        assert main(["stats", str(path)]) == 0
        out = capsys.readouterr().out
        assert "cluster event log" in out
        assert "net-node-start" in out

    def test_stats_sniffs_metrics(self, clean_result, tmp_path, capsys):
        path = write_cluster_metrics(tmp_path / "run.metrics", clean_result)
        assert main(["stats", str(path)]) == 0
        out = capsys.readouterr().out
        assert "metrics file" in out
        assert "cluster/grants" in out

    def test_stats_tolerates_truncated_event_log(
        self, clean_result, tmp_path, capsys
    ):
        path = write_cluster_events(tmp_path / "run.events", clean_result)
        whole = path.read_text().splitlines()
        path.write_text("\n".join(whole[:3]) + '\n{"kind": "event", "tru')
        assert main(["stats", str(path)]) == 0
        out = capsys.readouterr().out
        assert "skipped lines: 1" in out

    def test_stats_rejects_nonsense(self, tmp_path):
        path = tmp_path / "junk.bin"
        path.write_bytes(b"\x00\x01\x02 definitely not an artefact")
        with pytest.raises(SystemExit):
            main(["stats", str(path)])


class TestCli:
    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert capsys.readouterr().out.startswith("repro ")

    def test_cluster_run_command(self, tmp_path, capsys):
        events = tmp_path / "cli.events"
        code = main([
            "cluster", "run",
            "--topology", "ring:3",
            "--seed", "1",
            "--duration", "0.8",
            "--tick-interval", "0.005",
            "--no-chaos",
            "--events-out", str(events),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "cluster ring:3 seed=1" in out
        assert events.exists()
        header, _, _ = read_cluster_events(events)
        assert json.dumps(header)  # JSON-clean all the way down


class TestCrashRestartDrill:
    """The recovery tentpole end to end: a seeded soak whose malicious
    crash is followed by a relaunch into randomized-arbitrary state; the
    run must stay safe and the restarted node must grant again."""

    @pytest.fixture(scope="class")
    def drill(self):
        from repro.net import RestartPolicy, soak

        config = make_config(
            seed=7,
            lock_service=True,
            chaos=True,
            restart=RestartPolicy(max_restarts=1, delay_s=0.3, arbitrary_state=True),
        )
        return asyncio.run(soak(config, 6.0, hold_s=0.02, acquire_timeout=2.0))

    def test_safe_with_zero_neighbour_violations(self, drill):
        assert drill.violations == []

    def test_restart_happened_and_was_recorded(self, drill):
        assert sum(drill.cluster.restarts.values()) >= 1
        assert drill.cluster.killed, "the drill needs a malicious crash"
        restart_events = [
            e for e in drill.cluster.events if e["event"] == "net-node-restart"
        ]
        assert restart_events
        assert restart_events[0]["detail"]["arbitrary"] is True
        assert restart_events[0]["detail"]["epoch"] == 1

    def test_restarted_node_regrants_and_convergence_is_measured(self, drill):
        assert drill.cluster.convergence_s, "no post-restart client grant"
        for node, elapsed in drill.cluster.convergence_s.items():
            assert node in drill.cluster.restarts
            assert 0.0 <= elapsed < 6.0
            restart_t = next(
                e["t"]
                for e in drill.cluster.events
                if e["event"] == "net-node-restart" and e["node"] == node
            )
            regrants = [
                e
                for e in drill.cluster.events
                if e["event"] == "net-grant"
                and e["node"] == node
                and e["t"] > restart_t
                and e.get("detail", {}).get("req") is not None
            ]
            assert regrants, "convergence implies a client-matched grant"

    def test_convergence_metric_exported(self, drill):
        from repro.net import cluster_metrics

        registry = cluster_metrics(drill.cluster)
        snap = registry.snapshot()
        assert snap["cluster/restarts"]["value"] >= 1
        assert any(n.startswith("cluster/convergence_s/") for n in snap)


class TestTruncatedEventLog:
    """``read_cluster_events`` on a log cut off mid-record — what a soak
    killed partway through leaves on disk."""

    def truncated(self, clean_result, tmp_path):
        path = write_cluster_events(tmp_path / "run.events", clean_result)
        lines = path.read_text().splitlines()
        keep = len(lines) // 2
        # Cut the next record in half: valid JSON prefix, unparseable tail.
        path.write_text("\n".join(lines[:keep]) + "\n" + lines[keep][: len(lines[keep]) // 2])
        return path, lines, keep

    def test_header_and_prefix_survive(self, clean_result, tmp_path):
        path, lines, keep = self.truncated(clean_result, tmp_path)
        header, events, skipped = read_cluster_events(path)
        assert header.get("kind") == "header"
        assert header["topology"] == clean_result.topology_spec
        assert len(events) == keep - 1  # every intact record, header aside
        assert skipped == 1  # exactly the cut record

    def test_events_keep_time_order(self, clean_result, tmp_path):
        path, _, _ = self.truncated(clean_result, tmp_path)
        _, events, _ = read_cluster_events(path)
        times = [row["t"] for row in events]
        assert times == sorted(times)

    def test_truncated_mid_header_yields_no_events(self, clean_result, tmp_path):
        path = write_cluster_events(tmp_path / "run.events", clean_result)
        first = path.read_text().splitlines()[0]
        path.write_text(first[: len(first) // 2])
        header, events, skipped = read_cluster_events(path)
        assert header == {} and events == [] and skipped == 1

    def test_foreign_and_blank_lines_are_counted_not_fatal(
        self, clean_result, tmp_path
    ):
        path = write_cluster_events(tmp_path / "run.events", clean_result)
        with path.open("a") as handle:
            handle.write('\n\n["a", "list", "row"]\n{"kind": "mystery"}\n')
        _, events, skipped = read_cluster_events(path)
        assert events  # the real records still parse
        assert skipped == 2  # the list row and the unknown kind
