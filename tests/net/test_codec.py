"""Wire codec unit tests: exact round trips and garbage tolerance."""

import random

import pytest

from repro.mp.message import Message
from repro.net.codec import (
    HEADER_SIZE,
    MAGIC,
    MAX_BODY,
    T_HELLO,
    T_MSG,
    WIRE_VERSION,
    CodecError,
    Decoder,
    Frame,
    decode_message,
    encode_frame,
    encode_hello,
    encode_message,
    hello_fields,
    tuplify,
)

# Bytes guaranteed not to contain the magic, for unambiguous garbage counts.
JUNK = bytes(range(0, 65)) * 2


def roundtrip(message):
    frames = Decoder().feed(encode_message(message))
    assert len(frames) == 1
    return decode_message(frames[0])


class TestRoundTrip:
    def test_exact(self):
        message = Message(0, 1, ("fork", ("0", "1"), True))
        assert roundtrip(message) == message

    def test_nested_tuples_restored(self):
        message = Message(2, 3, ("request", (1, (2, (3,))), False))
        out = roundtrip(message)
        assert out == message
        assert isinstance(out.payload[1], tuple)
        assert isinstance(out.payload[1][1], tuple)

    def test_hello(self):
        frames = Decoder().feed(encode_hello(7, role="client"))
        assert len(frames) == 1 and frames[0].is_hello
        assert hello_fields(frames[0]) == (WIRE_VERSION, 7, "client")

    def test_hello_fields_rejects_other_types(self):
        frames = Decoder().feed(encode_message(Message(0, 1, ("x",))))
        assert hello_fields(frames[0]) is None

    def test_tuplify_deep(self):
        assert tuplify([1, [2, [3]], {"k": [4]}]) == (1, (2, (3,)), {"k": (4,)})


class TestEncodeErrors:
    def test_unknown_type(self):
        with pytest.raises(CodecError):
            encode_frame(99, {})

    def test_unencodable_body(self):
        with pytest.raises(CodecError):
            encode_frame(T_MSG, {"payload": object()})

    def test_oversized_body(self):
        with pytest.raises(CodecError):
            encode_frame(T_MSG, {"pad": "x" * (MAX_BODY + 1)})


class TestGarbageTolerance:
    def test_garbage_prefix_counted_and_resynced(self):
        decoder = Decoder()
        frames = decoder.feed(JUNK + encode_message(Message(0, 1, ("ping",))))
        assert [decode_message(f) for f in frames] == [Message(0, 1, ("ping",))]
        assert decoder.garbage_bytes == len(JUNK)
        assert decoder.resyncs >= 1

    def test_garbage_between_many_frames(self):
        rng = random.Random(42)
        decoder = Decoder()
        expected = []
        collected = []
        for i in range(20):
            message = Message(i % 4, (i + 1) % 4, ("fork", (i, i + 1), bool(i % 2)))
            expected.append(message)
            junk = bytes(rng.randrange(256) for _ in range(rng.randrange(40)))
            for frame in decoder.feed(junk + encode_message(message)):
                decoded = decode_message(frame)
                if decoded is not None:
                    collected.append(decoded)
        assert collected == expected

    def test_byte_at_a_time(self):
        data = encode_message(Message(0, 1, ("one", "byte", "at", "a", "time")))
        decoder = Decoder()
        frames = []
        for i in range(len(data)):
            frames.extend(decoder.feed(data[i : i + 1]))
        assert len(frames) == 1
        assert decoder.garbage_bytes == 0

    def test_split_across_chunks(self):
        data = encode_message(Message(1, 0, ("split",)))
        decoder = Decoder()
        assert decoder.feed(data[:HEADER_SIZE]) == []
        frames = decoder.feed(data[HEADER_SIZE:])
        assert len(frames) == 1

    def test_version_mismatch_is_garbage(self):
        good = encode_message(Message(0, 1, ("ok",)))
        bad = bytearray(good)
        bad[2] = WIRE_VERSION + 1
        decoder = Decoder()
        frames = decoder.feed(bytes(bad) + good)
        assert [decode_message(f) for f in frames] == [Message(0, 1, ("ok",))]
        assert decoder.garbage_bytes > 0

    def test_crc_corruption_rejected(self):
        good = encode_message(Message(0, 1, ("ok",)))
        bad = bytearray(good)
        bad[-1] ^= 0xFF  # flip a body byte; the CRC no longer matches
        decoder = Decoder()
        frames = decoder.feed(bytes(bad) + good)
        assert len(frames) == 1
        assert decode_message(frames[0]) == Message(0, 1, ("ok",))

    def test_pure_garbage_never_raises(self):
        rng = random.Random(7)
        decoder = Decoder()
        total = 0
        for _ in range(50):
            chunk = bytes(rng.randrange(256) for _ in range(rng.randrange(200)))
            total += len(chunk)
            for frame in decoder.feed(chunk):
                # Astronomically unlikely (CRC); malformed at worst.
                assert decode_message(frame) is None or True
        assert decoder.garbage_bytes + len(decoder) == total

    def test_trailing_partial_magic_kept(self):
        decoder = Decoder()
        decoder.feed(JUNK + MAGIC[:1])
        assert len(decoder) == 1  # the possible frame start survives
        frames = decoder.feed(
            MAGIC[1:] + encode_message(Message(0, 1, ("late",)))[2:]
        )
        assert len(frames) == 1


class TestMessageValidation:
    def test_wrong_shape_returns_none(self):
        assert decode_message(Frame(T_MSG, {"src": 0})) is None
        assert decode_message(Frame(T_MSG, [1, 2])) is None
        assert decode_message(Frame(T_HELLO, {"src": 0, "dst": 1, "payload": []})) is None

    def test_payload_must_be_sequence(self):
        assert decode_message(Frame(T_MSG, {"src": 0, "dst": 1, "payload": 3})) is None


class TestBoundarySplits:
    """Resynchronisation when stream chunk boundaries land anywhere —
    including inside the magic of a frame that follows garbage.  This is
    exactly what a TCP read loop hands the decoder under the chaos proxy."""

    def decoded(self, frames):
        return [decode_message(f) for f in frames]

    def expected(self):
        return [
            Message(0, 1, ("first",)),
            Message(1, 0, ("second", 2)),
            Message(2, 1, ("third", (3, 4))),
        ]

    def blob(self):
        # Garbage between frames deliberately ends with a partial magic,
        # so a split right after it looks like a frame start mid-chunk.
        glue = JUNK[:7] + MAGIC[:1]
        frames = [encode_message(m) for m in self.expected()]
        return frames[0] + glue + frames[1] + glue + frames[2]

    def test_every_split_position_decodes_identically(self):
        blob = self.blob()
        for cut in range(len(blob) + 1):
            decoder = Decoder()
            frames = decoder.feed(blob[:cut]) + decoder.feed(blob[cut:])
            assert self.decoded(frames) == self.expected(), f"cut at {cut}"
            assert decoder.garbage_bytes == 2 * (7 + 1)

    def test_three_way_splits_around_the_glue(self):
        blob = self.blob()
        interesting = [0, 1, HEADER_SIZE - 1, HEADER_SIZE, len(blob) // 2]
        for a in interesting:
            for b in interesting:
                lo, hi = min(a, b), max(a, b)
                decoder = Decoder()
                frames = (
                    decoder.feed(blob[:lo])
                    + decoder.feed(blob[lo:hi])
                    + decoder.feed(blob[hi:])
                )
                assert self.decoded(frames) == self.expected()

    def test_magic_straddling_a_chunk_boundary_resyncs(self):
        # Garbage, then a frame whose magic is cut in half by the read
        # boundary: the decoder must keep the half and resync, not drop it.
        frame = encode_message(Message(0, 1, ("straddle",)))
        decoder = Decoder()
        assert decoder.feed(JUNK[:11] + frame[:1]) == []
        frames = decoder.feed(frame[1:])
        assert self.decoded(frames) == [Message(0, 1, ("straddle",))]
        assert decoder.resyncs >= 1

    def test_counters_are_split_invariant(self):
        blob = self.blob()
        reference = Decoder()
        reference.feed(blob)
        for cut in (1, 5, len(blob) // 3, len(blob) - 2):
            decoder = Decoder()
            decoder.feed(blob[:cut])
            decoder.feed(blob[cut:])
            assert decoder.frames_decoded == reference.frames_decoded
            assert decoder.garbage_bytes == reference.garbage_bytes


class TestTracedFrames:
    """The v2 (traced) frame layout: Lamport stamp + span id, v1-compatible."""

    def test_roundtrip_with_stamp_and_span(self):
        message = Message(0, 1, ("fork", ("0", "1"), True))
        frames = Decoder().feed(encode_message(message, lc=41, span="0/0/7"))
        assert len(frames) == 1
        frame = frames[0]
        assert frame.lc == 41
        assert frame.span == "0/0/7"
        assert decode_message(frame) == message

    def test_v1_frames_decode_with_no_stamps(self):
        frames = Decoder().feed(encode_message(Message(0, 1, ("x",))))
        assert frames[0].lc is None and frames[0].span is None

    def test_empty_span_decodes_as_none(self):
        frames = Decoder().feed(encode_message(Message(0, 1, ("x",)), lc=1))
        assert frames[0].lc == 1
        assert frames[0].span is None

    def test_mixed_version_stream(self):
        plain = encode_message(Message(0, 1, ("a",)))
        traced = encode_message(Message(1, 0, ("b",)), lc=9, span="s")
        frames = Decoder().feed(plain + traced + plain)
        assert [f.lc for f in frames] == [None, 9, None]

    def test_traced_frame_survives_garbage_interleave(self):
        traced = encode_message(Message(2, 3, ("c",)), lc=5, span="2/0/1")
        decoder = Decoder()
        frames = decoder.feed(JUNK[:9] + traced + JUNK[:9])
        assert len(frames) == 1
        assert frames[0].lc == 5 and frames[0].span == "2/0/1"
        assert decoder.garbage_bytes >= 9

    def test_stamp_bounds_enforced(self):
        message = Message(0, 1, ("x",))
        with pytest.raises(CodecError):
            encode_message(message, lc=-1)
        with pytest.raises(CodecError):
            encode_message(message, lc=1 << 64)
        with pytest.raises(CodecError):
            encode_message(message, lc=1, span="s" * 300)

    def test_max_length_span_roundtrips(self):
        span = "s" * 255
        frames = Decoder().feed(
            encode_message(Message(0, 1, ("x",)), lc=2, span=span)
        )
        assert frames[0].span == span

    def test_truncated_trace_block_is_rejected_as_junk(self):
        # A v2 header whose CRC-valid payload is too short for the trace
        # block: hand-build it so the CRC passes but the block cannot.
        import zlib

        payload = b"\x00\x01"  # shorter than the 9-byte trace block
        header = (
            MAGIC
            + bytes((2, T_MSG))
            + len(payload).to_bytes(4, "big")
            + (zlib.crc32(payload) & 0xFFFFFFFF).to_bytes(4, "big")
        )
        decoder = Decoder()
        assert decoder.feed(header + payload) == []
        assert decoder.garbage_bytes > 0


class TestBinaryFrames:
    """The v3 (binary) frame layout: struct-packed REQ/RSP hot path."""

    def test_request_roundtrip_acquire(self):
        from repro.net.codec import T_REQ, WIRE_BINARY_VERSION, encode_request

        frames = Decoder().feed(encode_request("acquire", "c12.3f"))
        assert len(frames) == 1
        frame = frames[0]
        assert frame.type == T_REQ
        assert frame.version == WIRE_BINARY_VERSION
        # Decodes into the same body dict the JSON path produces.
        assert frame.body == {"op": "acquire", "id": "c12.3f", "span": "c12.3f"}

    def test_request_roundtrip_release(self):
        from repro.net.codec import encode_request

        frames = Decoder().feed(encode_request("release", "gw.a1"))
        assert frames[0].body == {"op": "release", "id": "gw.a1"}

    def test_request_with_node_index(self):
        from repro.net.codec import encode_request

        frames = Decoder().feed(encode_request("acquire", "c0.1", node=513))
        assert frames[0].body["node"] == 513

    def test_response_roundtrip(self):
        from repro.net.codec import T_RSP, encode_response

        frames = Decoder().feed(encode_response("acquire", "c5.7", True))
        assert frames[0].type == T_RSP
        assert frames[0].body == {"op": "acquire", "id": "c5.7", "ok": True}

    def test_response_with_error_and_retry(self):
        from repro.net.codec import encode_response

        frames = Decoder().feed(
            encode_response(
                "acquire", "c1.2", False, error="retry", retry_after_s=0.05
            )
        )
        body = frames[0].body
        assert body["ok"] is False
        assert body["error"] == "retry"
        assert body["retry_after_s"] == pytest.approx(0.05)

    def test_binary_is_smaller_than_json(self):
        from repro.net.codec import T_REQ, encode_request

        binary = encode_request("acquire", "c12.3f")
        json_frame = encode_frame(
            T_REQ, {"op": "acquire", "id": "c12.3f", "span": "c12.3f"}
        )
        assert len(binary) < len(json_frame) / 2

    def test_v1_decode_of_same_shape_still_works(self):
        from repro.net.codec import T_REQ, WIRE_VERSION as V1

        frames = Decoder().feed(
            encode_frame(T_REQ, {"op": "acquire", "id": "x", "span": "x"})
        )
        assert frames[0].version == V1
        assert frames[0].body["op"] == "acquire"


class TestBinaryEncodeErrors:
    def test_unknown_op(self):
        from repro.net.codec import encode_request

        with pytest.raises(CodecError):
            encode_request("steal", "c0.1")

    def test_non_string_id(self):
        from repro.net.codec import encode_request

        with pytest.raises(CodecError):
            encode_request("acquire", 42)

    def test_empty_and_oversized_id(self):
        from repro.net.codec import MAX_REQUEST_ID, encode_request

        with pytest.raises(CodecError):
            encode_request("acquire", "")
        with pytest.raises(CodecError):
            encode_request("acquire", "x" * (MAX_REQUEST_ID + 1))

    def test_node_index_bounds(self):
        from repro.net.codec import MAX_NODE_INDEX, encode_request

        with pytest.raises(CodecError):
            encode_request("acquire", "c0.1", node=-1)
        with pytest.raises(CodecError):
            encode_request("acquire", "c0.1", node=MAX_NODE_INDEX + 1)

    def test_retry_after_bounds(self):
        from repro.net.codec import encode_response

        with pytest.raises(CodecError):
            encode_response("acquire", "c0.1", False, retry_after_s=70.0)

    def test_oversized_error_rejected(self):
        from repro.net.codec import encode_response

        with pytest.raises(CodecError):
            encode_response("acquire", "c0.1", False, error="e" * 300)


class TestBinaryGarbageTolerance:
    def test_malformed_v3_body_is_junk(self):
        # A CRC-valid v3 frame whose body is too short for the REQ head:
        # must resync exactly like a truncated v2 trace block.
        import zlib

        from repro.net.codec import T_REQ, encode_request

        payload = b"\x01\x00"  # shorter than the 5-byte request head
        header = (
            MAGIC
            + bytes((3, T_REQ))
            + len(payload).to_bytes(4, "big")
            + (zlib.crc32(payload) & 0xFFFFFFFF).to_bytes(4, "big")
        )
        good = encode_request("acquire", "ok.1")
        decoder = Decoder()
        frames = decoder.feed(header + payload + good)
        assert [f.body["id"] for f in frames] == ["ok.1"]
        assert decoder.garbage_bytes > 0
        assert decoder.resyncs >= 1

    def test_v3_unknown_type_is_junk(self):
        # Binary layout only exists for REQ/RSP; a v3 HELLO is garbage.
        import zlib

        payload = b"\x01\x00\x00\x00\x01x"
        header = (
            MAGIC
            + bytes((3, T_HELLO))
            + len(payload).to_bytes(4, "big")
            + (zlib.crc32(payload) & 0xFFFFFFFF).to_bytes(4, "big")
        )
        decoder = Decoder()
        assert decoder.feed(header + payload) == []
        assert decoder.garbage_bytes > 0

    def test_v3_survives_garbage_interleave(self):
        from repro.net.codec import encode_request

        frame = encode_request("acquire", "g.1")
        decoder = Decoder()
        frames = decoder.feed(JUNK[:13] + frame + JUNK[:13])
        assert len(frames) == 1 and frames[0].body["id"] == "g.1"
        assert decoder.garbage_bytes >= 13


class TestMixedVersionBoundarySplits:
    """The full resync battery over a stream interleaving v1 JSON, v2
    traced, and v3 binary frames with partial-magic garbage — the exact
    byte soup a gateway's upstream socket sees under the chaos proxy."""

    def blob(self):
        from repro.net.codec import encode_request, encode_response

        glue = JUNK[:7] + MAGIC[:1]
        frames = [
            encode_message(Message(0, 1, ("v1",))),
            encode_request("acquire", "c1.a"),
            encode_message(Message(1, 0, ("v2",)), lc=3, span="1/0/2"),
            encode_response("acquire", "c1.a", True),
            encode_request("release", "c1.b"),
        ]
        blob = b""
        for frame in frames:
            blob += frame + glue
        return blob, len(frames), 5 * len(glue)

    def signature(self, frames):
        out = []
        for frame in frames:
            if isinstance(frame.body, dict) and "op" in frame.body:
                out.append((frame.version, frame.body["op"], frame.body["id"]))
            else:
                out.append((frame.version, frame.type))
        return out

    def test_every_split_position_decodes_identically(self):
        blob, count, garbage = self.blob()
        reference = Decoder()
        expected = self.signature(reference.feed(blob))
        assert len(expected) == count
        # The final glue ends in a partial magic that stays buffered as a
        # possible frame start, so it is not yet counted as garbage.
        assert garbage - len(reference) == reference.garbage_bytes
        for cut in range(len(blob) + 1):
            decoder = Decoder()
            frames = decoder.feed(blob[:cut]) + decoder.feed(blob[cut:])
            assert self.signature(frames) == expected, f"cut at {cut}"
            assert decoder.garbage_bytes == reference.garbage_bytes

    def test_counters_split_invariant(self):
        blob, _, _ = self.blob()
        reference = Decoder()
        reference.feed(blob)
        for cut in (1, HEADER_SIZE, len(blob) // 3, len(blob) - 3):
            decoder = Decoder()
            decoder.feed(blob[:cut])
            decoder.feed(blob[cut:])
            assert decoder.frames_decoded == reference.frames_decoded
            assert decoder.garbage_bytes == reference.garbage_bytes

    def test_byte_at_a_time(self):
        blob, count, _ = self.blob()
        decoder = Decoder()
        frames = []
        for i in range(len(blob)):
            frames.extend(decoder.feed(blob[i : i + 1]))
        assert len(frames) == count
