"""Chaos schedules are reproducible, bounded, and well-formed."""

from repro.net import build_schedule
from repro.sim import grid, ring


def schedule(seed=7, **kwargs):
    return build_schedule(ring(5), seed=seed, duration_s=10.0, **kwargs)


class TestDeterminism:
    def test_same_seed_same_schedule(self):
        assert schedule().describe() == schedule().describe()

    def test_different_seed_different_schedule(self):
        assert schedule(seed=7).describe() != schedule(seed=8).describe()

    def test_describe_is_json_shaped(self):
        import json

        json.dumps(schedule().describe())


class TestShape:
    def test_events_time_ordered_within_duration(self):
        s = schedule()
        times = [e.at_s for e in s.events]
        assert times == sorted(times)
        assert all(0.0 <= t <= s.duration_s for t in times)

    def test_malicious_victims_are_topology_nodes(self):
        topo = ring(5)
        s = build_schedule(topo, seed=3, duration_s=5.0, malicious_crashes=2)
        victims = s.malicious_nodes
        assert len(victims) == 2
        assert all(v in topo.nodes for v in victims)

    def test_malicious_crash_carries_garbage(self):
        s = schedule()
        crashes = [e for e in s.events if e.kind == "malicious-crash"]
        assert crashes
        for event in crashes:
            assert len(event.garbage) == len(event.links)
            assert all(16 <= len(g) <= 128 for g in event.garbage)

    def test_partitions_heal(self):
        s = schedule(partitions=2)
        cuts = [e for e in s.events if e.kind == "partition"]
        heals = [e for e in s.events if e.kind == "heal"]
        assert len(cuts) == len(heals) == 2
        for cut in cuts:
            matching = [
                h for h in heals
                if set(h.links) == set(cut.links) and h.at_s > cut.at_s
            ]
            assert matching, f"partition at {cut.at_s} never heals"

    def test_flaky_profiles_are_gentle(self):
        s = build_schedule(grid(3, 3), seed=1, duration_s=5.0, flaky_links=1.0)
        assert s.profiles
        for profile in s.profiles.values():
            assert 0.0 <= profile.drop_p <= 0.05
            assert 0.0 <= profile.dup_p <= 0.05
            assert 0.0 <= profile.reorder_p <= 0.1

    def test_no_chaos_knobs_mean_no_events(self):
        s = build_schedule(
            ring(4),
            seed=2,
            duration_s=5.0,
            partitions=0,
            malicious_crashes=0,
            flaky_links=0.0,
        )
        assert s.events == ()
        assert s.profiles == {}


class TestRestartSchedule:
    def test_no_restarts_by_default(self):
        assert not [e for e in schedule().events if e.kind == "restart"]

    def test_restart_follows_each_malicious_crash(self):
        s = schedule(malicious_crashes=2, restarts=1, restart_delay_s=0.4)
        crashes = {e.node: e for e in s.events if e.kind == "malicious-crash"}
        restarts = {e.node: e for e in s.events if e.kind == "restart"}
        assert set(restarts) == set(crashes) and len(crashes) == 2
        for node, r in restarts.items():
            c = crashes[node]
            assert r.at_s > c.at_s
            assert r.at_s <= s.duration_s * 0.9
            assert set(r.links) == set(c.links)

    def test_restart_schedule_is_deterministic(self):
        a = schedule(restarts=1).describe()
        b = schedule(restarts=1).describe()
        assert a == b

    def test_restart_sorts_after_its_crash_at_same_instant(self):
        s = schedule(malicious_crashes=1, restarts=1, restart_delay_s=60.0)
        kinds = [e.kind for e in s.events if e.kind in ("malicious-crash", "restart")]
        assert kinds == ["malicious-crash", "restart"]
