"""Chaos schedules are reproducible, bounded, and well-formed."""

from dataclasses import replace

import pytest

from repro.net import build_schedule, validate_schedule
from repro.net.chaos import FaultEvent
from repro.sim import grid, ring


def schedule(seed=7, **kwargs):
    return build_schedule(ring(5), seed=seed, duration_s=10.0, **kwargs)


class TestDeterminism:
    def test_same_seed_same_schedule(self):
        assert schedule().describe() == schedule().describe()

    def test_different_seed_different_schedule(self):
        assert schedule(seed=7).describe() != schedule(seed=8).describe()

    def test_describe_is_json_shaped(self):
        import json

        json.dumps(schedule().describe())


class TestShape:
    def test_events_time_ordered_within_duration(self):
        s = schedule()
        times = [e.at_s for e in s.events]
        assert times == sorted(times)
        assert all(0.0 <= t <= s.duration_s for t in times)

    def test_malicious_victims_are_topology_nodes(self):
        topo = ring(5)
        s = build_schedule(topo, seed=3, duration_s=5.0, malicious_crashes=2)
        victims = s.malicious_nodes
        assert len(victims) == 2
        assert all(v in topo.nodes for v in victims)

    def test_malicious_crash_carries_garbage(self):
        s = schedule()
        crashes = [e for e in s.events if e.kind == "malicious-crash"]
        assert crashes
        for event in crashes:
            assert len(event.garbage) == len(event.links)
            assert all(16 <= len(g) <= 128 for g in event.garbage)

    def test_partitions_heal(self):
        s = schedule(partitions=2)
        cuts = [e for e in s.events if e.kind == "partition"]
        heals = [e for e in s.events if e.kind == "heal"]
        assert len(cuts) == len(heals) == 2
        for cut in cuts:
            matching = [
                h for h in heals
                if set(h.links) == set(cut.links) and h.at_s > cut.at_s
            ]
            assert matching, f"partition at {cut.at_s} never heals"

    def test_flaky_profiles_are_gentle(self):
        s = build_schedule(grid(3, 3), seed=1, duration_s=5.0, flaky_links=1.0)
        assert s.profiles
        for profile in s.profiles.values():
            assert 0.0 <= profile.drop_p <= 0.05
            assert 0.0 <= profile.dup_p <= 0.05
            assert 0.0 <= profile.reorder_p <= 0.1

    def test_no_chaos_knobs_mean_no_events(self):
        s = build_schedule(
            ring(4),
            seed=2,
            duration_s=5.0,
            partitions=0,
            malicious_crashes=0,
            flaky_links=0.0,
        )
        assert s.events == ()
        assert s.profiles == {}


class TestRestartSchedule:
    def test_no_restarts_by_default(self):
        assert not [e for e in schedule().events if e.kind == "restart"]

    def test_restart_follows_each_malicious_crash(self):
        s = schedule(malicious_crashes=2, restarts=1, restart_delay_s=0.4)
        crashes = {e.node: e for e in s.events if e.kind == "malicious-crash"}
        restarts = {e.node: e for e in s.events if e.kind == "restart"}
        assert set(restarts) == set(crashes) and len(crashes) == 2
        for node, r in restarts.items():
            c = crashes[node]
            assert r.at_s > c.at_s
            assert r.at_s <= s.duration_s * 0.9
            assert set(r.links) == set(c.links)

    def test_restart_schedule_is_deterministic(self):
        a = schedule(restarts=1).describe()
        b = schedule(restarts=1).describe()
        assert a == b

    def test_restart_sorts_after_its_crash_at_same_instant(self):
        s = schedule(malicious_crashes=1, restarts=1, restart_delay_s=60.0)
        kinds = [e.kind for e in s.events if e.kind in ("malicious-crash", "restart")]
        assert kinds == ["malicious-crash", "restart"]


class TestValidateSchedule:
    """The orphan-restart regression: ``build_schedule`` used to be able
    to emit (and loaders to accept) a restart for a node with no prior
    crash entry, silently reviving links of a node that never went down."""

    def test_every_built_schedule_validates(self):
        for seed in range(6):
            validate_schedule(
                schedule(seed=seed, restarts=1, malicious_crashes=2)
            )
            validate_schedule(schedule(seed=seed, byzantine=1))

    def test_orphan_restart_is_rejected(self):
        s = schedule(restarts=0)
        bad = replace(
            s,
            events=s.events
            + (FaultEvent(at_s=1.0, kind="restart", node=99),),
        )
        with pytest.raises(ValueError, match="no prior crash"):
            validate_schedule(bad)

    def test_restart_before_its_crash_is_rejected(self):
        events = (
            FaultEvent(at_s=5.0, kind="malicious-crash", node=1),
            FaultEvent(at_s=1.0, kind="restart", node=1),
        )
        bad = replace(schedule(restarts=0), events=events)
        with pytest.raises(ValueError, match="no prior crash"):
            validate_schedule(bad)

    def test_restart_without_a_node_is_rejected(self):
        bad = replace(
            schedule(),
            events=(FaultEvent(at_s=1.0, kind="restart"),),
        )
        with pytest.raises(ValueError, match="restart without a node"):
            validate_schedule(bad)

    def test_unknown_kind_is_rejected(self):
        bad = replace(
            schedule(), events=(FaultEvent(at_s=1.0, kind="meteor"),)
        )
        with pytest.raises(ValueError, match="unknown fault kind"):
            validate_schedule(bad)

    def test_event_outside_the_run_window_is_rejected(self):
        bad = replace(
            schedule(), events=(FaultEvent(at_s=11.0, kind="partition"),)
        )
        with pytest.raises(ValueError, match="outside"):
            validate_schedule(bad)

    def test_garbage_burst_arity_must_match_links(self):
        bad = replace(
            schedule(),
            events=(
                FaultEvent(
                    at_s=1.0,
                    kind="malicious-crash",
                    links=((0, 1), (0, 4)),
                    node=0,
                    garbage=(b"x",),
                ),
            ),
        )
        with pytest.raises(ValueError, match="garbage bursts"):
            validate_schedule(bad)


class TestByzantineSchedules:
    def test_byzantine_zero_leaves_the_plan_unchanged(self):
        # The parameter must not perturb the rng stream of existing
        # experiments: byzantine=0 reproduces the historical schedule.
        assert schedule().describe() == schedule(byzantine=0).describe()

    def test_byzantine_nodes_are_disjoint_from_malicious(self):
        s = schedule(byzantine=1, malicious_crashes=2)
        byz = {e.node for e in s.events if e.kind == "byzantine-crash"}
        bad = {e.node for e in s.events if e.kind == "malicious-crash"}
        assert len(byz) == 1
        assert byz.isdisjoint(bad)

    def test_byzantine_crash_is_deterministic(self):
        a = schedule(byzantine=2).describe()
        b = schedule(byzantine=2).describe()
        assert a == b
