"""End-to-end causal tracing on the live cluster.

A seeded traced soak must leave span artefacts whose offline merge is a
happened-before-consistent global timeline; a byzantine soak's violations
must walk back to the subverted node's spans; and the live ``/metrics``
endpoint must serve parseable Prometheus text mid-run.
"""

import asyncio

import pytest

from repro.net import ClusterConfig, ClusterSupervisor, soak
from repro.obs import (
    attribute_grants,
    causality_report,
    merge_timeline,
    read_spans,
    reconstruct_violations,
    write_timeline,
)
from repro.obs.prom import find, parse_prometheus
from repro.sim import ring


def make_config(trace_dir, **overrides):
    defaults = dict(
        topology=ring(3),
        topology_spec="ring:3",
        seed=5,
        tick_interval=0.005,
        lock_service=True,
        chaos=True,
        trace_dir=str(trace_dir),
    )
    defaults.update(overrides)
    return ClusterConfig(**defaults)


@pytest.fixture(scope="module")
def traced_soak(tmp_path_factory):
    trace_dir = tmp_path_factory.mktemp("spans")
    config = make_config(trace_dir)
    result = asyncio.run(soak(config, 2.5, hold_s=0.02))
    return result, trace_dir


def load_spans(result):
    spans_by_node = {}
    for path in result.cluster.trace_paths:
        span_file = read_spans(path)
        for span in span_file.spans:
            spans_by_node.setdefault(span.node, []).append(span)
    return spans_by_node


class TestTracedSoak:
    def test_span_artefact_written_per_node(self, traced_soak):
        result, _ = traced_soak
        assert len(result.cluster.trace_paths) == 3
        spans_by_node = load_spans(result)
        assert set(spans_by_node) == set(result.cluster.nodes)
        for spans in spans_by_node.values():
            # At least the root span plus some acquire lifecycles.
            assert any(s.name == "node" for s in spans)
            assert any(s.name == "acquire" for s in spans)

    def test_merged_timeline_is_causally_consistent(self, traced_soak):
        result, _ = traced_soak
        entries = merge_timeline(load_spans(result))
        assert entries
        report = causality_report(entries)
        assert report.ok, report.violations
        assert report.matched_messages > 0

    def test_grants_get_latency_attribution(self, traced_soak):
        result, _ = traced_soak
        attributions = attribute_grants(load_spans(result))
        assert attributions
        for attribution in attributions:
            parts = (attribution.queue_s + attribution.retransmit_s
                     + attribution.transfer_s)
            assert parts == pytest.approx(attribution.total_s, abs=1e-4)

    def test_timeline_artefact_is_permutation_byte_stable(
        self, traced_soak, tmp_path
    ):
        result, _ = traced_soak
        spans = load_spans(result)
        permuted = dict(reversed(list(spans.items())))
        one = write_timeline(tmp_path / "a.jsonl", merge_timeline(spans))
        two = write_timeline(tmp_path / "b.jsonl", merge_timeline(permuted))
        assert one.read_bytes() == two.read_bytes()

    def test_span_stream_feeds_grant_events(self, traced_soak):
        result, _ = traced_soak
        kinds = {e["event"] for e in result.cluster.events}
        assert "net-span-open" in kinds
        assert "net-span-close" in kinds


class TestByzantineLocalisation:
    @pytest.fixture(scope="class")
    def byzantine_soak(self, tmp_path_factory):
        trace_dir = tmp_path_factory.mktemp("byz-spans")
        # The proven byzantine recipe from the integration suite, traced.
        config = make_config(
            trace_dir, partitions=0, malicious_crashes=0, byzantine=1,
        )
        return asyncio.run(soak(config, 6.0, hold_s=0.02))

    def test_violations_walk_back_to_the_subverted_nodes_spans(
        self, byzantine_soak
    ):
        result = byzantine_soak
        assert result.violations  # the recipe guarantees unsafety
        byz = result.cluster.byzantine[0]
        reconstructed = reconstruct_violations(
            ring(3),
            result.cluster.events,
            load_spans(result),
            end_t=6.0,
            exclude=result.cluster.killed,
            byzantine=result.cluster.byzantine,
        )
        assert reconstructed
        for row in reconstructed:
            assert row["byzantine"] == [byz]
            assert byz in (row["node_a"], row["node_b"])
            # The honest side of the overlap has spans covering it.
            honest = (row["node_b"] if row["node_a"] == byz
                      else row["node_a"])
            assert row["spans"][honest]


class TestLiveMetricsEndpoint:
    def test_endpoint_serves_parseable_prometheus_midrun(self, tmp_path):
        from repro.obs.top import fetch_metrics

        config = make_config(
            tmp_path / "spans", lock_service=False, chaos=False,
            metrics_port=0,
        )

        async def scrape():
            supervisor = ClusterSupervisor(config)
            await supervisor.start(3.0)
            try:
                await asyncio.sleep(0.6)
                url = f"http://127.0.0.1:{supervisor.metrics_port}/metrics"
                loop = asyncio.get_running_loop()
                return await loop.run_in_executor(None, fetch_metrics, url)
            finally:
                await supervisor.stop()

        text = asyncio.run(scrape())
        samples = parse_prometheus(text)
        assert find(samples, "repro_cluster_uptime_seconds") is not None
        nodes = {s.labels["node"] for s in samples
                 if s.name == "repro_node_up"}
        assert nodes == {"0", "1", "2"}
