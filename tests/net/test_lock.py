"""Lock-service semantics: the safety audit, a small live soak, and
regression tests for the client's failure paths."""

import asyncio
import math

import pytest

from repro.net import (
    DEFAULT_ACQUIRE_TIMEOUT,
    ClusterConfig,
    LockClient,
    LockError,
    hold_intervals,
    neighbour_violations,
    soak,
)
from repro.sim import ring


def grant(node, t):
    return {"event": "net-grant", "node": node, "t": t}


def release(node, t):
    return {"event": "net-release", "node": node, "t": t}


class TestHoldIntervals:
    def test_pairs_fold_into_spans(self):
        events = [grant("0", 1.0), release("0", 2.0), grant("0", 3.0),
                  release("0", 3.5)]
        assert hold_intervals(events, end_t=5.0) == {
            "0": [(1.0, 2.0), (3.0, 3.5)]
        }

    def test_open_grant_closes_at_end(self):
        assert hold_intervals([grant("0", 4.0)], end_t=5.0) == {"0": [(4.0, 5.0)]}

    def test_duplicate_release_ignored(self):
        events = [grant("0", 1.0), release("0", 2.0), release("0", 2.5)]
        assert hold_intervals(events, end_t=5.0) == {"0": [(1.0, 2.0)]}

    def test_out_of_order_stream_sorted(self):
        events = [release("0", 2.0), grant("0", 1.0)]
        assert hold_intervals(events, end_t=5.0) == {"0": [(1.0, 2.0)]}

    def test_foreign_events_skipped(self):
        events = [{"event": "net-send", "node": "0", "t": 1.0}, grant("1", 2.0)]
        assert hold_intervals(events, end_t=5.0) == {"1": [(2.0, 5.0)]}


class TestNeighbourViolations:
    topo = ring(3)

    def test_overlap_on_an_edge_is_flagged(self):
        intervals = {"0": [(1.0, 3.0)], "1": [(2.0, 4.0)], "2": []}
        violations = neighbour_violations(self.topo, intervals)
        assert len(violations) == 1
        v = violations[0]
        assert {v.node_a, v.node_b} == {"0", "1"}
        assert (v.overlap_start, v.overlap_end) == (2.0, 3.0)

    def test_disjoint_holds_are_safe(self):
        intervals = {"0": [(1.0, 2.0)], "1": [(2.0, 3.0)], "2": [(3.0, 4.0)]}
        assert neighbour_violations(self.topo, intervals) == []

    def test_excluded_nodes_are_not_audited(self):
        intervals = {"0": [(1.0, 3.0)], "1": [(2.0, 4.0)], "2": []}
        assert neighbour_violations(self.topo, intervals, exclude=["1"]) == []


class TestLiveSoak:
    def test_short_soak_is_safe_and_makes_progress(self):
        config = ClusterConfig(
            topology=ring(3),
            topology_spec="ring:3",
            seed=2,
            tick_interval=0.005,
            lock_service=True,
            chaos=True,
        )
        result = asyncio.run(soak(config, 1.5, hold_s=0.02))
        assert result.safe, result.violations
        assert sum(c.acquired for c in result.clients) > 0
        survivors = [c for c in result.clients if c.node not in result.cluster.killed]
        assert all(c.errors == 0 for c in survivors)
        assert result.cluster.mode == "soak"


async def start_silent_server():
    """A peer that accepts and reads but never answers: from the client's
    point of view this is exactly a silent partition — the TCP connection
    stays open while every request disappears into the void."""

    async def swallow(reader, writer):
        try:
            while await reader.read(4096):
                pass
        except (ConnectionError, OSError):
            pass
        finally:
            writer.close()

    server = await asyncio.start_server(swallow, "127.0.0.1", 0)
    return server, server.sockets[0].getsockname()[1]


class _ExplodingWriter:
    """Stands in for a StreamWriter whose socket just died under us."""

    def is_closing(self):
        return False

    def write(self, data):
        raise ConnectionResetError("wire gone")


class TestClientResilience:
    def test_default_acquire_timeout_is_finite(self):
        # acquire() must never hang forever by default: a silent partition
        # would otherwise wedge the caller with no exception at all.
        assert DEFAULT_ACQUIRE_TIMEOUT is not None
        assert math.isfinite(DEFAULT_ACQUIRE_TIMEOUT)
        assert DEFAULT_ACQUIRE_TIMEOUT > 0

    def test_acquire_over_silent_partition_fails_via_watchdog(self):
        async def scenario():
            server, port = await start_silent_server()
            client = LockClient(
                "127.0.0.1", port, reconnect=False, stall_timeout_s=0.3
            )
            await client.connect()
            loop = asyncio.get_running_loop()
            t0 = loop.time()
            try:
                with pytest.raises(LockError, match="stalled"):
                    # Generous acquire budget: the *watchdog* must be the
                    # thing that unblocks us, long before the timeout.
                    await client.acquire(timeout=30.0)
                return loop.time() - t0
            finally:
                await client.close()
                server.close()
                await server.wait_closed()

        elapsed = asyncio.run(scenario())
        assert elapsed < 5.0

    def test_acquire_timeout_caps_a_stalled_request(self):
        async def scenario():
            server, port = await start_silent_server()
            client = LockClient(
                "127.0.0.1", port, reconnect=True, stall_timeout_s=30.0
            )
            await client.connect()
            loop = asyncio.get_running_loop()
            t0 = loop.time()
            try:
                with pytest.raises(asyncio.TimeoutError):
                    await client.acquire(timeout=0.4)
                return loop.time() - t0
            finally:
                await client.close()
                server.close()
                await server.wait_closed()

        elapsed = asyncio.run(scenario())
        assert elapsed < 5.0

    def test_request_id_not_burned_when_send_fails(self):
        async def scenario():
            client = LockClient("127.0.0.1", 1, reconnect=False)
            client._writer = _ExplodingWriter()
            before = client._next_id
            with pytest.raises(LockError, match="send failed"):
                client._request("acquire")
            # The refused send must leave no trace: same next id (no gap
            # in the grant/release audit trail) and no ghost pending entry.
            assert client._next_id == before
            assert client._pending == {}

        asyncio.run(scenario())

    def test_ids_are_epoch_prefixed_across_reconnects(self):
        async def scenario():
            server, port = await start_silent_server()
            client = LockClient(
                "127.0.0.1", port, client_id="c", reconnect=False
            )
            await client.connect()
            try:
                first, _ = client._request("acquire")
                assert first == "c.1.1"
                # Kill the link, then re-dial: the epoch must bump so ids
                # from the old life can never collide with new ones.
                client._writer.close()
                await asyncio.sleep(0.05)  # let the read loop observe EOF
                await client._open()
                second, _ = client._request("acquire")
                assert second == "c.2.2"
                assert client.epoch == 2
            finally:
                await client.close()
                server.close()
                await server.wait_closed()

        asyncio.run(scenario())
