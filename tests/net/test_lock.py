"""Lock-service semantics: the safety audit, and a small live soak."""

import asyncio

from repro.net import ClusterConfig, hold_intervals, neighbour_violations, soak
from repro.sim import ring


def grant(node, t):
    return {"event": "net-grant", "node": node, "t": t}


def release(node, t):
    return {"event": "net-release", "node": node, "t": t}


class TestHoldIntervals:
    def test_pairs_fold_into_spans(self):
        events = [grant("0", 1.0), release("0", 2.0), grant("0", 3.0),
                  release("0", 3.5)]
        assert hold_intervals(events, end_t=5.0) == {
            "0": [(1.0, 2.0), (3.0, 3.5)]
        }

    def test_open_grant_closes_at_end(self):
        assert hold_intervals([grant("0", 4.0)], end_t=5.0) == {"0": [(4.0, 5.0)]}

    def test_duplicate_release_ignored(self):
        events = [grant("0", 1.0), release("0", 2.0), release("0", 2.5)]
        assert hold_intervals(events, end_t=5.0) == {"0": [(1.0, 2.0)]}

    def test_out_of_order_stream_sorted(self):
        events = [release("0", 2.0), grant("0", 1.0)]
        assert hold_intervals(events, end_t=5.0) == {"0": [(1.0, 2.0)]}

    def test_foreign_events_skipped(self):
        events = [{"event": "net-send", "node": "0", "t": 1.0}, grant("1", 2.0)]
        assert hold_intervals(events, end_t=5.0) == {"1": [(2.0, 5.0)]}


class TestNeighbourViolations:
    topo = ring(3)

    def test_overlap_on_an_edge_is_flagged(self):
        intervals = {"0": [(1.0, 3.0)], "1": [(2.0, 4.0)], "2": []}
        violations = neighbour_violations(self.topo, intervals)
        assert len(violations) == 1
        v = violations[0]
        assert {v.node_a, v.node_b} == {"0", "1"}
        assert (v.overlap_start, v.overlap_end) == (2.0, 3.0)

    def test_disjoint_holds_are_safe(self):
        intervals = {"0": [(1.0, 2.0)], "1": [(2.0, 3.0)], "2": [(3.0, 4.0)]}
        assert neighbour_violations(self.topo, intervals) == []

    def test_excluded_nodes_are_not_audited(self):
        intervals = {"0": [(1.0, 3.0)], "1": [(2.0, 4.0)], "2": []}
        assert neighbour_violations(self.topo, intervals, exclude=["1"]) == []


class TestLiveSoak:
    def test_short_soak_is_safe_and_makes_progress(self):
        config = ClusterConfig(
            topology=ring(3),
            topology_spec="ring:3",
            seed=2,
            tick_interval=0.005,
            lock_service=True,
            chaos=True,
        )
        result = asyncio.run(soak(config, 1.5, hold_s=0.02))
        assert result.safe, result.violations
        assert sum(c.acquired for c in result.clients) > 0
        assert all(c.errors == 0 for c in result.clients)
        assert result.cluster.mode == "soak"
