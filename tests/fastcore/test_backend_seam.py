"""The ``state_backend`` seam: make_engine, the CLI flags, and sweeps."""

import pytest

from repro.core import NADiners, NoFixdepthDiners
from repro.cli import main
from repro.fastcore import (
    STATE_BACKENDS,
    FastEngine,
    UnsupportedBackendError,
    make_engine,
)
from repro.sim import (
    AlwaysHungry,
    Engine,
    RoundDaemon,
    ScriptedHunger,
    WeaklyFairDaemon,
    ring,
)


class TestMakeEngine:
    def test_registered_backends(self):
        assert STATE_BACKENDS == ("object", "fast")

    def test_object_backend_builds_reference_engine(self):
        engine = make_engine(ring(5), NADiners(), hunger=AlwaysHungry(), seed=1)
        assert isinstance(engine, Engine)

    def test_fast_backend_builds_fast_engine(self):
        engine = make_engine(
            ring(5), NADiners(), backend="fast", hunger=AlwaysHungry(), seed=1
        )
        assert isinstance(engine, FastEngine)

    def test_both_backends_share_run_surface(self):
        results = {}
        for backend in STATE_BACKENDS:
            engine = make_engine(
                ring(5),
                NADiners(),
                backend=backend,
                hunger=AlwaysHungry(),
                seed=9,
            )
            result = engine.run(500)
            results[backend] = (result.steps, engine.snapshot())
        assert results["object"] == results["fast"]

    def test_unknown_backend_rejected(self):
        with pytest.raises(UnsupportedBackendError, match="unknown state backend"):
            make_engine(ring(4), NADiners(), backend="warp")

    def test_state_backend_callable_wins(self):
        calls = []

        def backend(topology, algorithm, daemon, **kwargs):
            calls.append((topology, kwargs.get("seed")))
            return FastEngine(topology, algorithm, daemon, **kwargs)

        engine = make_engine(
            ring(4), NADiners(), backend="object", state_backend=backend, seed=5
        )
        assert isinstance(engine, FastEngine)
        assert calls and calls[0][1] == 5

    def test_initially_dead_passes_through(self):
        for backend in STATE_BACKENDS:
            engine = make_engine(
                ring(5), NADiners(), backend=backend, initially_dead=(2,)
            )
            assert engine.snapshot().dead == frozenset({2})


class TestUnsupportedCombinations:
    """The fast backend must refuse — loudly — what it cannot replicate."""

    def test_variant_algorithms_rejected(self):
        with pytest.raises(UnsupportedBackendError):
            make_engine(ring(4), NoFixdepthDiners(), backend="fast")

    def test_unsupported_daemon_rejected(self):
        with pytest.raises(UnsupportedBackendError):
            FastEngine(ring(4), NADiners(), RoundDaemon())

    def test_unknown_fault_event_rejected(self):
        from repro.sim import FaultEvent, FaultPlan

        class Meteor(FaultEvent):
            at_step = 10

            def apply(self, system, rng):  # pragma: no cover - never runs
                pass

        with pytest.raises(UnsupportedBackendError, match="Meteor"):
            FastEngine(ring(4), NADiners(), faults=FaultPlan([Meteor()]))

    def test_scripted_hunger_uses_generic_path(self):
        # Arbitrary hunger policies fall back to per-step wants() calls —
        # slower, but parity still holds.
        from repro.fastcore import co_run

        co_run(
            ring(5),
            NADiners,
            steps=120,
            seed=4,
            hunger_factory=lambda: ScriptedHunger(
                {0: [(0, True)], 2: [(0, True), (60, False)]}, default=False
            ),
        )

    def test_weakly_fair_patience_mirrored(self):
        engine = FastEngine(
            ring(4), NADiners(), WeaklyFairDaemon(patience=7), seed=0
        )
        assert engine.run(100).steps >= 0  # constructs and runs


class TestCliBackendFlag:
    def test_run_fast_matches_object(self, capsys):
        argv = ["run", "--topology", "ring:6", "--steps", "1500"]
        assert main(argv) == 0
        object_out = capsys.readouterr().out
        assert main(argv + ["--backend", "fast"]) == 0
        fast_out = capsys.readouterr().out
        assert "meals" in fast_out
        # Same seed, same schedule: per-process meal lines must be identical.
        meals = lambda text: [l for l in text.splitlines() if "meals" in l]
        assert meals(fast_out) == meals(object_out)

    def test_run_fast_rejects_variant_algorithms(self):
        with pytest.raises(SystemExit):
            main(
                ["run", "--topology", "ring:4", "--algorithm", "no-fixdepth",
                 "--backend", "fast"]
            )

    def test_check_reachable_backends_agree(self, capsys):
        argv = ["check", "--topology", "ring:3", "--reachable"]
        assert main(argv + ["--backend", "object"]) == 0
        object_out = capsys.readouterr().out
        assert main(argv + ["--backend", "fast"]) == 0
        fast_out = capsys.readouterr().out
        assert "reachable: 720 states" in object_out
        assert "reachable: 720 states" in fast_out

    def test_check_fast_requires_reachable(self):
        with pytest.raises(SystemExit):
            main(["check", "--topology", "ring:3", "--backend", "fast"])

    def test_sweep_fast_matches_object(self, capsys):
        argv = ["sweep", "--topology", "ring:5", "--trials", "2",
                "--steps", "400", "--quiet"]
        assert main(argv) == 0
        object_out = capsys.readouterr().out
        assert main(argv + ["--backend", "fast"]) == 0
        fast_out = capsys.readouterr().out
        # Identical seeds and RNG parity: the aggregate lines must agree.
        tail = lambda text: [
            l for l in text.splitlines()
            if l.startswith(("trials", "total eats", "meals/1k", "jain"))
        ]
        assert tail(fast_out) == tail(object_out)
