"""PackedCodec: Configuration ↔ PackedState translation and keys."""

import random

import pytest

from repro.core import NADiners, NoFixdepthDiners, e_holds
from repro.fastcore import PackedCodec, UnsupportedBackendError
from repro.sim import System, grid, line, ring


def randomized_config(topo, algo, seed, dead=(), malicious=()):
    system = System(topo, algo)
    system.randomize(random.Random(seed))
    for p in dead:
        system.kill(p)
    for p in malicious:
        system.mark_malicious(p)
    return system.snapshot()


class TestRoundTrip:
    @pytest.mark.parametrize("topo", [ring(6), line(5), grid(3, 3)])
    @pytest.mark.parametrize("seed", [0, 7, 123])
    def test_pack_unpack_identity(self, topo, seed):
        algo = NADiners()
        codec = PackedCodec(topo, algo)
        config = randomized_config(topo, algo, seed)
        assert codec.unpack(codec.pack(config)) == config

    def test_round_trip_preserves_dead_and_malicious(self):
        topo = ring(6)
        algo = NADiners()
        codec = PackedCodec(topo, algo)
        config = randomized_config(topo, algo, 3, dead=(1,), malicious=(4,))
        back = codec.unpack(codec.pack(config))
        assert back.dead == config.dead
        assert back.malicious == config.malicious
        assert back == config

    def test_initial_state_matches_fresh_system(self):
        topo = line(5)
        algo = NADiners()
        codec = PackedCodec(topo, algo)
        assert codec.unpack(codec.initial_state()) == System(topo, algo).snapshot()

    def test_initially_dead_matches_object_model(self):
        topo = ring(5)
        algo = NADiners()
        codec = PackedCodec(topo, algo)
        fast = codec.unpack(codec.initial_state(initially_dead=(2,)))
        obj = System(topo, algo, initially_dead=(2,)).snapshot()
        assert fast == obj


class TestKey:
    def test_key_is_injective_on_distinct_configs(self):
        topo = ring(4)
        algo = NADiners(depth_cap=topo.diameter + 1)
        codec = PackedCodec(topo, algo)
        seen = {}
        for seed in range(50):
            config = randomized_config(topo, algo, seed)
            key = codec.key(codec.pack(config))
            assert isinstance(key, bytes)
            if key in seen:
                assert seen[key] == config
            seen[key] = config
        assert len(seen) > 1

    def test_key_equal_iff_config_equal(self):
        topo = line(4)
        algo = NADiners(depth_cap=topo.diameter + 1)
        codec = PackedCodec(topo, algo)
        a = randomized_config(topo, algo, 1)
        assert codec.key(codec.pack(a)) == codec.key(codec.pack(a))

    def test_key_requires_finite_cap(self):
        topo = ring(4)
        codec = PackedCodec(topo, NADiners())  # uncapped depth counter
        with pytest.raises(UnsupportedBackendError):
            codec.key(codec.initial_state())


class TestSupport:
    def test_rejects_algorithm_variants(self):
        # Ablation variants change the action semantics the packed kernels
        # hard-code, so the codec must refuse them rather than mis-run them.
        with pytest.raises(UnsupportedBackendError):
            PackedCodec(ring(4), NoFixdepthDiners())

    def test_neighbors_eating_matches_e_predicate(self):
        topo = ring(6)
        algo = NADiners()
        codec = PackedCodec(topo, algo)
        violations = 0
        for seed in range(30):
            config = randomized_config(topo, algo, seed)
            fast = codec.neighbors_eating(codec.pack(config))
            assert fast == (not e_holds(config))
            violations += fast
        assert violations  # randomized states do hit E violations
