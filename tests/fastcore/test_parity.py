"""The seeded parity battery: fast backend == object backend, step for step.

Every combination of topology shape × fault plan × hunger policy × daemon
runs both backends in lockstep via :func:`repro.fastcore.co_run`, which
asserts per-step configuration equality, byte-identical trace-event
streams, and matching action counts.  These are the acceptance tests of
the fast core's one claim: same computation, faster.
"""

import pytest

from repro.core import NADiners
from repro.fastcore import ParityError, co_run, co_run_results
from repro.sim import (
    AlwaysHungry,
    BenignCrash,
    FaultPlan,
    MaliciousCrash,
    ProbabilisticHunger,
    RoundRobinDaemon,
    TransientFault,
    WeaklyFairDaemon,
    grid,
    line,
    ring,
)

TOPOLOGIES = [
    pytest.param(ring(6), id="ring6"),
    pytest.param(line(5), id="line5"),
    pytest.param(grid(3, 3), id="grid3x3"),
]


def benign_plan():
    return FaultPlan([BenignCrash(1, at_step=60), BenignCrash(4, at_step=150)])


def malicious_plan():
    # Malice, a benign crash, and a transient corruption in one run: the
    # paper's full fault model, all of whose RNG draws must replicate.
    return FaultPlan(
        [
            MaliciousCrash(2, at_step=40, malicious_steps=25),
            BenignCrash(0, at_step=120),
            TransientFault(at_step=200, pids=(1, 3)),
        ]
    )


PLANS = [
    pytest.param(None, id="no-faults"),
    pytest.param(benign_plan, id="benign"),
    pytest.param(malicious_plan, id="malicious"),
]

HUNGERS = [
    pytest.param(AlwaysHungry, id="always-hungry"),
    pytest.param(lambda: ProbabilisticHunger(0.4), id="prob-hunger"),
]


class TestLockstepBattery:
    @pytest.mark.parametrize("hunger", HUNGERS)
    @pytest.mark.parametrize("plan", PLANS)
    @pytest.mark.parametrize("topo", TOPOLOGIES)
    def test_weakly_fair(self, topo, plan, hunger):
        report = co_run(
            topo,
            NADiners,
            steps=300,
            seed=11 + len(topo),
            daemon_factory=WeaklyFairDaemon,
            hunger_factory=hunger,
            faults_factory=plan,
        )
        assert report.steps > 0
        if plan is None and hunger is AlwaysHungry:
            assert report.events  # activity must actually be recorded

    @pytest.mark.parametrize("plan", PLANS)
    @pytest.mark.parametrize("topo", TOPOLOGIES)
    def test_round_robin(self, topo, plan):
        co_run(
            topo,
            NADiners,
            steps=300,
            seed=5,
            daemon_factory=RoundRobinDaemon,
            hunger_factory=AlwaysHungry,
            faults_factory=plan,
        )

    @pytest.mark.parametrize("seed", [0, 7, 123])
    def test_seed_sweep_with_malice(self, seed):
        co_run(
            ring(8),
            NADiners,
            steps=400,
            seed=seed,
            hunger_factory=lambda: ProbabilisticHunger(0.5),
            faults_factory=malicious_plan,
        )


class TestRunResults:
    @pytest.mark.parametrize("topo", TOPOLOGIES)
    def test_full_run_results_agree(self, topo):
        obj, fast = co_run_results(
            topo,
            NADiners,
            max_steps=500,
            seed=3,
            hunger_factory=AlwaysHungry,
            faults_factory=malicious_plan,
        )
        assert obj.steps == fast.steps
        assert obj.final == fast.final

    def test_quiescence_agrees_without_hunger(self):
        # With nobody hungry the run must go quiescent at the same step.
        obj, fast = co_run_results(ring(6), NADiners, max_steps=200, seed=1)
        assert obj.quiescent and fast.quiescent
        assert obj.steps == fast.steps


class TestHarness:
    def test_divergence_is_localized(self):
        # A doctored configuration must produce a field-level diff naming
        # the divergent process, not just "configurations differ".
        from repro.fastcore.parity import _diff_configurations
        from repro.sim import System

        topo = ring(4)
        a = System(topo, NADiners()).snapshot()
        doctored = System(topo, NADiners())
        doctored.write_local(2, "depth", 3)
        b = doctored.snapshot()
        message = _diff_configurations(17, a, b)
        assert "step 17" in message
        assert "locals 2" in message and "depth" in message

    def test_events_cover_payloads(self):
        report = co_run(
            ring(6),
            NADiners,
            steps=100,
            seed=2,
            hunger_factory=AlwaysHungry,
            record_events=True,
        )
        assert any(ev.payload for ev in report.events)
