"""FastTransitionSystem vs TransitionSystem: the checker-side parity."""

import random

import pytest

from repro.core import NADiners
from repro.fastcore import FastTransitionSystem, UnsupportedBackendError
from repro.fastcore.explorer import FastReachability
from repro.sim import SimulationError, System, line, ring
from repro.verification import FastExplorer, TransitionSystem


def all_hungry_initial(topo, algo):
    system = System(topo, algo)
    for pid in topo.nodes:
        system.write_local(pid, "needs", True)
    return system.snapshot()


def randomized_config(topo, algo, seed):
    system = System(topo, algo)
    system.randomize(random.Random(seed))
    return system.snapshot()


class TestSuccessorParity:
    @pytest.mark.parametrize("topo", [ring(5), line(4)])
    @pytest.mark.parametrize("seed", [0, 3, 9, 21])
    def test_successors_identical(self, topo, seed):
        algo = NADiners(depth_cap=topo.diameter + 1)
        config = randomized_config(topo, algo, seed)
        slow = TransitionSystem(algo, topo).successors(config)
        fast = FastTransitionSystem(algo, topo).successors(config)
        # Same transitions in the same (pid-major, declaration) order.
        assert [(t.pid, t.action) for t in fast] == [
            (t.pid, t.action) for t in slow
        ]
        assert [t.target for t in fast] == [t.target for t in slow]

    @pytest.mark.parametrize("seed", [1, 5])
    def test_enabled_identical(self, seed):
        topo = ring(6)
        algo = NADiners(depth_cap=topo.diameter + 1)
        config = randomized_config(topo, algo, seed)
        assert FastTransitionSystem(algo, topo).enabled(config) == (
            TransitionSystem(algo, topo).enabled(config)
        )


class TestReachability:
    # Ground truth measured with TransitionSystem.reachable_from (object
    # model) on the all-hungry initial configuration; the fast BFS must
    # reproduce the exact closure, not just "roughly as many states".
    @pytest.mark.parametrize(
        "topo,expected_states",
        [
            pytest.param(ring(3), 720, id="ring3"),
            pytest.param(line(3), 484, id="line3"),
        ],
    )
    def test_reachable_counts_match_object_bfs(self, topo, expected_states):
        algo = NADiners(
            depth_cap=topo.diameter + 1, diameter_override=topo.diameter
        )
        config = all_hungry_initial(topo, algo)
        stats = FastTransitionSystem(algo, topo).reachable_stats([config])
        assert isinstance(stats, FastReachability)
        assert stats.states == expected_states
        assert stats.violations == 0
        graph = TransitionSystem(algo, topo).reachable_from([config])
        assert len(graph) == stats.states
        assert sum(len(ts) for ts in graph.values()) == stats.transitions

    def test_violations_counted_from_bad_source(self):
        # Start both neighbours eating: the source itself violates E.
        topo = ring(4)
        algo = NADiners(
            depth_cap=topo.diameter + 1, diameter_override=topo.diameter
        )
        system = System(topo, algo)
        from repro.core import DinerState

        for pid in (0, 1):
            system.write_local(pid, "state", DinerState.EATING)
        stats = FastTransitionSystem(algo, topo).reachable_stats(
            [system.snapshot()], max_states=200_000
        )
        assert stats.violations > 0

    def test_max_states_guard_matches_object_semantics(self):
        topo = ring(3)
        algo = NADiners(
            depth_cap=topo.diameter + 1, diameter_override=topo.diameter
        )
        config = all_hungry_initial(topo, algo)
        with pytest.raises(SimulationError, match="max_states=100"):
            FastTransitionSystem(algo, topo).reachable_stats(
                [config], max_states=100
            )

    def test_duplicate_sources_deduplicated(self):
        topo = line(3)
        algo = NADiners(
            depth_cap=topo.diameter + 1, diameter_override=topo.diameter
        )
        config = all_hungry_initial(topo, algo)
        fts = FastTransitionSystem(algo, topo)
        assert fts.reachable_stats([config, config]).states == 484


class TestFastExplorerSeam:
    def test_wraps_fast_transition_system(self):
        topo = ring(4)
        algo = NADiners(depth_cap=topo.diameter + 1)
        explorer = FastExplorer(algo, topo)
        config = randomized_config(topo, algo, 2)
        reference = TransitionSystem(algo, topo)
        assert explorer.enabled(config) == reference.enabled(config)
        assert [(t.pid, t.action, t.target) for t in explorer.successors(config)] == [
            (t.pid, t.action, t.target) for t in reference.successors(config)
        ]

    def test_reachable_count(self):
        topo = ring(3)
        algo = NADiners(
            depth_cap=topo.diameter + 1, diameter_override=topo.diameter
        )
        stats = FastExplorer(algo, topo).reachable_count(
            [all_hungry_initial(topo, algo)]
        )
        assert stats.states == 720

    def test_uncapped_algorithm_rejected(self):
        # Packed keys need a finite depth domain, exactly like enumeration.
        topo = ring(4)
        fts = FastTransitionSystem(NADiners(), topo)
        config = all_hungry_initial(topo, NADiners())
        with pytest.raises(UnsupportedBackendError):
            fts.reachable_stats([config])
