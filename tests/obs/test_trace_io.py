"""Unit tests for trace JSONL export, loading, and offline analysis."""

import pytest

from repro.core import NADiners
from repro.obs import (
    TRACE_FORMAT_VERSION,
    EventKind,
    MpEventKind,
    Trace,
    analyze,
    build_header,
    read_trace,
    trace_from_recorder,
    write_trace,
)
from repro.obs.trace_io import event_from_payload, event_to_line
from repro.sim import (
    BenignCrash,
    SimulationError,
    System,
    TraceEvent,
    TraceRecorder,
    ring,
)

from ..conftest import make_engine


def recorded_run(steps=1200, seed=5, snapshot_every=100, crash=None):
    """A real traced run on ring(6); returns (engine, recorder)."""
    recorder = TraceRecorder(snapshot_every=snapshot_every)
    engine = make_engine(System(ring(6), NADiners()), seed=seed, recorder=recorder)
    if crash is not None:
        engine.run(steps // 2)
        engine.inject(BenignCrash(pid=crash))
        engine.run(steps - steps // 2)
    else:
        engine.run(steps)
    return engine, recorder


def header_for(engine, *, snapshot_every=100):
    return build_header(
        model="sim",
        algorithm="na-diners",
        topology="ring:6",
        seed=5,
        steps_taken=engine.step_count,
        threshold=engine.system.topology.diameter,
        snapshot_every=snapshot_every,
    )


class TestHeader:
    def test_versioned(self):
        header = build_header(model="sim", algorithm="x", seed=0, steps_taken=10)
        assert header["format"] == TRACE_FORMAT_VERSION
        assert header["kind"] == "header"

    def test_extra_fields_merge(self):
        header = build_header(
            model="sim", algorithm="x", seed=0, steps_taken=1, extra={"note": "hi"}
        )
        assert header["note"] == "hi"


class TestEventCodec:
    def round_trip(self, event):
        import json

        return event_from_payload(json.loads(event_to_line(event)))

    def test_action_round_trip(self):
        event = TraceEvent(7, EventKind.ACTION, 2, "enter")
        assert self.round_trip(event) == event

    def test_payload_round_trip(self):
        event = TraceEvent(7, EventKind.ACTION, 2, "exit", {"depth": 3})
        back = self.round_trip(event)
        assert back.payload == {"depth": 3}

    def test_tuple_detail_round_trip(self):
        event = TraceEvent(0, EventKind.TRANSIENT, None, (0, 1))
        assert self.round_trip(event).detail == (0, 1)

    def test_mp_kind_round_trip(self):
        event = TraceEvent(3, MpEventKind.SEND, 0, 1)
        back = self.round_trip(event)
        assert back.kind is MpEventKind.SEND and back.detail == 1

    def test_unknown_kind_rejected(self):
        with pytest.raises(SimulationError):
            event_from_payload({"kind": "event", "step": 0, "event": "warp"})


class TestFileRoundTrip:
    def test_events_and_snapshots_survive(self, tmp_path):
        engine, recorder = recorded_run()
        trace = trace_from_recorder(recorder, header_for(engine))
        path = tmp_path / "run.trace"
        write_trace(path, trace)
        back = read_trace(path)
        assert back.events == trace.events
        assert len(back.snapshots) == len(trace.snapshots)
        assert back.header["algorithm"] == "na-diners"
        assert back.steps == engine.step_count

    def test_write_is_deterministic(self, tmp_path):
        engine, recorder = recorded_run()
        trace = trace_from_recorder(recorder, header_for(engine))
        a, b = tmp_path / "a.trace", tmp_path / "b.trace"
        write_trace(a, trace)
        write_trace(b, trace)
        assert a.read_bytes() == b.read_bytes()

    def test_missing_header_rejected(self, tmp_path):
        path = tmp_path / "broken.trace"
        path.write_text('{"kind":"event","step":0,"event":"action"}\n')
        with pytest.raises(SimulationError):
            read_trace(path)

    def test_malformed_line_rejected(self, tmp_path):
        engine, recorder = recorded_run(steps=50, snapshot_every=0)
        path = tmp_path / "run.trace"
        write_trace(path, trace_from_recorder(recorder, header_for(engine)))
        with path.open("a") as handle:
            handle.write("garbage\n")
        with pytest.raises(SimulationError):
            read_trace(path)

    def test_wrong_format_version_rejected(self, tmp_path):
        path = tmp_path / "future.trace"
        path.write_text('{"format":99,"kind":"header","model":"sim"}\n')
        with pytest.raises(SimulationError):
            read_trace(path)


class TestAnalyze:
    def test_summary_counts_match_engine(self):
        engine, recorder = recorded_run()
        analysis = analyze(trace_from_recorder(recorder, header_for(engine)))
        assert analysis.summary["total_eats"] == engine.total_eats()
        assert analysis.summary["snapshots"] == len(recorder.snapshots)

    def test_crash_surfaces_in_locality(self):
        engine, recorder = recorded_run(crash=0)
        analysis = analyze(trace_from_recorder(recorder, header_for(engine)))
        # pids are wire-encoded (repr) in the summary, like the eats keys.
        assert analysis.summary["crashes"] == [[600, "0"]]
        assert analysis.summary["observed_radius"] is not None

    def test_offline_equals_in_memory(self, tmp_path):
        """The acceptance criterion: file → analyze == memory → analyze."""
        engine, recorder = recorded_run()
        trace = trace_from_recorder(recorder, header_for(engine))
        path = tmp_path / "run.trace"
        write_trace(path, trace)
        live = analyze(trace).summary_json()
        replayed = analyze(read_trace(path)).summary_json()
        assert live == replayed

    def test_invariant_timeline_present_for_na_diners(self):
        engine, recorder = recorded_run()
        analysis = analyze(trace_from_recorder(recorder, header_for(engine)))
        assert analysis.summary["invariant_timeline"]
        assert analysis.summary["final_invariant"] == {
            "NC": True,
            "ST": True,
            "E": True,
        }

    def test_empty_trace_analyzes(self):
        header = build_header(model="sim", algorithm="na-diners", seed=0, steps_taken=0)
        analysis = analyze(Trace(header=header, events=(), snapshots=()))
        assert analysis.summary["total_eats"] == 0
