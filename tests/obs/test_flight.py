"""Unit tests for the flight recorder: ring bounds, record shapes, and
the dump/read roundtrip that `repro timeline` consumes."""

import json

import pytest

from repro.obs import (
    DEFAULT_CAPACITY,
    FLIGHT_SOURCE,
    FlightRecorder,
    dump_flight,
    read_flight,
)
from repro.obs.tracing import SpanRecorder, read_spans


class TestRing:
    def test_capacity_bound_and_dropped(self):
        rec = FlightRecorder("0", capacity=4)
        for i in range(10):
            rec.note({"rec": "event", "t": float(i)})
        assert len(rec) == 4
        assert rec.recorded == 10
        assert rec.dropped == 6
        # Oldest-first, and only the newest four survive.
        assert [r["t"] for r in rec.records()] == [6.0, 7.0, 8.0, 9.0]

    def test_capacity_must_be_positive(self):
        for capacity in (0, -1):
            with pytest.raises(ValueError):
                FlightRecorder("0", capacity=capacity)

    def test_default_capacity(self):
        assert FlightRecorder("0").capacity == DEFAULT_CAPACITY

    def test_note_event_shapes(self):
        rec = FlightRecorder("0")
        rec.note_event({"t": 1.0, "event": "net-grant"})
        rec.note_event(
            {"t": 2.0, "event": "net-span-close", "detail": {"wait_s": 0.5}}
        )
        plain, detailed = rec.records()
        assert plain == {"rec": "event", "t": 1.0, "event": "net-grant"}
        assert detailed["detail"] == {"wait_s": 0.5}

    def test_note_frame_shapes(self):
        rec = FlightRecorder("0")
        rec.note_frame(1.0, "in", "fork")
        rec.note_frame(2.0, "out", "request", peer="1")
        plain, with_peer = rec.records()
        assert plain == {"rec": "frame", "t": 1.0, "dir": "in", "type": "fork"}
        assert with_peer["peer"] == "1"
        assert rec.recorded == 2


class TestDump:
    def _recorder(self):
        rec = FlightRecorder("2", capacity=8)
        rec.note_frame(1.0, "in", "request", peer="1")
        rec.note_event({"t": 2.0, "event": "net-grant"})
        return rec

    def test_roundtrip(self, tmp_path):
        path = tmp_path / "flight-2.jsonl"
        dump_flight(
            path, self._recorder(), reason="soak-violation",
            header={"topology": "ring:3", "seed": 7},
        )
        flight = read_flight(path)
        assert flight.header["source"] == FLIGHT_SOURCE
        assert flight.header["node"] == "2"
        assert flight.header["reason"] == "soak-violation"
        assert flight.header["topology"] == "ring:3"
        assert flight.header["capacity"] == 8
        assert flight.header["dropped"] == 0
        assert [r["rec"] for r in flight.records] == ["frame", "event"]
        assert flight.spans == []
        assert flight.skipped == 0

    def test_dump_carries_recent_spans(self, tmp_path):
        tracer = SpanRecorder("2")
        span = tracer.open("acquire", lc=1, t=0.5)
        tracer.event(span, "grant", lc=2, t=1.0)
        tracer.close(span, lc=3, t=1.5)
        path = dump_flight(
            tmp_path / "flight-2.jsonl", self._recorder(),
            reason="crash:2", tracer=tracer,
        )
        flight = read_flight(path)
        assert flight.header["spans"] == 1
        assert len(flight.spans) == 1
        assert flight.spans[0].name == "acquire"
        assert flight.spans[0].first_event("grant") is not None

    def test_span_window_is_bounded_by_capacity(self, tmp_path):
        tracer = SpanRecorder("0")
        for i in range(6):
            span = tracer.open("acquire", lc=i, t=float(i))
            tracer.close(span, lc=i, t=float(i))
        rec = FlightRecorder("0", capacity=4)
        flight = read_flight(
            dump_flight(tmp_path / "f.jsonl", rec, reason="x", tracer=tracer)
        )
        assert len(flight.spans) == 4
        assert flight.spans[0].open_t == 2.0  # oldest two fell off

    def test_read_spans_accepts_a_flight_dump(self, tmp_path):
        """`repro timeline` merges black boxes through the span reader:
        spans parse, ring records count as skipped, never fatal."""
        tracer = SpanRecorder("2")
        span = tracer.open("acquire", lc=1, t=0.5)
        tracer.close(span, lc=2, t=1.0)
        path = dump_flight(
            tmp_path / "flight-2.jsonl", self._recorder(),
            reason="stall:2", tracer=tracer,
        )
        span_file = read_spans(path)
        assert span_file.header["source"] == FLIGHT_SOURCE
        assert len(span_file.spans) == 1
        assert span_file.skipped == 2  # the two ring records

    def test_read_is_lenient(self, tmp_path):
        path = dump_flight(
            tmp_path / "f.jsonl", self._recorder(), reason="sigterm"
        )
        with path.open("a") as handle:
            handle.write("not json\n")
        flight = read_flight(path)
        assert flight.skipped == 1
        assert len(flight.records) == 2

    def test_no_leftover_tmp_file(self, tmp_path):
        dump_flight(tmp_path / "f.jsonl", self._recorder(), reason="x")
        assert [p.name for p in tmp_path.iterdir()] == ["f.jsonl"]

    def test_dump_lines_are_canonical_json(self, tmp_path):
        path = dump_flight(
            tmp_path / "f.jsonl", self._recorder(), reason="x"
        )
        for line in path.read_text().splitlines():
            row = json.loads(line)
            assert json.dumps(
                row, sort_keys=True, separators=(",", ":")
            ) == line
