"""Unit tests for the metrics registry and its JSONL encoding."""

import pytest

from repro.obs import (
    METRICS_FORMAT_VERSION,
    MetricsRegistry,
    metrics_lines,
    read_metrics,
    write_metrics,
)


class TestInstruments:
    def test_counter(self):
        reg = MetricsRegistry()
        c = reg.counter("eats/total")
        c.inc()
        c.inc(3)
        assert c.payload() == {"value": 4}

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("x").inc(-1)

    def test_gauge_set_and_track_max(self):
        g = MetricsRegistry().gauge("depth/max")
        g.set(2)
        g.track_max(5)
        g.track_max(1)
        assert g.payload() == {"value": 5}

    def test_histogram_exact_buckets(self):
        h = MetricsRegistry().histogram("depth/histogram")
        for v in (0, 0, 1, 3):
            h.observe(v)
        payload = h.payload()
        assert payload["buckets"] == {"0": 2, "1": 1, "3": 1}
        assert payload["count"] == 4
        assert payload["sum"] == 4
        assert h.mean == 1.0

    def test_timer_is_meta_by_default(self):
        reg = MetricsRegistry()
        t = reg.timer("step_time/run")
        t.observe(0.25)
        assert t.meta
        assert "step_time/run" not in reg.snapshot(include_meta=False)
        assert "step_time/run" in reg.snapshot(include_meta=True)

    def test_series_points(self):
        s = MetricsRegistry().series("invariant/distance")
        s.append(0, 3)
        s.append(200, 0)
        assert s.payload()["points"] == [[0, 3], [200, 0]]


class TestRegistry:
    def test_same_name_same_instance(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")

    def test_type_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("a")
        with pytest.raises(TypeError):
            reg.gauge("a")

    def test_names_sorted(self):
        reg = MetricsRegistry()
        reg.counter("b")
        reg.gauge("a")
        assert reg.names() == ("a", "b")

    def test_contains_and_getitem(self):
        reg = MetricsRegistry()
        c = reg.counter("a")
        assert "a" in reg and reg["a"] is c


class TestJsonl:
    def _registry(self):
        reg = MetricsRegistry()
        reg.counter("eats/total").inc(7)
        reg.gauge("depth/max").set(3)
        reg.histogram("waiting_chain/histogram").observe(2)
        reg.timer("step_time/run").observe(0.5)
        return reg

    def test_header_line_versioned(self):
        lines = list(metrics_lines(self._registry(), header={"seed": 1}))
        assert f'"format":{METRICS_FORMAT_VERSION}' in lines[0]
        assert '"kind":"header"' in lines[0]
        assert '"seed":1' in lines[0]

    def test_round_trip(self, tmp_path):
        path = tmp_path / "m.jsonl"
        write_metrics(path, self._registry(), header={"seed": 1}, include_meta=True)
        parsed = read_metrics(path)
        assert parsed.header["seed"] == 1
        assert parsed.metrics["eats/total"]["value"] == 7
        assert parsed.metrics["depth/max"]["value"] == 3
        assert "step_time/run" in parsed.metrics
        assert parsed.skipped == 0

    def test_meta_excluded_by_default(self, tmp_path):
        path = tmp_path / "m.jsonl"
        write_metrics(path, self._registry())
        assert "step_time/run" not in read_metrics(path).metrics

    def test_deterministic_bytes(self, tmp_path):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        write_metrics(a, self._registry(), header={"seed": 1})
        write_metrics(b, self._registry(), header={"seed": 1})
        assert a.read_bytes() == b.read_bytes()

    def test_reader_skips_foreign_lines(self, tmp_path):
        path = tmp_path / "m.jsonl"
        write_metrics(path, self._registry())
        with path.open("a") as handle:
            handle.write("not json\n")
            handle.write('{"some": "other record"}\n')
        parsed = read_metrics(path)
        assert parsed.skipped == 2
        assert "eats/total" in parsed.metrics

    def test_write_creates_parents(self, tmp_path):
        path = tmp_path / "deep" / "dir" / "m.jsonl"
        write_metrics(path, self._registry())
        assert path.exists()


class TestAggregateMath:
    """Percentiles and merges on Timer/Histogram (the BENCH runner's math)."""

    def test_percentile_of_sorted_interpolates(self):
        from repro.obs import percentile_of_sorted

        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile_of_sorted(values, 0.0) == 1.0
        assert percentile_of_sorted(values, 1.0) == 4.0
        assert percentile_of_sorted(values, 0.5) == 2.5
        assert percentile_of_sorted(values, 0.25) == 1.75

    def test_percentile_of_sorted_rejects_bad_input(self):
        from repro.obs import percentile_of_sorted

        with pytest.raises(ValueError):
            percentile_of_sorted([], 0.5)
        with pytest.raises(ValueError):
            percentile_of_sorted([1.0], 1.5)

    def test_histogram_percentile_nearest_rank(self):
        h = MetricsRegistry().histogram("h")
        for value, weight in ((0, 5), (1, 3), (2, 2)):
            h.observe(value, weight)
        assert h.percentile(0.0) == 0
        assert h.percentile(0.5) == 0     # 5 of 10 observations are 0
        assert h.percentile(0.8) == 1
        assert h.percentile(1.0) == 2

    def test_histogram_percentile_empty(self):
        assert MetricsRegistry().histogram("h").percentile(0.5) is None

    def test_histogram_merge(self):
        reg = MetricsRegistry()
        a, b = reg.histogram("a"), reg.histogram("b")
        a.observe(1, 2)
        b.observe(1, 3)
        b.observe(5, 1)
        a.merge(b)
        assert a.buckets == {1: 5, 5: 1}
        assert a.count == 6
        assert a.total == 10
        # The merged histogram answers percentiles over the union.
        assert a.percentile(0.5) == 1

    def test_timer_percentile_and_extended_payload(self):
        t = MetricsRegistry().timer("t")
        for s in (0.1, 0.2, 0.3, 0.4, 0.5):
            t.observe(s)
        assert t.percentile(0.5) == pytest.approx(0.3)
        payload = t.payload()
        assert payload["p50_s"] == pytest.approx(0.3)
        assert payload["p90_s"] == pytest.approx(0.46)
        assert payload["mean_s"] == pytest.approx(0.3)

    def test_timer_merge(self):
        reg = MetricsRegistry()
        a, b = reg.timer("a"), reg.timer("b")
        a.observe(1.0)
        b.observe(3.0)
        b.observe(5.0)
        a.merge(b)
        assert a.count == 3
        assert a.total == pytest.approx(9.0)
        assert a.min == 1.0
        assert a.max == 5.0
        assert a.percentile(0.5) == pytest.approx(3.0)

    def test_empty_timer_payload_is_all_none(self):
        payload = MetricsRegistry().timer("t").payload()
        assert payload["count"] == 0
        assert payload["p50_s"] is None
        assert payload["mean_s"] is None

    def test_percentile_of_sorted_single_sample_all_quantiles(self):
        from repro.obs import percentile_of_sorted

        # Every quantile of a singleton collapses to that sample — the
        # interpolation must not index past either end.
        for q in (0.0, 0.25, 0.5, 0.999, 1.0):
            assert percentile_of_sorted([7.5], q) == 7.5

    def test_histogram_single_sample_percentiles(self):
        h = MetricsRegistry().histogram("h")
        h.observe(3)
        assert h.percentile(0.0) == 3
        assert h.percentile(0.5) == 3
        assert h.percentile(1.0) == 3

    def test_timer_single_sample_percentiles(self):
        t = MetricsRegistry().timer("t")
        t.observe(0.25)
        assert t.percentile(0.0) == pytest.approx(0.25)
        assert t.percentile(0.5) == pytest.approx(0.25)
        assert t.percentile(1.0) == pytest.approx(0.25)

    def test_histogram_merge_with_empty_is_identity(self):
        reg = MetricsRegistry()
        a, empty = reg.histogram("a"), reg.histogram("empty")
        a.observe(1, 2)
        a.observe(4, 1)
        before = (dict(a.buckets), a.count, a.total)
        a.merge(empty)
        assert (dict(a.buckets), a.count, a.total) == before
        # And the other direction adopts the populated side wholesale.
        empty.merge(a)
        assert dict(empty.buckets) == dict(a.buckets)
        assert empty.percentile(1.0) == 4

    def test_timer_merge_with_empty_is_identity(self):
        reg = MetricsRegistry()
        a, empty = reg.timer("a"), reg.timer("empty")
        a.observe(0.5)
        a.merge(empty)
        assert a.count == 1
        assert a.min == 0.5
        assert a.max == 0.5
        empty2 = reg.timer("empty2")
        empty2.merge(a)
        assert empty2.count == 1
        assert empty2.percentile(0.5) == pytest.approx(0.5)
