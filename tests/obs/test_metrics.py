"""Unit tests for the metrics registry and its JSONL encoding."""

import pytest

from repro.obs import (
    METRICS_FORMAT_VERSION,
    MetricsRegistry,
    metrics_lines,
    read_metrics,
    write_metrics,
)


class TestInstruments:
    def test_counter(self):
        reg = MetricsRegistry()
        c = reg.counter("eats/total")
        c.inc()
        c.inc(3)
        assert c.payload() == {"value": 4}

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("x").inc(-1)

    def test_gauge_set_and_track_max(self):
        g = MetricsRegistry().gauge("depth/max")
        g.set(2)
        g.track_max(5)
        g.track_max(1)
        assert g.payload() == {"value": 5}

    def test_histogram_exact_buckets(self):
        h = MetricsRegistry().histogram("depth/histogram")
        for v in (0, 0, 1, 3):
            h.observe(v)
        payload = h.payload()
        assert payload["buckets"] == {"0": 2, "1": 1, "3": 1}
        assert payload["count"] == 4
        assert payload["sum"] == 4
        assert h.mean == 1.0

    def test_timer_is_meta_by_default(self):
        reg = MetricsRegistry()
        t = reg.timer("step_time/run")
        t.observe(0.25)
        assert t.meta
        assert "step_time/run" not in reg.snapshot(include_meta=False)
        assert "step_time/run" in reg.snapshot(include_meta=True)

    def test_series_points(self):
        s = MetricsRegistry().series("invariant/distance")
        s.append(0, 3)
        s.append(200, 0)
        assert s.payload()["points"] == [[0, 3], [200, 0]]


class TestRegistry:
    def test_same_name_same_instance(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")

    def test_type_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("a")
        with pytest.raises(TypeError):
            reg.gauge("a")

    def test_names_sorted(self):
        reg = MetricsRegistry()
        reg.counter("b")
        reg.gauge("a")
        assert reg.names() == ("a", "b")

    def test_contains_and_getitem(self):
        reg = MetricsRegistry()
        c = reg.counter("a")
        assert "a" in reg and reg["a"] is c


class TestJsonl:
    def _registry(self):
        reg = MetricsRegistry()
        reg.counter("eats/total").inc(7)
        reg.gauge("depth/max").set(3)
        reg.histogram("waiting_chain/histogram").observe(2)
        reg.timer("step_time/run").observe(0.5)
        return reg

    def test_header_line_versioned(self):
        lines = list(metrics_lines(self._registry(), header={"seed": 1}))
        assert f'"format":{METRICS_FORMAT_VERSION}' in lines[0]
        assert '"kind":"header"' in lines[0]
        assert '"seed":1' in lines[0]

    def test_round_trip(self, tmp_path):
        path = tmp_path / "m.jsonl"
        write_metrics(path, self._registry(), header={"seed": 1}, include_meta=True)
        parsed = read_metrics(path)
        assert parsed.header["seed"] == 1
        assert parsed.metrics["eats/total"]["value"] == 7
        assert parsed.metrics["depth/max"]["value"] == 3
        assert "step_time/run" in parsed.metrics
        assert parsed.skipped == 0

    def test_meta_excluded_by_default(self, tmp_path):
        path = tmp_path / "m.jsonl"
        write_metrics(path, self._registry())
        assert "step_time/run" not in read_metrics(path).metrics

    def test_deterministic_bytes(self, tmp_path):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        write_metrics(a, self._registry(), header={"seed": 1})
        write_metrics(b, self._registry(), header={"seed": 1})
        assert a.read_bytes() == b.read_bytes()

    def test_reader_skips_foreign_lines(self, tmp_path):
        path = tmp_path / "m.jsonl"
        write_metrics(path, self._registry())
        with path.open("a") as handle:
            handle.write("not json\n")
            handle.write('{"some": "other record"}\n')
        parsed = read_metrics(path)
        assert parsed.skipped == 2
        assert "eats/total" in parsed.metrics

    def test_write_creates_parents(self, tmp_path):
        path = tmp_path / "deep" / "dir" / "m.jsonl"
        write_metrics(path, self._registry())
        assert path.exists()
