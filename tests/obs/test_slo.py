"""Unit tests for the SLO engine: spec validation, budget math, reports,
artefact ingestion, and the live evaluator's agreement with offline."""

import json
from pathlib import Path

import pytest

from repro.net.cluster import read_cluster_events
from repro.obs import (
    LiveSloEvaluator,
    SloObjective,
    SloObservations,
    SloSpec,
    evaluate,
    evaluate_objective,
    format_report,
    ingest_artefact,
    read_slo_report,
    read_slo_spec,
    write_slo_report,
)
from repro.sim import ring

FIXTURES = Path(__file__).parent / "fixtures" / "slo"


def fixture_spec():
    return read_slo_spec(FIXTURES / "spec.json")


class TestSpecValidation:
    def test_fixture_spec_loads(self):
        spec = fixture_spec()
        assert spec.name == "fixture"
        assert [o.name for o in spec.objectives] == [
            "grant-p50", "hunger", "fairness", "chain", "convergence", "safety",
        ]

    def test_committed_example_loads(self):
        spec = read_slo_spec(
            Path(__file__).parents[2] / "examples" / "slo.json"
        )
        assert spec.objective("safety").hard

    def test_threshold_required_except_safety(self):
        with pytest.raises(ValueError):
            SloObjective(name="x", kind="grant_latency")
        SloObjective(name="x", kind="safety")  # fine

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            SloObjective(name="x", kind="latency")

    def test_bad_target_rejected(self):
        for target in (0.0, -0.1, 1.5):
            with pytest.raises(ValueError):
                SloObjective(
                    name="x", kind="grant_latency", threshold=1.0, target=target
                )

    def test_duplicate_objective_names_rejected(self):
        o = SloObjective(name="x", kind="safety")
        with pytest.raises(ValueError):
            SloSpec(name="s", objectives=(o, o))

    def test_spec_needs_objectives(self):
        with pytest.raises(ValueError):
            SloSpec(name="s", objectives=())

    def test_wrong_document_kind_rejected(self):
        with pytest.raises(ValueError):
            SloSpec.from_json({"format": 1, "kind": "slo-report"})

    def test_read_error_names_the_path(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{nope")
        with pytest.raises(ValueError, match="bad.json"):
            read_slo_spec(bad)

    def test_hardness(self):
        assert SloObjective(name="s", kind="safety").hard
        assert SloObjective(name="h", kind="hunger", threshold=1.0).hard
        assert not SloObjective(
            name="p", kind="grant_latency", threshold=1.0, target=0.99
        ).hard
        # Fairness is scalar: never hard, whatever the target says.
        assert not SloObjective(name="f", kind="fairness", threshold=1.0).hard


class TestBudgetMath:
    def _grants(self, waits, spacing=1.0):
        obs = SloObservations(duration_s=len(waits) * spacing)
        for i, wait in enumerate(waits):
            obs.grants.append((i * spacing, "0", wait))
        return obs

    def test_soft_budget_spent_fraction(self):
        # target 0.9 tolerates 10% bad; 2 bad of 10 = double the budget.
        objective = SloObjective(
            name="p", kind="grant_latency", threshold=1.0, target=0.9
        )
        verdict = evaluate_objective(
            objective, self._grants([0.1] * 8 + [5.0, 5.0])
        )
        assert verdict.total == 10 and verdict.bad == 2
        assert verdict.budget_spent == pytest.approx(2.0)
        assert not verdict.ok

    def test_soft_budget_half_spent(self):
        objective = SloObjective(
            name="p", kind="grant_latency", threshold=1.0, target=0.9
        )
        verdict = evaluate_objective(
            objective, self._grants([0.1] * 19 + [5.0])
        )
        assert verdict.budget_spent == pytest.approx(0.5)
        assert verdict.ok
        assert verdict.budget_remaining == pytest.approx(0.5)

    def test_hard_objective_counts_offences(self):
        objective = SloObjective(name="h", kind="hunger", threshold=1.0)
        verdict = evaluate_objective(objective, self._grants([0.5, 2.0, 3.0]))
        assert verdict.hard
        assert verdict.budget_spent == 2.0
        assert not verdict.ok

    def test_empty_observations_spend_nothing(self):
        spec = fixture_spec()
        report = evaluate(spec, SloObservations())
        assert report.ok
        assert all(v.budget_spent == 0.0 for v in report.verdicts)

    def test_safety_zero_budget(self):
        objective = SloObjective(name="s", kind="safety")
        obs = SloObservations(duration_s=2.0)
        obs.violation_times.append(1.0)
        verdict = evaluate_objective(objective, obs)
        assert verdict.budget_spent == 1.0
        assert not verdict.ok
        assert verdict.burn_rate == 1.0

    def test_safety_counts_from_metrics_only_artefacts(self):
        objective = SloObjective(name="s", kind="safety")
        obs = SloObservations(duration_s=2.0)
        obs.violation_count = 3
        verdict = evaluate_objective(objective, obs)
        assert verdict.bad == 3 and verdict.budget_spent == 3.0

    def test_fairness_is_scalar_headroom(self):
        objective = SloObjective(name="f", kind="fairness", threshold=0.5)
        obs = SloObservations(duration_s=4.0)
        # Means 1.0 and 3.0: mean 2.0, stdev 1.0, CV 0.5 == threshold.
        obs.grants.extend([(0.0, "0", 1.0), (1.0, "1", 3.0)])
        verdict = evaluate_objective(objective, obs)
        assert verdict.value == pytest.approx(0.5)
        assert verdict.budget_spent == pytest.approx(1.0)
        assert not verdict.ok

    def test_burn_rate_is_worst_window(self):
        objective = SloObjective(
            name="p", kind="grant_latency", threshold=1.0, target=0.5,
            window_s=1.0,
        )
        obs = SloObservations(duration_s=3.0)
        # Window [0,1): all good.  Window [1,2): all bad -> burn 1/0.5 = 2.
        obs.grants.extend([(0.1, "0", 0.1), (0.2, "0", 0.1)])
        obs.grants.extend([(1.1, "0", 9.0), (1.2, "0", 9.0)])
        verdict = evaluate_objective(objective, obs)
        assert verdict.burn_rate == pytest.approx(2.0)

    def test_convergence_deadline(self):
        objective = SloObjective(name="c", kind="convergence", threshold=2.0)
        obs = SloObservations(duration_s=10.0)
        obs.convergence_s = {"0": 1.0, "1": 3.5}
        verdict = evaluate_objective(objective, obs)
        assert verdict.value == 3.5
        assert verdict.bad == 1
        assert not verdict.ok


class TestReportDocument:
    def _report(self):
        obs = SloObservations()
        ingest_artefact(obs, FIXTURES / "clean.events")
        return evaluate(fixture_spec(), obs)

    def test_write_is_byte_stable(self, tmp_path):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        write_slo_report(a, self._report())
        write_slo_report(b, self._report())
        assert a.read_bytes() == b.read_bytes()

    def test_roundtrip_and_kind_gate(self, tmp_path):
        path = tmp_path / "r.json"
        write_slo_report(path, self._report())
        doc = read_slo_report(path)
        assert doc["kind"] == "slo-report"
        assert doc["spec"] == "fixture"
        assert doc["ok"] is True
        foreign = tmp_path / "foreign.json"
        foreign.write_text('{"kind": "slo-spec"}')
        with pytest.raises(ValueError):
            read_slo_report(foreign)

    def test_no_wallclock_in_document(self, tmp_path):
        path = tmp_path / "r.json"
        write_slo_report(path, self._report())
        text = path.read_text()
        for forbidden in ("timestamp", "hostname", "version", "202"):
            assert forbidden not in text

    def test_format_report_verdict_line(self):
        report = self._report()
        text = format_report(report)
        assert text.splitlines()[-1].startswith("budget: OK")
        obs = SloObservations()
        ingest_artefact(obs, FIXTURES / "violation.events")
        text = format_report(evaluate(fixture_spec(), obs))
        assert text.splitlines()[-1] == "budget: EXHAUSTED — safety"


class TestIngestArtefact:
    def test_clean_fixture_counts(self):
        obs = SloObservations()
        assert ingest_artefact(obs, FIXTURES / "clean.events") == "events"
        assert obs.counts() == {
            "grants": 6, "chain_samples": 24, "convergence": 1, "violations": 0,
        }
        assert obs.duration_s == 4.0

    def test_violation_fixture_exhausts_only_safety(self):
        obs = SloObservations()
        ingest_artefact(obs, FIXTURES / "violation.events")
        report = evaluate(fixture_spec(), obs)
        assert report.exhausted == ["safety"]

    def test_foreign_file_rejected(self, tmp_path):
        junk = tmp_path / "junk.jsonl"
        junk.write_text('{"hello": 1}\n')
        with pytest.raises(ValueError):
            ingest_artefact(SloObservations(), junk)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            ingest_artefact(SloObservations(), tmp_path / "absent.jsonl")


class TestLiveEvaluator:
    def _feed(self, name):
        header, events, skipped = read_cluster_events(FIXTURES / name)
        assert skipped == 0
        live = LiveSloEvaluator(fixture_spec(), ring(3))
        hits = []
        for event in events:
            hits.extend(live.on_event(event))
        live.obs.observe_duration(header["duration_s"])
        return live, hits

    def test_clean_run_stays_within_budget(self):
        live, hits = self._feed("clean.events")
        assert hits == []
        assert live.exhausted == []
        assert live.report().ok

    def test_violation_detected_live_with_implicated_nodes(self):
        live, hits = self._feed("violation.events")
        assert live.exhausted == ["safety"]
        safety = [h for h in hits if h["objective"] == "safety"]
        assert len(safety) == 1
        assert safety[0]["nodes"] == ["0", "1"]

    def test_live_report_matches_offline(self):
        """The acceptance criterion: live and offline verdicts agree."""
        for name in ("clean.events", "violation.events"):
            live, _hits = self._feed(name)
            offline = SloObservations()
            ingest_artefact(offline, FIXTURES / name)
            assert (
                live.report().to_json()
                == evaluate(fixture_spec(), offline).to_json()
            )

    def test_reconcile_safety_adopts_audit_wholesale(self):
        live, _ = self._feed("clean.events")
        live.reconcile_safety([0.5, 1.5])
        assert live.obs.violations == 2
        # The interval audit is authoritative both ways: an empty audit
        # clears live false positives (e.g. a crashed holder counted
        # before the crash was detected).
        live.reconcile_safety([])
        assert live.obs.violations == 0
        assert live.report().ok

    def test_crashed_holder_is_not_a_live_violation(self):
        """A node maliciously crashed mid-hold must not make its
        neighbours' later grants read as exclusion violations."""
        live = LiveSloEvaluator(fixture_spec(), ring(3))
        live.on_event({"t": 0.1, "node": "2", "event": "net-grant"})
        live.on_event({"t": 0.5, "node": "2", "event": "net-crash-detect",
                       "detail": {"expected": True}})
        hits = live.on_event({"t": 1.0, "node": "0", "event": "net-grant"})
        assert hits == []
        assert live.obs.violations == 0
        # Without the crash the same grant is a violation.
        stale = LiveSloEvaluator(fixture_spec(), ring(3))
        stale.on_event({"t": 0.1, "node": "2", "event": "net-grant"})
        hits = stale.on_event({"t": 1.0, "node": "0", "event": "net-grant"})
        assert [h["objective"] for h in hits] == ["safety"]

    def test_samples_export_budget_gauges(self):
        live, _ = self._feed("violation.events")
        samples = {
            (s.name, s.labels["objective"]): s.value for s in live.samples()
        }
        assert samples[("repro_slo_budget_remaining", "safety")] == 0.0
        assert samples[("repro_slo_budget_remaining", "grant-p50")] == 1.0
        assert ("repro_slo_burn_rate", "safety") in samples
