"""Prometheus text exposition and the `repro top` renderer."""

import pytest

from repro.obs.prom import (
    Sample,
    find,
    parse_prometheus,
    render_prometheus,
    sanitize_name,
)
from repro.obs.top import render_top, run_top


def samples():
    return [
        Sample("repro_cluster_uptime_seconds", 2.5,
               help="Seconds since start"),
        Sample("repro_node_up", 1, labels={"node": "0"}),
        Sample("repro_node_up", 0, labels={"node": "1"}),
        Sample("repro_node_grants_total", 7, labels={"node": "0"},
               kind="counter"),
        Sample("repro_edge_retransmits_total", 3,
               labels={"node": "0", "peer": "1"}, kind="counter"),
        Sample("repro_cluster_hunger_latency_seconds", 0.125,
               labels={"q": "0.9"}),
    ]


class TestExposition:
    def test_roundtrip(self):
        text = render_prometheus(samples())
        parsed = parse_prometheus(text)
        assert find(parsed, "repro_node_up", node="0").value == 1
        assert find(parsed, "repro_node_up", node="1").value == 0
        grants = find(parsed, "repro_node_grants_total", node="0")
        assert grants.value == 7
        assert grants.kind == "counter"
        edge = find(parsed, "repro_edge_retransmits_total",
                    node="0", peer="1")
        assert edge.value == 3
        assert find(parsed, "repro_cluster_hunger_latency_seconds",
                    q="0.9").value == pytest.approx(0.125)

    def test_render_is_deterministic_under_permutation(self):
        text = render_prometheus(samples())
        assert render_prometheus(reversed(samples())) == text

    def test_help_and_type_comments(self):
        text = render_prometheus(samples())
        assert "# HELP repro_cluster_uptime_seconds Seconds since start" in text
        assert "# TYPE repro_node_grants_total counter" in text

    def test_integers_render_without_decimal_point(self):
        text = render_prometheus([Sample("x_total", 4.0)])
        assert "x_total 4\n" in text

    def test_label_escaping_roundtrip(self):
        original = Sample("x", 1, labels={"node": 'a"b\\c'})
        parsed = parse_prometheus(render_prometheus([original]))
        assert parsed[0].labels == original.labels

    def test_parse_skips_junk(self):
        parsed = parse_prometheus("# comment\nnot a sample!!\nx 1\nbad nan?\n")
        assert [s.name for s in parsed] == ["x"]

    def test_sanitize_name(self):
        assert sanitize_name("net/codec/roundtrip") == "net_codec_roundtrip"
        assert sanitize_name("0weird") == "_0weird"


class TestLineEndingTolerance:
    """Proxied /metrics bodies arrive mangled: CRLF, trailing blanks, BOM."""

    def test_crlf_document_parses_like_lf(self):
        text = render_prometheus(samples())
        crlf = text.replace("\n", "\r\n")
        assert parse_prometheus(crlf) == parse_prometheus(text)

    def test_crlf_keeps_counter_kind_clean(self):
        # The TYPE comment is the dangerous line: a stray \r glued to the
        # kind token used to record kind="counter\r".
        text = (
            "# TYPE repro_node_grants_total counter\r\n"
            "repro_node_grants_total 7\r\n"
        )
        parsed = parse_prometheus(text)
        assert parsed[0].kind == "counter"
        assert parsed[0].value == 7

    def test_trailing_whitespace_tolerated(self):
        text = "x_total 4   \n# TYPE y counter\t\ny 2\t \n"
        parsed = {s.name: s for s in parse_prometheus(text)}
        assert parsed["x_total"].value == 4
        assert parsed["y"].kind == "counter"

    def test_bom_prefix_tolerated(self):
        text = "\ufeffx 1\n"
        parsed = parse_prometheus(text)
        assert [s.name for s in parsed] == ["x"]
        assert parsed[0].value == 1

    def test_blank_and_whitespace_only_lines_skipped(self):
        parsed = parse_prometheus("\r\n   \r\nx 1\r\n\t\r\n")
        assert [s.name for s in parsed] == ["x"]

    def test_mangled_roundtrip_with_labels(self):
        text = render_prometheus(samples())
        mangled = "\ufeff" + "".join(
            line + "  \r\n" for line in text.splitlines()
        )
        assert parse_prometheus(mangled) == parse_prometheus(text)


class TestTopRenderer:
    def test_snapshot_without_previous(self):
        body = render_top(samples())
        assert "nodes 2" in body
        assert "hunger p90: 0.125s" in body
        assert "0 -> 1: 3" in body

    def test_rates_from_consecutive_sets(self):
        later = [
            Sample("repro_node_up", 1, labels={"node": "0"}),
            Sample("repro_node_grants_total", 12, labels={"node": "0"},
                   kind="counter"),
        ]
        earlier = [
            Sample("repro_node_grants_total", 7, labels={"node": "0"},
                   kind="counter"),
        ]
        body = render_top(later, earlier, interval_s=1.0)
        assert "5.0" in body  # 12 - 7 over one second

    def test_run_top_polls_and_clears(self):
        frames = []
        feeds = iter([
            render_prometheus(samples()),
            render_prometheus(samples()),
        ])

        def fake_fetch(url, **kwargs):
            return next(feeds)

        import repro.obs.top as top_mod
        original = top_mod.fetch_metrics
        top_mod.fetch_metrics = fake_fetch
        try:
            status = run_top("http://x/metrics", iterations=2,
                             out=frames.append, sleep=lambda s: None)
        finally:
            top_mod.fetch_metrics = original
        assert status == 0
        assert len(frames) == 2
        assert not frames[0].startswith("\x1b")
        assert frames[1].startswith("\x1b")

    def test_run_top_first_fetch_failure_raises(self):
        import repro.obs.top as top_mod

        def fail(url, **kwargs):
            raise OSError("nope")

        original = top_mod.fetch_metrics
        top_mod.fetch_metrics = fail
        try:
            with pytest.raises(OSError):
                run_top("http://x/metrics", iterations=1)
        finally:
            top_mod.fetch_metrics = original
