"""Span recorder and span-artefact unit tests."""

import json

import pytest

from repro.obs.tracing import (
    ROOT_SPAN,
    LamportClock,
    SpanRecorder,
    read_spans,
    span_from_json,
    write_spans,
)


class TestLamportClock:
    def test_tick_increments(self):
        clock = LamportClock()
        assert clock.tick() == 1
        assert clock.tick() == 2

    def test_merge_exceeds_both_sides(self):
        clock = LamportClock(3)
        assert clock.merge(10) == 11
        assert clock.merge(2) == 12

    def test_never_negative(self):
        with pytest.raises(ValueError):
            LamportClock(-1)


class TestSpanRecorder:
    def make(self):
        recorder = SpanRecorder("n0")
        clock = LamportClock()
        root = recorder.open(ROOT_SPAN, lc=clock.tick(), t=0.0)
        return recorder, clock, root

    def test_span_ids_are_unique_per_epoch(self):
        recorder, clock, _ = self.make()
        a = recorder.open("acquire", lc=clock.tick(), t=0.1)
        b = recorder.open("acquire", lc=clock.tick(), t=0.2, epoch=1)
        assert a.span_id != b.span_id
        assert a.span_id.startswith("n0/0/")
        assert b.span_id.startswith("n0/1/")

    def test_current_prefers_lifecycle_over_root(self):
        recorder, clock, root = self.make()
        assert recorder.current() is root
        span = recorder.open("acquire", lc=clock.tick(), t=0.1)
        assert recorder.current() is span
        recorder.close(span, lc=clock.tick(), t=0.2)
        assert recorder.current() is root

    def test_close_is_idempotent_and_none_safe(self):
        recorder, clock, _ = self.make()
        span = recorder.open("acquire", lc=clock.tick(), t=0.1)
        recorder.close(span, lc=clock.tick(), t=0.2)
        first = span.close_lc
        recorder.close(span, lc=clock.tick(), t=0.3)
        assert span.close_lc == first
        recorder.close(None, lc=clock.tick(), t=0.4)
        recorder.event(None, "grant", lc=clock.tick(), t=0.4)

    def test_open_span_has_no_duration(self):
        recorder, clock, _ = self.make()
        span = recorder.open("acquire", lc=clock.tick(), t=0.1)
        assert span.duration_s() is None
        recorder.close(span, lc=clock.tick(), t=0.35)
        assert span.duration_s() == pytest.approx(0.25)


class TestSpanArtefact:
    def recorded(self):
        recorder = SpanRecorder("n1")
        clock = LamportClock()
        root = recorder.open(ROOT_SPAN, lc=clock.tick(), t=0.0)
        span = recorder.open(
            "acquire", lc=clock.tick(), t=0.1, parent=root.span_id,
            attrs={"req": "r1"},
        )
        recorder.event(span, "send", lc=clock.tick(), t=0.15,
                       detail={"dst": "2", "seq": 1})
        recorder.event(span, "grant", lc=clock.tick(), t=0.2)
        recorder.close(span, lc=clock.tick(), t=0.3)
        return recorder

    def test_roundtrip(self, tmp_path):
        recorder = self.recorded()
        path = write_spans(tmp_path / "spans-n1.jsonl", recorder,
                           header={"seed": 3})
        loaded = read_spans(path)
        assert loaded.header["source"] == "spans"
        assert loaded.header["seed"] == 3
        assert loaded.skipped == 0
        assert [s.span_id for s in loaded.spans] \
            == [s.span_id for s in recorder.spans]
        span = loaded.spans[1]
        assert span.parent == recorder.spans[0].span_id
        assert span.attrs == {"req": "r1"}
        assert [e.name for e in span.events] == ["send", "grant"]
        # The root span was never closed; that must survive the roundtrip.
        assert loaded.spans[0].close_lc is None

    def test_foreign_and_truncated_lines_counted(self, tmp_path):
        recorder = self.recorded()
        path = write_spans(tmp_path / "spans.jsonl", recorder)
        with path.open("a", encoding="utf-8") as handle:
            handle.write("not json\n")
            handle.write(json.dumps({"kind": "span", "span": 1}) + "\n")
        loaded = read_spans(path)
        assert len(loaded.spans) == 2
        assert loaded.skipped == 2

    def test_span_from_json_rejects_malformed(self):
        assert span_from_json({"kind": "other"}) is None
        assert span_from_json({"kind": "span", "span": "x"}) is None
        assert span_from_json(
            {"kind": "span", "span": "x", "open_lc": 1,
             "events": [{"name": "send"}]}
        ) is None
