"""Unit tests for the typed event bus."""

from repro.obs import EventBus, EventKind, MpEventKind, TraceEvent


def event(step=0, kind=EventKind.ACTION, pid=0, detail="enter"):
    return TraceEvent(step, kind, pid, detail)


class TestSubscribe:
    def test_per_kind_delivery(self):
        bus = EventBus()
        seen = []
        bus.subscribe(EventKind.ACTION, seen.append)
        bus.publish(event(kind=EventKind.ACTION))
        bus.publish(event(kind=EventKind.CRASH, detail=None))
        assert len(seen) == 1
        assert seen[0].kind is EventKind.ACTION

    def test_catch_all_sees_everything(self):
        bus = EventBus()
        seen = []
        bus.subscribe_all(seen.append)
        bus.publish(event(kind=EventKind.ACTION))
        bus.publish(event(kind=EventKind.IDLE, pid=None, detail=None))
        assert [e.kind for e in seen] == [EventKind.ACTION, EventKind.IDLE]

    def test_catch_all_before_per_kind(self):
        bus = EventBus()
        order = []
        bus.subscribe_all(lambda e: order.append("all"))
        bus.subscribe(EventKind.ACTION, lambda e: order.append("kind"))
        bus.publish(event())
        assert order == ["all", "kind"]

    def test_mp_kinds_are_distinct_keys(self):
        bus = EventBus()
        sim, mp = [], []
        bus.subscribe(EventKind.CRASH, sim.append)
        bus.subscribe(MpEventKind.CRASH, mp.append)
        bus.publish(TraceEvent(0, MpEventKind.CRASH, 1, None))
        assert not sim and len(mp) == 1

    def test_subscribe_returns_fn(self):
        bus = EventBus()
        fn = lambda e: None  # noqa: E731
        assert bus.subscribe(EventKind.ACTION, fn) is fn
        assert bus.subscribe_all(fn) is fn


class TestUnsubscribe:
    def test_removes_per_kind(self):
        bus = EventBus()
        seen = []
        bus.subscribe(EventKind.ACTION, seen.append)
        assert bus.unsubscribe(seen.append)
        bus.publish(event())
        assert not seen

    def test_removes_catch_all(self):
        bus = EventBus()
        seen = []
        bus.subscribe_all(seen.append)
        assert bus.unsubscribe(seen.append)
        bus.publish(event())
        assert not seen

    def test_unknown_fn_is_false(self):
        assert not EventBus().unsubscribe(lambda e: None)


class TestActive:
    def test_fresh_bus_inactive(self):
        assert not EventBus().active

    def test_active_after_subscribe(self):
        bus = EventBus()
        bus.subscribe(EventKind.ACTION, lambda e: None)
        assert bus.active

    def test_inactive_after_unsubscribe(self):
        bus = EventBus()
        fn = lambda e: None  # noqa: E731
        bus.subscribe_all(fn)
        bus.unsubscribe(fn)
        assert not bus.active

    def test_publish_without_subscribers_is_noop(self):
        EventBus().publish(event())  # must not raise
