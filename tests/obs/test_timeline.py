"""Timeline merge, causality checking, and latency attribution."""

import pytest

from repro.obs.tracing import LamportClock, SpanRecorder
from repro.obs.timeline import (
    attribute_grants,
    attribution_by_node,
    causality_report,
    merge_timeline,
    read_timeline,
    write_timeline,
)
from repro.sim import line


def two_node_trace():
    """A send on n0 matched by a recv on n1, clocks merged properly."""
    spans = {}
    a_clock, b_clock = LamportClock(), LamportClock()
    a = SpanRecorder("0")
    span_a = a.open("acquire", lc=a_clock.tick(), t=0.0)
    send_lc = a_clock.tick()
    a.event(span_a, "send", lc=send_lc, t=0.01, detail={"dst": "1", "seq": 4})
    b = SpanRecorder("1")
    span_b = b.open("node", lc=b_clock.tick(), t=0.0)
    b.event(span_b, "recv", lc=b_clock.merge(send_lc), t=0.02,
            detail={"src": "0", "seq": 4})
    a.event(span_a, "grant", lc=a_clock.tick(), t=0.05)
    a.close(span_a, lc=a_clock.tick(), t=0.06)
    spans["0"] = a.spans
    spans["1"] = b.spans
    return spans


class TestMerge:
    def test_order_is_happened_before_consistent(self):
        entries = merge_timeline(two_node_trace())
        lcs = [e.lc for e in entries]
        assert lcs == sorted(lcs)
        # The matched recv sorts after its send.
        send = next(e for e in entries if e.ev == "send")
        recv = next(e for e in entries if e.ev == "recv")
        assert entries.index(recv) > entries.index(send)
        assert recv.lc > send.lc

    def test_permutation_of_nodes_is_invariant(self):
        spans = two_node_trace()
        reversed_spans = dict(reversed(list(spans.items())))
        assert merge_timeline(spans) == merge_timeline(reversed_spans)

    def test_empty(self):
        assert merge_timeline({}) == []


class TestCausality:
    def test_consistent_trace_is_ok(self):
        report = causality_report(merge_timeline(two_node_trace()))
        assert report.ok
        assert report.acyclic
        assert report.matched_messages == 1
        assert report.violations == []

    def test_unmerged_receiver_clock_is_flagged(self):
        spans = two_node_trace()
        # Forge the receiver's stamp below the sender's: a message
        # inversion, as a byzantine node refusing to merge would produce.
        recv = spans["1"][0].events[0]
        recv.lc = 1
        report = causality_report(merge_timeline(spans))
        assert not report.ok
        assert any("inversion" in v for v in report.violations)

    def test_program_order_inversion_is_flagged(self):
        spans = two_node_trace()
        spans["0"][0].events[1].lc = spans["0"][0].open_lc
        report = causality_report(merge_timeline(spans))
        assert not report.ok
        assert any("program-order" in v for v in report.violations)

    def test_unmatched_recv_is_ignored(self):
        spans = two_node_trace()
        del spans["0"]  # the sender's log is gone entirely
        report = causality_report(merge_timeline(spans))
        assert report.ok
        assert report.matched_messages == 0


class TestAttribution:
    def test_buckets_sum_to_total(self):
        spans = {}
        clock = LamportClock()
        rec = SpanRecorder("0")
        span = rec.open("acquire", lc=clock.tick(), t=1.0)
        rec.event(span, "send", lc=clock.tick(), t=1.2,
                  detail={"dst": "1", "seq": 1})
        rec.event(span, "retransmit", lc=clock.tick(), t=1.5,
                  detail={"dst": "1", "seq": 1})
        rec.event(span, "grant", lc=clock.tick(), t=1.6)
        rec.close(span, lc=clock.tick(), t=1.7)
        spans["0"] = rec.spans
        (attribution,) = attribute_grants(spans)
        assert attribution.total_s == pytest.approx(0.6)
        assert attribution.queue_s == pytest.approx(0.2)
        assert attribution.retransmit_s == pytest.approx(0.3)
        assert attribution.transfer_s == pytest.approx(0.1)
        assert attribution.retransmits == 1
        total = (attribution.queue_s + attribution.retransmit_s
                 + attribution.transfer_s)
        assert total == pytest.approx(attribution.total_s)

    def test_ungranted_span_is_skipped(self):
        clock = LamportClock()
        rec = SpanRecorder("0")
        rec.open("acquire", lc=clock.tick(), t=1.0)
        assert attribute_grants({"0": rec.spans}) == []

    def test_by_node_totals(self):
        spans = two_node_trace()
        totals = attribution_by_node(attribute_grants(spans))
        assert set(totals) == {"0"}
        assert totals["0"]["grants"] == 1


class TestReconstructViolations:
    def test_overlap_walks_back_to_spans(self):
        from repro.obs.timeline import reconstruct_violations

        clock = LamportClock()
        rec = SpanRecorder("0")
        span = rec.open("acquire", lc=clock.tick(), t=0.5)
        rec.close(span, lc=clock.tick(), t=2.0)
        events = [
            {"t": 1.0, "event": "net-grant", "node": "0"},
            {"t": 1.2, "event": "net-grant", "node": "1"},
            {"t": 1.8, "event": "net-release", "node": "0"},
            {"t": 1.9, "event": "net-release", "node": "1"},
        ]
        out = reconstruct_violations(
            line(2), events, {"0": rec.spans}, end_t=3.0, byzantine=["1"],
        )
        assert len(out) == 1
        row = out[0]
        assert {row["node_a"], row["node_b"]} == {"0", "1"}
        assert row["byzantine"] == ["1"]
        assert row["spans"]["0"] == [span.span_id]
        assert row["spans"]["1"] == []


class TestTimelineArtefact:
    def test_roundtrip_and_byte_stability(self, tmp_path):
        entries = merge_timeline(two_node_trace())
        one = write_timeline(tmp_path / "one.jsonl", entries,
                             header={"causality_ok": True})
        two = write_timeline(tmp_path / "two.jsonl", entries,
                             header={"causality_ok": True})
        assert one.read_bytes() == two.read_bytes()
        loaded = read_timeline(one)
        assert loaded.header["source"] == "timeline"
        assert loaded.header["causality_ok"] is True
        assert loaded.entries == entries
        assert loaded.skipped == 0

    def test_lenient_read(self, tmp_path):
        path = tmp_path / "timeline.jsonl"
        entries = merge_timeline(two_node_trace())
        write_timeline(path, entries)
        with path.open("a", encoding="utf-8") as handle:
            handle.write("garbage\n")
        loaded = read_timeline(path)
        assert len(loaded.entries) == len(entries)
        assert loaded.skipped == 1
