"""Unit tests for the paper-grounded probes."""

from repro.core import NADiners
from repro.core.state import VAR_DEPTH, VAR_STATE, DinerState
from repro.obs import (
    DepthProbe,
    EatingPairsProbe,
    EatsProbe,
    EventBus,
    EventKind,
    InvariantProbe,
    LocalityProbe,
    MetricsRegistry,
    StepTimerProbe,
    WaitingChainProbe,
    standard_probes,
    waiting_chain_length,
)
from repro.sim import BenignCrash, System, TraceEvent, edge, line, ring

from ..conftest import make_engine


def action(step, pid, name, payload=None):
    return TraceEvent(step, EventKind.ACTION, pid, name, payload)


class TestEatsProbe:
    def test_counts_enter_only(self):
        probe = EatsProbe()
        probe.on_event(action(0, 0, "enter"))
        probe.on_event(action(1, 0, "exit"))
        probe.on_event(action(2, 1, "enter"))
        assert probe.eats == {0: 1, 1: 1}
        assert probe.total == 2

    def test_custom_enter_action(self):
        probe = EatsProbe("grab")
        probe.on_event(action(0, 0, "enter"))
        probe.on_event(action(1, 0, "grab"))
        assert probe.total == 1

    def test_publish(self):
        probe = EatsProbe()
        probe.on_event(action(0, 3, "enter"))
        reg = MetricsRegistry()
        probe.publish(reg)
        assert reg["eats/total"].payload() == {"value": 1}
        assert reg["eats/3"].payload() == {"value": 1}


class TestDepthProbe:
    def test_deep_exit_from_payload(self):
        probe = DepthProbe(threshold=2)
        probe.on_event(action(5, 0, "exit", payload={VAR_DEPTH: 5}))
        probe.on_event(action(6, 0, "exit", payload={VAR_DEPTH: 1}))
        probe.on_event(action(7, 0, "exit"))  # payload-free replica: ignored
        assert probe.deep_exits == 1

    def test_histogram_from_samples(self):
        system = System(line(3), NADiners())
        system.write_local(0, VAR_DEPTH, 4)
        probe = DepthProbe(threshold=2)
        probe.on_sample(0, system.snapshot())
        assert probe.max_depth == 4
        assert sum(probe.histogram.values()) == 3

    def test_faulty_processes_excluded(self):
        system = System(line(3), NADiners())
        system.write_local(0, VAR_DEPTH, 9)
        system.kill(0)
        probe = DepthProbe(threshold=2)
        probe.on_sample(0, system.snapshot())
        assert probe.max_depth < 9


class TestInvariantProbe:
    def test_clean_state_distance_zero(self):
        probe = InvariantProbe()
        probe.on_sample(0, System(line(4), NADiners()).snapshot())
        assert probe.distance(probe.timeline[0]) == 0
        assert probe.final == {"NC": True, "ST": True, "E": True}
        assert probe.first_legitimate_step() == 0

    def test_cycle_violates_nc(self):
        system = System(ring(4), NADiners())
        for i in range(4):
            system.write_edge(edge(i, (i + 1) % 4), i)
        probe = InvariantProbe()
        probe.on_sample(7, system.snapshot())
        _, nc, _, _ = probe.timeline[0]
        assert not nc
        assert probe.first_legitimate_step() is None

    def test_publish_series(self):
        probe = InvariantProbe()
        probe.on_sample(0, System(line(3), NADiners()).snapshot())
        reg = MetricsRegistry()
        probe.publish(reg)
        assert reg["invariant/distance"].payload()["points"] == [[0, 0]]
        assert reg["invariant/samples"].payload() == {"value": 1}


class TestWaitingChain:
    def test_no_hungry_no_chain(self):
        assert waiting_chain_length(System(line(4), NADiners()).snapshot()) == 0

    def test_chain_of_waiting_hungry(self):
        system = System(line(3), NADiners())
        hungry = DinerState.HUNGRY.value
        for pid in range(3):
            system.write_local(pid, VAR_STATE, hungry)
        # initial orientation points low→high: 0 is 1's ancestor, 1 is 2's.
        assert waiting_chain_length(system.snapshot()) == 3

    def test_hungry_cycle_capped_at_node_count(self):
        system = System(ring(4), NADiners())
        hungry = DinerState.HUNGRY.value
        for i in range(4):
            system.write_local(i, VAR_STATE, hungry)
            system.write_edge(edge(i, (i + 1) % 4), i)
        assert waiting_chain_length(system.snapshot()) == 4

    def test_probe_tracks_max(self):
        probe = WaitingChainProbe()
        probe.on_sample(0, System(line(4), NADiners()).snapshot())
        assert probe.max_length == 0


class TestEatingPairsProbe:
    def test_exclusive_run_never_pairs(self):
        probe = EatingPairsProbe()
        engine = make_engine(System(ring(6), NADiners()), seed=3)
        for step in range(500):
            engine.step()
            if step % 50 == 0:
                probe.on_sample(step, engine.system.snapshot())
        assert probe.max_pairs == 0
        assert all(count == 0 for _, count in probe.timeline)


class TestLocalityProbe:
    def _probe_after_crash(self):
        probe = LocalityProbe()
        probe.on_event(TraceEvent(10, EventKind.CRASH, 0, "benign"))
        probe.on_event(action(11, 3, "enter"))
        system = System(line(4), NADiners())
        system.kill(0)
        probe.on_sample(12, system.snapshot())
        return probe

    def test_radius_is_farthest_starving_distance(self):
        # live non-eaters {1, 2}; the farthest is 2 hops from the site.
        assert self._probe_after_crash().observed_radius() == 2

    def test_no_crash_no_radius(self):
        assert LocalityProbe().observed_radius() is None

    def test_duplicate_crash_events_coalesce(self):
        probe = self._probe_after_crash()
        probe.on_event(TraceEvent(13, EventKind.MALICE_BEGIN, 0, 5))
        assert len(probe.crashes) == 1

    def test_publish_silent_without_crash(self):
        reg = MetricsRegistry()
        LocalityProbe().publish(reg)
        assert "locality/crashes" not in reg


class TestStepTimerProbe:
    def test_attributes_time_between_events(self):
        clock = iter([0.0, 1.0, 3.0])
        probe = StepTimerProbe(clock=lambda: next(clock))
        probe.on_event(action(0, 0, "join"))
        probe.on_event(action(1, 0, "enter"))
        probe.on_event(action(2, 0, "exit"))
        assert probe.per_label == {"enter": [1.0], "exit": [2.0]}
        reg = MetricsRegistry()
        probe.publish(reg)
        assert reg["step_time/enter"].meta

    def test_metrics_are_meta(self):
        probe = StepTimerProbe()
        reg = MetricsRegistry()
        probe.publish(reg)
        assert "rate/events_per_sec" not in reg.snapshot(include_meta=False)


class TestStandardProbes:
    def test_full_set_with_depth(self):
        probes = standard_probes(threshold=3)
        kinds = {type(p) for p in probes}
        assert kinds == {
            EatsProbe,
            DepthProbe,
            EatingPairsProbe,
            LocalityProbe,
            WaitingChainProbe,
            InvariantProbe,
        }

    def test_depthless_algorithms_drop_priority_probes(self):
        kinds = {type(p) for p in standard_probes(threshold=3, has_depth=False)}
        assert kinds == {EatsProbe, EatingPairsProbe, LocalityProbe}


class TestLiveWiring:
    """Probes attached to a real engine's bus see the real stream."""

    def test_bus_driven_run(self):
        bus = EventBus()
        eats = EatsProbe().attach(bus)
        locality = LocalityProbe().attach(bus)
        engine = make_engine(System(ring(6), NADiners()), seed=1, bus=bus)
        engine.run(800)
        assert eats.total == engine.total_eats() > 0

        engine.inject(BenignCrash(pid=0))
        engine.run(800)
        locality.on_sample(engine.step_count, engine.system.snapshot())
        assert locality.crashes and locality.crashes[0][1] == 0
        assert locality.observed_radius() is not None

    def test_engine_without_bus_pays_nothing(self):
        engine = make_engine(System(ring(6), NADiners()), seed=1)
        assert not engine.observed
        engine.run(100)  # no recorder, no bus: no payload capture
