"""Tests for checkpoint planning (resume after partial campaigns)."""

import pytest

from repro.campaign import (
    Shard,
    execute_shard,
    plan_resume,
    truncate_lines,
    write_records,
)


def sim_shards(n=4, steps=60):
    return [
        Shard(
            "sim",
            {"topology": "ring:4", "algorithm": "na-diners", "steps": steps, "trial": t},
            seed=100 + t,
        )
        for t in range(n)
    ]


class TestPlanResume:
    def test_no_file_plans_everything(self):
        shards = sim_shards()
        plan = plan_resume(shards, None)
        assert plan.done == {}
        assert len(plan.todo) == len(shards)
        assert not plan.complete

    def test_missing_file_plans_everything(self, tmp_path):
        plan = plan_resume(sim_shards(), tmp_path / "nope.jsonl")
        assert len(plan.todo) == 4

    def test_recorded_shards_are_skipped(self, tmp_path):
        shards = sim_shards()
        done = [execute_shard(s) for s in shards[:2]]
        path = tmp_path / "c.jsonl"
        write_records(path, done)
        plan = plan_resume(shards, path)
        assert set(plan.done) == {s.key for s in shards[:2]}
        assert [s.key for s in plan.todo] == [s.key for s in shards[2:]]

    def test_foreign_records_counted_not_adopted(self, tmp_path):
        shards = sim_shards()
        foreign = execute_shard(
            Shard("sim", {"topology": "ring:5", "algorithm": "na-diners",
                          "steps": 60, "trial": 0}, seed=1)
        )
        path = tmp_path / "c.jsonl"
        write_records(path, [foreign])
        plan = plan_resume(shards, path)
        assert plan.foreign == 1
        assert plan.done == {}
        assert len(plan.todo) == 4

    def test_duplicate_shards_rejected(self):
        shard = sim_shards(1)[0]
        with pytest.raises(ValueError, match="duplicate shard key"):
            plan_resume([shard, shard], None)

    def test_complete_plan(self, tmp_path):
        shards = sim_shards(2)
        path = tmp_path / "c.jsonl"
        write_records(path, [execute_shard(s) for s in shards])
        assert plan_resume(shards, path).complete


class TestTruncateLines:
    def test_keeps_prefix_returns_dropped(self, tmp_path):
        path = tmp_path / "f.jsonl"
        path.write_text("a\nb\nc\n")
        dropped = truncate_lines(path, 1)
        assert path.read_text() == "a\n"
        assert dropped == ["b", "c"]
