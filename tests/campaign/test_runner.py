"""Tests for the campaign runner: execution, streaming, resume, pools."""

import json

import pytest

from repro.campaign import (
    Shard,
    SweepSpec,
    aggregate_sim,
    parallel_map,
    read_records,
    run_shards,
    truncate_lines,
)


def sweep(trials=4, steps=80, seed=7, topology="ring:4"):
    return SweepSpec(topologies=(topology,), trials=trials, steps=steps, seed=seed)


class TestRunShards:
    def test_sequential_executes_everything(self):
        shards = sweep().shards()
        result = run_shards(shards, jobs=1)
        assert result.executed == len(shards)
        assert result.resumed == 0
        assert set(result.records) == {s.key for s in shards}
        for record in result.records.values():
            assert record.result["steps"] == 80
            assert record.meta is not None and "worker" in record.meta

    def test_parallel_matches_sequential(self):
        shards = sweep().shards()
        seq = run_shards(shards, jobs=1)
        par = run_shards(shards, jobs=3)
        assert seq.results_by_key() == par.results_by_key()

    def test_streams_jsonl(self, tmp_path):
        path = tmp_path / "out.jsonl"
        shards = sweep(trials=3).shards()
        run_shards(shards, jobs=1, out_path=path)
        lines = path.read_text().splitlines()
        assert len(lines) == 3
        keys = [json.loads(line)["key"] for line in lines]
        assert keys == sorted(keys)  # finalized in canonical order

    def test_bad_jobs_rejected(self):
        with pytest.raises(ValueError):
            run_shards([], jobs=0)

    def test_unknown_kind_raises(self):
        with pytest.raises(KeyError, match="unknown shard kind"):
            run_shards([Shard("nonsense", {}, 0)], jobs=1)


class TestResume:
    def test_kill_then_resume_equals_fresh_run(self, tmp_path):
        """The acceptance scenario: truncate the JSONL mid-campaign (even
        mid-line) and re-run; the merged results equal an uninterrupted run."""
        shards = sweep(trials=6, steps=100).shards()
        fresh_path = tmp_path / "fresh.jsonl"
        fresh = run_shards(shards, jobs=1, out_path=fresh_path)

        killed_path = tmp_path / "killed.jsonl"
        run_shards(shards, jobs=1, out_path=killed_path)
        truncate_lines(killed_path, 3)
        # simulate a kill mid-write: append half a record line
        with killed_path.open("a") as handle:
            handle.write(fresh_path.read_text().splitlines()[3][:40])

        resumed = run_shards(shards, jobs=2, out_path=killed_path)
        assert resumed.resumed == 3
        assert resumed.executed == 3
        assert resumed.results_by_key() == fresh.results_by_key()
        assert aggregate_sim(resumed.records) == aggregate_sim(fresh.records)

    def test_complete_file_executes_nothing(self, tmp_path):
        shards = sweep(trials=3).shards()
        path = tmp_path / "out.jsonl"
        run_shards(shards, jobs=1, out_path=path)
        again = run_shards(shards, jobs=1, out_path=path)
        assert again.executed == 0
        assert again.resumed == 3

    def test_fresh_ignores_checkpoint(self, tmp_path):
        shards = sweep(trials=3).shards()
        path = tmp_path / "out.jsonl"
        run_shards(shards, jobs=1, out_path=path)
        again = run_shards(shards, jobs=1, out_path=path, resume=False)
        assert again.executed == 3
        assert again.resumed == 0

    def test_finalize_drops_foreign_records(self, tmp_path):
        path = tmp_path / "out.jsonl"
        run_shards(sweep(trials=2, seed=1).shards(), jobs=1, out_path=path)
        result = run_shards(sweep(trials=2, seed=2).shards(), jobs=1, out_path=path)
        assert result.foreign == 2
        keys = {r.key for r in read_records(path)}
        assert keys == set(result.records)


class TestParallelMap:
    def test_sequential_and_parallel_agree(self):
        from repro.campaign.shard import build_graph_shard

        params = {"topology": "line:2", "threshold": 1}
        args = [(params, i, 2) for i in range(2)]
        seq = parallel_map(build_graph_shard, args, jobs=1)
        par = parallel_map(build_graph_shard, args, jobs=2)
        merged_seq = {}
        for fragment in seq:
            merged_seq.update(fragment)
        merged_par = {}
        for fragment in par:
            merged_par.update(fragment)
        assert merged_seq.keys() == merged_par.keys()
        assert len(merged_seq) > 0

    def test_rejects_bad_jobs(self):
        with pytest.raises(ValueError):
            parallel_map(len, [], jobs=0)


class TestHeartbeatProgress:
    def _run(self, every, total, times):
        import io

        from repro.campaign import heartbeat_progress

        clock = iter(times)
        out = io.StringIO()
        progress = heartbeat_progress(
            every, stream=out, clock=lambda: next(clock)
        )
        from repro.campaign import TrialRecord

        rec = TrialRecord(key="k", kind="sim", params={}, seed=0, result={})
        for done in range(1, total + 1):
            progress(rec, done, total)
        return out.getvalue().splitlines()

    def test_one_line_per_interval_plus_final(self):
        lines = self._run(every=2, total=5, times=[float(i) for i in range(10)])
        # completions 2, 4 hit the interval; 5 is the final shard.
        assert len(lines) == 3
        assert lines[0].startswith("[2/5]")
        assert lines[-1].startswith("[5/5]")

    def test_line_carries_rate_and_eta(self):
        lines = self._run(every=2, total=4, times=[0.0, 0.0, 1.0, 1.0, 2.0])
        assert "elapsed" in lines[0] and "eta" in lines[0]

    def test_bad_interval_rejected(self):
        from repro.campaign import heartbeat_progress

        with pytest.raises(ValueError):
            heartbeat_progress(0)


class TestCampaignMetrics:
    def test_aggregates_from_records(self):
        from repro.campaign import campaign_metrics

        result = run_shards(sweep(trials=3).shards())
        registry = campaign_metrics(result.records)
        snap = registry.snapshot(include_meta=True)
        assert snap["campaign/shards"]["value"] == 3
        assert snap["campaign/kind/sim"]["value"] == 3
        assert snap["campaign/total_eats"]["count"] == 3
        # sequential in-process shards still record wall time
        assert snap["campaign/shard_duration"]["count"] == 3

    def test_duration_timer_is_meta(self):
        from repro.campaign import campaign_metrics

        result = run_shards(sweep(trials=2).shards())
        registry = campaign_metrics(result.records)
        assert "campaign/shard_duration" not in registry.snapshot(
            include_meta=False
        )

    def test_merges_into_existing_registry(self):
        from repro.campaign import campaign_metrics
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        registry.gauge("suite/x").set(1)
        result = run_shards(sweep(trials=2).shards())
        merged = campaign_metrics(result.records, registry)
        assert merged is registry
        assert "suite/x" in registry and "campaign/shards" in registry

    def test_deterministic_over_record_order(self):
        from repro.campaign import campaign_metrics

        result = run_shards(sweep(trials=3).shards())
        a = campaign_metrics(result.records).snapshot(include_meta=False)
        reversed_records = dict(reversed(list(result.records.items())))
        b = campaign_metrics(reversed_records).snapshot(include_meta=False)
        assert a == b


class TestShardDuration:
    def test_execute_shard_stamps_duration(self):
        from repro.campaign import execute_shard

        shard = sweep(trials=1).shards()[0]
        record = execute_shard(shard)
        assert record.duration_s is not None and record.duration_s >= 0

    def test_duration_survives_jsonl_stream(self, tmp_path):
        path = tmp_path / "records.jsonl"
        run_shards(sweep(trials=2).shards(), out_path=path)
        records = read_records(path)
        assert records and all(r.duration_s is not None for r in records)

    def test_no_meta_strips_duration(self, tmp_path):
        path = tmp_path / "records.jsonl"
        run_shards(sweep(trials=2).shards(), out_path=path, include_meta=False)
        records = read_records(path)
        assert records and all(r.duration_s is None for r in records)
