"""Tests for the campaign runner: execution, streaming, resume, pools."""

import json

import pytest

from repro.campaign import (
    Shard,
    SweepSpec,
    aggregate_sim,
    parallel_map,
    read_records,
    run_shards,
    truncate_lines,
)


def sweep(trials=4, steps=80, seed=7, topology="ring:4"):
    return SweepSpec(topologies=(topology,), trials=trials, steps=steps, seed=seed)


class TestRunShards:
    def test_sequential_executes_everything(self):
        shards = sweep().shards()
        result = run_shards(shards, jobs=1)
        assert result.executed == len(shards)
        assert result.resumed == 0
        assert set(result.records) == {s.key for s in shards}
        for record in result.records.values():
            assert record.result["steps"] == 80
            assert record.meta is not None and "worker" in record.meta

    def test_parallel_matches_sequential(self):
        shards = sweep().shards()
        seq = run_shards(shards, jobs=1)
        par = run_shards(shards, jobs=3)
        assert seq.results_by_key() == par.results_by_key()

    def test_streams_jsonl(self, tmp_path):
        path = tmp_path / "out.jsonl"
        shards = sweep(trials=3).shards()
        run_shards(shards, jobs=1, out_path=path)
        lines = path.read_text().splitlines()
        assert len(lines) == 3
        keys = [json.loads(line)["key"] for line in lines]
        assert keys == sorted(keys)  # finalized in canonical order

    def test_bad_jobs_rejected(self):
        with pytest.raises(ValueError):
            run_shards([], jobs=0)

    def test_unknown_kind_raises(self):
        with pytest.raises(KeyError, match="unknown shard kind"):
            run_shards([Shard("nonsense", {}, 0)], jobs=1)


class TestResume:
    def test_kill_then_resume_equals_fresh_run(self, tmp_path):
        """The acceptance scenario: truncate the JSONL mid-campaign (even
        mid-line) and re-run; the merged results equal an uninterrupted run."""
        shards = sweep(trials=6, steps=100).shards()
        fresh_path = tmp_path / "fresh.jsonl"
        fresh = run_shards(shards, jobs=1, out_path=fresh_path)

        killed_path = tmp_path / "killed.jsonl"
        run_shards(shards, jobs=1, out_path=killed_path)
        truncate_lines(killed_path, 3)
        # simulate a kill mid-write: append half a record line
        with killed_path.open("a") as handle:
            handle.write(fresh_path.read_text().splitlines()[3][:40])

        resumed = run_shards(shards, jobs=2, out_path=killed_path)
        assert resumed.resumed == 3
        assert resumed.executed == 3
        assert resumed.results_by_key() == fresh.results_by_key()
        assert aggregate_sim(resumed.records) == aggregate_sim(fresh.records)

    def test_complete_file_executes_nothing(self, tmp_path):
        shards = sweep(trials=3).shards()
        path = tmp_path / "out.jsonl"
        run_shards(shards, jobs=1, out_path=path)
        again = run_shards(shards, jobs=1, out_path=path)
        assert again.executed == 0
        assert again.resumed == 3

    def test_fresh_ignores_checkpoint(self, tmp_path):
        shards = sweep(trials=3).shards()
        path = tmp_path / "out.jsonl"
        run_shards(shards, jobs=1, out_path=path)
        again = run_shards(shards, jobs=1, out_path=path, resume=False)
        assert again.executed == 3
        assert again.resumed == 0

    def test_finalize_drops_foreign_records(self, tmp_path):
        path = tmp_path / "out.jsonl"
        run_shards(sweep(trials=2, seed=1).shards(), jobs=1, out_path=path)
        result = run_shards(sweep(trials=2, seed=2).shards(), jobs=1, out_path=path)
        assert result.foreign == 2
        keys = {r.key for r in read_records(path)}
        assert keys == set(result.records)


class TestParallelMap:
    def test_sequential_and_parallel_agree(self):
        from repro.campaign.shard import build_graph_shard

        params = {"topology": "line:2", "threshold": 1}
        args = [(params, i, 2) for i in range(2)]
        seq = parallel_map(build_graph_shard, args, jobs=1)
        par = parallel_map(build_graph_shard, args, jobs=2)
        merged_seq = {}
        for fragment in seq:
            merged_seq.update(fragment)
        merged_par = {}
        for fragment in par:
            merged_par.update(fragment)
        assert merged_seq.keys() == merged_par.keys()
        assert len(merged_seq) > 0

    def test_rejects_bad_jobs(self):
        with pytest.raises(ValueError):
            parallel_map(len, [], jobs=0)
