"""Determinism regression tests.

Same seed ⇒ byte-identical canonical campaign records and identical
``run_suite`` section numbers; different seeds ⇒ differing traces.  The
canonical record form excludes the meta part (worker pid, duration), which
is environmental by design — see :mod:`repro.campaign.record`.
"""

from repro.analysis import SuiteConfig, run_suite
from repro.campaign import SweepSpec, aggregate_sim, execute_shard, run_shards


def sweep(seed=11, trials=3, steps=120):
    return SweepSpec(topologies=("ring:4",), trials=trials, steps=steps, seed=seed)


TINY_SUITE = dict(quick=True, seed=5, line_n=5, window=1200, trials=2, max_steps=200_000)


class TestSameSeedIdentical:
    def test_records_byte_identical_across_runs(self, tmp_path):
        paths = [tmp_path / "a.jsonl", tmp_path / "b.jsonl"]
        for path in paths:
            run_shards(sweep().shards(), jobs=1, out_path=path, include_meta=False)
        assert paths[0].read_bytes() == paths[1].read_bytes()

    def test_records_byte_identical_across_jobs(self, tmp_path):
        paths = [tmp_path / "a.jsonl", tmp_path / "b.jsonl"]
        run_shards(sweep().shards(), jobs=1, out_path=paths[0], include_meta=False)
        run_shards(sweep().shards(), jobs=2, out_path=paths[1], include_meta=False)
        assert paths[0].read_bytes() == paths[1].read_bytes()

    def test_shard_execution_is_a_pure_function(self):
        shard = sweep().shards()[0]
        assert execute_shard(shard).result == execute_shard(shard).result

    def test_suite_sections_identical(self):
        config = SuiteConfig(**TINY_SUITE)
        first = run_suite(config, jobs=1)
        second = run_suite(config, jobs=2)
        for a, b in zip(first.sections, second.sections):
            assert a.title == b.title
            assert a.rows == b.rows

    def test_aggregates_identical(self):
        a = aggregate_sim(run_shards(sweep().shards(), jobs=1).records)
        b = aggregate_sim(run_shards(sweep().shards(), jobs=2).records)
        assert a == b


class TestDifferentSeedsDiffer:
    def test_traces_differ(self):
        """Different campaign seeds must change the per-process meal traces
        (the strongest observable of the scheduling trace)."""
        a = run_shards(sweep(seed=1).shards(), jobs=1)
        b = run_shards(sweep(seed=2).shards(), jobs=1)
        eats_a = sorted(tuple(r.result["eats"]) for r in a.records.values())
        eats_b = sorted(tuple(r.result["eats"]) for r in b.records.values())
        assert eats_a != eats_b

    def test_keys_differ(self):
        keys_a = {s.key for s in sweep(seed=1).shards()}
        keys_b = {s.key for s in sweep(seed=2).shards()}
        assert keys_a.isdisjoint(keys_b)

    def test_suite_seed_changes_stabilization_numbers(self):
        base = dict(TINY_SUITE)
        rows = []
        for seed in (5, 6):
            base["seed"] = seed
            result = run_suite(SuiteConfig(**base), jobs=1)
            rows.append(result.sections[1].rows)  # stabilization section
        # convergence step counts from different random corruptions differ
        # (same shape, different numbers — compare the full tuples)
        assert rows[0] != rows[1]
