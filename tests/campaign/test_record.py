"""Tests for campaign trial records and their JSONL encoding."""

import json

from repro.campaign import (
    TrialRecord,
    canonical_json,
    iter_lines,
    parse_line,
    read_records,
    shard_key,
    write_records,
)


def record(key="k1", seed=3, **result):
    return TrialRecord(
        key=key,
        kind="sim",
        params={"topology": "ring:4", "algorithm": "na-diners", "steps": 100},
        seed=seed,
        result=result or {"total_eats": 7},
        meta={"worker": 42, "duration_s": 0.5},
    )


class TestShardKey:
    def test_stable_across_dict_order(self):
        a = shard_key("sim", {"a": 1, "b": 2}, 0)
        b = shard_key("sim", {"b": 2, "a": 1}, 0)
        assert a == b

    def test_sensitive_to_every_component(self):
        base = shard_key("sim", {"a": 1}, 0)
        assert shard_key("sim", {"a": 2}, 0) != base
        assert shard_key("sim", {"a": 1}, 1) != base
        assert shard_key("check-closure", {"a": 1}, 0) != base


class TestLineRoundTrip:
    def test_round_trip_preserves_canonical_part(self):
        r = record()
        parsed = parse_line(r.to_line())
        assert parsed == r  # meta excluded from equality
        assert parsed.result == r.result
        assert parsed.meta == r.meta

    def test_canonical_line_has_no_meta(self):
        line = record().canonical_line()
        assert "meta" not in json.loads(line)

    def test_canonical_json_is_sorted_and_compact(self):
        text = canonical_json({"b": 1, "a": [1, 2]})
        assert text == '{"a":[1,2],"b":1}'

    def test_parse_rejects_garbage(self):
        assert parse_line("") is None
        assert parse_line('{"truncated": ') is None
        assert parse_line('{"format": 99, "key": "x"}') is None
        assert parse_line("[1, 2, 3]") is None


class TestFiles:
    def test_read_missing_file_is_empty(self, tmp_path):
        assert read_records(tmp_path / "nope.jsonl") == []

    def test_write_then_read(self, tmp_path):
        records = {r.key: r for r in (record("b"), record("a"))}
        path = tmp_path / "out.jsonl"
        write_records(path, records)
        back = read_records(path)
        assert [r.key for r in back] == ["a", "b"]  # canonical key order

    def test_truncated_final_line_is_skipped(self, tmp_path):
        path = tmp_path / "out.jsonl"
        full = record("aaa").to_line()
        path.write_text(full + "\n" + record("bbb").to_line()[:30])
        back = read_records(path)
        assert [r.key for r in back] == ["aaa"]

    def test_iter_lines_meta_toggle(self):
        lines = list(iter_lines([record()], include_meta=False))
        assert all("meta" not in json.loads(l) for l in lines)


class TestFormatV2:
    def test_duration_round_trip(self):
        rec = TrialRecord(
            key="k1", kind="sim", params={}, seed=0,
            result={"total_eats": 3}, duration_s=0.125,
        )
        back = parse_line(rec.to_line())
        assert back.duration_s == 0.125

    def test_duration_excluded_from_canonical_line(self):
        rec = TrialRecord(
            key="k1", kind="sim", params={}, seed=0,
            result={}, duration_s=0.125,
        )
        assert "duration_s" not in rec.canonical_line()

    def test_duration_excluded_from_equality(self):
        a = TrialRecord(key="k", kind="sim", params={}, seed=0, result={},
                        duration_s=0.1)
        b = TrialRecord(key="k", kind="sim", params={}, seed=0, result={},
                        duration_s=9.9)
        assert a == b

    def test_v1_line_still_parses(self):
        """PR-1 files carried the duration inside the opaque meta object."""
        v1 = json.dumps({
            "format": 1,
            "key": "k1",
            "kind": "sim",
            "params": {},
            "seed": 0,
            "result": {"total_eats": 2},
            "meta": {"worker": 9, "duration_s": 0.25},
        })
        back = parse_line(v1)
        assert back is not None
        assert back.duration_s == 0.25
        assert back.result["total_eats"] == 2

    def test_unknown_format_rejected(self):
        line = json.dumps({"format": 3, "key": "k", "kind": "sim",
                           "params": {}, "seed": 0, "result": {}})
        assert parse_line(line) is None

    def test_current_format_is_2(self):
        from repro.campaign.record import ACCEPTED_FORMATS, FORMAT_VERSION

        rec = record()
        payload = json.loads(rec.to_line())
        assert payload["format"] == FORMAT_VERSION == 2
        assert set(ACCEPTED_FORMATS) == {1, 2}
