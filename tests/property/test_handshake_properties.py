"""Property-based tests for the handshake and the MP diners."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mp import MpEngine, build_diners, make_session_pair, neighbours_both_eating
from repro.sim import line, ring

settings.register_profile("repro", deadline=None)
settings.load_profile("repro")


class TestHandshakeStabilization:
    @given(st.integers(0, 10_000), st.integers(9, 17))
    def test_converges_from_any_corruption(self, seed, k):
        rng = random.Random(seed)
        m, s = make_session_pair("a", "b", k=k)
        m.corrupt(rng)
        s.corrupt(rng)
        # a burst of junk frames in both directions
        for _ in range(rng.randrange(6)):
            s.handle(m.random_frame(rng, lambda r: ("junk",)))
            m.handle(s.random_frame(rng, lambda r: ("junk",)))
        for _ in range(25):  # lock-step rounds
            f = m.tick_payload("M")
            if f is not None:
                s.handle(f)
            f = s.tick_payload("S")
            if f is not None:
                m.handle(f)
        assert m.peer_data == "S"
        assert s.peer_data == "M"

    @given(st.integers(0, 10_000))
    def test_counters_stay_in_range(self, seed):
        rng = random.Random(seed)
        m, s = make_session_pair("a", "b", k=9)
        m.corrupt(rng)
        s.corrupt(rng)
        for _ in range(20):
            f = m.tick_payload("M")
            if f is not None:
                assert 0 <= f[2] < 9
                s.handle(f)
            f = s.tick_payload("S")
            if f is not None:
                assert 0 <= f[2] < 9
                m.handle(f)


class TestMpDinersSafety:
    @given(st.integers(0, 500), st.integers(4, 7))
    @settings(max_examples=15)
    def test_never_neighbours_both_eating(self, seed, n):
        topo = ring(n)
        procs = build_diners(topo)
        engine = MpEngine(topo, procs, seed=seed)
        for _ in range(4000):
            if not engine.step():
                break
            assert not neighbours_both_eating(topo, procs)

    @given(st.integers(0, 500))
    @settings(max_examples=10)
    def test_liveness_on_line(self, seed):
        topo = line(4)
        procs = build_diners(topo)
        engine = MpEngine(topo, procs, seed=seed)
        engine.run(25_000, stop_when=lambda e: all(p.eats > 0 for p in procs.values()))
        assert all(p.eats > 0 for p in procs.values())
