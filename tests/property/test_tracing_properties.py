"""Property tests for the causal-tracing primitives (ISSUE 7 satellite).

Two contracts the offline timeline relies on:

* Lamport merge is monotone and strictly dominates both arguments, so
  ``a happened-before b`` always implies ``lc(a) < lc(b)``;
* merging span files is invariant under any permutation of the inputs —
  the CI trace-smoke job's byte-identity check is this property end to end.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.timeline import causality_report, merge_timeline
from repro.obs.tracing import LamportClock, SpanRecorder

settings.register_profile("repro", deadline=None)
settings.load_profile("repro")


class TestLamportClockProperties:
    @given(st.integers(0, 2**32), st.integers(0, 2**32))
    def test_merge_strictly_dominates_both_sides(self, local, remote):
        clock = LamportClock(local)
        merged = clock.merge(remote)
        assert merged > local
        assert merged > remote
        assert merged == max(local, remote) + 1

    @given(st.integers(0, 2**16),
           st.lists(st.integers(0, 2**32), max_size=20))
    def test_value_is_monotone_over_any_event_sequence(self, start, remotes):
        clock = LamportClock(start)
        seen = clock.value
        for remote in remotes:
            clock.merge(remote)
            assert clock.value > seen
            seen = clock.value
            clock.tick()
            assert clock.value > seen
            seen = clock.value

    @given(st.integers(0, 2**32), st.integers(0, 2**32),
           st.integers(0, 2**32))
    def test_merge_is_monotone_in_both_arguments(self, local, a, b):
        lo, hi = sorted((a, b))
        assert LamportClock(local).merge(lo) <= LamportClock(local).merge(hi)
        small, large = sorted((local, local + hi))
        assert LamportClock(small).merge(a) <= LamportClock(large).merge(a)


def build_node_logs(seed_events):
    """Deterministic multi-node span logs from a list of generated events.

    Each event is ``(node_index, kind)``; sends are matched with a merged
    recv on the next node, so the trace is causally consistent by
    construction.
    """
    nodes = ["0", "1", "2"]
    recorders = {n: SpanRecorder(n) for n in nodes}
    clocks = {n: LamportClock() for n in nodes}
    spans = {
        n: recorders[n].open("node", lc=clocks[n].tick(), t=0.0)
        for n in nodes
    }
    seq = 0
    for i, (which, kind) in enumerate(seed_events):
        node = nodes[which % len(nodes)]
        peer = nodes[(which + 1) % len(nodes)]
        t = 0.01 * (i + 1)
        if kind == "send":
            seq += 1
            lc = clocks[node].tick()
            recorders[node].event(spans[node], "send", lc=lc, t=t,
                                  detail={"dst": peer, "seq": seq})
            recorders[peer].event(
                spans[peer], "recv", lc=clocks[peer].merge(lc), t=t + 0.001,
                detail={"src": node, "seq": seq},
            )
        else:
            recorders[node].event(spans[node], kind,
                                  lc=clocks[node].tick(), t=t)
    return {n: recorders[n].spans for n in nodes}


span_scripts = st.lists(
    st.tuples(st.integers(0, 2), st.sampled_from(["send", "grant", "chaos"])),
    max_size=30,
)


class TestTimelineMergeProperties:
    @given(span_scripts, st.randoms(use_true_random=False))
    def test_merge_is_permutation_invariant(self, script, rng):
        logs = build_node_logs(script)
        baseline = merge_timeline(logs)
        items = list(logs.items())
        rng.shuffle(items)
        assert merge_timeline(dict(items)) == baseline

    @given(span_scripts)
    def test_constructed_traces_are_causally_consistent(self, script):
        report = causality_report(merge_timeline(build_node_logs(script)))
        assert report.ok

    @given(span_scripts)
    def test_order_is_happened_before_consistent(self, script):
        entries = merge_timeline(build_node_logs(script))
        lcs = [e.lc for e in entries]
        assert lcs == sorted(lcs)
