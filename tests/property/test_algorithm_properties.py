"""Property-based tests for algorithm-level invariants.

Each property quantifies over random configurations (arbitrary states, as a
transient fault would leave them) and random short executions.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    NADiners,
    eating_pairs,
    nc_holds,
    priority_edges,
    red_set,
)
from repro.sim import AlwaysHungry, Engine, System, line, ring


def randomized_system(topo_builder, n, seed):
    s = System(topo_builder(n), NADiners())
    s.randomize(random.Random(seed))
    return s


sizes = st.integers(4, 9)
seeds = st.integers(0, 10_000)


class TestExitNeverCreatesCycles:
    @given(sizes, seeds)
    @settings(max_examples=40, deadline=None)
    def test_acyclicity_preserved_by_any_step(self, n, seed):
        """Lemma 1's induction step, property-based: if the live priority
        graph is acyclic, no action execution makes it cyclic."""
        s = randomized_system(ring, n, seed)
        e = Engine(s, hunger=AlwaysHungry(), seed=seed)
        was_acyclic = nc_holds(s.snapshot())
        for _ in range(30):
            if not e.step():
                break
            now_acyclic = nc_holds(s.snapshot())
            if was_acyclic:
                assert now_acyclic
            was_acyclic = now_acyclic


class TestEatingPairsMonotone:
    @given(sizes, seeds)
    @settings(max_examples=40, deadline=None)
    def test_pair_count_never_increases(self, n, seed):
        s = randomized_system(line, n, seed)
        e = Engine(s, hunger=AlwaysHungry(), seed=seed)
        count = len(eating_pairs(s.snapshot()))
        for _ in range(40):
            if not e.step():
                break
            new_count = len(eating_pairs(s.snapshot()))
            assert new_count <= count
            count = new_count


class TestPriorityGraphShape:
    @given(sizes, seeds)
    @settings(max_examples=30, deadline=None)
    def test_one_priority_edge_per_topology_edge(self, n, seed):
        s = randomized_system(ring, n, seed)
        edges = priority_edges(s.snapshot())
        assert len(edges) == len(s.topology.edges)
        for ancestor, descendant in edges:
            assert s.topology.are_neighbors(ancestor, descendant)

    @given(sizes, seeds)
    @settings(max_examples=30, deadline=None)
    def test_exit_makes_sink(self, n, seed):
        s = randomized_system(ring, n, seed)
        pid = s.pids[seed % len(s.pids)]
        s.write_local(pid, "state", "E")
        s.execute(pid, s.algorithm.action_named("exit"))
        c = s.snapshot()
        for q in s.topology.neighbors(pid):
            assert c.edge_value(pid, q) == q  # every neighbour is an ancestor


class TestRedSetProperties:
    @given(sizes, seeds, st.integers(0, 3))
    @settings(max_examples=40, deadline=None)
    def test_dead_always_red(self, n, seed, n_dead):
        s = randomized_system(line, n, seed)
        dead = list(s.pids)[:n_dead]
        for p in dead:
            s.kill(p)
        reds = red_set(s.snapshot())
        assert set(dead) <= reds

    @given(sizes, seeds)
    @settings(max_examples=40, deadline=None)
    def test_no_dead_means_no_red(self, n, seed):
        """RD is well-founded on dead processes: without crashes the red
        fixpoint must be empty — in every reachable-from-arbitrary state."""
        s = randomized_system(line, n, seed)
        assert red_set(s.snapshot()) == frozenset()

    @given(sizes, seeds)
    @settings(max_examples=25, deadline=None)
    def test_red_within_radius_two_of_dead_after_settling(self, n, seed):
        # red is a *static* predicate; check it never marks processes more
        # than 2 hops from the only dead process once depths settle.
        s = randomized_system(line, n, seed)
        e = Engine(s, hunger=AlwaysHungry(), seed=seed)
        e.run(4000)
        victim = s.pids[0]
        s.kill(victim)
        e.run(4000)
        for p in red_set(s.snapshot()):
            assert s.topology.distance(victim, p) <= 2


class TestDomainsRespected:
    @given(sizes, seeds)
    @settings(max_examples=30, deadline=None)
    def test_long_runs_stay_in_domain(self, n, seed):
        s = randomized_system(ring, n, seed)
        e = Engine(s, hunger=AlwaysHungry(), seed=seed)
        e.run(200)
        for p in s.pids:
            assert s.read_local(p, "state") in ("T", "H", "E")
            assert isinstance(s.read_local(p, "depth"), int)
            assert s.read_local(p, "depth") >= 0
