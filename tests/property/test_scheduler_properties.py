"""Property-based tests for the daemons' fairness and determinism.

The paper's computations are maximal *weakly fair* interleavings; the
daemons turn that model assumption into code.  These properties quantify
over adversarially chosen enabledness sequences and check the two load-
bearing guarantees: no continuously enabled action starves past the
patience bound, and the adversarial daemons are pure functions of
(scorer/strategy, seed, observed enabledness) — the replayability that
the whole adversary subsystem builds on.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import AdversarialDaemon, WeaklyFairDaemon
from repro.sim.scheduler import _FairnessLedger


class Act:
    """Stub ActionDef: the ledger and daemons only read ``.name``."""

    def __init__(self, name):
        self.name = name

    def __repr__(self):
        return f"Act({self.name})"


POOL = [(pid, Act(f"a{pid}")) for pid in range(5)]

# One scheduling history: per round, which of the 5 pool entries are
# enabled.  Entry 0 (the victim) is forced enabled in every round.
histories = st.lists(
    st.sets(st.integers(1, 4), max_size=4),
    min_size=40,
    max_size=80,
).map(lambda rounds: [sorted(r | {0}) for r in rounds])

seeds = st.integers(0, 10_000)


def enabled_of(round_members):
    return [POOL[i] for i in round_members]


class TestWeaklyFairDaemon:
    @given(histories, seeds)
    @settings(max_examples=60, deadline=None)
    def test_continuously_enabled_action_never_starves(self, history, seed):
        """The hard weak-fairness bound: an action enabled at every
        selection fires within ``patience`` + pool-size opportunities
        (the slack is ties — several actions can reach the patience age
        together and drain one per round)."""
        patience = 5
        daemon = WeaklyFairDaemon(patience=patience)
        rng = random.Random(seed)
        missed = 0
        for step, members in enumerate(history):
            choice = daemon.select(None, enabled_of(members), step, rng)
            if choice[0] == 0:
                missed = 0
            else:
                missed += 1
            assert missed <= patience + len(POOL)

    @given(histories, seeds)
    @settings(max_examples=30, deadline=None)
    def test_choice_is_always_enabled(self, history, seed):
        daemon = WeaklyFairDaemon(patience=3)
        rng = random.Random(seed)
        for step, members in enumerate(history):
            enabled = enabled_of(members)
            assert daemon.select(None, enabled, step, rng) in enabled

    @given(histories, seeds)
    @settings(max_examples=30, deadline=None)
    def test_deterministic_for_a_seed(self, history, seed):
        def trace():
            daemon = WeaklyFairDaemon(patience=4)
            rng = random.Random(seed)
            return [
                daemon.select(None, enabled_of(m), i, rng)
                for i, m in enumerate(history)
            ]

        assert trace() == trace()


class TestFairnessLedger:
    @given(histories)
    @settings(max_examples=30, deadline=None)
    def test_only_currently_enabled_actions_age(self, history):
        """Weak fairness protects *continuously* enabled actions: a round
        of disablement must drop the age back to zero."""
        ledger = _FairnessLedger()
        for members in history:
            enabled = enabled_of(members)
            ledger.observe(enabled)
            keys = {(pid, act.name) for pid, act in enabled}
            assert set(ledger._ages) == keys

    def test_age_grows_while_enabled_and_resets_on_fire(self):
        ledger = _FairnessLedger()
        enabled = enabled_of([0, 1])
        for expected in (1, 2, 3):
            ledger.observe(enabled)
            age, _ = ledger.oldest(enabled_of([0]))
            assert age == expected
        ledger.fired(POOL[0])
        ledger.observe(enabled)
        age, _ = ledger.oldest(enabled_of([0]))
        assert age == 1


def spite_scorer(system, pid, action):
    """A deterministic, state-free adversary score."""
    return (pid * 7 + len(action.name)) % 5


class TestAdversarialDaemon:
    @given(histories, seeds)
    @settings(max_examples=40, deadline=None)
    def test_deterministic_for_scorer_and_seed(self, history, seed):
        """The replayability contract: same scorer, same seed, same
        observed enabledness sequence — identical schedule."""

        def trace():
            daemon = AdversarialDaemon(spite_scorer, patience=6)
            rng = random.Random(seed)
            return [
                daemon.select(None, enabled_of(m), i, rng)
                for i, m in enumerate(history)
            ]

        assert trace() == trace()

    @given(histories, seeds)
    @settings(max_examples=40, deadline=None)
    def test_patience_still_bounds_starvation(self, history, seed):
        """Even a maximally spiteful scorer cannot starve a continuously
        enabled action past the patience escape hatch."""
        patience = 4
        daemon = AdversarialDaemon(
            lambda s, pid, a: 0.0 if pid == 0 else 1.0, patience=patience
        )
        rng = random.Random(seed)
        missed = 0
        for step, members in enumerate(history):
            choice = daemon.select(None, enabled_of(members), step, rng)
            missed = 0 if choice[0] == 0 else missed + 1
            assert missed <= patience + len(POOL)

    @given(histories)
    @settings(max_examples=30, deadline=None)
    def test_reset_restores_a_fresh_schedule(self, history):
        daemon = AdversarialDaemon(spite_scorer, patience=6)

        def trace():
            rng = random.Random(0)
            return [
                daemon.select(None, enabled_of(m), i, rng)
                for i, m in enumerate(history)
            ]

        first = trace()
        daemon.reset()
        assert trace() == first
