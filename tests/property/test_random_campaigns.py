"""Randomized campaign property tests.

Quantifies over random topologies and seeds — the same axes the campaign
runner shards over — and asserts the paper's safety properties on whole
executions rather than single transitions:

* in a closed run (start inside the invariant, no faults) no two live
  neighbours ever eat simultaneously, on any topology;
* every closed run stays inside the invariant ``I = NC ∧ ST ∧ E``
  (Theorem 1's closure, checked dynamically);
* campaign ``sim`` shards report ``safety_ok`` on every closed run.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.campaign import Shard, execute_shard
from repro.core import NADiners, eating_pairs, invariant_with_threshold
from repro.sim import AlwaysHungry, Engine, System, from_spec, random_connected

SPECS = st.one_of(
    st.integers(4, 8).map(lambda n: f"ring:{n}"),
    st.integers(4, 8).map(lambda n: f"line:{n}"),
    st.integers(3, 6).map(lambda n: f"star:{n}"),
    st.tuples(st.integers(2, 3), st.integers(2, 3)).map(lambda wh: f"grid:{wh[0]}:{wh[1]}"),
    st.tuples(st.integers(5, 9), st.integers(0, 1000)).map(
        lambda ns: f"random:{ns[0]}:{ns[1]}"
    ),
)
SEEDS = st.integers(0, 10_000)


def closed_run(spec, seed, steps, algorithm=None):
    """Yield every configuration of a closed run from the initial state."""
    system = System(from_spec(spec), algorithm or NADiners())
    engine = Engine(system, hunger=AlwaysHungry(), seed=seed)
    yield system.snapshot()
    for _ in range(steps):
        if not engine.step():
            break
        yield system.snapshot()


class TestNeighbourExclusion:
    @given(SPECS, SEEDS)
    @settings(max_examples=30, deadline=None)
    def test_no_two_neighbours_eat_simultaneously(self, spec, seed):
        for config in closed_run(spec, seed, 60):
            assert not eating_pairs(config)


class TestClosure:
    @given(SPECS, SEEDS)
    @settings(max_examples=30, deadline=None)
    def test_closed_runs_stay_inside_the_invariant(self, spec, seed):
        # On cyclic graphs ``depth`` can legitimately exceed the diameter, so
        # run the corrected-threshold regime (longest simple path) under
        # which ``I`` is closed on any graph — same as ``check --corrected``.
        t = from_spec(spec).longest_simple_path()
        invariant = invariant_with_threshold(t)
        algo = NADiners(diameter_override=t)
        for config in closed_run(spec, seed, 60, algorithm=algo):
            assert invariant(config)


class TestCampaignShards:
    @given(SEEDS, st.integers(4, 8), st.integers(0, 1000))
    @settings(max_examples=15, deadline=None)
    def test_sim_shards_report_safety_on_random_graphs(self, seed, n, topo_seed):
        shard = Shard(
            "sim",
            {
                "topology": f"random:{n}:{topo_seed}",
                "algorithm": "na-diners",
                "steps": 150,
                "trial": 0,
            },
            seed=seed,
        )
        record = execute_shard(shard)
        assert record.result["safety_ok"]
        assert record.result["total_eats"] == sum(record.result["eats"])

    @given(st.integers(5, 9), st.integers(0, 1000))
    @settings(max_examples=10, deadline=None)
    def test_random_spec_matches_builder(self, n, seed):
        a = from_spec(f"random:{n}:{seed}")
        b = random_connected(n, 0.15, seed)
        assert a.nodes == b.nodes
        assert a.edges == b.edges
