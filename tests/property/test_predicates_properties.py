"""Property-based tests for the §3 predicates over arbitrary states."""

import math
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    NADiners,
    green_set,
    is_shallow,
    longest_live_ancestor_chain,
    nc_holds,
    red_set,
    shallow_set,
    stably_shallow_set,
)
from repro.sim import System, line, ring

settings.register_profile("repro", deadline=None)
settings.load_profile("repro")

sizes = st.integers(3, 8)
seeds = st.integers(0, 10_000)
n_dead = st.integers(0, 2)


def arbitrary_system(topo_builder, n, seed, dead_count=0):
    s = System(topo_builder(n), NADiners())
    rng = random.Random(seed)
    s.randomize(rng)
    pids = list(s.pids)
    rng.shuffle(pids)
    for p in pids[:dead_count]:
        s.kill(p)
    return s


class TestRedGreenPartition:
    @given(sizes, seeds, n_dead)
    def test_partition(self, n, seed, dead_count):
        c = arbitrary_system(ring, n, seed, dead_count).snapshot()
        reds, greens = red_set(c), green_set(c)
        assert reds | greens == frozenset(c.topology.nodes)
        assert not reds & greens

    @given(sizes, seeds, n_dead)
    def test_fixpoint_idempotent(self, n, seed, dead_count):
        # The fixpoint computation is deterministic for a given state.
        c = arbitrary_system(line, n, seed, dead_count).snapshot()
        assert red_set(c) == red_set(c)

    @given(sizes, seeds)
    def test_more_dead_more_red(self, n, seed):
        """RD is monotone in the dead set: killing one more process can
        only grow the red set."""
        s = arbitrary_system(ring, n, seed)
        before = red_set(s.snapshot())
        s.kill(s.pids[0])
        after = red_set(s.snapshot())
        assert before <= after


class TestShallowness:
    @given(sizes, seeds, n_dead)
    def test_dead_are_shallow_and_stable(self, n, seed, dead_count):
        c = arbitrary_system(line, n, seed, dead_count).snapshot()
        for p in c.dead:
            assert is_shallow(c, p)
            assert p in stably_shallow_set(c)

    @given(sizes, seeds, n_dead)
    def test_stably_shallow_subset_of_shallow(self, n, seed, dead_count):
        c = arbitrary_system(ring, n, seed, dead_count).snapshot()
        assert stably_shallow_set(c) <= shallow_set(c)

    @given(sizes, seeds)
    def test_threshold_monotone(self, n, seed):
        """A larger threshold can only make more processes shallow."""
        c = arbitrary_system(line, n, seed).snapshot()
        d = c.topology.diameter
        small = shallow_set(c, threshold=d)
        large = shallow_set(c, threshold=d + 3)
        assert small <= large


class TestAncestorChains:
    @given(sizes, seeds, n_dead)
    def test_chain_bounds(self, n, seed, dead_count):
        c = arbitrary_system(line, n, seed, dead_count).snapshot()
        for p in c.topology.nodes:
            value = longest_live_ancestor_chain(c, p)
            if p in c.faulty:
                assert value == 0
            else:
                assert value == math.inf or 1 <= value <= len(c.topology)

    @given(sizes, seeds)
    def test_infinite_iff_on_live_cycle_for_members(self, n, seed):
        """On a directed live cycle every member has an infinite chain."""
        from repro.analysis import plant_priority_cycle

        s = System(ring(n), NADiners())
        s.randomize(random.Random(seed))
        plant_priority_cycle(s, list(range(n)))
        c = s.snapshot()
        assert not nc_holds(c)
        for p in range(n):
            assert longest_live_ancestor_chain(c, p) == math.inf


class TestInvariantThresholdConsistency:
    @given(sizes, seeds)
    def test_literal_implies_corrected(self, n, seed):
        """If I holds with the literal diameter threshold it must also hold
        with any larger threshold (monotonicity of the invariant)."""
        from repro.core import invariant_holds

        c = arbitrary_system(line, n, seed).snapshot()
        d = c.topology.diameter
        if invariant_holds(c, threshold=d):
            assert invariant_holds(c, threshold=d + 2)

    @given(sizes, seeds)
    def test_eating_pairs_matches_e_holds(self, n, seed):
        """e_holds is exactly 'every eating pair is all-dead'."""
        from repro.core import e_holds, eating_pairs

        c = arbitrary_system(ring, n, seed).snapshot()
        expected = all(
            all(p in c.faulty for p in pair) for pair in eating_pairs(c)
        )
        assert e_holds(c) == expected
