"""Differential testing: the model checker against the simulator.

The checker and the engine share the same ActionDef objects but drive them
through different code paths (restore/execute/snapshot vs in-place
mutation).  These properties pin the two paths to each other on random
states, so semantic drift between "what we prove" and "what we run" cannot
creep in.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import NADiners
from repro.sim import System, line, ring
from repro.verification import TransitionSystem

settings.register_profile("repro", deadline=None)
settings.load_profile("repro")

seeds = st.integers(0, 10_000)
sizes = st.integers(3, 6)


def random_config(topo, seed):
    system = System(topo, NADiners())
    system.randomize(random.Random(seed))
    return system.snapshot()


class TestEnabledSetsAgree:
    @given(sizes, seeds)
    @settings(max_examples=40)
    def test_checker_enabled_equals_engine_enabled(self, n, seed):
        topo = ring(n)
        algo = NADiners()
        config = random_config(topo, seed)
        ts = TransitionSystem(algo, topo)
        checker_enabled = set(ts.enabled(config))
        system = System.from_configuration(algo, config)
        engine_enabled = {(p, a.name) for p, a in system.all_enabled()}
        assert checker_enabled == engine_enabled


class TestTransitionsAgree:
    @given(sizes, seeds)
    @settings(max_examples=30)
    def test_each_successor_matches_direct_execution(self, n, seed):
        topo = line(n)
        algo = NADiners()
        config = random_config(topo, seed)
        ts = TransitionSystem(algo, topo)
        for transition in ts.successors(config):
            system = System.from_configuration(algo, config)
            system.execute(transition.pid, algo.action_named(transition.action))
            assert system.snapshot() == transition.target

    @given(sizes, seeds)
    @settings(max_examples=30)
    def test_successors_leave_source_untouched(self, n, seed):
        topo = ring(n)
        algo = NADiners()
        config = random_config(topo, seed)
        before_key = hash(config)
        TransitionSystem(algo, topo).successors(config)
        assert hash(config) == before_key


class TestRestoreRoundTrip:
    @given(sizes, seeds)
    @settings(max_examples=40)
    def test_restore_snapshot_identity(self, n, seed):
        topo = ring(n)
        algo = NADiners()
        config = random_config(topo, seed)
        scratch = System(topo, algo)
        scratch.restore(config)
        assert scratch.snapshot() == config
