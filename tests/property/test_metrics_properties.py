"""Property-based pins for the quantile helpers.

Regression shield for two past defects: interpolated quantiles drifting a
few ulps above the observed maximum on all-identical samples (the naive
``a + (b - a) * frac`` form), and nearest-rank histogram percentiles
overshooting the top bucket after merge chains inflate ``count`` past
``1/q`` precision.  p999 of any distribution must stay inside
``[min, max]`` — a latency report that invents a value larger than any
observation is corrupt.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import Histogram, percentile_of_sorted

settings.register_profile("repro", deadline=None)
settings.load_profile("repro")

finite = st.floats(
    allow_nan=False, allow_infinity=False, min_value=-1e12, max_value=1e12
)
quantiles = st.floats(min_value=0.0, max_value=1.0)
weights = st.lists(st.integers(1, 50), min_size=1, max_size=20)


class TestPercentileOfSorted:
    @given(st.lists(finite, min_size=1, max_size=50), quantiles)
    def test_within_observed_range(self, values, q):
        values.sort()
        result = percentile_of_sorted(values, q)
        assert values[0] <= result <= values[-1]

    @given(finite, st.integers(1, 40), quantiles)
    def test_all_identical_samples_return_the_sample(self, value, n, q):
        # The original failure mode: 0.1 + (0.1 - 0.1) * frac style drift.
        assert percentile_of_sorted([value] * n, q) == value

    @given(st.lists(finite, min_size=1, max_size=50), quantiles, quantiles)
    def test_monotone_in_q(self, values, q1, q2):
        values.sort()
        lo, hi = sorted((q1, q2))
        assert percentile_of_sorted(values, lo) <= percentile_of_sorted(values, hi)

    @given(st.lists(finite, min_size=1, max_size=50))
    def test_endpoints_exact(self, values):
        values.sort()
        assert percentile_of_sorted(values, 0.0) == values[0]
        assert percentile_of_sorted(values, 1.0) == values[-1]


def histogram_of(buckets):
    h = Histogram("h")
    for value, weight in buckets:
        h.observe(value, weight)
    return h


bucket_lists = st.lists(
    st.tuples(st.integers(-100, 100), st.integers(1, 1000)),
    min_size=1,
    max_size=12,
)


class TestHistogramPercentile:
    @given(bucket_lists, quantiles)
    def test_within_observed_range(self, buckets, q):
        h = histogram_of(buckets)
        observed = sorted(h.buckets)
        assert observed[0] <= h.percentile(q) <= observed[-1]

    @given(st.integers(-100, 100), weights, quantiles)
    def test_all_identical_distribution(self, value, ws, q):
        h = histogram_of([(value, w) for w in ws])
        assert h.percentile(q) == value

    @given(st.lists(bucket_lists, min_size=2, max_size=5), quantiles)
    def test_merge_chains_stay_in_range(self, shards, q):
        # Merge-after-merge is the campaign aggregation path: counts grow
        # multiplicatively and q * count precision errors compound.
        merged = histogram_of(shards[0])
        for shard in shards[1:]:
            merged.merge(histogram_of(shard))
        observed = sorted(merged.buckets)
        result = merged.percentile(q)
        assert observed[0] <= result <= observed[-1]
        # p999 specifically — the reporting quantile that overshot.
        p999 = merged.percentile(0.999)
        assert observed[0] <= p999 <= observed[-1]

    @given(bucket_lists)
    def test_merge_equals_bulk_observation(self, buckets):
        a = histogram_of(buckets)
        b = Histogram("b")
        b.merge(a)
        assert b.buckets == a.buckets and b.count == a.count

    @given(bucket_lists, quantiles, quantiles)
    def test_monotone_in_q(self, buckets, q1, q2):
        h = histogram_of(buckets)
        lo, hi = sorted((q1, q2))
        assert h.percentile(lo) <= h.percentile(hi)


class TestCrossConsistency:
    @given(st.lists(st.integers(-50, 50), min_size=1, max_size=40))
    def test_histogram_median_brackets_interpolated_median(self, values):
        h = Histogram("h")
        for v in values:
            h.observe(v)
        interpolated = percentile_of_sorted(sorted(float(v) for v in values), 0.5)
        nearest_rank = h.percentile(0.5)
        assert min(values) <= nearest_rank <= max(values)
        assert min(values) <= interpolated <= max(values)
