"""Property-based tests for topology invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Topology, grid, line, random_connected, ring

# Graph metrics on random graphs can take a while; hypothesis deadlines are
# per-example and flaky under load.
settings.register_profile("repro", deadline=None)
settings.load_profile("repro")

#: Small graphs for the exponential longest-simple-path computation.
small_topologies = st.one_of(
    st.integers(3, 7).map(ring),
    st.integers(2, 8).map(line),
    st.tuples(st.integers(2, 3), st.integers(2, 3)).map(lambda wh: grid(*wh)),
    st.tuples(st.integers(4, 7), st.floats(0.0, 0.3), st.integers(0, 50)).map(
        lambda args: random_connected(args[0], args[1], seed=args[2])
    ),
)

topologies = st.one_of(
    st.integers(3, 12).map(ring),
    st.integers(2, 12).map(line),
    st.tuples(st.integers(2, 4), st.integers(2, 4)).map(lambda wh: grid(*wh)),
    st.tuples(st.integers(4, 12), st.floats(0.0, 0.5), st.integers(0, 50)).map(
        lambda args: random_connected(args[0], args[1], seed=args[2])
    ),
)


class TestMetricProperties:
    @given(topologies)
    def test_distance_symmetric(self, topo: Topology):
        nodes = topo.nodes
        for p in nodes[:4]:
            for q in nodes[-4:]:
                assert topo.distance(p, q) == topo.distance(q, p)

    @given(topologies)
    def test_triangle_inequality(self, topo: Topology):
        nodes = topo.nodes
        trio = (nodes[0], nodes[len(nodes) // 2], nodes[-1])
        p, q, r = trio
        assert topo.distance(p, r) <= topo.distance(p, q) + topo.distance(q, r)

    @given(topologies)
    def test_neighbors_at_distance_one(self, topo: Topology):
        for p in topo.nodes[:5]:
            for q in topo.neighbors(p):
                assert topo.distance(p, q) == 1

    @given(topologies)
    def test_diameter_is_max_distance(self, topo: Topology):
        observed = max(
            topo.distance(p, q) for p in topo.nodes for q in topo.nodes
        )
        assert observed == topo.diameter

    @given(small_topologies)
    def test_longest_path_at_least_diameter(self, topo: Topology):
        assert topo.longest_simple_path() >= topo.diameter

    @given(small_topologies)
    def test_longest_path_bounded_by_n(self, topo: Topology):
        assert topo.longest_simple_path() <= len(topo) - 1


class TestBallProperties:
    @given(topologies, st.integers(0, 5))
    def test_ball_monotone_in_radius(self, topo: Topology, radius: int):
        center = topo.nodes[0]
        assert topo.ball(center, radius) <= topo.ball(center, radius + 1)

    @given(topologies)
    def test_ball_diameter_covers_graph(self, topo: Topology):
        center = topo.nodes[0]
        assert topo.ball(center, topo.diameter) == frozenset(topo.nodes)

    @given(topologies, st.integers(0, 4))
    def test_outside_ball_complements_ball(self, topo: Topology, radius: int):
        center = topo.nodes[0]
        inside = topo.ball(center, radius)
        outside = topo.outside_ball([center], radius)
        assert inside | outside == frozenset(topo.nodes)
        assert not inside & outside
