"""Tests for the error hierarchy: types, messages, and payloads."""

import pytest

from repro.sim import (
    DeadProcessError,
    DomainError,
    FaultPlanError,
    NotNeighborsError,
    SchedulingError,
    SimulationError,
    TopologyError,
    UnknownProcessError,
    UnknownVariableError,
)


ALL_ERRORS = [
    TopologyError,
    UnknownProcessError,
    UnknownVariableError,
    NotNeighborsError,
    DomainError,
    DeadProcessError,
    SchedulingError,
    FaultPlanError,
]


class TestHierarchy:
    @pytest.mark.parametrize("error_type", ALL_ERRORS)
    def test_all_derive_from_simulation_error(self, error_type):
        assert issubclass(error_type, SimulationError)

    def test_single_except_catches_everything(self):
        caught = 0
        for exc in (
            UnknownProcessError(3),
            DomainError("state", "Z"),
            NotNeighborsError(0, 5),
        ):
            try:
                raise exc
            except SimulationError:
                caught += 1
        assert caught == 3


class TestPayloads:
    def test_unknown_process_carries_pid(self):
        exc = UnknownProcessError(42)
        assert exc.pid == 42
        assert "42" in str(exc)

    def test_unknown_variable_carries_name(self):
        exc = UnknownVariableError("depht")
        assert exc.name == "depht"
        assert "depht" in str(exc)

    def test_not_neighbors_carries_both(self):
        exc = NotNeighborsError("a", "z")
        assert (exc.pid, exc.other) == ("a", "z")
        assert "'a'" in str(exc) and "'z'" in str(exc)

    def test_domain_error_carries_value(self):
        exc = DomainError("state", "X")
        assert exc.name == "state" and exc.value == "X"
        assert "state" in str(exc) and "X" in str(exc)

    def test_dead_process_carries_pid(self):
        exc = DeadProcessError(7)
        assert exc.pid == 7
        assert "dead" in str(exc)
