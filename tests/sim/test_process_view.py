"""Unit tests for ProcessView: the model's access restrictions."""

import pytest

from repro.core import NADiners
from repro.sim import NotNeighborsError, System, line, star


@pytest.fixture
def system():
    return System(line(4), NADiners())


class TestOwnState:
    def test_get_set(self, system):
        view = system.view(1)
        view.set("state", "H")
        assert view.get("state") == "H"
        assert system.read_local(1, "state") == "H"

    def test_pid_and_neighbors(self, system):
        view = system.view(1)
        assert view.pid == 1
        assert set(view.neighbors) == {0, 2}

    def test_diameter_matches_topology(self, system):
        assert system.view(0).diameter == system.topology.diameter


class TestNeighborReads:
    def test_peek_neighbor(self, system):
        system.write_local(2, "state", "E")
        assert system.view(1).peek(2, "state") == "E"

    def test_peek_self_allowed(self, system):
        assert system.view(1).peek(1, "state") == "T"

    def test_peek_non_neighbor_rejected(self, system):
        # 0 and 2 are two hops apart: reading would break the model.
        with pytest.raises(NotNeighborsError):
            system.view(0).peek(2, "state")

    def test_peek_distant_rejected(self, system):
        with pytest.raises(NotNeighborsError):
            system.view(0).peek(3, "state")


class TestEdgeAccess:
    def test_edge_value(self, system):
        assert system.view(1).edge_value(0) == 0  # node-order ancestor

    def test_set_edge(self, system):
        view = system.view(1)
        view.set_edge(0, 1)
        assert view.edge_value(0) == 1

    def test_edge_shared_between_endpoints(self, system):
        system.view(1).set_edge(2, 2)
        assert system.view(2).edge_value(1) == 2

    def test_edge_non_neighbor_rejected(self, system):
        with pytest.raises(NotNeighborsError):
            system.view(0).edge_value(2)
        with pytest.raises(NotNeighborsError):
            system.view(0).set_edge(2, 0)


class TestCrashOpacity:
    def test_view_exposes_no_liveness(self, system):
        """Crashes are undetectable: the view API must not leak them."""
        view = system.view(1)
        system.kill(2)
        # no attribute of the view mentions liveness, and reads of the dead
        # neighbour's frozen state still work exactly as before.
        assert not any("dead" in name or "live" in name for name in dir(view))
        assert view.peek(2, "state") == "T"
        assert view.edge_value(2) == 1


class TestHubView:
    def test_star_hub_sees_all_leaves(self):
        system = System(star(4), NADiners())
        view = system.view(0)
        assert set(view.neighbors) == {1, 2, 3, 4}
