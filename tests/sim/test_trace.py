"""Unit tests for trace recording."""

import pytest

from repro.core import NADiners
from repro.sim import EventKind, System, TraceEvent, TraceRecorder, line


def event(step, kind=EventKind.ACTION, pid=0, detail="join"):
    return TraceEvent(step, kind, pid, detail)


class TestRecorder:
    def test_records_events(self):
        rec = TraceRecorder()
        rec.record_event(event(0))
        rec.record_event(event(1, detail="enter"))
        assert len(rec) == 2

    def test_keep_events_false(self):
        rec = TraceRecorder(keep_events=False)
        rec.record_event(event(0))
        assert len(rec) == 0

    def test_events_of_kind(self):
        rec = TraceRecorder()
        rec.record_event(event(0, EventKind.ACTION))
        rec.record_event(event(1, EventKind.CRASH, detail=None))
        assert len(rec.events_of_kind(EventKind.CRASH)) == 1

    def test_actions_of(self):
        rec = TraceRecorder()
        rec.record_event(event(0, pid=0))
        rec.record_event(event(1, pid=1))
        rec.record_event(event(2, pid=0, detail="enter"))
        assert [e.detail for e in rec.actions_of(0)] == ["join", "enter"]

    def test_first_action(self):
        rec = TraceRecorder()
        rec.record_event(event(3, pid=2, detail="enter"))
        rec.record_event(event(9, pid=2, detail="enter"))
        found = rec.first_action(2, "enter")
        assert found is not None and found.step == 3

    def test_first_action_missing(self):
        assert TraceRecorder().first_action(0, "enter") is None

    def test_clear(self):
        rec = TraceRecorder(snapshot_every=1)
        rec.record_event(event(0))
        rec.force_snapshot(0, System(line(2), NADiners()).snapshot())
        rec.clear()
        assert len(rec) == 0
        assert rec.snapshots == ()

    def test_negative_cadence_rejected(self):
        with pytest.raises(ValueError):
            TraceRecorder(snapshot_every=-1)


class TestSnapshots:
    def test_disabled_by_default(self):
        rec = TraceRecorder()
        rec.maybe_snapshot(10, System(line(2), NADiners()).snapshot())
        rec.force_snapshot(10, System(line(2), NADiners()).snapshot())
        assert rec.snapshots == ()

    def test_cadence(self):
        rec = TraceRecorder(snapshot_every=5)
        snap = System(line(2), NADiners()).snapshot()
        for step in range(1, 12):
            rec.maybe_snapshot(step, snap)
        assert [s for s, _ in rec.snapshots] == [5, 10]

    def test_force_snapshot_dedupes_step(self):
        rec = TraceRecorder(snapshot_every=5)
        snap = System(line(2), NADiners()).snapshot()
        rec.force_snapshot(0, snap)
        rec.force_snapshot(0, snap)
        assert len(rec.snapshots) == 1


class TestRendering:
    def test_event_str(self):
        text = str(event(7, EventKind.ACTION, 1, "enter"))
        assert "7" in text and "action" in text and "enter" in text

    def test_render_limit(self):
        rec = TraceRecorder()
        for i in range(10):
            rec.record_event(event(i))
        text = rec.render(limit=3)
        assert "7 more events" in text

    def test_render_all(self):
        rec = TraceRecorder()
        rec.record_event(event(0))
        assert "more events" not in rec.render()


class TestRealRunCoverage:
    """Every EventKind is reachable from a real engine run, and a recorded
    run survives the trace JSONL round trip."""

    def _engine(self, topology, seed=2, snapshot_every=0):
        from repro.sim import AlwaysHungry, Engine, WeaklyFairDaemon

        recorder = TraceRecorder(snapshot_every=snapshot_every)
        engine = Engine(
            System(topology, NADiners()),
            WeaklyFairDaemon(),
            seed=seed,
            hunger=AlwaysHungry(),
            recorder=recorder,
        )
        return engine, recorder

    def _faulty_run(self):
        from repro.sim import MaliciousCrash, TransientFault, line

        engine, recorder = self._engine(line(4), snapshot_every=25)
        engine.run(150)
        engine.inject(TransientFault(pids=(1,)))
        engine.inject(MaliciousCrash(pid=0, malicious_steps=5))
        engine.run(150)
        return engine, recorder

    def test_all_six_kinds_reachable(self):
        engine, recorder = self._faulty_run()
        kinds = {e.kind for e in recorder.events}
        for kind in (
            EventKind.ACTION,
            EventKind.HAVOC,
            EventKind.CRASH,
            EventKind.MALICE_BEGIN,
            EventKind.TRANSIENT,
        ):
            assert kind in kinds, kind

        # IDLE needs a step where nothing is enabled but malice is pending:
        # make every process malicious.
        from repro.sim import MaliciousCrash

        engine, recorder = self._engine(line(2))
        engine.inject(MaliciousCrash(pid=0, malicious_steps=3))
        engine.inject(MaliciousCrash(pid=1, malicious_steps=3))
        engine.run(10)
        assert EventKind.IDLE in {e.kind for e in recorder.events}

    def test_snapshot_interval_respected(self):
        engine, recorder = self._faulty_run()
        steps = [s for s, _ in recorder.snapshots]
        assert steps, "cadence 25 over 300 steps must snapshot"
        assert all(s % 25 == 0 for s in steps)
        assert steps == sorted(set(steps))

    def test_jsonl_round_trip_of_real_run(self, tmp_path):
        from repro.obs import build_header, read_trace, trace_from_recorder, write_trace

        engine, recorder = self._faulty_run()
        header = build_header(
            model="sim",
            algorithm="na-diners",
            seed=2,
            steps_taken=engine.step_count,
            topology="line:4",
            snapshot_every=25,
        )
        path = tmp_path / "run.trace"
        write_trace(path, trace_from_recorder(recorder, header))
        back = read_trace(path)
        assert back.events == recorder.events
        assert [s for s, _ in back.snapshots] == [s for s, _ in recorder.snapshots]

    def test_action_payload_captures_pre_action_locals(self):
        from repro.sim import ring

        engine, recorder = self._engine(ring(5))
        engine.run(400)
        exits = [
            e
            for e in recorder.events
            if e.kind is EventKind.ACTION and e.detail == "exit"
        ]
        assert exits, "a 400-step ring run must contain exits"
        assert all(isinstance(e.payload, dict) and "depth" in e.payload for e in exits)
