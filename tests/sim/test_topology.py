"""Unit tests for topologies and generators."""

import pytest

from repro.sim import (
    Topology,
    TopologyError,
    UnknownProcessError,
    binary_tree,
    complete,
    edge,
    figure2,
    from_mapping,
    grid,
    line,
    random_connected,
    ring,
    star,
)


class TestTopologyBasics:
    def test_nodes_preserve_order(self):
        t = Topology(["c", "a", "b"], [("c", "a"), ("a", "b")])
        assert t.nodes == ("c", "a", "b")

    def test_neighbors_symmetric(self):
        t = line(3)
        assert 1 in t.neighbors(0)
        assert 0 in t.neighbors(1)

    def test_neighbors_excludes_self(self):
        t = ring(4)
        assert 0 not in t.neighbors(0)

    def test_degree(self):
        t = star(4)
        assert t.degree(0) == 4
        assert t.degree(1) == 1

    def test_are_neighbors(self):
        t = line(3)
        assert t.are_neighbors(0, 1)
        assert not t.are_neighbors(0, 2)

    def test_contains(self):
        t = line(3)
        assert 2 in t
        assert 99 not in t

    def test_len(self):
        assert len(grid(3, 4)) == 12

    def test_self_loop_rejected(self):
        with pytest.raises(TopologyError):
            Topology([0, 1], [(0, 0)])

    def test_duplicate_edge_rejected(self):
        with pytest.raises(TopologyError):
            Topology([0, 1], [(0, 1), (1, 0)])

    def test_duplicate_node_rejected(self):
        with pytest.raises(TopologyError):
            Topology([0, 0], [])

    def test_unknown_endpoint_rejected(self):
        with pytest.raises(UnknownProcessError):
            Topology([0, 1], [(0, 7)])

    def test_disconnected_rejected_by_default(self):
        with pytest.raises(TopologyError):
            Topology([0, 1, 2], [(0, 1)])

    def test_disconnected_opt_in(self):
        t = Topology([0, 1, 2], [(0, 1)], allow_disconnected=True)
        with pytest.raises(TopologyError):
            t.distance(0, 2)

    def test_empty_rejected(self):
        with pytest.raises(TopologyError):
            Topology([], [])

    def test_unknown_pid_in_neighbors(self):
        with pytest.raises(UnknownProcessError):
            line(3).neighbors(42)


class TestDistances:
    def test_self_distance_zero(self):
        assert ring(5).distance(2, 2) == 0

    def test_line_distance(self):
        assert line(6).distance(0, 5) == 5

    def test_ring_wraps(self):
        assert ring(6).distance(0, 5) == 1

    def test_grid_manhattan(self):
        t = grid(3, 3)  # nodes y*3+x
        assert t.distance(0, 8) == 4

    def test_diameter_line(self):
        assert line(7).diameter == 6

    def test_diameter_ring_even(self):
        assert ring(8).diameter == 4

    def test_diameter_ring_odd(self):
        assert ring(7).diameter == 3

    def test_diameter_complete(self):
        assert complete(5).diameter == 1

    def test_diameter_star(self):
        assert star(5).diameter == 2

    def test_single_node_diameter(self):
        assert line(1).diameter == 0

    def test_ball(self):
        t = line(7)
        assert t.ball(3, 1) == frozenset({2, 3, 4})

    def test_ball_radius_zero(self):
        assert line(5).ball(2, 0) == frozenset({2})

    def test_outside_ball(self):
        t = line(7)
        assert t.outside_ball([0], 2) == frozenset({3, 4, 5, 6})

    def test_outside_ball_multiple_centers(self):
        t = line(7)
        assert t.outside_ball([0, 6], 2) == frozenset({3})


class TestLongestSimplePath:
    def test_line(self):
        assert line(5).longest_simple_path() == 4

    def test_triangle_exceeds_diameter(self):
        t = ring(3)
        assert t.diameter == 1
        assert t.longest_simple_path() == 2

    def test_ring(self):
        assert ring(6).longest_simple_path() == 5

    def test_star_equals_diameter(self):
        t = star(4)
        assert t.longest_simple_path() == t.diameter == 2

    def test_cached(self):
        t = ring(5)
        assert t.longest_simple_path() == t.longest_simple_path()


class TestGenerators:
    def test_ring_minimum(self):
        with pytest.raises(TopologyError):
            ring(2)

    def test_ring_structure(self):
        t = ring(5)
        assert all(t.degree(p) == 2 for p in t.nodes)

    def test_line_single(self):
        assert len(line(1)) == 1

    def test_complete_edges(self):
        assert len(complete(5).edges) == 10

    def test_grid_edges(self):
        assert len(grid(3, 2).edges) == 7

    def test_binary_tree_size(self):
        assert len(binary_tree(3)) == 15

    def test_binary_tree_is_tree(self):
        t = binary_tree(2)
        assert len(t.edges) == len(t) - 1

    def test_random_connected_is_connected(self):
        t = random_connected(20, 0.05, seed=3)
        # Construction would raise if disconnected.
        assert len(t) == 20

    def test_random_connected_deterministic(self):
        a = random_connected(12, 0.2, seed=9)
        b = random_connected(12, 0.2, seed=9)
        assert a.edges == b.edges

    def test_random_connected_zero_probability_is_tree(self):
        t = random_connected(10, 0.0, seed=4)
        assert len(t.edges) == 9

    def test_random_connected_full_probability_is_complete(self):
        t = random_connected(6, 1.0, seed=4)
        assert len(t.edges) == 15

    def test_from_mapping(self):
        t = from_mapping({"a": ["b"], "b": ["a", "c"], "c": ["b"]})
        assert t.are_neighbors("a", "b")
        assert not t.are_neighbors("a", "c")

    def test_edge_is_unordered(self):
        assert edge(1, 2) == edge(2, 1)


class TestFigure2Topology:
    def test_has_seven_processes(self):
        assert len(figure2()) == 7

    def test_diameter_is_three(self):
        assert figure2().diameter == 3

    def test_crash_site_adjacency(self):
        t = figure2()
        assert set(t.neighbors("a")) == {"b", "c"}

    def test_d_is_two_hops_from_a(self):
        assert figure2().distance("a", "d") == 2

    def test_triangle_efg(self):
        t = figure2()
        assert t.are_neighbors("e", "f")
        assert t.are_neighbors("f", "g")
        assert t.are_neighbors("e", "g")

    def test_efg_three_hops_from_crash(self):
        t = figure2()
        assert all(t.distance("a", p) == 3 for p in "efg")


class TestTorusAndHypercube:
    def test_torus_degree(self):
        from repro.sim import torus

        t = torus(4, 3)
        assert all(t.degree(p) == 4 for p in t.nodes)

    def test_torus_size_and_edges(self):
        from repro.sim import torus

        t = torus(3, 3)
        assert len(t) == 9
        assert len(t.edges) == 18  # 2 edges per node

    def test_torus_minimum_dimension(self):
        from repro.sim import torus

        with pytest.raises(TopologyError):
            torus(2, 3)

    def test_torus_diameter(self):
        from repro.sim import torus

        assert torus(4, 4).diameter == 4  # 2 + 2 wraparound hops

    def test_hypercube_structure(self):
        from repro.sim import hypercube

        h = hypercube(3)
        assert len(h) == 8
        assert all(h.degree(p) == 3 for p in h.nodes)
        assert h.diameter == 3

    def test_hypercube_neighbors_differ_by_one_bit(self):
        from repro.sim import hypercube

        h = hypercube(4)
        for p in h.nodes:
            for q in h.neighbors(p):
                assert bin(p ^ q).count("1") == 1

    def test_hypercube_dimension_validation(self):
        from repro.sim import hypercube

        with pytest.raises(TopologyError):
            hypercube(0)
