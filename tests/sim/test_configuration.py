"""Unit tests for immutable configurations."""

import pytest

from repro.core import NADiners
from repro.sim import (
    Configuration,
    NotNeighborsError,
    System,
    UnknownProcessError,
    UnknownVariableError,
    line,
    edge,
)


def fresh_config():
    return System(line(3), NADiners()).snapshot()


class TestAccessors:
    def test_local_read(self):
        c = fresh_config()
        assert c.local(0, "state") == "T"

    def test_unknown_process(self):
        with pytest.raises(UnknownProcessError):
            fresh_config().local(99, "state")

    def test_unknown_variable(self):
        with pytest.raises(UnknownVariableError):
            fresh_config().local(0, "nope")

    def test_locals_of_is_copy(self):
        c = fresh_config()
        values = c.locals_of(0)
        values["state"] = "E"
        assert c.local(0, "state") == "T"

    def test_edge_value_symmetric_args(self):
        c = fresh_config()
        assert c.edge_value(0, 1) == c.edge_value(1, 0)

    def test_edge_value_non_neighbors(self):
        with pytest.raises(NotNeighborsError):
            fresh_config().edge_value(0, 2)

    def test_live_and_dead(self):
        system = System(line(3), NADiners(), initially_dead=[1])
        c = system.snapshot()
        assert c.dead == frozenset({1})
        assert c.live == (0, 2)
        assert c.is_dead(1)
        assert not c.is_dead(0)

    def test_faulty_includes_malicious(self):
        system = System(line(3), NADiners())
        system.mark_malicious(2)
        c = system.snapshot()
        assert c.malicious == frozenset({2})
        assert c.faulty == frozenset({2})
        assert 2 not in c.live


class TestEqualityAndHashing:
    def test_snapshots_of_same_state_equal(self):
        system = System(line(3), NADiners())
        assert system.snapshot() == system.snapshot()

    def test_hash_consistent(self):
        system = System(line(3), NADiners())
        assert hash(system.snapshot()) == hash(system.snapshot())

    def test_differs_after_write(self):
        system = System(line(3), NADiners())
        before = system.snapshot()
        system.write_local(0, "state", "H")
        assert system.snapshot() != before

    def test_differs_after_edge_write(self):
        system = System(line(3), NADiners())
        before = system.snapshot()
        system.write_edge(edge(0, 1), 1)
        assert system.snapshot() != before

    def test_differs_by_death(self):
        a = System(line(3), NADiners()).snapshot()
        b = System(line(3), NADiners(), initially_dead=[0]).snapshot()
        assert a != b

    def test_usable_in_sets(self):
        system = System(line(3), NADiners())
        seen = {system.snapshot()}
        assert system.snapshot() in seen
        system.write_local(1, "depth", 2)
        assert system.snapshot() not in seen


class TestReplace:
    def test_local_update(self):
        c = fresh_config()
        c2 = c.replace(local_updates={0: {"state": "H"}})
        assert c2.local(0, "state") == "H"
        assert c.local(0, "state") == "T"  # original untouched

    def test_edge_update(self):
        c = fresh_config()
        c2 = c.replace(edge_updates={edge(0, 1): 1})
        assert c2.edge_value(0, 1) == 1

    def test_dead_update(self):
        c = fresh_config()
        c2 = c.replace(dead=[2])
        assert c2.is_dead(2)
        assert not c.is_dead(2)

    def test_unknown_process_in_update(self):
        with pytest.raises(UnknownProcessError):
            fresh_config().replace(local_updates={42: {"state": "H"}})

    def test_unknown_edge_in_update(self):
        with pytest.raises(NotNeighborsError):
            fresh_config().replace(edge_updates={edge(0, 2): 0})


class TestValidation:
    def test_missing_process_rejected(self):
        topo = line(2)
        with pytest.raises(UnknownProcessError):
            Configuration(topo, {0: {"state": "T"}}, {edge(0, 1): 0})

    def test_missing_edge_rejected(self):
        topo = line(2)
        with pytest.raises(NotNeighborsError):
            Configuration(topo, {0: {}, 1: {}}, {})


class TestDescribe:
    def test_describe_mentions_every_process(self):
        text = fresh_config().describe()
        for pid in (0, 1, 2):
            assert repr(pid) in text

    def test_describe_marks_dead(self):
        c = System(line(3), NADiners(), initially_dead=[1]).snapshot()
        assert "DEAD" in c.describe()
