"""Unit tests for fault events and fault plans."""

import random

import pytest

from repro.core import NADiners
from repro.sim import (
    BenignCrash,
    FaultPlan,
    FaultPlanError,
    MaliciousCrash,
    ProcessStatus,
    System,
    TransientFault,
    line,
)


class TestEvents:
    def test_benign_crash_kills(self):
        s = System(line(3), NADiners())
        BenignCrash(1).apply(s, random.Random(0))
        assert s.status(1) is ProcessStatus.DEAD

    def test_malicious_crash_marks(self):
        s = System(line(3), NADiners())
        MaliciousCrash(1, malicious_steps=3).apply(s, random.Random(0))
        assert s.status(1) is ProcessStatus.MALICIOUS

    def test_malicious_zero_steps_is_benign(self):
        s = System(line(3), NADiners())
        MaliciousCrash(1, malicious_steps=0).apply(s, random.Random(0))
        assert s.status(1) is ProcessStatus.DEAD

    def test_malicious_negative_steps_rejected(self):
        with pytest.raises(FaultPlanError):
            MaliciousCrash(1, malicious_steps=-1)

    def test_transient_global(self):
        s = System(line(3), NADiners())
        TransientFault().apply(s, random.Random(1))
        for p in s.pids:  # everything remains in-domain
            assert s.read_local(p, "state") in ("T", "H", "E")

    def test_transient_scoped(self):
        s = System(line(5), NADiners())
        before = s.snapshot()
        TransientFault(pids=(0,)).apply(s, random.Random(1))
        after = s.snapshot()
        assert before.locals_of(4) == after.locals_of(4)


class TestFaultPlan:
    def test_events_sorted_by_step(self):
        plan = FaultPlan([BenignCrash(0, at_step=10), BenignCrash(1, at_step=5)])
        assert [e.at_step for e in plan.events] == [5, 10]

    def test_due_pops_in_order(self):
        plan = FaultPlan([BenignCrash(0, at_step=2), BenignCrash(1, at_step=5)])
        assert plan.due(1) == []
        assert [e.pid for e in plan.due(2)] == [0]
        assert [e.pid for e in plan.due(10)] == [1]
        assert plan.exhausted()

    def test_due_catches_up_past_events(self):
        plan = FaultPlan([BenignCrash(0, at_step=1), BenignCrash(1, at_step=2)])
        assert len(plan.due(100)) == 2

    def test_reset(self):
        plan = FaultPlan([BenignCrash(0, at_step=0)])
        plan.due(0)
        assert plan.exhausted()
        plan.reset()
        assert not plan.exhausted()

    def test_double_crash_rejected(self):
        with pytest.raises(FaultPlanError):
            FaultPlan([BenignCrash(0), MaliciousCrash(0, at_step=5)])

    def test_negative_step_rejected(self):
        with pytest.raises(FaultPlanError):
            FaultPlan([BenignCrash(0, at_step=-1)])

    def test_crash_sites(self):
        plan = FaultPlan(
            [BenignCrash(0), MaliciousCrash(2, at_step=3), TransientFault(at_step=1)]
        )
        assert set(plan.crash_sites) == {0, 2}

    def test_malicious_budget(self):
        plan = FaultPlan([MaliciousCrash(1, malicious_steps=7)])
        assert plan.malicious_budget() == {1: 7}

    def test_len(self):
        assert len(FaultPlan([BenignCrash(0), TransientFault()])) == 2

    def test_empty_plan(self):
        plan = FaultPlan()
        assert plan.exhausted()
        assert plan.due(0) == []
