"""Unit tests for daemons (schedulers)."""

import random

import pytest

from repro.core import NADiners
from repro.sim import (
    AdversarialDaemon,
    RoundRobinDaemon,
    SchedulingError,
    System,
    WeaklyFairDaemon,
    line,
    ring,
    starve_target,
)


def enabled_system():
    """A line(3) where everyone wants to eat: joins enabled everywhere."""
    s = System(line(3), NADiners())
    for p in s.pids:
        s.write_local(p, "needs", True)
    return s


class TestWeaklyFairDaemon:
    def test_selects_an_enabled_action(self):
        s = enabled_system()
        d = WeaklyFairDaemon()
        enabled = s.all_enabled()
        choice = d.select(s, enabled, 0, random.Random(0))
        assert choice in enabled

    def test_patience_forces_oldest(self):
        s = enabled_system()
        d = WeaklyFairDaemon(patience=3)
        rng = random.Random(0)
        enabled = s.all_enabled()
        # Keep presenting the same enabled set without executing anything:
        # after enough rounds every selection must be a fairness-forced one.
        seen = set()
        for step in range(60):
            choice = d.select(s, enabled, step, rng)
            seen.add((choice[0], choice[1].name))
        assert seen == {(p, a.name) for p, a in enabled}

    def test_invalid_patience(self):
        with pytest.raises(SchedulingError):
            WeaklyFairDaemon(patience=0)

    def test_reset_clears_ages(self):
        d = WeaklyFairDaemon(patience=1)
        s = enabled_system()
        d.select(s, s.all_enabled(), 0, random.Random(0))
        d.reset()  # must not raise; ages cleared

    def test_fairness_over_full_run(self):
        # In a fault-free always-hungry ring every process must eat.
        from repro.sim import AlwaysHungry, Engine

        s = System(ring(5), NADiners())
        e = Engine(s, WeaklyFairDaemon(), hunger=AlwaysHungry(), seed=3)
        e.run(4000)
        assert all(e.eats_of(p) > 0 for p in s.pids)


class TestRoundRobinDaemon:
    def test_deterministic(self):
        s1, s2 = enabled_system(), enabled_system()
        d1, d2 = RoundRobinDaemon(), RoundRobinDaemon()
        rng = random.Random(0)
        for _ in range(10):
            c1 = d1.select(s1, s1.all_enabled(), 0, rng)
            c2 = d2.select(s2, s2.all_enabled(), 0, rng)
            assert (c1[0], c1[1].name) == (c2[0], c2[1].name)
            s1.execute(*c1)
            s2.execute(*c2)

    def test_cycles_over_processes(self):
        s = enabled_system()
        d = RoundRobinDaemon()
        rng = random.Random(0)
        picked = []
        for _ in range(3):
            choice = d.select(s, s.all_enabled(), 0, rng)
            picked.append(choice[0])
        assert picked == [0, 1, 2]

    def test_skips_processes_without_enabled_actions(self):
        s = System(line(3), NADiners())
        s.write_local(2, "needs", True)  # only process 2 can act
        d = RoundRobinDaemon()
        choice = d.select(s, s.all_enabled(), 0, random.Random(0))
        assert choice[0] == 2

    def test_empty_set_raises(self):
        s = System(line(3), NADiners())
        with pytest.raises(SchedulingError):
            RoundRobinDaemon().select(s, [], 0, random.Random(0))


class TestAdversarialDaemon:
    def test_prefers_high_score(self):
        s = enabled_system()
        d = AdversarialDaemon(lambda sys, pid, a: float(pid))
        choice = d.select(s, s.all_enabled(), 0, random.Random(0))
        assert choice[0] == 2

    def test_starve_target_avoids_target(self):
        s = enabled_system()
        d = AdversarialDaemon(starve_target(0), patience=None)
        for step in range(20):
            choice = d.select(s, s.all_enabled(), step, random.Random(0))
            assert choice[0] != 0  # 0's join stays enabled, never chosen

    def test_patience_eventually_serves_target(self):
        s = enabled_system()
        d = AdversarialDaemon(starve_target(0), patience=5)
        served = False
        for step in range(40):
            choice = d.select(s, s.all_enabled(), step, random.Random(0))
            if choice[0] == 0:
                served = True
                break
        assert served

    def test_invalid_patience(self):
        with pytest.raises(SchedulingError):
            AdversarialDaemon(lambda s, p, a: 0.0, patience=0)

    def test_liveness_survives_adversary(self):
        """Theorem 2 under the nastiest fair schedule we can produce."""
        from repro.sim import AlwaysHungry, Engine

        s = System(ring(5), NADiners())
        e = Engine(
            s,
            AdversarialDaemon(starve_target(0), patience=32),
            hunger=AlwaysHungry(),
            seed=7,
        )
        e.run(8000)
        assert e.eats_of(0) > 0


class TestRoundDaemon:
    def test_counts_rounds(self):
        from repro.core import NADiners
        from repro.sim import AlwaysHungry, Engine, RoundDaemon, System, ring

        daemon = RoundDaemon()
        s = System(ring(5), NADiners())
        e = Engine(s, daemon, hunger=AlwaysHungry(), seed=1)
        e.run(2000)
        assert daemon.rounds_completed > 0
        assert daemon.rounds_completed < 2000

    def test_round_executes_all_continuously_enabled(self):
        from repro.sim import Engine, RoundDaemon, System, ring
        from repro.mp import KStateToken

        # In the K-state ring exactly one action is enabled at a time, so
        # every round has size 1 and rounds == steps.
        daemon = RoundDaemon()
        s = System(ring(4), KStateToken(k=6))
        e = Engine(s, daemon, seed=2)
        e.run(100)
        assert daemon.rounds_completed in (99, 100, 101)

    def test_reset(self):
        from repro.sim import RoundDaemon

        daemon = RoundDaemon()
        daemon.rounds_completed = 5
        daemon._queue = [("x", "y")]
        daemon.reset()
        assert daemon.rounds_completed == 0

    def test_liveness_under_round_daemon(self):
        from repro.core import NADiners
        from repro.sim import AlwaysHungry, Engine, RoundDaemon, System, line

        s = System(line(5), NADiners())
        e = Engine(s, RoundDaemon(), hunger=AlwaysHungry(), seed=3)
        e.run(6000)
        assert all(e.eats_of(p) > 0 for p in s.pids)
