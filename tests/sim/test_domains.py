"""Unit tests for variable domains."""

import random

import pytest

from repro.sim import BoolDomain, DomainError, FiniteDomain, IntRange, SaturatingInt


class TestFiniteDomain:
    def test_contains_member(self):
        d = FiniteDomain(("T", "H", "E"))
        assert d.contains("H")

    def test_rejects_non_member(self):
        d = FiniteDomain(("T", "H", "E"))
        assert not d.contains("X")

    def test_values_in_declaration_order(self):
        d = FiniteDomain((3, 1, 2))
        assert list(d.values()) == [3, 1, 2]

    def test_len(self):
        assert len(FiniteDomain((1, 2, 3))) == 3

    def test_sample_is_member_and_deterministic(self):
        d = FiniteDomain(("a", "b", "c"))
        a = d.sample(random.Random(7))
        b = d.sample(random.Random(7))
        assert a == b
        assert d.contains(a)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            FiniteDomain(())

    def test_duplicates_rejected(self):
        with pytest.raises(ValueError):
            FiniteDomain((1, 1))

    def test_validate_raises_domain_error_with_name(self):
        d = FiniteDomain((1, 2))
        with pytest.raises(DomainError) as exc:
            d.validate("state", 99)
        assert exc.value.name == "state"
        assert exc.value.value == 99

    def test_validate_returns_value(self):
        assert FiniteDomain((1, 2)).validate("x", 2) == 2


class TestIntRange:
    def test_bounds_inclusive(self):
        d = IntRange(0, 3)
        assert d.contains(0)
        assert d.contains(3)

    def test_out_of_range(self):
        d = IntRange(0, 3)
        assert not d.contains(-1)
        assert not d.contains(4)

    def test_rejects_bool(self):
        # bool is an int subtype; a counter domain must not accept True.
        assert not IntRange(0, 3).contains(True)

    def test_rejects_non_int(self):
        assert not IntRange(0, 3).contains(1.5)

    def test_values(self):
        assert list(IntRange(2, 5).values()) == [2, 3, 4, 5]

    def test_len(self):
        assert len(IntRange(0, 4)) == 5

    def test_empty_range_rejected(self):
        with pytest.raises(ValueError):
            IntRange(5, 4)

    def test_sample_within(self):
        d = IntRange(10, 20)
        rng = random.Random(1)
        assert all(10 <= d.sample(rng) <= 20 for _ in range(50))


class TestSaturatingInt:
    def test_accepts_beyond_cap(self):
        # Writes are unbounded; only sampling/enumeration saturate.
        d = SaturatingInt(cap=5)
        assert d.contains(1_000_000)

    def test_rejects_negative(self):
        assert not SaturatingInt(5).contains(-1)

    def test_rejects_bool(self):
        assert not SaturatingInt(5).contains(False)

    def test_values_capped(self):
        assert list(SaturatingInt(3).values()) == [0, 1, 2, 3]

    def test_sample_capped(self):
        d = SaturatingInt(4)
        rng = random.Random(2)
        assert all(0 <= d.sample(rng) <= 4 for _ in range(50))

    def test_negative_cap_rejected(self):
        with pytest.raises(ValueError):
            SaturatingInt(-1)


class TestBoolDomain:
    def test_members(self):
        d = BoolDomain()
        assert d.contains(True)
        assert d.contains(False)
        assert not d.contains("yes")

    def test_values(self):
        assert set(BoolDomain().values()) == {False, True}

    def test_len(self):
        assert len(BoolDomain()) == 2
