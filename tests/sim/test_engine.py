"""Unit tests for the simulation engine."""

import pytest

from repro.core import NADiners
from repro.sim import (
    AlwaysHungry,
    BenignCrash,
    Engine,
    EventKind,
    FaultPlan,
    MaliciousCrash,
    NeverHungry,
    ProcessStatus,
    System,
    TraceRecorder,
    TransientFault,
    line,
    ring,
)


class TestBasicStepping:
    def test_quiescent_without_hunger(self):
        s = System(line(3), NADiners())
        e = Engine(s, hunger=NeverHungry(), seed=0)
        result = e.run(100)
        assert result.quiescent
        assert result.steps == 0

    def test_progress_with_hunger(self):
        s = System(line(3), NADiners())
        e = Engine(s, hunger=AlwaysHungry(), seed=0)
        result = e.run(500)
        assert result.exhausted
        assert e.total_eats() > 0

    def test_determinism(self):
        def run():
            s = System(ring(5), NADiners())
            e = Engine(s, hunger=AlwaysHungry(), seed=42)
            e.run(1000)
            return s.snapshot(), dict(e.action_counts)

        assert run() == run()

    def test_different_seeds_diverge(self):
        def run(seed):
            s = System(ring(5), NADiners())
            e = Engine(s, hunger=AlwaysHungry(), seed=seed)
            e.run(1000)
            return dict(e.action_counts)

        assert run(1) != run(2)

    def test_step_count_advances(self):
        s = System(line(3), NADiners())
        e = Engine(s, hunger=AlwaysHungry(), seed=0)
        e.run(10)
        assert e.step_count == 10

    def test_negative_max_steps(self):
        s = System(line(3), NADiners())
        e = Engine(s, seed=0)
        with pytest.raises(ValueError):
            e.run(-1)

    def test_bad_check_every(self):
        s = System(line(3), NADiners())
        e = Engine(s, seed=0)
        with pytest.raises(ValueError):
            e.run(10, stop_when=lambda c: False, check_every=0)


class TestStopWhen:
    def test_stops_at_predicate(self):
        s = System(line(3), NADiners())
        e = Engine(s, hunger=AlwaysHungry(), seed=0)
        result = e.run(
            10_000, stop_when=lambda c: any(c.local(p, "state") == "E" for p in (0, 1, 2))
        )
        assert result.stopped
        assert any(s.read_local(p, "state") == "E" for p in s.pids)

    def test_checks_initial_state(self):
        s = System(line(3), NADiners())
        e = Engine(s, seed=0)
        result = e.run(100, stop_when=lambda c: True)
        assert result.stopped
        assert result.steps == 0


class TestRunResultFlags:
    def test_exactly_one_flag(self):
        s = System(line(3), NADiners())
        e = Engine(s, hunger=AlwaysHungry(), seed=0)
        r = e.run(5)
        assert sum([r.quiescent, r.stopped, r.exhausted]) == 1


class TestHungerIntegration:
    def test_hunger_writes_needs(self):
        s = System(line(3), NADiners())
        e = Engine(s, hunger=AlwaysHungry(), seed=0)
        e.step()
        assert all(s.read_local(p, "needs") for p in s.pids)

    def test_no_hunger_policy_leaves_needs(self):
        s = System(line(3), NADiners())
        e = Engine(s, hunger=None, seed=0)
        e.run(50)
        assert all(not s.read_local(p, "needs") for p in s.pids)

    def test_dead_process_needs_frozen(self):
        s = System(line(3), NADiners(), initially_dead=[1])
        e = Engine(s, hunger=AlwaysHungry(), seed=0)
        e.run(20)
        assert s.read_local(1, "needs") is False


class TestFaultIntegration:
    def test_scheduled_benign_crash(self):
        s = System(line(3), NADiners())
        plan = FaultPlan([BenignCrash(1, at_step=10)])
        e = Engine(s, hunger=AlwaysHungry(), faults=plan, seed=0)
        e.run(50)
        assert s.status(1) is ProcessStatus.DEAD

    def test_malicious_phase_then_death(self):
        s = System(line(3), NADiners())
        plan = FaultPlan([MaliciousCrash(0, at_step=0, malicious_steps=5)])
        e = Engine(s, hunger=AlwaysHungry(), faults=plan, seed=0)
        e.run(3)
        assert s.status(0) is ProcessStatus.MALICIOUS
        e.run(10)
        assert s.status(0) is ProcessStatus.DEAD

    def test_transient_fault_applies(self):
        s = System(ring(6), NADiners())
        plan = FaultPlan([TransientFault(at_step=5)])
        recorder = TraceRecorder()
        e = Engine(s, hunger=AlwaysHungry(), faults=plan, recorder=recorder, seed=1)
        e.run(20)
        assert recorder.events_of_kind(EventKind.TRANSIENT)

    def test_idle_steps_while_waiting_for_fault(self):
        # Nothing enabled (nobody hungry), but a fault is scheduled later:
        # the engine must advance time to reach it, not stop.
        s = System(line(3), NADiners())
        plan = FaultPlan([BenignCrash(0, at_step=7)])
        e = Engine(s, hunger=NeverHungry(), faults=plan, seed=0)
        result = e.run(50)
        assert s.status(0) is ProcessStatus.DEAD
        assert result.quiescent

    def test_inject_immediate(self):
        s = System(line(3), NADiners())
        e = Engine(s, hunger=AlwaysHungry(), seed=0)
        e.run(5)
        e.inject(BenignCrash(2))
        assert s.status(2) is ProcessStatus.DEAD

    def test_inject_malicious_then_retire(self):
        s = System(line(3), NADiners())
        e = Engine(s, hunger=AlwaysHungry(), seed=0)
        e.inject(MaliciousCrash(0, malicious_steps=3))
        assert s.status(0) is ProcessStatus.MALICIOUS
        e.run(10)
        assert s.status(0) is ProcessStatus.DEAD


class TestCounters:
    def test_action_counts_accumulate(self):
        s = System(line(3), NADiners())
        e = Engine(s, hunger=AlwaysHungry(), seed=0)
        e.run(300)
        assert sum(e.action_counts.values()) == 300

    def test_eats_of_matches_enter_count(self):
        s = System(line(3), NADiners())
        e = Engine(s, hunger=AlwaysHungry(), seed=0)
        e.run(500)
        assert e.eats_of(0) == e.action_counts[(0, "enter")]
        assert e.total_eats() == sum(e.eats_of(p) for p in s.pids)


class TestRecorderIntegration:
    def test_events_recorded(self):
        s = System(line(3), NADiners())
        rec = TraceRecorder()
        e = Engine(s, hunger=AlwaysHungry(), recorder=rec, seed=0)
        e.run(100)
        actions = rec.events_of_kind(EventKind.ACTION)
        assert len(actions) == 100

    def test_snapshot_cadence(self):
        s = System(line(3), NADiners())
        rec = TraceRecorder(snapshot_every=10)
        e = Engine(s, hunger=AlwaysHungry(), recorder=rec, seed=0)
        e.run(35)
        steps = [step for step, _ in rec.snapshots]
        assert steps == [0, 10, 20, 30, 35]

    def test_malice_events_recorded(self):
        s = System(line(3), NADiners())
        plan = FaultPlan([MaliciousCrash(0, at_step=0, malicious_steps=2)])
        rec = TraceRecorder()
        e = Engine(s, hunger=AlwaysHungry(), faults=plan, recorder=rec, seed=0)
        e.run(10)
        assert rec.events_of_kind(EventKind.MALICE_BEGIN)
        assert len(rec.events_of_kind(EventKind.HAVOC)) == 2
        assert rec.events_of_kind(EventKind.CRASH)


class TestIdleAndQuiescence:
    def test_idle_event_recorded_while_waiting(self):
        s = System(line(3), NADiners())
        plan = FaultPlan([BenignCrash(0, at_step=5)])
        rec = TraceRecorder()
        e = Engine(s, hunger=NeverHungry(), faults=plan, recorder=rec, seed=0)
        e.run(20)
        assert rec.events_of_kind(EventKind.IDLE)

    def test_no_step_after_terminal(self):
        s = System(line(3), NADiners())
        e = Engine(s, hunger=NeverHungry(), seed=0)
        assert not e.step()
        assert not e.step()  # stays terminal, no state change
        assert e.step_count == 0

    def test_malicious_process_keeps_engine_alive(self):
        # No algorithm action enabled, but a malicious process still has
        # havoc steps to take: the engine must keep ticking.
        s = System(line(3), NADiners())
        plan = FaultPlan([MaliciousCrash(1, at_step=0, malicious_steps=4)])
        e = Engine(s, hunger=NeverHungry(), faults=plan, seed=1)
        result = e.run(50)
        assert s.status(1) is ProcessStatus.DEAD
        assert result.quiescent
