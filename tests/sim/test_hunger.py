"""Unit tests for hunger policies."""

import random

import pytest

from repro.sim import (
    AlwaysHungry,
    NeverHungry,
    ProbabilisticHunger,
    ScriptedHunger,
    SelectiveHunger,
)


RNG = random.Random(123)


class TestAlwaysNever:
    def test_always(self):
        assert all(AlwaysHungry().wants(p, s, RNG) for p in range(3) for s in range(5))

    def test_never(self):
        assert not any(NeverHungry().wants(p, s, RNG) for p in range(3) for s in range(5))


class TestProbabilistic:
    def test_extremes(self):
        assert ProbabilisticHunger(1.0).wants(0, 0, random.Random(0))
        assert not ProbabilisticHunger(0.0).wants(0, 0, random.Random(0))

    def test_rate_roughly_matches(self):
        policy = ProbabilisticHunger(0.3)
        rng = random.Random(9)
        hits = sum(policy.wants(0, s, rng) for s in range(10_000))
        assert 2700 < hits < 3300

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            ProbabilisticHunger(1.5)
        with pytest.raises(ValueError):
            ProbabilisticHunger(-0.1)


class TestSelective:
    def test_only_listed(self):
        policy = SelectiveHunger([1, 3])
        assert policy.wants(1, 0, RNG)
        assert policy.wants(3, 99, RNG)
        assert not policy.wants(2, 0, RNG)


class TestScripted:
    def test_switch_points(self):
        policy = ScriptedHunger({0: [(0, True), (10, False), (20, True)]})
        assert policy.wants(0, 0, RNG)
        assert policy.wants(0, 9, RNG)
        assert not policy.wants(0, 10, RNG)
        assert not policy.wants(0, 19, RNG)
        assert policy.wants(0, 25, RNG)

    def test_before_first_switch_uses_default(self):
        policy = ScriptedHunger({0: [(5, True)]}, default=False)
        assert not policy.wants(0, 4, RNG)
        assert policy.wants(0, 5, RNG)

    def test_unscripted_process_uses_default(self):
        policy = ScriptedHunger({0: [(0, True)]}, default=True)
        assert policy.wants(7, 0, RNG)

    def test_unsorted_input_accepted(self):
        policy = ScriptedHunger({0: [(10, False), (0, True)]})
        assert policy.wants(0, 5, RNG)
        assert not policy.wants(0, 15, RNG)

    def test_duplicate_switch_rejected(self):
        with pytest.raises(ValueError):
            ScriptedHunger({0: [(3, True), (3, False)]})
