"""Tests for configuration serialization and diffing."""

import random

import pytest

from repro.core import NADiners, invariant_holds
from repro.sim import (
    SimulationError,
    System,
    diff_configurations,
    from_json,
    line,
    ring,
    to_json,
)
from repro.core import figure2_configuration


class TestRoundTrip:
    def test_pristine(self):
        c = System(line(4), NADiners()).snapshot()
        assert from_json(to_json(c)) == c

    @pytest.mark.parametrize("seed", range(5))
    def test_randomized(self, seed):
        s = System(ring(6), NADiners())
        s.randomize(random.Random(seed))
        c = s.snapshot()
        assert from_json(to_json(c)) == c

    def test_statuses_preserved(self):
        s = System(line(4), NADiners())
        s.kill(0)
        s.mark_malicious(2)
        c2 = from_json(to_json(s.snapshot()))
        assert c2.dead == frozenset({0})
        assert c2.malicious == frozenset({2})

    def test_string_pids(self):
        c = figure2_configuration()
        c2 = from_json(to_json(c))
        assert c2 == c
        assert c2.topology.diameter == 3

    def test_predicates_work_on_loaded(self):
        c = System(line(4), NADiners()).snapshot()
        assert invariant_holds(from_json(to_json(c)))

    def test_compact_mode(self):
        c = System(line(3), NADiners()).snapshot()
        assert "\n" not in to_json(c, indent=None)


class TestRejection:
    def test_not_json(self):
        with pytest.raises(SimulationError):
            from_json("{nope")

    def test_wrong_format_version(self):
        import json

        c = System(line(3), NADiners()).snapshot()
        payload = json.loads(to_json(c))
        payload["format"] = 99
        with pytest.raises(SimulationError):
            from_json(json.dumps(payload))

    def test_non_literal_value_rejected_at_save(self):
        from repro.sim.serialize import _encode

        with pytest.raises(SimulationError):
            _encode(object())


class TestDiff:
    def test_empty_diff(self):
        c = System(line(3), NADiners()).snapshot()
        d = diff_configurations(c, c)
        assert d.empty
        assert d.render() == "(no differences)"

    def test_local_change(self):
        s = System(line(3), NADiners())
        before = s.snapshot()
        s.write_local(1, "state", "E")
        d = diff_configurations(before, s.snapshot())
        assert d.locals_changed == ((1, "state", "T", "E"),)

    def test_edge_change(self):
        from repro.sim import edge

        s = System(line(3), NADiners())
        before = s.snapshot()
        s.write_edge(edge(0, 1), 1)
        d = diff_configurations(before, s.snapshot())
        assert d.edges_changed == ((0, 1, 0, 1),)

    def test_status_change(self):
        s = System(line(3), NADiners())
        before = s.snapshot()
        s.kill(2)
        d = diff_configurations(before, s.snapshot())
        assert d.status_changed == ((2, "alive", "dead"),)

    def test_render_mentions_changes(self):
        s = System(line(3), NADiners())
        before = s.snapshot()
        s.write_local(0, "depth", 7)
        text = diff_configurations(before, s.snapshot()).render()
        assert "depth" in text and "7" in text

    def test_topology_mismatch(self):
        a = System(line(3), NADiners()).snapshot()
        b = System(ring(3), NADiners()).snapshot()
        with pytest.raises(SimulationError):
            diff_configurations(a, b)

    def test_transition_explained_by_diff(self):
        """A single engine step's diff names exactly the variables that
        action writes — transition forensics in one call."""
        s = System(line(3), NADiners())
        s.write_local(0, "needs", True)
        before = s.snapshot()
        s.execute(0, NADiners().action_named("join"))
        d = diff_configurations(before, s.snapshot())
        assert [(c[0], c[1]) for c in d.locals_changed] == [(0, "state")]
        assert not d.edges_changed
