"""Unit tests for the mutable System."""

import random

import pytest

from repro.core import NADiners
from repro.sim import (
    DeadProcessError,
    DomainError,
    NotNeighborsError,
    ProcessStatus,
    System,
    UnknownProcessError,
    UnknownVariableError,
    edge,
    line,
    ring,
)


class TestConstruction:
    def test_initial_state_is_legitimate(self):
        s = System(line(4), NADiners())
        assert all(s.read_local(p, "state") == "T" for p in s.pids)
        # depth holds the exact distance to the farthest descendant in the
        # initial (node-order) priority chain 0 -> 1 -> 2 -> 3.
        assert [s.read_local(p, "depth") for p in s.pids] == [3, 2, 1, 0]

    def test_initial_state_is_quiescent(self):
        assert System(line(4), NADiners()).is_quiescent()

    def test_initial_priorities_by_node_order(self):
        s = System(line(3), NADiners())
        assert s.read_edge(edge(0, 1)) == 0
        assert s.read_edge(edge(1, 2)) == 1

    def test_initially_dead(self):
        s = System(line(3), NADiners(), initially_dead=[2])
        assert s.status(2) is ProcessStatus.DEAD
        assert not s.is_live(2)

    def test_initially_dead_unknown(self):
        with pytest.raises(UnknownProcessError):
            System(line(3), NADiners(), initially_dead=[42])

    def test_live_pids(self):
        s = System(line(3), NADiners(), initially_dead=[1])
        assert s.live_pids() == (0, 2)


class TestVariableAccess:
    def test_write_then_read(self):
        s = System(line(3), NADiners())
        s.write_local(1, "state", "H")
        assert s.read_local(1, "state") == "H"

    def test_write_out_of_domain(self):
        s = System(line(3), NADiners())
        with pytest.raises(DomainError):
            s.write_local(0, "state", "Z")

    def test_write_unknown_variable(self):
        s = System(line(3), NADiners())
        with pytest.raises(UnknownVariableError):
            s.write_local(0, "bogus", 1)

    def test_read_unknown_process(self):
        s = System(line(3), NADiners())
        with pytest.raises(UnknownProcessError):
            s.read_local(9, "state")

    def test_edge_write_validates_domain(self):
        s = System(line(3), NADiners())
        with pytest.raises(DomainError):
            s.write_edge(edge(0, 1), 2)  # 2 is not an endpoint

    def test_edge_unknown(self):
        s = System(line(3), NADiners())
        with pytest.raises(NotNeighborsError):
            s.read_edge(edge(0, 2))

    def test_local_variable_names(self):
        s = System(line(3), NADiners())
        assert set(s.local_variable_names()) == {"state", "needs", "depth"}


class TestStatusTransitions:
    def test_kill(self):
        s = System(line(3), NADiners())
        s.kill(0)
        assert s.status(0) is ProcessStatus.DEAD

    def test_malicious_then_kill(self):
        s = System(line(3), NADiners())
        s.mark_malicious(1)
        assert s.status(1) is ProcessStatus.MALICIOUS
        s.kill(1)
        assert s.status(1) is ProcessStatus.DEAD

    def test_mark_malicious_on_dead_rejected(self):
        s = System(line(3), NADiners())
        s.kill(1)
        with pytest.raises(DeadProcessError):
            s.mark_malicious(1)

    def test_dead_has_no_enabled_actions(self):
        s = System(line(3), NADiners())
        s.write_local(0, "needs", True)
        assert s.enabled_actions(0)  # join enabled while alive
        s.kill(0)
        assert s.enabled_actions(0) == []

    def test_malicious_has_no_enabled_actions(self):
        s = System(line(3), NADiners())
        s.write_local(0, "needs", True)
        s.mark_malicious(0)
        assert s.enabled_actions(0) == []

    def test_execute_on_dead_rejected(self):
        s = System(line(3), NADiners())
        action = NADiners().action_named("join")
        s.kill(0)
        with pytest.raises(DeadProcessError):
            s.execute(0, action)


class TestEnabledActions:
    def test_quiescent_when_nobody_needs(self):
        s = System(line(4), NADiners())
        assert s.is_quiescent()

    def test_join_enabled_when_needing(self):
        s = System(line(3), NADiners())
        s.write_local(2, "needs", True)
        names = [a.name for a in s.enabled_actions(2)]
        assert names == ["join"]

    def test_all_enabled_deterministic_order(self):
        s = System(line(3), NADiners())
        for p in s.pids:
            s.write_local(p, "needs", True)
        first = [(p, a.name) for p, a in s.all_enabled()]
        second = [(p, a.name) for p, a in s.all_enabled()]
        assert first == second


class TestFaultPrimitives:
    def test_havoc_touches_only_own_scope(self):
        s = System(line(5), NADiners())
        before = s.snapshot()
        s.havoc_process(2, random.Random(5))
        after = s.snapshot()
        for p in (0, 4):  # processes not adjacent to 2
            assert before.locals_of(p) == after.locals_of(p)
        assert before.edge_value(0, 1) == after.edge_value(0, 1)
        assert before.edge_value(3, 4) == after.edge_value(3, 4)

    def test_havoc_stays_in_domain(self):
        s = System(line(3), NADiners())
        for seed in range(20):
            s.havoc_process(1, random.Random(seed))
            assert s.read_local(1, "state") in ("T", "H", "E")
            assert s.read_local(1, "depth") >= 0

    def test_havoc_on_dead_rejected(self):
        s = System(line(3), NADiners())
        s.kill(1)
        with pytest.raises(DeadProcessError):
            s.havoc_process(1, random.Random(0))

    def test_randomize_all(self):
        s = System(ring(6), NADiners())
        snapshots = {s.snapshot()}
        s.randomize(random.Random(9))
        # Overwhelmingly likely to differ; every value still in-domain.
        assert s.snapshot() not in snapshots or True
        for p in s.pids:
            assert s.read_local(p, "state") in ("T", "H", "E")

    def test_randomize_subset_scopes_edges(self):
        s = System(line(5), NADiners())
        before = s.snapshot()
        s.randomize(random.Random(1), pids=[0])
        after = s.snapshot()
        assert before.locals_of(3) == after.locals_of(3)
        assert before.edge_value(2, 3) == after.edge_value(2, 3)


class TestSnapshotRestore:
    def test_roundtrip(self):
        s = System(ring(5), NADiners())
        s.randomize(random.Random(11))
        snap = s.snapshot()
        other = System(ring(5), NADiners())
        other.restore(snap)
        assert other.snapshot() == snap

    def test_from_configuration(self):
        s = System(line(4), NADiners())
        s.write_local(0, "state", "H")
        s.kill(3)
        clone = System.from_configuration(NADiners(), s.snapshot())
        assert clone.read_local(0, "state") == "H"
        assert clone.status(3) is ProcessStatus.DEAD

    def test_restore_restores_statuses(self):
        s = System(line(3), NADiners())
        s.kill(0)
        snap = s.snapshot()
        s2 = System(line(3), NADiners())
        s2.restore(snap)
        assert s2.status(0) is ProcessStatus.DEAD
        # restoring a fully-alive snapshot resurrects (used by the checker)
        s2.restore(System(line(3), NADiners()).snapshot())
        assert s2.status(0) is ProcessStatus.ALIVE
