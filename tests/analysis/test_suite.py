"""Tests for the programmatic experiment suite."""

import pytest

from repro.analysis import SuiteConfig, SuiteResult, run_suite, to_markdown


@pytest.fixture(scope="module")
def quick_result():
    return run_suite(SuiteConfig(quick=True, seed=1))


class TestSuiteConfig:
    def test_quick_sizes(self):
        config = SuiteConfig(quick=True)
        assert config.line_n < SuiteConfig(quick=False).line_n
        assert config.window < SuiteConfig(quick=False).window


class TestRunSuite:
    def test_all_sections_present(self, quick_result):
        titles = [s.title for s in quick_result.sections]
        assert len(titles) == 5
        assert any("locality" in t.lower() for t in titles)
        assert any("stabilization" in t.lower() for t in titles)
        assert any("throughput" in t.lower() for t in titles)
        assert any("malicious" in t.lower() for t in titles)
        assert any("masking" in t.lower() for t in titles)

    def test_rows_match_headers(self, quick_result):
        for section in quick_result.sections:
            for row in section.rows:
                assert len(row) == len(section.header)

    def test_paper_shape_in_results(self, quick_result):
        locality = quick_result.sections[0]
        radius = {row[0]: row[1] for row in locality.rows}
        assert radius["na-diners"] <= 2
        assert radius["hygienic"] > 2
        masking = quick_result.sections[4]
        assert all(row[2] == 0 for row in masking.rows)  # clean pairs: never


class TestMarkdownRendering:
    def test_renders_tables(self, quick_result):
        md = to_markdown(quick_result)
        assert md.startswith("# repro experiment suite")
        assert md.count("## ") == 5
        assert "| algorithm |" in md

    def test_mode_in_header(self, quick_result):
        assert "**quick**" in to_markdown(quick_result)

    def test_empty_result_renders(self):
        md = to_markdown(SuiteResult(config=SuiteConfig()))
        assert md.startswith("# repro experiment suite")


class TestSectionMetrics:
    def test_every_section_has_metrics(self, quick_result):
        assert all(section.metrics for section in quick_result.sections)

    def test_locality_metrics_shape(self, quick_result):
        by_title = {s.title: s for s in quick_result.sections}
        locality = next(
            s for t, s in by_title.items() if t.startswith("Failure locality")
        )
        assert set(locality.metrics) == {
            "na_diners_radius",
            "max_radius",
            "starving_total",
        }
        assert locality.metrics["na_diners_radius"] <= 2  # Theorem 2

    def test_suite_metrics_registry(self, quick_result):
        from repro.analysis import suite_metrics

        registry = suite_metrics(quick_result)
        names = registry.names()
        assert any(name.startswith("suite/failure-locality/") for name in names)
        assert any(name.startswith("suite/stabilization") for name in names)

    def test_metrics_out_writes_file(self, tmp_path):
        from repro.obs import read_metrics

        path = tmp_path / "suite.metrics"
        run_suite(SuiteConfig(quick=True, seed=1), metrics_out=path)
        parsed = read_metrics(path)
        assert parsed.header["source"] == "suite"
        assert "campaign/shards" in parsed.metrics
        assert any(name.startswith("suite/") for name in parsed.metrics)

    def test_spec_slug_is_stable(self):
        from repro.analysis import suite_specs

        slugs = [spec.slug() for spec in suite_specs(SuiteConfig(quick=True))]
        assert slugs == sorted(set(slugs), key=slugs.index)  # unique
        assert all(slug and slug == slug.lower() for slug in slugs)
