"""Unit tests for priority-graph analytics."""

from repro.analysis import (
    depth_errors,
    find_live_cycles,
    graph_stats,
    longest_live_chain,
    to_networkx,
)
from repro.analysis import plant_priority_cycle
from repro.core import NADiners
from repro.sim import System, line, ring


class TestCycles:
    def test_acyclic_initially(self):
        c = System(line(4), NADiners()).snapshot()
        assert find_live_cycles(c) == ()

    def test_detects_planted_cycle(self):
        s = System(ring(4), NADiners())
        plant_priority_cycle(s, [0, 1, 2, 3])
        cycles = find_live_cycles(s.snapshot())
        assert any(set(cy) == {0, 1, 2, 3} for cy in cycles)

    def test_cycle_with_dead_member_not_live(self):
        s = System(ring(4), NADiners())
        plant_priority_cycle(s, [0, 1, 2, 3])
        s.kill(2)
        assert find_live_cycles(s.snapshot()) == ()

    def test_canonical_dedup(self):
        s = System(ring(3), NADiners())
        plant_priority_cycle(s, [0, 1, 2])
        cycles = find_live_cycles(s.snapshot())
        assert len(cycles) == 1


class TestChains:
    def test_line_chain(self):
        c = System(line(4), NADiners()).snapshot()
        assert longest_live_chain(c) == 4

    def test_dead_break_chain(self):
        s = System(line(4), NADiners())
        s.kill(1)
        assert longest_live_chain(s.snapshot()) == 2  # 2 -> 3

    def test_cycle_reports_live_count(self):
        s = System(ring(5), NADiners())
        plant_priority_cycle(s, list(range(5)))
        assert longest_live_chain(s.snapshot()) == 5


class TestStats:
    def test_initial_line_stats(self):
        stats = graph_stats(System(line(4), NADiners()).snapshot())
        assert stats.live_acyclic
        assert stats.longest_live_chain == 4
        assert stats.sinks == (3,)
        assert stats.sources == (0,)

    def test_cycle_stats(self):
        s = System(ring(4), NADiners())
        plant_priority_cycle(s, [0, 1, 2, 3])
        stats = graph_stats(s.snapshot())
        assert not stats.live_acyclic
        assert stats.cycles


class TestDepthErrors:
    def test_exact_initial_depths(self):
        c = System(line(4), NADiners()).snapshot()
        assert all(err == 0 for err in depth_errors(c).values())

    def test_underestimate_negative(self):
        s = System(line(4), NADiners())
        s.write_local(0, "depth", 0)  # true depth is 3
        assert depth_errors(s.snapshot())[0] == -3

    def test_stale_overestimate_positive(self):
        s = System(line(4), NADiners())
        s.write_local(3, "depth", 2)  # sink: true depth 0
        assert depth_errors(s.snapshot())[3] == 2


class TestNetworkxExport:
    def test_digraph_shape(self):
        nx_graph = to_networkx(System(line(4), NADiners()).snapshot())
        assert nx_graph.number_of_nodes() == 4
        assert nx_graph.number_of_edges() == 3
        assert nx_graph.has_edge(0, 1)  # 0 is 1's ancestor initially

    def test_node_attributes(self):
        s = System(line(3), NADiners())
        s.write_local(1, "state", "E")
        s.kill(2)
        g = to_networkx(s.snapshot())
        assert g.nodes[1]["state"] == "E"
        assert g.nodes[2]["dead"] is True
