"""Unit tests for failure-locality measurement."""

import pytest

from repro.analysis import (
    LocalityReport,
    locality_sweep,
    measure_failure_locality,
    run_until_eating,
)
from repro.baselines import HygienicDiners
from repro.core import NADiners
from repro.sim import AlwaysHungry, Engine, SimulationError, System, line


class TestRunUntilEating:
    def test_reaches_eating(self):
        s = System(line(4), NADiners())
        e = Engine(s, hunger=AlwaysHungry(), seed=1)
        run_until_eating(e, 0, 20_000)
        assert s.read_local(0, "state") == "E"

    def test_times_out(self):
        from repro.sim import NeverHungry

        s = System(line(4), NADiners())
        e = Engine(s, hunger=NeverHungry(), seed=1)
        with pytest.raises(SimulationError):
            run_until_eating(e, 0, 100)


class TestMeasureFailureLocality:
    def test_na_diners_radius_at_most_two(self):
        topo = line(8)
        report = measure_failure_locality(
            NADiners(),
            topo,
            [0],
            warmup_steps=30_000,
            settle_steps=8_000,
            window=30_000,
            seed=0,
        )
        assert report.starvation_radius is None or report.starvation_radius <= 2
        assert report.all_beyond_radius_eat(topo, radius=2)

    def test_crash_site_neighbors_starve(self):
        # A crashed eater definitively blocks its direct neighbours.
        topo = line(8)
        report = measure_failure_locality(
            NADiners(),
            topo,
            [3],
            warmup_steps=30_000,
            settle_steps=8_000,
            window=30_000,
            seed=1,
        )
        assert {2, 4} <= set(report.starving)

    def test_dead_not_reported(self):
        topo = line(6)
        report = measure_failure_locality(
            NADiners(), topo, [0], warmup_steps=20_000, window=20_000, seed=2
        )
        assert 0 not in report.eats

    def test_eats_by_distance_grouping(self):
        topo = line(6)
        report = measure_failure_locality(
            NADiners(), topo, [0], warmup_steps=20_000, window=20_000, seed=3
        )
        grouped = report.eats_by_distance(topo)
        assert set(grouped) <= {1, 2, 3, 4, 5}
        n_total = sum(n for n, _ in grouped.values())
        assert n_total == 5  # all live processes grouped

    def test_malicious_variant_runs(self):
        topo = line(6)
        report = measure_failure_locality(
            NADiners(),
            topo,
            [0],
            malicious_steps=6,
            warmup_steps=20_000,
            settle_steps=8_000,
            window=25_000,
            seed=4,
        )
        assert report.all_beyond_radius_eat(topo, radius=2)

    def test_hygienic_starves_farther(self):
        """The baseline contrast: hygienic's starvation radius can exceed 2
        on a line where the paper's program keeps it at 2."""
        topo = line(8)
        report = measure_failure_locality(
            HygienicDiners(),
            topo,
            [0],
            warmup_steps=30_000,
            settle_steps=12_000,
            window=30_000,
            seed=5,
        )
        assert report.starving  # at least the blocked neighbour


class TestSweep:
    def test_sweep_shape(self):
        results = locality_sweep(
            [NADiners()],
            line,
            [5, 6],
            warmup_steps=15_000,
            settle_steps=4_000,
            window=12_000,
        )
        assert set(results) == {("na-diners", 5), ("na-diners", 6)}
        assert all(isinstance(r, LocalityReport) for r in results.values())


class TestFrozenChainScenario:
    def test_construction(self):
        from repro.analysis import frozen_chain_scenario

        system = frozen_chain_scenario(NADiners(), line(5))
        assert not system.is_live(0)
        assert system.read_local(0, "state") == "E"
        assert all(system.read_local(p, "state") == "H" for p in range(1, 5))

    def test_custom_head(self):
        from repro.analysis import frozen_chain_scenario

        system = frozen_chain_scenario(NADiners(), line(5), head=2)
        assert not system.is_live(2)

    def test_radius_contrast(self):
        """The construction separates the full program from the
        no-threshold ablation by the widest possible margin."""
        from repro.analysis import frozen_chain_radius
        from repro.core import NoDynamicThresholdDiners

        topo = line(7)
        assert frozen_chain_radius(NADiners(), topo, window=25_000) <= 2
        assert frozen_chain_radius(
            NoDynamicThresholdDiners(), topo, window=25_000
        ) == 6

    def test_star_hub_crash_blocks_only_leaves(self):
        from repro.analysis import frozen_chain_radius
        from repro.sim import star

        # The default head on a star is the hub: a crashed eating hub may
        # starve every leaf, but they are all at distance 1 <= 2.
        topo = star(4)
        radius = frozen_chain_radius(NADiners(), topo, window=25_000)
        assert radius <= 1
