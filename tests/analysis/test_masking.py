"""Unit tests for the masking analysis."""

from repro.analysis import classify_violations, masking_probe, masking_sweep
from repro.core import NADiners
from repro.sim import System, line, ring


class TestClassifyViolations:
    def test_no_eaters(self):
        c = System(line(3), NADiners()).snapshot()
        assert classify_violations(c) == (0, 0)

    def test_clean_pair(self):
        s = System(line(3), NADiners())
        s.write_local(0, "state", "E")
        s.write_local(1, "state", "E")
        assert classify_violations(s.snapshot()) == (0, 1)

    def test_faulty_involved(self):
        s = System(line(3), NADiners())
        s.write_local(0, "state", "E")
        s.write_local(1, "state", "E")
        s.kill(0)
        assert classify_violations(s.snapshot()) == (1, 0)

    def test_both_dead_not_counted(self):
        s = System(line(3), NADiners())
        s.write_local(0, "state", "E")
        s.write_local(1, "state", "E")
        s.kill(0)
        s.kill(1)
        assert classify_violations(s.snapshot()) == (0, 0)

    def test_malicious_counts_as_faulty(self):
        s = System(line(3), NADiners())
        s.write_local(0, "state", "E")
        s.write_local(1, "state", "E")
        s.mark_malicious(0)
        assert classify_violations(s.snapshot()) == (1, 0)


class TestMaskingProbe:
    def test_clean_pairs_never_violated(self):
        report = masking_probe(
            NADiners(), ring(6), 1, malicious_steps=50, observe=6000, seed=0
        )
        assert report.masks_clean_pairs

    def test_violations_transient(self):
        report = masking_probe(
            NADiners(), ring(6), 1, malicious_steps=50, observe=6000, seed=0
        )
        assert report.violations_transient

    def test_long_malice_produces_faulty_involved(self):
        # across a few seeds the faulty process is seen posing as an eater
        hits = sum(
            masking_probe(
                NADiners(), ring(6), 1, malicious_steps=200, observe=4000, seed=s
            ).faulty_involved
            for s in range(4)
        )
        assert hits > 0

    def test_sweep_shape(self):
        reports = masking_sweep(
            NADiners, line(5), 1, [5, 10], seeds=range(2), observe=2000
        )
        assert len(reports) == 4
        assert {r.malicious_steps for r in reports} == {5, 10}
