"""Unit tests for throughput/fairness metrics and step monitors."""

import math

import pytest

from repro.analysis import (
    StepMonitor,
    ThroughputReport,
    eating_pairs_count,
    live_eating_pairs_count,
    run_monitored,
    throughput_report,
)
from repro.core import NADiners
from repro.sim import AlwaysHungry, Engine, System, line, ring


class TestThroughputReport:
    def make_report(self, eats):
        return ThroughputReport(algorithm="x", steps=1000, eats=eats)

    def test_total_and_rate(self):
        r = self.make_report({0: 10, 1: 20})
        assert r.total == 30
        assert r.per_1000_steps == 30.0

    def test_jain_perfect_fairness(self):
        r = self.make_report({0: 5, 1: 5, 2: 5})
        assert r.jain_index == pytest.approx(1.0)

    def test_jain_starvation(self):
        r = self.make_report({0: 30, 1: 0, 2: 0})
        assert r.jain_index == pytest.approx(1 / 3)

    def test_spread_infinite_on_starvation(self):
        r = self.make_report({0: 30, 1: 0})
        assert r.spread == math.inf

    def test_min_max(self):
        r = self.make_report({0: 3, 1: 9})
        assert (r.min_eats, r.max_eats) == (3, 9)

    def test_measured_report(self):
        s = System(ring(5), NADiners())
        e = Engine(s, hunger=AlwaysHungry(), seed=1)
        r = throughput_report(e, 4000)
        assert r.total == e.total_eats()
        assert r.min_eats > 0
        assert 0.9 <= r.jain_index <= 1.0

    def test_dead_excluded(self):
        s = System(line(4), NADiners(), initially_dead=[0])
        e = Engine(s, hunger=AlwaysHungry(), seed=2)
        r = throughput_report(e, 2000)
        assert 0 not in r.eats


class TestStepMonitor:
    def test_series_and_final(self):
        m = StepMonitor("const", lambda c: 7)
        s = System(line(3), NADiners())
        m.sample(s.snapshot())
        m.sample(s.snapshot())
        assert m.series == [7, 7]
        assert m.final() == 7

    def test_non_increasing(self):
        m = StepMonitor("x", lambda c: 0)
        m.series = [3, 2, 2, 1]
        assert m.is_non_increasing()
        m.series = [1, 2]
        assert not m.is_non_increasing()

    def test_empty_final(self):
        assert StepMonitor("x", lambda c: 0).final() is None


class TestEatingPairCounters:
    def test_counts_pairs(self):
        s = System(line(4), NADiners())
        s.write_local(1, "state", "E")
        s.write_local(2, "state", "E")
        assert eating_pairs_count(s.snapshot()) == 1

    def test_live_filter(self):
        s = System(line(4), NADiners())
        s.write_local(1, "state", "E")
        s.write_local(2, "state", "E")
        s.kill(1)
        s.kill(2)
        c = s.snapshot()
        assert eating_pairs_count(c) == 1
        assert live_eating_pairs_count(c) == 0


class TestRunMonitored:
    def test_samples_initial_and_each_step(self):
        s = System(line(3), NADiners())
        e = Engine(s, hunger=AlwaysHungry(), seed=3)
        m = StepMonitor("pairs", eating_pairs_count)
        taken = run_monitored(e, [m], 50)
        assert taken == 50
        assert len(m.series) == 51

    def test_sample_every(self):
        s = System(line(3), NADiners())
        e = Engine(s, hunger=AlwaysHungry(), seed=3)
        m = StepMonitor("pairs", eating_pairs_count)
        run_monitored(e, [m], 50, sample_every=10)
        assert len(m.series) == 6

    def test_bad_sample_every(self):
        s = System(line(3), NADiners())
        e = Engine(s, hunger=AlwaysHungry(), seed=3)
        with pytest.raises(ValueError):
            run_monitored(e, [], 10, sample_every=0)

    def test_stops_at_quiescence(self):
        from repro.sim import NeverHungry

        s = System(line(3), NADiners())
        e = Engine(s, hunger=NeverHungry(), seed=3)
        m = StepMonitor("pairs", eating_pairs_count)
        taken = run_monitored(e, [m], 100)
        assert taken == 0
        assert len(m.series) == 1


class TestRendering:
    def test_strip_glyphs(self):
        from repro.analysis import render_strip
        from repro.core import figure2_configuration

        strip = render_strip(figure2_configuration())
        # a=dead(x), b=H(?), c=T(.), d=H(?), e=H(?), f=T(.), g=H(?)
        assert strip == "x?.??.?"

    def test_strip_custom_order(self):
        from repro.analysis import render_strip
        from repro.core import figure2_configuration

        assert render_strip(figure2_configuration(), order=["a", "g"]) == "x?"

    def test_configuration_render_mentions_everything(self):
        from repro.analysis import render_configuration
        from repro.core import figure2_configuration

        text = render_configuration(figure2_configuration())
        assert "DEAD" in text
        assert "red" in text and "green" in text
        assert "edge" in text

    def test_malicious_marker(self):
        from repro.analysis import render_strip
        from repro.core import NADiners
        from repro.sim import System, line

        s = System(line(3), NADiners())
        s.mark_malicious(1)
        assert render_strip(s.snapshot())[1] == "!"
