"""Unit tests for stabilization measurement."""

import pytest

from repro.analysis import (
    ConvergenceSummary,
    convergence_study,
    plant_priority_cycle,
    steps_to_predicate,
)
from repro.core import NADiners, invariant_holds, nc_holds
from repro.sim import System, line, ring, star


class TestPlantCycle:
    def test_installs_directed_cycle(self):
        s = System(ring(4), NADiners())
        plant_priority_cycle(s, [0, 1, 2, 3])
        assert not nc_holds(s.snapshot())

    def test_rejects_non_neighbors(self):
        s = System(line(4), NADiners())
        with pytest.raises(ValueError):
            plant_priority_cycle(s, [0, 2, 3])

    def test_rejects_short_cycle(self):
        s = System(ring(4), NADiners())
        with pytest.raises(ValueError):
            plant_priority_cycle(s, [0, 1])

    def test_zeroes_depths(self):
        s = System(ring(4), NADiners())
        plant_priority_cycle(s, [0, 1, 2, 3])
        assert all(s.read_local(p, "depth") == 0 for p in range(4))

    def test_can_keep_depths(self):
        s = System(ring(4), NADiners())
        s.write_local(0, "depth", 2)
        plant_priority_cycle(s, [0, 1, 2, 3], corrupt_depths=False)
        assert s.read_local(0, "depth") == 2


class TestStepsToPredicate:
    def test_already_converged(self):
        s = System(line(4), NADiners())
        result = steps_to_predicate(s, invariant_holds, max_steps=10)
        assert result.converged and result.steps == 0

    def test_converges_from_cycle(self):
        s = System(ring(6), NADiners())
        plant_priority_cycle(s, list(range(6)))
        result = steps_to_predicate(s, nc_holds, max_steps=50_000, seed=1)
        assert result.converged
        assert result.steps > 0

    def test_reports_non_convergence(self):
        from repro.core import NoFixdepthDiners
        from repro.sim import NeverHungry

        # Without fixdepth and nobody eating, a planted cycle never breaks.
        s = System(ring(4), NoFixdepthDiners())
        plant_priority_cycle(s, [0, 1, 2, 3])
        result = steps_to_predicate(
            s, nc_holds, max_steps=5000, seed=2, hunger=NeverHungry()
        )
        assert not result.converged
        assert result.steps is None


class TestConvergenceStudy:
    def test_all_trials_converge(self):
        summary = convergence_study(
            NADiners, line(5), trials=6, max_steps=100_000, seed=3
        )
        assert summary.all_converged
        assert summary.trials == 6
        assert len(summary.steps) == 6

    def test_with_planted_cycles(self):
        summary = convergence_study(
            NADiners, ring(5), trials=4, max_steps=200_000, seed=4,
            plant_cycle=True,
            predicate=nc_holds,
        )
        assert summary.all_converged

    def test_statistics(self):
        summary = ConvergenceSummary(trials=3, converged=3, steps=(10, 20, 60))
        assert summary.mean_steps == 30
        assert summary.median_steps == 20
        assert summary.max_steps == 60

    def test_empty_statistics(self):
        import math

        summary = ConvergenceSummary(trials=2, converged=0, steps=())
        assert math.isnan(summary.mean_steps)
        assert summary.max_steps == 0
        assert not summary.all_converged

    def test_star_topology(self):
        summary = convergence_study(
            NADiners, star(4), trials=4, max_steps=100_000, seed=5
        )
        assert summary.all_converged


class TestRoundsToPredicate:
    def test_rounds_counted(self):
        from repro.analysis import plant_priority_cycle, rounds_to_predicate
        from repro.sim import NeverHungry, System, ring

        s = System(ring(6), NADiners())
        plant_priority_cycle(s, list(range(6)))
        rounds = rounds_to_predicate(s, nc_holds, seed=1, hunger=NeverHungry())
        assert rounds is not None
        assert 1 <= rounds <= 20

    def test_none_when_not_converging(self):
        from repro.analysis import plant_priority_cycle, rounds_to_predicate
        from repro.core import NoFixdepthDiners
        from repro.sim import NeverHungry, System, ring

        s = System(ring(4), NoFixdepthDiners())
        plant_priority_cycle(s, [0, 1, 2, 3])
        rounds = rounds_to_predicate(
            s, nc_holds, max_steps=3000, seed=1, hunger=NeverHungry()
        )
        assert rounds is None

    def test_round_complexity_grows_slowly(self):
        """Cycle breaking takes few rounds even on long rings: fixdepth
        fires for every process each round, so depth information travels
        many hops per round."""
        from repro.analysis import plant_priority_cycle, rounds_to_predicate
        from repro.sim import NeverHungry, System, ring

        s = System(ring(12), NADiners())
        plant_priority_cycle(s, list(range(12)))
        rounds = rounds_to_predicate(s, nc_holds, seed=2, hunger=NeverHungry())
        assert rounds is not None and rounds <= 10
