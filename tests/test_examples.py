"""Smoke tests keeping the example scripts working.

Fast examples run end to end in-process; slow ones are at least compiled
and import-checked so a refactor cannot silently break them.
"""

import pathlib
import py_compile
import runpy
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name, argv=()):
    saved = sys.argv
    sys.argv = [str(EXAMPLES / name), *argv]
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = saved


class TestFastExamples:
    def test_quickstart(self, capsys):
        run_example("quickstart.py")
        out = capsys.readouterr().out
        assert "OK: every process ate" in out

    def test_figure2_walkthrough(self, capsys):
        run_example("figure2_walkthrough.py")
        out = capsys.readouterr().out
        assert "failure locality 2" in out
        assert "state 4" in out

    def test_crash_timeline(self, capsys):
        run_example("crash_timeline.py")
        out = capsys.readouterr().out
        assert "CRASH" in out
        assert "still dining" in out


class TestSlowExamplesCompile:
    @pytest.mark.parametrize(
        "name",
        [
            "failure_locality_demo.py",
            "stabilization_demo.py",
            "message_passing_demo.py",
            "generate_report.py",
        ],
    )
    def test_compiles(self, name):
        py_compile.compile(str(EXAMPLES / name), doraise=True)


class TestMediumExamples:
    def test_message_passing_demo(self, capsys):
        run_example("message_passing_demo.py")
        out = capsys.readouterr().out
        assert "safe and live over message passing" in out

    def test_live_cluster_demo(self, capsys):
        run_example("live_cluster_demo.py")
        out = capsys.readouterr().out
        assert "maliciously crashed" in out
        assert "no neighbouring lock holders" in out
