"""Tests for the command-line interface."""

import pytest

from repro.cli import ALGORITHMS, main, parse_topology


class TestParseTopology:
    def test_ring(self):
        assert len(parse_topology("ring:6")) == 6

    def test_grid(self):
        assert len(parse_topology("grid:4:3")) == 12

    def test_tree(self):
        assert len(parse_topology("tree:2")) == 7

    def test_random_with_seed(self):
        t1 = parse_topology("random:8:3")
        t2 = parse_topology("random:8:3")
        assert t1.edges == t2.edges

    def test_unknown_kind(self):
        with pytest.raises(SystemExit):
            parse_topology("torus:3")

    def test_bad_arity(self):
        with pytest.raises(SystemExit):
            parse_topology("grid:4")


class TestCommands:
    def test_run(self, capsys):
        assert main(["run", "--topology", "line:4", "--steps", "2000"]) == 0
        out = capsys.readouterr().out
        assert "meals" in out and "invariant" in out

    def test_run_each_algorithm(self, capsys):
        for name in ALGORITHMS:
            assert main(
                ["run", "--topology", "ring:5", "--algorithm", name, "--steps", "1500"]
            ) == 0

    def test_locality(self, capsys):
        code = main(
            [
                "locality",
                "--topology",
                "line:7",
                "--victim",
                "0",
                "--steps",
                "15000",
            ]
        )
        assert code == 0
        assert "starvation radius" in capsys.readouterr().out

    def test_stabilize(self, capsys):
        code = main(
            ["stabilize", "--topology", "line:5", "--seed", "3", "--max-steps", "200000"]
        )
        assert code == 0
        assert "converged" in capsys.readouterr().out

    def test_stabilize_plant_cycle_nc_only(self, capsys):
        code = main(
            [
                "stabilize",
                "--topology",
                "ring:5",
                "--plant-cycle",
                "--nc-only",
                "--max-steps",
                "200000",
            ]
        )
        assert code == 0

    def test_figure2(self, capsys):
        assert main(["figure2"]) == 0
        out = capsys.readouterr().out
        assert "panel 4" in out and "leave" in out

    def test_check(self, capsys):
        assert main(["check", "--topology", "line:3"]) == 0
        out = capsys.readouterr().out
        assert "converges: True" in out

    def test_check_corrected_threshold(self, capsys):
        assert main(["check", "--topology", "ring:3", "--corrected-threshold"]) == 0

    def test_unknown_algorithm(self):
        with pytest.raises(SystemExit):
            main(["run", "--algorithm", "nope"])


class TestReportCommand:
    def test_report_to_stdout(self, capsys, monkeypatch):
        # Stub the (slow) suite: this tests the CLI plumbing only.
        from repro.analysis import Section, SuiteResult
        import repro.analysis as analysis

        def fake_suite(config, **kwargs):
            result = SuiteResult(config=config)
            result.sections.append(
                Section(title="Stub", header=("a", "b"), rows=[(1, 2)])
            )
            return result

        monkeypatch.setattr(analysis, "run_suite", fake_suite)
        assert main(["report"]) == 0
        out = capsys.readouterr().out
        assert "# repro experiment suite" in out
        assert "## Stub" in out

    def test_report_to_file(self, tmp_path, monkeypatch):
        from repro.analysis import SuiteResult
        import repro.analysis as analysis

        monkeypatch.setattr(
            analysis, "run_suite", lambda config, **kwargs: SuiteResult(config=config)
        )
        target = tmp_path / "r.md"
        assert main(["report", "--output", str(target)]) == 0
        assert target.read_text().startswith("# repro experiment suite")




class TestSweepCommand:
    def test_basic_sweep(self, capsys):
        code = main(
            ["sweep", "--topology", "ring:5", "--trials", "3",
             "--steps", "300", "--quiet"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "shards: 3 (executed 3, resumed 0)" in out
        assert "meals/1k steps:" in out
        assert "safety (E at end): 3/3" in out

    def test_sweep_writes_and_resumes_jsonl(self, capsys, tmp_path):
        path = tmp_path / "out.jsonl"
        argv = ["sweep", "--topology", "ring:4", "--trials", "4",
                "--steps", "200", "--jobs", "2", "--out", str(path), "--quiet"]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert path.exists() and len(path.read_text().splitlines()) == 4

        # second run resumes everything and reports identical aggregates
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert "executed 0, resumed 4" in second
        agg = lambda text: [l for l in text.splitlines() if ":" in l and "shards" not in l and "records" not in l]
        assert agg(first) == agg(second)

    def test_sweep_multiple_axes(self, capsys):
        code = main(
            ["sweep", "--topology", "ring:4", "--topology", "line:4",
             "--algorithm", "na-diners", "--algorithm", "choy-singh",
             "--trials", "1", "--steps", "200", "--quiet"]
        )
        assert code == 0
        assert "shards: 4" in capsys.readouterr().out

    def test_sweep_with_crash(self, capsys):
        code = main(
            ["sweep", "--topology", "line:5", "--trials", "2", "--steps", "400",
             "--crash-victim", "1", "--crash-at", "50", "--quiet"]
        )
        assert code == 0

    def test_sweep_rejects_bad_topology_before_running(self):
        with pytest.raises(SystemExit):
            main(["sweep", "--topology", "torus:3", "--quiet"])

    def test_sweep_rejects_bad_algorithm(self):
        with pytest.raises(SystemExit):
            main(["sweep", "--algorithm", "nope", "--quiet"])


class TestCheckJobs:
    def test_parallel_check_matches_sequential(self, capsys):
        assert main(["check", "--topology", "line:3"]) == 0
        seq = capsys.readouterr().out
        assert main(["check", "--topology", "line:3", "--jobs", "2"]) == 0
        par = capsys.readouterr().out
        pick = lambda text: [l for l in text.splitlines() if "legitimate" in l or "converges" in l or "closed" in l]
        assert pick(seq) == pick(par)
        assert "2 shards" in par


class TestObservability:
    """--trace / --metrics-out wiring and the offline replay commands."""

    def _traced_run(self, tmp_path, capsys, seed=7):
        trace = tmp_path / "run.trace"
        metrics = tmp_path / "run.metrics"
        code = main([
            "run", "--topology", "ring:6", "--steps", "1500",
            "--seed", str(seed),
            "--trace", str(trace), "--metrics-out", str(metrics),
        ])
        assert code == 0
        out = capsys.readouterr().out
        return trace, metrics, out

    def test_run_writes_trace_and_metrics(self, tmp_path, capsys):
        trace, metrics, out = self._traced_run(tmp_path, capsys)
        assert trace.exists() and metrics.exists()
        assert "summary:" in out

    def test_replay_reproduces_summary_byte_identical(self, tmp_path, capsys):
        """The PR's acceptance criterion: live and offline summaries match."""
        trace, metrics, out = self._traced_run(tmp_path, capsys)
        live_summary = next(
            line for line in out.splitlines() if line.startswith("summary:")
        )
        replay_metrics = tmp_path / "replay.metrics"
        assert main([
            "trace", str(trace), "--metrics-out", str(replay_metrics)
        ]) == 0
        replay_out = capsys.readouterr().out
        replay_summary = next(
            line for line in replay_out.splitlines() if line.startswith("summary:")
        )
        assert replay_summary == live_summary
        assert replay_metrics.read_bytes() == metrics.read_bytes()

    def test_trace_event_listing(self, tmp_path, capsys):
        trace, _, _ = self._traced_run(tmp_path, capsys)
        assert main(["trace", str(trace), "--limit", "5"]) == 0
        out = capsys.readouterr().out
        assert "action" in out

    def test_trace_missing_file_exits(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["trace", str(tmp_path / "absent.trace")])

    def test_stats_sniffs_each_artefact(self, tmp_path, capsys):
        trace, metrics, _ = self._traced_run(tmp_path, capsys)
        records = tmp_path / "records.jsonl"
        assert main([
            "sweep", "--topology", "ring:4", "--trials", "2",
            "--steps", "200", "--out", str(records), "--quiet",
        ]) == 0
        capsys.readouterr()

        assert main(["stats", str(metrics)]) == 0
        assert "metrics file" in capsys.readouterr().out
        assert main(["stats", str(records)]) == 0
        assert "campaign records" in capsys.readouterr().out
        assert main(["stats", str(trace)]) == 0
        assert "trace" in capsys.readouterr().out

    def test_stats_unknown_file_exits(self, tmp_path):
        junk = tmp_path / "junk.jsonl"
        junk.write_text("not json\n")
        with pytest.raises(SystemExit):
            main(["stats", str(junk)])

    def test_locality_accepts_observability_flags(self, tmp_path, capsys):
        trace = tmp_path / "loc.trace"
        assert main([
            "locality", "--topology", "line:6", "--steps", "4000",
            "--victim", "2", "--trace", str(trace),
        ]) == 0
        assert trace.exists()
        capsys.readouterr()
        assert main(["trace", str(trace)]) == 0

    def test_stabilize_accepts_observability_flags(self, tmp_path, capsys):
        metrics = tmp_path / "stab.metrics"
        assert main([
            "stabilize", "--topology", "line:5", "--seed", "2",
            "--max-steps", "60000", "--metrics-out", str(metrics),
        ]) == 0
        assert metrics.exists()

    def test_sweep_progress_and_campaign_artifacts(self, tmp_path, capsys):
        records = tmp_path / "records.jsonl"
        trace = tmp_path / "sweep.trace"
        metrics = tmp_path / "sweep.metrics"
        assert main([
            "sweep", "--topology", "ring:4", "--trials", "4",
            "--steps", "200", "--out", str(records),
            "--progress", "2",
            "--trace", str(trace), "--metrics-out", str(metrics),
        ]) == 0
        err = capsys.readouterr().err
        assert "[4/4]" in err and "eta" in err
        assert trace.exists() and metrics.exists()
        shard_lines = [
            line for line in trace.read_text().splitlines()[1:] if line
        ]
        assert len(shard_lines) == 4

    def test_report_metrics_out(self, tmp_path, capsys):
        metrics = tmp_path / "suite.metrics"
        assert main([
            "report", "--seed", "1", "--metrics-out", str(metrics),
            "--output", str(tmp_path / "suite.md"),
        ]) == 0
        text = metrics.read_text()
        assert "suite/" in text and "campaign/shards" in text


class TestStatsHardening:
    """`repro stats` must fail with one clean line, never a traceback."""

    def _exit_message(self, args):
        with pytest.raises(SystemExit) as info:
            main(args)
        return str(info.value)

    def test_empty_file(self, tmp_path):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        message = self._exit_message(["stats", str(empty)])
        assert "empty file" in message

    def test_directory(self, tmp_path):
        message = self._exit_message(["stats", str(tmp_path)])
        assert "directory" in message

    def test_binary_junk(self, tmp_path):
        junk = tmp_path / "junk.bin"
        junk.write_bytes(b"\x00\xff\xfe\x01" * 64)
        message = self._exit_message(["stats", str(junk)])
        assert str(junk) in message

    def test_unrecognised_jsonl_schema(self, tmp_path):
        foreign = tmp_path / "foreign.jsonl"
        foreign.write_text('{"hello": 1}\n{"kind": "mystery"}\n')
        message = self._exit_message(["stats", str(foreign)])
        assert "not a metrics" in message

    def test_missing_file(self, tmp_path):
        message = self._exit_message(["stats", str(tmp_path / "absent")])
        assert "no such file" in message

    def test_truncated_trace_is_clean_error(self, tmp_path):
        bad = tmp_path / "cut.trace"
        bad.write_text('{"kind": "header", "format": 1}\n{"kind": "event"')
        with pytest.raises(SystemExit):
            main(["stats", str(bad)])


class TestPerfCli:
    def test_bench_list(self, capsys):
        assert main(["bench", "--list"]) == 0
        out = capsys.readouterr().out
        assert "engine/steps/ring16" in out
        assert "mp/ticks/ring8" in out

    def test_bench_negative_threshold_rejected(self):
        with pytest.raises(SystemExit):
            main(["bench", "--threshold", "-1", "--list"])

    def test_stats_sniffs_bench_file(self, tmp_path, capsys):
        out = tmp_path / "BENCH_x.json"
        assert main([
            "bench", "--quick", "--filter", "snapshot", "--out", str(out),
        ]) == 0
        capsys.readouterr()
        assert main(["stats", str(out)]) == 0
        text = capsys.readouterr().out
        assert "BENCH file" in text
        assert "snapshot/ring16" in text

    def test_run_timings_out(self, tmp_path, capsys):
        timings = tmp_path / "run.timings"
        assert main([
            "run", "--topology", "ring:5", "--steps", "600",
            "--timings-out", str(timings),
        ]) == 0
        capsys.readouterr()
        assert main(["stats", str(timings)]) == 0
        text = capsys.readouterr().out
        assert "source: timings" in text
        assert "step_time/" in text
        assert "rate/events_per_sec" in text

    def test_timings_do_not_perturb_deterministic_metrics(self, tmp_path, capsys):
        """--timings-out must leave --metrics-out byte-identical."""
        plain = tmp_path / "plain.metrics"
        assert main([
            "run", "--topology", "ring:5", "--steps", "600", "--seed", "3",
            "--metrics-out", str(plain),
        ]) == 0
        timed = tmp_path / "timed.metrics"
        assert main([
            "run", "--topology", "ring:5", "--steps", "600", "--seed", "3",
            "--metrics-out", str(timed),
            "--timings-out", str(tmp_path / "t.timings"),
        ]) == 0
        capsys.readouterr()
        assert plain.read_bytes() == timed.read_bytes()


class TestFuzzCommand:
    def fuzz_args(self, corpus_dir, seed=1):
        return [
            "fuzz", "--topology", "ring:3", "--seed", str(seed),
            "--budget", "6", "--duration", "4.0", "--steps", "800",
            "--sample-every", "20", "--keep", "1",
            "--minimise-budget", "4", "--corpus-dir", str(corpus_dir),
        ]

    def test_fuzz_smoke(self, tmp_path, capsys):
        assert main(self.fuzz_args(tmp_path / "c")) == 0
        out = capsys.readouterr().out
        assert "runs" in out and "signatures" in out
        written = list((tmp_path / "c").glob("*.json"))
        assert written
        assert all(p.name.startswith("ring3-s1-r") for p in written)

    def test_fuzz_is_deterministic_at_the_cli(self, tmp_path, capsys):
        assert main(self.fuzz_args(tmp_path / "a")) == 0
        assert main(self.fuzz_args(tmp_path / "b")) == 0
        capsys.readouterr()
        a = sorted((tmp_path / "a").glob("*.json"))
        b = sorted((tmp_path / "b").glob("*.json"))
        assert [p.name for p in a] == [p.name for p in b]
        for pa, pb in zip(a, b):
            assert pa.read_bytes() == pb.read_bytes()

    def test_soak_replays_a_corpus_schedule(self, tmp_path, capsys):
        assert main(self.fuzz_args(tmp_path / "c")) == 0
        schedule_file = next((tmp_path / "c").glob("*.json"))
        capsys.readouterr()
        assert main([
            "cluster", "soak", "--schedule-file", str(schedule_file),
            "--tick-interval", "0.005",
        ]) == 0
        out = capsys.readouterr().out
        assert "safety" in out

    def test_schedule_file_must_exist(self, capsys):
        with pytest.raises(SystemExit):
            main([
                "cluster", "soak",
                "--schedule-file", "/nonexistent/corpus.json",
            ])


class TestTracingCli:
    """`cluster --trace/--metrics-port`, `repro timeline`, `repro top`,
    and the stats sniffers for the new artefact families."""

    def traced_soak(self, tmp_path, capsys):
        trace_dir = tmp_path / "trace"
        events = tmp_path / "soak.events"
        code = main([
            "cluster", "soak", "--nodes", "3", "--seed", "5",
            "--duration", "1.5", "--tick-interval", "0.005",
            "--trace", str(trace_dir), "--events-out", str(events),
        ])
        out = capsys.readouterr().out
        assert code in (0, 1)  # chaos may legitimately kill nodes
        assert "spans:" in out
        return trace_dir, events

    def test_timeline_merges_and_checks_causality(self, tmp_path, capsys):
        trace_dir, events = self.traced_soak(tmp_path, capsys)
        out_file = tmp_path / "timeline.jsonl"
        assert main([
            "timeline", str(trace_dir), "--events", str(events),
            "--out", str(out_file), "--limit", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "causality: OK" in out
        assert "timeline:" in out
        assert out_file.exists()

    def test_timeline_is_byte_stable_under_input_permutation(
        self, tmp_path, capsys
    ):
        trace_dir, _ = self.traced_soak(tmp_path, capsys)
        span_files = sorted(str(p) for p in trace_dir.glob("spans-*.jsonl"))
        assert len(span_files) == 3
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        assert main(["timeline", *span_files, "--out", str(a)]) == 0
        assert main(
            ["timeline", *reversed(span_files), "--out", str(b)]
        ) == 0
        capsys.readouterr()
        assert a.read_bytes() == b.read_bytes()

    def test_timeline_flags_a_forged_trace(self, tmp_path, capsys):
        import json as json_mod

        trace_dir, _ = self.traced_soak(tmp_path, capsys)
        victim = next(trace_dir.glob("spans-*.jsonl"))
        lines = victim.read_text().splitlines()
        forged = []
        for line in lines:
            row = json_mod.loads(line)
            if row.get("kind") == "span" and row.get("events"):
                # Zero every stamp on one node: message inversions appear.
                for event in row["events"]:
                    event["lc"] = 0
            forged.append(json_mod.dumps(row))
        victim.write_text("\n".join(forged) + "\n")
        assert main(["timeline", str(trace_dir)]) == 1
        out = capsys.readouterr().out
        assert "CORRUPTED" in out

    def test_timeline_empty_directory_exits(self, tmp_path):
        empty = tmp_path / "empty"
        empty.mkdir()
        with pytest.raises(SystemExit):
            main(["timeline", str(empty)])

    def test_stats_sniffs_spans_and_timeline(self, tmp_path, capsys):
        trace_dir, _ = self.traced_soak(tmp_path, capsys)
        span_file = next(trace_dir.glob("spans-*.jsonl"))
        out_file = tmp_path / "timeline.jsonl"
        assert main(["timeline", str(trace_dir), "--out", str(out_file)]) == 0
        capsys.readouterr()
        assert main(["stats", str(span_file)]) == 0
        assert "span log:" in capsys.readouterr().out
        assert main(["stats", str(out_file)]) == 0
        assert "timeline:" in capsys.readouterr().out

    def test_stats_truncated_span_file_is_tolerated(self, tmp_path, capsys):
        trace_dir, _ = self.traced_soak(tmp_path, capsys)
        span_file = next(trace_dir.glob("spans-*.jsonl"))
        text = span_file.read_text()
        truncated = tmp_path / "truncated.jsonl"
        # Cut mid-line, so the tail is guaranteed to be invalid JSON.
        truncated.write_text(text[: len(text) // 2].rstrip("\n")[:-3])
        assert main(["stats", str(truncated)]) == 0
        assert "skipped lines" in capsys.readouterr().out

    def test_top_requires_a_target(self):
        with pytest.raises(SystemExit):
            main(["top"])

    def test_top_unreachable_endpoint_is_a_clean_error(self):
        with pytest.raises(SystemExit) as info:
            main(["top", "--url", "http://127.0.0.1:1/metrics", "--once"])
        message = str(info.value)
        assert "127.0.0.1:1" in message
        assert "\n" not in message  # one line, no traceback

    def test_top_non_http_endpoint_is_a_clean_error(self):
        """A live socket that speaks garbage (not HTTP) must fold into the
        same one-line OSError path as a refused connection."""
        import socket
        import threading

        server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        server.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        server.bind(("127.0.0.1", 0))
        server.listen(1)
        port = server.getsockname()[1]

        def answer_garbage():
            conn, _ = server.accept()
            conn.sendall(b"I AM NOT HTTP\r\n\r\n")
            conn.close()

        thread = threading.Thread(target=answer_garbage, daemon=True)
        thread.start()
        try:
            with pytest.raises(SystemExit) as info:
                main([
                    "top", "--url", f"http://127.0.0.1:{port}/metrics",
                    "--once",
                ])
            assert "\n" not in str(info.value)
        finally:
            server.close()
            thread.join(timeout=2)


class TestSloCli:
    """`repro slo`, `cluster soak --slo/--flight`, and the new sniffers."""

    FIXTURES = "tests/obs/fixtures/slo"

    def test_slo_clean_fixture_exits_zero(self, capsys):
        assert main([
            "slo", f"{self.FIXTURES}/spec.json", f"{self.FIXTURES}/clean.events",
        ]) == 0
        out = capsys.readouterr().out
        assert "ingested events:" in out
        assert "budget: OK — 6 objectives within budget" in out

    def test_slo_violation_fixture_exits_one(self, capsys):
        assert main([
            "slo", f"{self.FIXTURES}/spec.json",
            f"{self.FIXTURES}/violation.events",
        ]) == 1
        assert "budget: EXHAUSTED — safety" in capsys.readouterr().out

    def test_slo_report_is_byte_stable(self, tmp_path, capsys):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        for out in (a, b):
            assert main([
                "slo", f"{self.FIXTURES}/spec.json",
                f"{self.FIXTURES}/clean.events", "--out", str(out),
            ]) == 0
        capsys.readouterr()
        assert a.read_bytes() == b.read_bytes()

    def test_slo_missing_spec_exits(self):
        with pytest.raises(SystemExit):
            main(["slo", "/nonexistent/spec.json",
                  f"{self.FIXTURES}/clean.events"])

    def test_slo_foreign_artefact_exits(self, tmp_path):
        junk = tmp_path / "junk.jsonl"
        junk.write_text('{"hello": 1}\n')
        with pytest.raises(SystemExit):
            main(["slo", f"{self.FIXTURES}/spec.json", str(junk)])

    def test_slo_empty_directory_exits(self, tmp_path):
        empty = tmp_path / "empty"
        empty.mkdir()
        with pytest.raises(SystemExit):
            main(["slo", f"{self.FIXTURES}/spec.json", str(empty)])

    def test_stats_sniffs_slo_report(self, tmp_path, capsys):
        report = tmp_path / "slo-report.json"
        main([
            "slo", f"{self.FIXTURES}/spec.json",
            f"{self.FIXTURES}/violation.events", "--out", str(report),
        ])
        capsys.readouterr()
        assert main(["stats", str(report)]) == 0
        out = capsys.readouterr().out
        assert "SLO report:" in out
        assert "EXHAUSTED" in out

    def _flight_dump(self, tmp_path):
        from repro.obs import FlightRecorder, dump_flight
        from repro.obs.tracing import SpanRecorder

        tracer = SpanRecorder("2")
        span = tracer.open("acquire", lc=1, t=0.5)
        tracer.event(span, "grant", lc=2, t=1.0)
        tracer.close(span, lc=3, t=1.5)
        recorder = FlightRecorder("2", capacity=8)
        recorder.note_frame(1.0, "in", "request", peer="1")
        recorder.note_event({"t": 2.0, "event": "net-grant"})
        return dump_flight(
            tmp_path / "flight-2.jsonl", recorder, reason="soak-violation",
            tracer=tracer, header={"topology": "ring:3", "seed": 7},
        )

    def test_stats_sniffs_flight_dump(self, tmp_path, capsys):
        path = self._flight_dump(tmp_path)
        assert main(["stats", str(path)]) == 0
        out = capsys.readouterr().out
        assert "flight dump:" in out
        assert "soak-violation" in out

    def test_timeline_ingests_flight_dump(self, tmp_path, capsys):
        path = self._flight_dump(tmp_path)
        assert main(["timeline", str(path)]) == 0
        out = capsys.readouterr().out
        assert "causality: OK" in out

    def test_soak_with_slo_prints_verdict(self, tmp_path, capsys):
        report = tmp_path / "slo-live.json"
        code = main([
            "cluster", "soak", "--nodes", "3", "--seed", "7",
            "--duration", "1.5", "--tick-interval", "0.005",
            "--slo", "examples/slo.json", "--slo-report", str(report),
            "--flight", str(tmp_path / "flight"),
        ])
        out = capsys.readouterr().out
        assert code in (0, 1)
        assert "slo spec: soak-defaults" in out
        assert "budget:" in out
        assert report.exists()

    def test_flight_capacity_must_be_positive(self):
        with pytest.raises(SystemExit):
            main([
                "cluster", "soak", "--nodes", "3", "--duration", "0.5",
                "--flight", "/tmp/x", "--flight-capacity", "0",
            ])


class TestBenchHistory:
    def test_history_table(self, tmp_path, capsys):
        history = tmp_path / "history"
        history.mkdir()
        for label in ("2024a", "2024b"):
            assert main([
                "bench", "--quick", "--filter", "snapshot",
                "--out", str(history / f"BENCH_{label}.json"),
            ]) == 0
        capsys.readouterr()
        assert main(["bench", "--history", str(history)]) == 0
        out = capsys.readouterr().out
        assert "bench history: 2 BENCH file(s)" in out
        assert "snapshot/ring16" in out
        assert "trend" in out

    def test_history_empty_directory_exits(self, tmp_path):
        empty = tmp_path / "none"
        empty.mkdir()
        with pytest.raises(SystemExit):
            main(["bench", "--history", str(empty)])

    def test_history_missing_directory_exits(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["bench", "--history", str(tmp_path / "absent")])


class TestLoadgenCommand:
    def _sim(self, tmp_path, capsys, *extra):
        out = tmp_path / "loadgen-report.json"
        code = main([
            "loadgen", "--sim", "--nodes", "3", "--seed", "11",
            "--duration", "1.0", "--clients", "300", "--think", "0.1",
            "--hold", "0.01", "--out", str(out), *extra,
        ])
        return code, out, capsys.readouterr().out

    def test_sim_smoke(self, tmp_path, capsys):
        code, path, out = self._sim(tmp_path, capsys)
        assert code == 0
        assert "loadgen [sim]" in out
        assert "latency: p50=" in out and "p999=" in out
        assert "fairness: grant_count_cv=" in out
        assert path.exists()

    def test_sim_is_byte_stable_at_the_cli(self, tmp_path, capsys):
        _, a, _ = self._sim(tmp_path / "a", capsys)
        _, b, _ = self._sim(tmp_path / "b", capsys)
        assert a.read_bytes() == b.read_bytes()

    def test_stats_sniffs_loadgen_report(self, tmp_path, capsys):
        _, path, _ = self._sim(tmp_path, capsys)
        assert main(["stats", str(path)]) == 0
        out = capsys.readouterr().out
        assert "loadgen report [sim]:" in out
        assert "p99=" in out
        assert "fairness: grant_count_cv=" in out
        assert "node n0:" in out

    def test_slo_ingests_loadgen_report(self, tmp_path, capsys):
        _, path, _ = self._sim(tmp_path, capsys)
        code = main(["slo", "examples/slo.json", str(path)])
        out = capsys.readouterr().out
        assert code in (0, 1)
        assert f"ingested loadgen: {path}" in out
        assert "budget:" in out

    def test_stats_truncated_loadgen_report_is_clean_error(
        self, tmp_path, capsys
    ):
        _, path, _ = self._sim(tmp_path, capsys)
        path.write_text(path.read_text()[:40])
        with pytest.raises(SystemExit) as info:
            main(["stats", str(path)])
        assert "not a metrics" in str(info.value)

    def test_bad_mode_rejected(self):
        with pytest.raises(SystemExit):
            main(["loadgen", "--sim", "--mode", "burst"])

    def test_upstream_budget_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main([
                "loadgen", "--sim", "--nodes", "5",
                "--upstreams-per-node", "2", "--max-upstreams", "8",
            ])

    def test_live_smoke_with_report(self, tmp_path, capsys):
        report = tmp_path / "lg.json"
        code = main([
            "loadgen", "--nodes", "3", "--seed", "5", "--duration", "1.2",
            "--clients", "40", "--think", "0.05", "--hold", "0.005",
            "--upstreams-per-node", "2", "--no-chaos",
            "--out", str(report),
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "loadgen [live]" in out
        assert "safety: OK" in out
        assert report.exists()
        assert main(["stats", str(report)]) == 0
        assert "loadgen report [live]:" in capsys.readouterr().out
