"""Tests for the command-line interface."""

import pytest

from repro.cli import ALGORITHMS, main, parse_topology


class TestParseTopology:
    def test_ring(self):
        assert len(parse_topology("ring:6")) == 6

    def test_grid(self):
        assert len(parse_topology("grid:4:3")) == 12

    def test_tree(self):
        assert len(parse_topology("tree:2")) == 7

    def test_random_with_seed(self):
        t1 = parse_topology("random:8:3")
        t2 = parse_topology("random:8:3")
        assert t1.edges == t2.edges

    def test_unknown_kind(self):
        with pytest.raises(SystemExit):
            parse_topology("torus:3")

    def test_bad_arity(self):
        with pytest.raises(SystemExit):
            parse_topology("grid:4")


class TestCommands:
    def test_run(self, capsys):
        assert main(["run", "--topology", "line:4", "--steps", "2000"]) == 0
        out = capsys.readouterr().out
        assert "meals" in out and "invariant" in out

    def test_run_each_algorithm(self, capsys):
        for name in ALGORITHMS:
            assert main(
                ["run", "--topology", "ring:5", "--algorithm", name, "--steps", "1500"]
            ) == 0

    def test_locality(self, capsys):
        code = main(
            [
                "locality",
                "--topology",
                "line:7",
                "--victim",
                "0",
                "--steps",
                "15000",
            ]
        )
        assert code == 0
        assert "starvation radius" in capsys.readouterr().out

    def test_stabilize(self, capsys):
        code = main(
            ["stabilize", "--topology", "line:5", "--seed", "3", "--max-steps", "200000"]
        )
        assert code == 0
        assert "converged" in capsys.readouterr().out

    def test_stabilize_plant_cycle_nc_only(self, capsys):
        code = main(
            [
                "stabilize",
                "--topology",
                "ring:5",
                "--plant-cycle",
                "--nc-only",
                "--max-steps",
                "200000",
            ]
        )
        assert code == 0

    def test_figure2(self, capsys):
        assert main(["figure2"]) == 0
        out = capsys.readouterr().out
        assert "panel 4" in out and "leave" in out

    def test_check(self, capsys):
        assert main(["check", "--topology", "line:3"]) == 0
        out = capsys.readouterr().out
        assert "converges: True" in out

    def test_check_corrected_threshold(self, capsys):
        assert main(["check", "--topology", "ring:3", "--corrected-threshold"]) == 0

    def test_unknown_algorithm(self):
        with pytest.raises(SystemExit):
            main(["run", "--algorithm", "nope"])


class TestReportCommand:
    def test_report_to_stdout(self, capsys, monkeypatch):
        # Stub the (slow) suite: this tests the CLI plumbing only.
        from repro.analysis import Section, SuiteResult
        import repro.analysis as analysis

        def fake_suite(config):
            result = SuiteResult(config=config)
            result.sections.append(
                Section(title="Stub", header=("a", "b"), rows=[(1, 2)])
            )
            return result

        monkeypatch.setattr(analysis, "run_suite", fake_suite)
        assert main(["report"]) == 0
        out = capsys.readouterr().out
        assert "# repro experiment suite" in out
        assert "## Stub" in out

    def test_report_to_file(self, tmp_path, monkeypatch):
        from repro.analysis import SuiteResult
        import repro.analysis as analysis

        monkeypatch.setattr(
            analysis, "run_suite", lambda config: SuiteResult(config=config)
        )
        target = tmp_path / "r.md"
        assert main(["report", "--output", str(target)]) == 0
        assert target.read_text().startswith("# repro experiment suite")


