"""Tests for the command-line interface."""

import pytest

from repro.cli import ALGORITHMS, main, parse_topology


class TestParseTopology:
    def test_ring(self):
        assert len(parse_topology("ring:6")) == 6

    def test_grid(self):
        assert len(parse_topology("grid:4:3")) == 12

    def test_tree(self):
        assert len(parse_topology("tree:2")) == 7

    def test_random_with_seed(self):
        t1 = parse_topology("random:8:3")
        t2 = parse_topology("random:8:3")
        assert t1.edges == t2.edges

    def test_unknown_kind(self):
        with pytest.raises(SystemExit):
            parse_topology("torus:3")

    def test_bad_arity(self):
        with pytest.raises(SystemExit):
            parse_topology("grid:4")


class TestCommands:
    def test_run(self, capsys):
        assert main(["run", "--topology", "line:4", "--steps", "2000"]) == 0
        out = capsys.readouterr().out
        assert "meals" in out and "invariant" in out

    def test_run_each_algorithm(self, capsys):
        for name in ALGORITHMS:
            assert main(
                ["run", "--topology", "ring:5", "--algorithm", name, "--steps", "1500"]
            ) == 0

    def test_locality(self, capsys):
        code = main(
            [
                "locality",
                "--topology",
                "line:7",
                "--victim",
                "0",
                "--steps",
                "15000",
            ]
        )
        assert code == 0
        assert "starvation radius" in capsys.readouterr().out

    def test_stabilize(self, capsys):
        code = main(
            ["stabilize", "--topology", "line:5", "--seed", "3", "--max-steps", "200000"]
        )
        assert code == 0
        assert "converged" in capsys.readouterr().out

    def test_stabilize_plant_cycle_nc_only(self, capsys):
        code = main(
            [
                "stabilize",
                "--topology",
                "ring:5",
                "--plant-cycle",
                "--nc-only",
                "--max-steps",
                "200000",
            ]
        )
        assert code == 0

    def test_figure2(self, capsys):
        assert main(["figure2"]) == 0
        out = capsys.readouterr().out
        assert "panel 4" in out and "leave" in out

    def test_check(self, capsys):
        assert main(["check", "--topology", "line:3"]) == 0
        out = capsys.readouterr().out
        assert "converges: True" in out

    def test_check_corrected_threshold(self, capsys):
        assert main(["check", "--topology", "ring:3", "--corrected-threshold"]) == 0

    def test_unknown_algorithm(self):
        with pytest.raises(SystemExit):
            main(["run", "--algorithm", "nope"])


class TestReportCommand:
    def test_report_to_stdout(self, capsys, monkeypatch):
        # Stub the (slow) suite: this tests the CLI plumbing only.
        from repro.analysis import Section, SuiteResult
        import repro.analysis as analysis

        def fake_suite(config, **kwargs):
            result = SuiteResult(config=config)
            result.sections.append(
                Section(title="Stub", header=("a", "b"), rows=[(1, 2)])
            )
            return result

        monkeypatch.setattr(analysis, "run_suite", fake_suite)
        assert main(["report"]) == 0
        out = capsys.readouterr().out
        assert "# repro experiment suite" in out
        assert "## Stub" in out

    def test_report_to_file(self, tmp_path, monkeypatch):
        from repro.analysis import SuiteResult
        import repro.analysis as analysis

        monkeypatch.setattr(
            analysis, "run_suite", lambda config, **kwargs: SuiteResult(config=config)
        )
        target = tmp_path / "r.md"
        assert main(["report", "--output", str(target)]) == 0
        assert target.read_text().startswith("# repro experiment suite")




class TestSweepCommand:
    def test_basic_sweep(self, capsys):
        code = main(
            ["sweep", "--topology", "ring:5", "--trials", "3",
             "--steps", "300", "--quiet"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "shards: 3 (executed 3, resumed 0)" in out
        assert "meals/1k steps:" in out
        assert "safety (E at end): 3/3" in out

    def test_sweep_writes_and_resumes_jsonl(self, capsys, tmp_path):
        path = tmp_path / "out.jsonl"
        argv = ["sweep", "--topology", "ring:4", "--trials", "4",
                "--steps", "200", "--jobs", "2", "--out", str(path), "--quiet"]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert path.exists() and len(path.read_text().splitlines()) == 4

        # second run resumes everything and reports identical aggregates
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert "executed 0, resumed 4" in second
        agg = lambda text: [l for l in text.splitlines() if ":" in l and "shards" not in l and "records" not in l]
        assert agg(first) == agg(second)

    def test_sweep_multiple_axes(self, capsys):
        code = main(
            ["sweep", "--topology", "ring:4", "--topology", "line:4",
             "--algorithm", "na-diners", "--algorithm", "choy-singh",
             "--trials", "1", "--steps", "200", "--quiet"]
        )
        assert code == 0
        assert "shards: 4" in capsys.readouterr().out

    def test_sweep_with_crash(self, capsys):
        code = main(
            ["sweep", "--topology", "line:5", "--trials", "2", "--steps", "400",
             "--crash-victim", "1", "--crash-at", "50", "--quiet"]
        )
        assert code == 0

    def test_sweep_rejects_bad_topology_before_running(self):
        with pytest.raises(SystemExit):
            main(["sweep", "--topology", "torus:3", "--quiet"])

    def test_sweep_rejects_bad_algorithm(self):
        with pytest.raises(SystemExit):
            main(["sweep", "--algorithm", "nope", "--quiet"])


class TestCheckJobs:
    def test_parallel_check_matches_sequential(self, capsys):
        assert main(["check", "--topology", "line:3"]) == 0
        seq = capsys.readouterr().out
        assert main(["check", "--topology", "line:3", "--jobs", "2"]) == 0
        par = capsys.readouterr().out
        pick = lambda text: [l for l in text.splitlines() if "legitimate" in l or "converges" in l or "closed" in l]
        assert pick(seq) == pick(par)
        assert "2 shards" in par
