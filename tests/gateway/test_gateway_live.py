"""The live gateway over a real cluster: sockets, v3 frames, /metrics.

One shared scenario starts a chaos-free three-node lock-service cluster,
fronts it with a :class:`GatewayServer` (TCP listener + metrics endpoint),
and exercises every downstream face — the in-process submit API, raw
binary v3 frames over the front-end socket, and an HTTP metrics scrape —
before the read-only assertions pick the facts apart.
"""

import asyncio
import json

import pytest

from repro.gateway import GatewayConfig, GatewayServer, LoadgenConfig, run_live
from repro.net import ClusterConfig
from repro.net.cluster import ClusterSupervisor
from repro.net.codec import (
    Decoder,
    T_RSP,
    WIRE_BINARY_VERSION,
    encode_frame,
    encode_hello,
    encode_request,
)
from repro.net.codec import T_REQ
from repro.sim import ring


def make_cluster_config(**overrides):
    defaults = dict(
        topology=ring(3),
        topology_spec="ring:3",
        seed=1,
        tick_interval=0.005,
        chaos=False,
        lock_service=True,
    )
    defaults.update(overrides)
    return ClusterConfig(**defaults)


async def _read_frames(reader, decoder, want, timeout=5.0):
    """Collect ``want`` decoded frames from the socket or time out."""
    frames = []
    loop = asyncio.get_running_loop()
    deadline = loop.time() + timeout
    while len(frames) < want:
        remaining = deadline - loop.time()
        if remaining <= 0:
            raise asyncio.TimeoutError(f"got {len(frames)}/{want} frames")
        data = await asyncio.wait_for(reader.read(65536), remaining)
        if not data:
            break
        frames.extend(decoder.feed(data))
    return frames


async def _scrape(host, port):
    reader, writer = await asyncio.open_connection(host, port)
    writer.write(b"GET /metrics HTTP/1.1\r\nHost: gw\r\n\r\n")
    await writer.drain()
    raw = await asyncio.wait_for(reader.read(-1), 5.0)
    writer.close()
    return raw.decode("utf-8", "replace")


async def _scenario():
    facts = {}
    supervisor = ClusterSupervisor(make_cluster_config())
    await supervisor.start(10.0)
    pids = list(supervisor.config.topology.nodes)
    gateway = GatewayServer(
        GatewayConfig(
            upstream_addrs=[
                ("127.0.0.1", supervisor.nodes[pid].port) for pid in pids
            ],
            node_labels=[repr(pid) for pid in pids],
            upstreams_per_node=2,
            max_upstreams=8,
            gateway_id="gw",
            listen_host="127.0.0.1",
            metrics_port=0,
        )
    )
    await gateway.start()
    try:
        # Face 1: the in-process API, one full acquire/release cycle.
        grant = await gateway.request("alice", 0, "acquire")
        facts["inproc_grant"] = (grant.ok, grant.error, grant.wait_s)
        done = await gateway.request("alice", 0, "release")
        facts["inproc_release_ok"] = done.ok

        # Face 2: raw binary v3 frames over the TCP front end.  Logical
        # client "bob" rides a shared socket; ids follow the
        # ``client.seq`` stem convention the gateway uses for fairness.
        reader, writer = await asyncio.open_connection(
            "127.0.0.1", gateway.listen_port
        )
        decoder = Decoder()
        writer.write(encode_hello("fleet-conn", role="client"))
        writer.write(encode_request("acquire", "bob.1", node=1))
        rsp = (await _read_frames(reader, decoder, 1))[0]
        facts["tcp_rsp"] = (rsp.type, rsp.version, dict(rsp.body))
        writer.write(encode_request("release", "bob.2", node=1))
        rsp2 = (await _read_frames(reader, decoder, 1))[0]
        facts["tcp_release"] = dict(rsp2.body)

        # A JSON v1 request on the same socket still works (and gets a
        # JSON reply, because the gateway answers in kind).
        writer.write(
            encode_frame(
                T_REQ, {"op": "acquire", "id": "carol.1", "node": 2}
            )
        )
        rsp3 = (await _read_frames(reader, decoder, 1))[0]
        facts["tcp_json"] = (rsp3.version, dict(rsp3.body))
        writer.write(
            encode_frame(
                T_REQ, {"op": "release", "id": "carol.2", "node": 2}
            )
        )
        await _read_frames(reader, decoder, 1)

        # A malformed request gets a typed refusal, not a hang.
        writer.write(
            encode_frame(T_REQ, {"op": "acquire", "id": "dave.1"})
        )
        rsp4 = (await _read_frames(reader, decoder, 1))[0]
        facts["tcp_bad"] = dict(rsp4.body)
        writer.close()

        # Face 3: the metrics endpoint.
        facts["metrics_text"] = await _scrape(
            "127.0.0.1", gateway.metrics_port
        )
        facts["batch"] = gateway.batch_counters()
        facts["counters"] = gateway.mux.counters()
    finally:
        await gateway.stop()
        await supervisor.stop()
    return facts


@pytest.fixture(scope="module")
def facts():
    return asyncio.run(_scenario())


class TestInProcessFace:
    def test_acquire_grants(self, facts):
        ok, error, wait_s = facts["inproc_grant"]
        assert ok and error is None
        assert wait_s >= 0

    def test_release_settles(self, facts):
        assert facts["inproc_release_ok"]


class TestTcpFace:
    def test_binary_request_gets_binary_grant(self, facts):
        frame_type, version, body = facts["tcp_rsp"]
        assert frame_type == T_RSP
        assert version == WIRE_BINARY_VERSION
        assert body["id"] == "bob.1" and body["ok"] is True

    def test_binary_release_acknowledged(self, facts):
        assert facts["tcp_release"]["id"] == "bob.2"
        assert facts["tcp_release"]["ok"] is True

    def test_json_request_gets_json_reply(self, facts):
        version, body = facts["tcp_json"]
        assert version != WIRE_BINARY_VERSION
        assert body["id"] == "carol.1" and body["ok"] is True

    def test_malformed_request_refused_typed(self, facts):
        assert facts["tcp_bad"]["ok"] is False
        assert facts["tcp_bad"]["error"] == "bad-request"


class TestGauges:
    def test_metrics_endpoint_serves_gateway_gauges(self, facts):
        text = facts["metrics_text"]
        assert "HTTP/1.1 200" in text
        assert "repro_gateway_uptime_seconds" in text
        assert "repro_gateway_upstreams 6" in text
        assert "repro_gateway_admitted_total" in text
        assert "repro_gateway_batch_frames_total" in text

    def test_upstream_batching_counted(self, facts):
        batch = facts["batch"]
        assert batch["upstream_frames"] >= 6  # 3 cycles x (acquire+release)
        assert batch["upstream_flushes"] >= 1
        assert batch["dials"] == 6

    def test_mux_accounting_settles(self, facts):
        counters = facts["counters"]
        assert counters["grants"] >= 3
        assert counters["pending"] == 0
        assert counters["failures"] == 0


class TestRunLive:
    def test_small_fleet_end_to_end(self):
        config = LoadgenConfig(
            clients=40, nodes=3, topology="ring:3", seed=5,
            duration_s=1.2, think_s=0.05, hold_s=0.005,
            upstreams_per_node=2,
        )
        report, result, violations = asyncio.run(
            run_live(config, make_cluster_config())
        )
        assert violations == []
        assert report["kind"] == "loadgen-report"
        assert report["spec"]["engine"] == "live"
        results = report["results"]
        assert results["grants"] > 0
        assert results["safety"]["mode"] == "live"
        assert results["safety"]["violations"] == 0
        assert results["safety"]["audited_events"] > 0
        assert results["batching"]["upstream_frames"] > 0
        # The audit consumed the cluster's own event stream.
        assert any(e.get("event") == "net-grant" for e in result.events)
        # The report is JSON-serialisable as written.
        json.dumps(report)
