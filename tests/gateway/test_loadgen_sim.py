"""The virtual-time loadgen engine: determinism, dynamics, SLO ingest."""

import json

import pytest

from repro.gateway import (
    AdmissionConfig,
    LoadgenConfig,
    coefficient_of_variation,
    run_sim,
    write_loadgen_report,
)


def make(**overrides):
    defaults = dict(
        clients=300, nodes=3, topology="ring:3", seed=11, duration_s=1.0,
        think_s=0.1, hold_s=0.01,
    )
    defaults.update(overrides)
    return LoadgenConfig(**defaults)


class TestDeterminism:
    def test_same_spec_same_bytes(self, tmp_path):
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        write_loadgen_report(a, run_sim(make()))
        write_loadgen_report(b, run_sim(make()))
        assert a.read_bytes() == b.read_bytes()

    def test_seed_changes_the_run(self):
        r1 = run_sim(make(seed=1))
        r2 = run_sim(make(seed=2))
        assert json.dumps(r1, sort_keys=True) != json.dumps(r2, sort_keys=True)

    def test_open_loop_deterministic(self):
        config = make(mode="open", arrival_rate_hz=500.0)
        assert json.dumps(run_sim(config), sort_keys=True) == json.dumps(
            run_sim(config), sort_keys=True
        )


class TestDynamics:
    def test_grants_and_releases_balance(self):
        results = run_sim(make())["results"]
        assert results["grants"] > 0
        assert results["releases"] == results["grants"]

    def test_latency_percentiles_ordered(self):
        lat = run_sim(make())["results"]["latency"]
        assert lat["p50_s"] <= lat["p99_s"] <= lat["p999_s"] <= lat["max_s"]
        assert lat["min_s"] > 0

    def test_admission_sheds_under_overload(self):
        config = make(
            clients=2000,
            admission=AdmissionConfig(max_queue_depth=8),
        )
        results = run_sim(config)["results"]
        assert results["shed_total"] > 0
        assert results["sheds"]["queue-full"] > 0

    def test_per_node_grants_cover_all_nodes(self):
        per_node = run_sim(make())["results"]["per_node"]
        assert set(per_node) == {"n0", "n1", "n2"}
        assert all(doc["grants"] > 0 for doc in per_node.values())

    def test_spec_echoes_the_config(self):
        spec = run_sim(make(seed=77))["spec"]
        assert spec["engine"] == "sim"
        assert spec["seed"] == 77
        assert spec["clients"] == 300
        assert spec["gateway"]["admission"]["max_queue_depth"] == 256

    def test_upstream_budget_enforced(self):
        with pytest.raises(ValueError, match="exceed budget"):
            run_sim(make(nodes=5, upstreams_per_node=2, max_upstreams=8))


class TestSloIngest:
    def test_slo_accepts_a_sim_report(self, tmp_path):
        from repro.obs import SloObservations, ingest_artefact

        path = tmp_path / "loadgen-report.json"
        write_loadgen_report(path, run_sim(make()))
        obs = SloObservations()
        assert ingest_artefact(obs, path) == "loadgen"
        assert len(obs.grants) > 0
        assert obs.duration_s == pytest.approx(1.0)
        # Per-node labels survive so the fairness objective has nodes.
        assert {node for (_, node, _) in obs.grants} == {"n0", "n1", "n2"}

    def test_slo_evaluates_a_sim_report(self, tmp_path):
        from repro.obs import SloObservations, evaluate, ingest_artefact
        from repro.obs.slo import SloObjective, SloSpec

        path = tmp_path / "loadgen-report.json"
        write_loadgen_report(path, run_sim(make()))
        obs = SloObservations()
        ingest_artefact(obs, path)
        spec = SloSpec(
            name="loadgen-gate",
            objectives=(
                SloObjective(
                    name="grant-p99", kind="grant_latency",
                    threshold=60.0, target=0.99,
                ),
                SloObjective(name="safety", kind="safety"),
            ),
        )
        report = evaluate(spec, obs)
        assert not report.exhausted

    def test_live_safety_violations_reach_slo(self, tmp_path):
        from repro.obs import SloObservations

        report = run_sim(make())
        report["results"]["safety"] = {"mode": "live", "violations": 2}
        obs = SloObservations()
        obs.add_loadgen(report)
        assert obs.violations == 2


class TestHelpers:
    def test_cv_of_uniform_is_zero(self):
        assert coefficient_of_variation([3.0, 3.0, 3.0]) == 0.0

    def test_cv_empty_and_zero_mean(self):
        assert coefficient_of_variation([]) == 0.0
        assert coefficient_of_variation([1.0, -1.0]) == 0.0

    def test_cv_known_value(self):
        # mean 2, population stdev sqrt(2/3) -> CV ~0.408248
        assert coefficient_of_variation([1.0, 2.0, 3.0]) == pytest.approx(
            0.408248, abs=1e-6
        )


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"clients": 0},
            {"nodes": 0},
            {"duration_s": 0},
            {"mode": "burst"},
            {"mode": "open", "arrival_rate_hz": 0},
            {"think_s": -1},
            {"max_retries": -1},
        ],
    )
    def test_bad_config_rejected(self, kwargs):
        with pytest.raises(ValueError):
            make(**kwargs).validate()
