"""BatchWriter: coalescing policies, ordering, failure behaviour."""

import asyncio

import pytest

from repro.gateway import BatchWriter, FlushPolicy


class FakeWriter:
    """Enough of an ``asyncio.StreamWriter`` for the batcher."""

    def __init__(self, fail=False):
        self.writes = []
        self.fail = fail

    def write(self, data):
        if self.fail:
            raise ConnectionResetError("down")
        self.writes.append(bytes(data))

    async def drain(self):
        pass


def run(coro):
    return asyncio.run(coro)


class TestFlushTriggers:
    def test_frames_coalesce_into_one_write(self):
        async def scenario():
            writer = FakeWriter()
            batch = BatchWriter(
                writer, FlushPolicy(max_frames=3, max_delay_s=10.0)
            )
            batch.send(b"aa")
            batch.send(b"bb")
            assert writer.writes == []  # still buffering
            batch.send(b"cc")  # third frame trips max_frames
            assert writer.writes == [b"aabbcc"]
            assert batch.frames_out == 3 and batch.flushes == 1
            assert batch.mean_batch == pytest.approx(3.0)
            batch.close()

        run(scenario())

    def test_byte_budget_trips_a_flush(self):
        async def scenario():
            writer = FakeWriter()
            batch = BatchWriter(
                writer, FlushPolicy(max_frames=100, max_bytes=5, max_delay_s=10)
            )
            batch.send(b"aaa")
            assert writer.writes == []
            batch.send(b"bbb")  # 6 bytes >= 5
            assert writer.writes == [b"aaabbb"]
            batch.close()

        run(scenario())

    def test_delay_timer_flushes_a_lone_frame(self):
        async def scenario():
            writer = FakeWriter()
            batch = BatchWriter(
                writer, FlushPolicy(max_frames=100, max_delay_s=0.01)
            )
            batch.send(b"solo")
            assert writer.writes == []
            await asyncio.sleep(0.05)
            assert writer.writes == [b"solo"]
            batch.close()

        run(scenario())

    def test_zero_delay_means_immediate(self):
        async def scenario():
            writer = FakeWriter()
            batch = BatchWriter(
                writer, FlushPolicy(max_frames=100, max_delay_s=0)
            )
            batch.send(b"now")
            assert writer.writes == [b"now"]
            batch.close()

        run(scenario())


class TestOrderingAndFailure:
    def test_order_preserved_across_batches(self):
        async def scenario():
            writer = FakeWriter()
            batch = BatchWriter(
                writer, FlushPolicy(max_frames=2, max_delay_s=10)
            )
            for part in (b"1", b"2", b"3", b"4"):
                batch.send(part)
            batch.flush()
            assert b"".join(writer.writes) == b"1234"
            batch.close()

        run(scenario())

    def test_write_failure_closes_the_batcher(self):
        async def scenario():
            writer = FakeWriter(fail=True)
            batch = BatchWriter(
                writer, FlushPolicy(max_frames=1, max_delay_s=0)
            )
            batch.send(b"x")
            assert batch.closed
            batch.send(b"y")  # dropped silently, no raise
            assert batch.frames_out == 0

        run(scenario())

    def test_close_flushes_pending(self):
        async def scenario():
            writer = FakeWriter()
            batch = BatchWriter(
                writer, FlushPolicy(max_frames=100, max_delay_s=10)
            )
            batch.send(b"tail")
            batch.close()
            assert writer.writes == [b"tail"]

        run(scenario())

    def test_drain_applies_backpressure_path(self):
        async def scenario():
            writer = FakeWriter()
            batch = BatchWriter(
                writer, FlushPolicy(max_frames=100, max_delay_s=10)
            )
            batch.send(b"z")
            await batch.drain()
            assert writer.writes == [b"z"]
            batch.close()

        run(scenario())


class TestPolicyValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_frames": 0},
            {"max_bytes": 0},
            {"max_delay_s": -0.1},
        ],
    )
    def test_bad_policy_rejected(self, kwargs):
        with pytest.raises(ValueError):
            FlushPolicy(**kwargs).validate()
