"""The loadgen-report artefact: byte stability, thinning, sniffing."""

import json

import pytest

from repro.gateway import (
    LOADGEN_FORMAT_VERSION,
    LOADGEN_REPORT_KIND,
    build_report,
    read_loadgen_report,
    thin_samples,
    write_loadgen_report,
)


class TestThinning:
    def test_under_cap_is_identity(self):
        samples = [0.1, 0.2, 0.3]
        assert thin_samples(samples, 10) == samples

    def test_cap_respected_and_extremes_kept(self):
        samples = [i / 1000.0 for i in range(10000)]
        thinned = thin_samples(samples, 100)
        assert len(thinned) <= 101
        assert thinned[0] == samples[0]
        assert thinned[-1] == samples[-1]

    def test_deterministic(self):
        samples = [i * 0.001 for i in range(5037)]
        assert thin_samples(samples, 64) == thin_samples(samples, 64)

    def test_percentiles_survive_thinning(self):
        from repro.obs.metrics import percentile_of_sorted

        samples = [i / 100000.0 for i in range(100000)]
        thinned = thin_samples(samples, 20000)
        for q in (0.5, 0.99, 0.999):
            exact = percentile_of_sorted(samples, q)
            approx = percentile_of_sorted(thinned, q)
            assert abs(exact - approx) < 0.001


class TestRoundTrip:
    def report(self):
        return build_report(
            {"engine": "sim", "seed": 1, "clients": 10},
            {"grants": 3, "latency": {"p50_s": 0.12345678901}},
        )

    def test_build_tags_and_rounds(self):
        report = self.report()
        assert report["kind"] == LOADGEN_REPORT_KIND
        assert report["format"] == LOADGEN_FORMAT_VERSION
        assert report["results"]["latency"]["p50_s"] == 0.123457

    def test_write_read_roundtrip(self, tmp_path):
        path = tmp_path / "loadgen-report.json"
        write_loadgen_report(path, self.report())
        doc = read_loadgen_report(path)
        assert doc["results"]["grants"] == 3

    def test_write_is_byte_stable(self, tmp_path):
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        write_loadgen_report(a, self.report())
        write_loadgen_report(b, self.report())
        assert a.read_bytes() == b.read_bytes()


class TestReadErrors:
    def test_not_json(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text("{nope")
        with pytest.raises(ValueError, match="not valid JSON"):
            read_loadgen_report(path)

    def test_wrong_kind(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text(json.dumps({"kind": "slo-report"}))
        with pytest.raises(ValueError, match="not a loadgen-report"):
            read_loadgen_report(path)

    def test_missing_format(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text(json.dumps({"kind": LOADGEN_REPORT_KIND}))
        with pytest.raises(ValueError, match="format"):
            read_loadgen_report(path)

    def test_newer_format_refused(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text(
            json.dumps(
                {
                    "kind": LOADGEN_REPORT_KIND,
                    "format": LOADGEN_FORMAT_VERSION + 1,
                    "results": {},
                }
            )
        )
        with pytest.raises(ValueError, match="newer"):
            read_loadgen_report(path)

    def test_missing_results(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text(
            json.dumps({"kind": LOADGEN_REPORT_KIND, "format": 1})
        )
        with pytest.raises(ValueError, match="without results"):
            read_loadgen_report(path)
