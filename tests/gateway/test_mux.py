"""The transport-free mux: routing, ids, completions, abandonment."""

import pytest

from repro.gateway import (
    LOST_ERROR,
    RETRY_ERROR,
    AdmissionConfig,
    GatewayMux,
    retry_body,
)
from repro.obs import find


def make(nodes=3, **admission):
    return GatewayMux(
        [f"n{i}" for i in range(nodes)],
        upstreams_per_node=2,
        admission=AdmissionConfig(**admission) if admission else AdmissionConfig(),
        gateway_id="g",
    )


class TestRouting:
    def test_slots_grouped_per_node(self):
        mux = make(nodes=2)
        assert mux.upstream_count == 4
        assert mux.slot_node == [0, 0, 1, 1]

    def test_round_robin_within_a_node(self):
        mux = make(max_per_client=10)
        first = mux.submit("c", 1, "acquire", 0.0)
        second = mux.submit("c", 1, "acquire", 0.0)
        assert {first.upstream, second.upstream} == {2, 3}

    def test_request_ids_are_unique_and_prefixed(self):
        mux = make(max_per_client=10)
        ids = {mux.submit("c", 0, "acquire", 0.0).req_id for _ in range(5)}
        assert len(ids) == 5
        assert all(i.startswith("g.") for i in ids)

    def test_bad_node_index_refused(self):
        mux = make()
        decision = mux.submit("c", 99, "acquire", 0.0)
        assert not decision.admitted and decision.reason == "bad-node"
        assert mux.submit("c", -1, "acquire", 0.0).admitted is False


class TestCompletions:
    def test_resolve_measures_wait(self):
        mux = make()
        decision = mux.submit("c", 0, "acquire", 10.0)
        completion = mux.resolve(decision.req_id, True, 10.25)
        assert completion.client == "c" and completion.ok
        assert completion.wait_s == pytest.approx(0.25)
        assert mux.grants == 1

    def test_unknown_and_duplicate_ids_return_none(self):
        mux = make()
        decision = mux.submit("c", 0, "acquire", 0.0)
        assert mux.resolve("g.ffff", True, 0.0) is None
        assert mux.resolve(decision.req_id, True, 0.0) is not None
        assert mux.resolve(decision.req_id, True, 0.0) is None
        assert mux.unmatched == 2

    def test_shed_decision_carries_retry_hint(self):
        mux = make(max_per_client=1, retry_after_s=0.07)
        mux.submit("c", 0, "acquire", 0.0)
        shed = mux.submit("c", 0, "acquire", 0.0)
        assert not shed.admitted
        assert shed.retry_after_s == pytest.approx(0.07)
        body = retry_body(shed)
        assert body["error"] == RETRY_ERROR and body["ok"] is False
        assert body["shed"] == "client-window"

    def test_abandon_fails_only_that_slot(self):
        mux = make(max_per_client=10)
        kept = mux.submit("a", 1, "acquire", 0.0)
        lost = mux.submit("b", 0, "acquire", 0.0)
        completions = mux.abandon(lost.upstream, 1.0)
        assert [c.req_id for c in completions] == [lost.req_id]
        assert completions[0].error == LOST_ERROR and not completions[0].ok
        assert mux.pending_count() == 1
        assert mux.resolve(kept.req_id, True, 1.0) is not None


class TestGauges:
    def test_counters_shape(self):
        mux = make(max_per_client=1)
        decision = mux.submit("c", 0, "acquire", 0.0)
        mux.submit("c", 0, "acquire", 0.0)  # shed
        mux.resolve(decision.req_id, True, 0.1)
        counters = mux.counters()
        assert counters["admitted"] == 1
        assert counters["grants"] == 1
        assert counters["pending"] == 0
        assert counters["shed"]["client-window"] == 1

    def test_prom_samples(self):
        mux = make(max_per_client=10)
        mux.submit("c", 0, "acquire", 0.0)
        samples = mux.samples()
        assert find(samples, "repro_gateway_pending").value == 1.0
        assert find(samples, "repro_gateway_queue_depth", node="n0").value == 1.0
        assert find(samples, "repro_gateway_queue_depth", node="n1").value == 0.0
        assert find(samples, "repro_gateway_upstream_in_flight", slot="0") is not None


class TestValidation:
    def test_needs_nodes(self):
        with pytest.raises(ValueError):
            GatewayMux([])

    def test_needs_positive_upstreams(self):
        with pytest.raises(ValueError):
            GatewayMux(["n0"], upstreams_per_node=0)
