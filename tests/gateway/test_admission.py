"""Admission windows: per-client, per-node queue, per-upstream in-flight."""

import pytest

from repro.gateway import (
    SHED_CLIENT_WINDOW,
    SHED_IN_FLIGHT,
    SHED_QUEUE_FULL,
    AdmissionConfig,
    AdmissionController,
)


def make(**overrides):
    defaults = dict(
        max_per_client=1, max_queue_depth=4, max_in_flight=8,
        retry_after_s=0.05,
    )
    defaults.update(overrides)
    return AdmissionController(AdmissionConfig(**defaults))


class TestWindows:
    def test_admit_then_client_window_sheds(self):
        adm = make()
        assert adm.try_admit("c1", 0, 0, "acquire") is None
        assert adm.try_admit("c1", 0, 0, "acquire") == SHED_CLIENT_WINDOW

    def test_settle_reopens_client_window(self):
        adm = make()
        adm.try_admit("c1", 0, 0, "acquire")
        adm.settle("c1", 0, 0, "acquire")
        assert adm.try_admit("c1", 0, 0, "acquire") is None

    def test_queue_depth_sheds(self):
        adm = make(max_per_client=100)
        for i in range(4):
            assert adm.try_admit(f"c{i}", 0, 0, "acquire") is None
        assert adm.try_admit("c9", 0, 0, "acquire") == SHED_QUEUE_FULL
        # Another node's queue is independent.
        assert adm.try_admit("c9", 1, 1, "acquire") is None

    def test_in_flight_window_sheds(self):
        adm = make(max_per_client=100, max_queue_depth=100, max_in_flight=2)
        assert adm.try_admit("c1", 0, 0, "acquire") is None
        assert adm.try_admit("c2", 0, 0, "acquire") is None
        assert adm.try_admit("c3", 0, 0, "acquire") == SHED_IN_FLIGHT

    def test_release_bypasses_client_and_queue_windows(self):
        adm = make()
        for i in range(4):
            adm.try_admit(f"c{i}", 0, 0, "acquire")
        # Queue is full and c0's window is used — a release still passes.
        assert adm.try_admit("c0", 0, 0, "release") is None

    def test_release_consumes_upstream_slot_but_is_never_shed(self):
        adm = make(max_per_client=100, max_queue_depth=100, max_in_flight=1)
        assert adm.try_admit("c1", 0, 0, "release") is None
        # A second release still passes — refusing one would leak a lock —
        # but the slot it took now sheds the next acquire.
        assert adm.try_admit("c2", 0, 0, "release") is None
        assert adm.try_admit("c3", 0, 0, "acquire") == SHED_IN_FLIGHT


class TestAccounting:
    def test_counters_and_gauges(self):
        adm = make()
        adm.try_admit("c1", 0, 0, "acquire")
        adm.try_admit("c1", 0, 0, "acquire")  # shed
        assert adm.admitted == 1
        assert adm.shed_total() == 1
        assert adm.queue_depth(0) == 1
        assert adm.in_flight(0) == 1
        adm.settle("c1", 0, 0, "acquire")
        assert adm.completed == 1
        assert adm.queue_depth(0) == 0
        assert adm.in_flight(0) == 0

    def test_fairness_counts_per_client(self):
        adm = make(max_per_client=10)
        adm.try_admit("a", 0, 0, "acquire")
        adm.try_admit("a", 0, 0, "acquire")
        adm.try_admit("b", 0, 0, "acquire")
        counts = dict(adm.fairness_counts())
        assert counts["a"] == 2 and counts["b"] == 1


class TestValidation:
    @pytest.mark.parametrize(
        "field,value",
        [
            ("max_per_client", 0),
            ("max_queue_depth", 0),
            ("max_in_flight", 0),
            ("retry_after_s", -0.1),
        ],
    )
    def test_bad_config_rejected(self, field, value):
        with pytest.raises(ValueError):
            AdmissionConfig(**{field: value}).validate()
