"""Shared fixtures and helpers for the whole test suite."""

from __future__ import annotations

import random

import pytest

from repro.core import NADiners
from repro.sim import AlwaysHungry, Engine, System, WeaklyFairDaemon, line, ring


@pytest.fixture
def rng() -> random.Random:
    return random.Random(0xC0FFEE)


@pytest.fixture
def ring8_system() -> System:
    return System(ring(8), NADiners())


@pytest.fixture
def line5_system() -> System:
    return System(line(5), NADiners())


def make_engine(system: System, seed: int = 1, **kwargs) -> Engine:
    """An engine with the default fair daemon and everyone always hungry."""
    kwargs.setdefault("hunger", AlwaysHungry())
    return Engine(system, WeaklyFairDaemon(), seed=seed, **kwargs)
