"""Unit tests for the Choy–Singh style dynamic-threshold baseline."""

from repro.analysis import measure_failure_locality
from repro.baselines import ChoySinghDiners
from repro.core import NoFixdepthDiners
from repro.sim import AlwaysHungry, Engine, System, line, ring


class TestIdentity:
    def test_is_the_no_fixdepth_skeleton(self):
        # The baseline is the paper's program minus stabilization — i.e. the
        # no-fixdepth ablation under another (historically honest) name.
        assert isinstance(ChoySinghDiners(), NoFixdepthDiners)
        assert [a.name for a in ChoySinghDiners().actions()] == [
            "join",
            "leave",
            "enter",
            "exit",
        ]

    def test_distinct_name(self):
        assert ChoySinghDiners().name == "choy-singh"


class TestBehaviour:
    def test_liveness_without_faults(self):
        s = System(ring(6), ChoySinghDiners())
        e = Engine(s, hunger=AlwaysHungry(), seed=1)
        e.run(6000)
        assert all(e.eats_of(p) > 0 for p in s.pids)

    def test_failure_locality_two_on_line(self):
        """The defining property: a benign crash starves only processes
        within distance 2."""
        topo = line(8)
        report = measure_failure_locality(
            ChoySinghDiners(),
            topo,
            [0],
            warmup_steps=30_000,
            settle_steps=8_000,
            window=30_000,
            seed=2,
        )
        assert report.starvation_radius is None or report.starvation_radius <= 2
        assert report.all_beyond_radius_eat(topo, radius=2)
