"""Unit tests for the fork-ordering (Dijkstra) baseline."""

from repro.baselines import FORK_FREE, ForkOrderingDiners
from repro.core import e_holds
from repro.sim import AlwaysHungry, Engine, System, edge, line, ring


def hungry_system(topo):
    s = System(topo, ForkOrderingDiners())
    for p in s.pids:
        s.write_local(p, "needs", True)
        s.write_local(p, "state", "H")
    return s


class TestAcquisition:
    def test_forks_start_free(self):
        s = System(line(3), ForkOrderingDiners())
        assert s.read_edge(edge(0, 1)) == FORK_FREE
        assert s.read_edge(edge(1, 2)) == FORK_FREE

    def test_acquires_lowest_rank_first(self):
        s = hungry_system(line(3))
        algo = s.algorithm
        s.execute(1, algo.action_named("acquire"))
        # Edge {0,1} sorts before {1,2}: 1 must take the 0-1 fork first.
        assert s.read_edge(edge(0, 1)) == 1
        assert s.read_edge(edge(1, 2)) == FORK_FREE

    def test_cannot_skip_a_held_lower_fork(self):
        s = hungry_system(line(3))
        s.write_edge(edge(0, 1), 0)  # lower fork held by the neighbour
        # 1's next missing fork is {0,1}, which is not free: acquire disabled.
        assert "acquire" not in [a.name for a in s.enabled_actions(1)]

    def test_acquire_disabled_when_thinking(self):
        s = System(line(3), ForkOrderingDiners())
        assert "acquire" not in [a.name for a in s.enabled_actions(1)]

    def test_enter_requires_all_forks(self):
        s = hungry_system(line(3))
        s.write_edge(edge(0, 1), 1)
        assert "enter" not in [a.name for a in s.enabled_actions(1)]
        s.write_edge(edge(1, 2), 1)
        assert "enter" in [a.name for a in s.enabled_actions(1)]

    def test_exit_releases_only_own_forks(self):
        s = System(line(3), ForkOrderingDiners())
        s.write_local(1, "state", "E")
        s.write_edge(edge(0, 1), 1)
        s.write_edge(edge(1, 2), 2)  # held by 2, not ours
        s.execute(1, s.algorithm.action_named("exit"))
        assert s.read_edge(edge(0, 1)) == FORK_FREE
        assert s.read_edge(edge(1, 2)) == 2


class TestBehaviour:
    def test_liveness_without_faults(self):
        s = System(ring(5), ForkOrderingDiners())
        e = Engine(s, hunger=AlwaysHungry(), seed=4)
        e.run(10_000)
        assert all(e.eats_of(p) > 0 for p in s.pids)

    def test_safety_throughout_run(self):
        s = System(ring(5), ForkOrderingDiners())
        e = Engine(s, hunger=AlwaysHungry(), seed=5)
        for _ in range(5000):
            if not e.step():
                break
            assert e_holds(s.snapshot())

    def test_ordering_discipline_prevents_deadlock(self):
        # Everyone hungry on a ring — the classic deadlock scenario for
        # naive fork grabbing; the total order must avoid it.
        s = hungry_system(ring(6))
        e = Engine(s, hunger=AlwaysHungry(), seed=6)
        e.run(10_000)
        assert e.total_eats() > 0

    def test_corrupted_hold_and_wait_deadlocks(self):
        """An arbitrary state can violate the ascending-order discipline and
        deadlock forever — fork ordering is not stabilizing."""
        s = hungry_system(line(3))
        # 0 holds {0,1}? no: give 1 the high fork and 0... construct the
        # classic crossed holding: 1 holds {1,2} (its higher fork) while 2
        # holds nothing, and 0 holds {0,1}; then 1 waits for {0,1} forever
        # while sitting on {1,2}... 0 can eat though. Use a ring so the
        # crossed pattern closes.
        s = hungry_system(ring(3))
        # Ranks: {0,1} < {0,2} < {1,2}. Plant: 0 holds {0,2}, 1 holds {0,1},
        # 2 holds {1,2} — everyone holds one fork and waits on another held
        # fork; no fork is free; exit never fires; acquire never enabled.
        s.write_edge(edge(0, 2), 0)
        s.write_edge(edge(0, 1), 1)
        s.write_edge(edge(1, 2), 2)
        e = Engine(s, hunger=AlwaysHungry(), seed=7)
        result = e.run(20_000)
        assert e.total_eats() == 0

    def test_dead_fork_holder_blocks_neighbors(self):
        s = System(line(3), ForkOrderingDiners())
        s.write_local(1, "state", "E")
        s.write_edge(edge(0, 1), 1)
        s.write_edge(edge(1, 2), 1)
        s.kill(1)  # dies at the table holding both forks
        e = Engine(s, hunger=AlwaysHungry(), seed=8)
        e.run(10_000)
        assert e.eats_of(0) == 0
        assert e.eats_of(2) == 0
