"""Unit tests for the hygienic (Chandy–Misra style) baseline."""

from repro.baselines import HygienicDiners
from repro.core import e_holds
from repro.sim import AlwaysHungry, Engine, System, edge, line, ring


class TestActions:
    def test_three_actions(self):
        assert [a.name for a in HygienicDiners().actions()] == [
            "join",
            "enter",
            "exit",
        ]

    def test_join_unconditional_on_ancestors(self):
        # Unlike the paper's program, hygienic joins even behind a hungry
        # ancestor.
        s = System(line(3), HygienicDiners())
        s.write_local(0, "state", "H")
        s.write_local(1, "needs", True)
        assert "join" in [a.name for a in s.enabled_actions(1)]

    def test_enter_blocked_by_higher_priority_hungry_neighbor(self):
        s = System(line(3), HygienicDiners())
        s.write_local(0, "state", "H")  # 0 has priority over 1
        s.write_local(1, "state", "H")
        assert "enter" not in [a.name for a in s.enabled_actions(1)]

    def test_enter_allowed_over_lower_priority_hungry_neighbor(self):
        s = System(line(3), HygienicDiners())
        s.write_local(0, "state", "H")
        s.write_local(1, "state", "H")
        assert "enter" in [a.name for a in s.enabled_actions(0)]

    def test_enter_blocked_by_any_eating_neighbor(self):
        s = System(line(3), HygienicDiners())
        s.write_local(0, "state", "H")
        s.write_local(1, "state", "E")  # even a lower-priority eater blocks
        assert "enter" not in [a.name for a in s.enabled_actions(0)]

    def test_exit_demotes(self):
        s = System(line(3), HygienicDiners())
        s.write_local(1, "state", "E")
        s.execute(1, HygienicDiners().action_named("exit"))
        assert s.read_edge(edge(0, 1)) == 0
        assert s.read_edge(edge(1, 2)) == 2


class TestBehaviour:
    def test_safety_from_legitimate_start(self):
        s = System(ring(6), HygienicDiners())
        e = Engine(s, hunger=AlwaysHungry(), seed=1)
        for _ in range(5000):
            if not e.step():
                break
            assert e_holds(s.snapshot())

    def test_liveness_without_faults(self):
        s = System(ring(7), HygienicDiners())
        e = Engine(s, hunger=AlwaysHungry(), seed=2)
        e.run(8000)
        assert all(e.eats_of(p) > 0 for p in s.pids)

    def test_no_hunger_goes_quiescent(self):
        from repro.sim import NeverHungry

        s = System(line(4), HygienicDiners())
        e = Engine(s, hunger=NeverHungry(), seed=0)
        assert e.run(100).quiescent

    def test_blocked_chain_behind_dead_eater(self):
        """The unbounded-locality mechanism: a hungry process with priority
        below a forever-hungry process never eats."""
        s = System(line(4), HygienicDiners())
        # 0 eats forever (dead): 1 starves hungry; 2 behind 1 starves too
        # once 1 has priority over it.
        s.write_local(0, "state", "E")
        s.kill(0)
        s.write_local(1, "state", "H")
        s.write_edge(edge(1, 2), 1)  # 1 has priority over 2
        s.write_local(2, "state", "H")
        e = Engine(s, hunger=AlwaysHungry(), seed=3)
        e.run(10_000)
        assert e.eats_of(1) == 0
        assert e.eats_of(2) == 0
        # The chain extends all the way: 2 stays hungry with priority over 3
        # (the initial orientation), so even 3 — distance 3 from the crash —
        # starves.  This is the unbounded failure locality E2 measures.
        assert e.eats_of(3) == 0
