"""Unit tests for the paper's algorithm (Figure 1), action by action."""

import pytest

from repro.core import NADiners
from repro.sim import System, edge, line, ring, star


def enabled_names(system, pid):
    return [a.name for a in system.enabled_actions(pid)]


def line3():
    """line(3) with priorities 0 -> 1 -> 2 (node order), everyone needing."""
    s = System(line(3), NADiners())
    for p in s.pids:
        s.write_local(p, "needs", True)
    return s


class TestJoin:
    def test_enabled_when_thinking_and_ancestors_thinking(self):
        s = line3()
        assert "join" in enabled_names(s, 0)  # 0 has no ancestors

    def test_disabled_without_needs(self):
        s = line3()
        s.write_local(0, "needs", False)
        assert "join" not in enabled_names(s, 0)

    def test_disabled_when_not_thinking(self):
        s = line3()
        s.write_local(0, "state", "H")
        assert "join" not in enabled_names(s, 0)

    def test_disabled_when_ancestor_hungry(self):
        s = line3()
        s.write_local(0, "state", "H")  # 0 is 1's ancestor
        assert "join" not in enabled_names(s, 1)

    def test_disabled_when_ancestor_eating(self):
        s = line3()
        s.write_local(0, "state", "E")
        assert "join" not in enabled_names(s, 1)

    def test_descendant_state_irrelevant(self):
        s = line3()
        s.write_local(2, "state", "E")  # 2 is 1's descendant
        assert "join" in enabled_names(s, 1)

    def test_effect(self):
        s = line3()
        s.execute(0, NADiners().action_named("join"))
        assert s.read_local(0, "state") == "H"


class TestLeave:
    def test_enabled_when_ancestor_not_thinking(self):
        s = line3()
        s.write_local(1, "state", "H")
        s.write_local(0, "state", "H")
        assert "leave" in enabled_names(s, 1)

    def test_disabled_when_all_ancestors_thinking(self):
        s = line3()
        s.write_local(1, "state", "H")
        assert "leave" not in enabled_names(s, 1)

    def test_disabled_for_source_process(self):
        s = line3()
        s.write_local(0, "state", "H")  # 0 has no ancestors
        assert "leave" not in enabled_names(s, 0)

    def test_effect_returns_to_thinking(self):
        s = line3()
        s.write_local(1, "state", "H")
        s.write_local(0, "state", "H")
        s.execute(1, NADiners().action_named("leave"))
        assert s.read_local(1, "state") == "T"


class TestEnter:
    def test_enabled_for_top_priority_hungry(self):
        s = line3()
        s.write_local(0, "state", "H")
        assert "enter" in enabled_names(s, 0)

    def test_disabled_when_ancestor_hungry(self):
        s = line3()
        s.write_local(1, "state", "H")
        s.write_local(0, "state", "H")
        assert "enter" not in enabled_names(s, 1)

    def test_disabled_when_descendant_eating(self):
        s = line3()
        s.write_local(0, "state", "H")
        s.write_local(1, "state", "E")  # descendant of 0 eating
        assert "enter" not in enabled_names(s, 0)

    def test_enabled_when_descendant_merely_hungry(self):
        s = line3()
        s.write_local(0, "state", "H")
        s.write_local(1, "state", "H")
        assert "enter" in enabled_names(s, 0)

    def test_effect(self):
        s = line3()
        s.write_local(0, "state", "H")
        s.execute(0, NADiners().action_named("enter"))
        assert s.read_local(0, "state") == "E"


class TestExit:
    def test_enabled_while_eating(self):
        s = line3()
        s.write_local(0, "state", "E")
        assert "exit" in enabled_names(s, 0)

    def test_enabled_on_depth_overflow(self):
        s = line3()  # diameter 2
        s.write_local(2, "depth", 3)
        assert "exit" in enabled_names(s, 2)

    def test_disabled_when_thinking_and_depth_small(self):
        s = line3()
        s.write_local(0, "needs", False)
        assert "exit" not in enabled_names(s, 0)

    def test_effect_demotes_below_all_neighbors(self):
        s = line3()
        s.write_local(1, "state", "E")
        s.execute(1, NADiners().action_named("exit"))
        assert s.read_local(1, "state") == "T"
        assert s.read_local(1, "depth") == 0
        assert s.read_edge(edge(0, 1)) == 0  # 0 became 1's ancestor
        assert s.read_edge(edge(1, 2)) == 2  # 2 became 1's ancestor

    def test_exit_makes_process_a_sink(self):
        s = System(star(4), NADiners())
        s.write_local(0, "state", "E")
        s.execute(0, NADiners().action_named("exit"))
        for leaf in range(1, 5):
            assert s.read_edge(edge(0, leaf)) == leaf


class TestFixdepth:
    def test_enabled_on_underestimate(self):
        s = line3()
        s.write_local(2, "depth", 5)  # descendant of 1 with a large depth
        assert "fixdepth" in enabled_names(s, 1)

    def test_disabled_when_estimate_sufficient(self):
        s = line3()  # initial depths are exact: 2, 1, 0
        assert "fixdepth" not in enabled_names(s, 1)

    def test_ancestor_depth_irrelevant(self):
        s = line3()
        s.write_local(0, "depth", 9)  # 0 is 1's ancestor, not descendant
        assert "fixdepth" not in enabled_names(s, 1)

    def test_effect_takes_max_violating_descendant(self):
        s = System(star(3), NADiners())  # hub 0 is ancestor of all leaves
        s.write_local(1, "depth", 4)
        s.write_local(2, "depth", 7)
        s.execute(0, NADiners().action_named("fixdepth"))
        assert s.read_local(0, "depth") == 8

    def test_clamped_with_depth_cap(self):
        topo = line(3)
        algo = NADiners(depth_cap=topo.diameter + 1)
        s = System(topo, algo)
        s.write_local(2, "depth", 3)  # at cap
        s.write_local(1, "depth", 0)
        assert "fixdepth" in [a.name for a in s.enabled_actions(1)]
        s.execute(1, algo.action_named("fixdepth"))
        assert s.read_local(1, "depth") == 3  # clamped at cap

    def test_no_self_loop_at_cap(self):
        # Both at cap: the clamped guard must be disabled (no stutter).
        topo = line(3)
        algo = NADiners(depth_cap=topo.diameter + 1)
        s = System(topo, algo)
        s.write_local(1, "depth", 3)
        s.write_local(2, "depth", 3)
        assert "fixdepth" not in [a.name for a in s.enabled_actions(1)]


class TestParameters:
    def test_bad_depth_cap(self):
        with pytest.raises(ValueError):
            NADiners(depth_cap=0)

    def test_bad_diameter_override(self):
        with pytest.raises(ValueError):
            NADiners(diameter_override=-1)

    def test_diameter_override_changes_exit_threshold(self):
        topo = ring(6)  # diameter 3
        s = System(topo, NADiners(diameter_override=5))
        s.write_local(0, "depth", 4)  # above diameter but below override
        assert "exit" not in [a.name for a in s.enabled_actions(0)]
        s.write_local(0, "depth", 6)
        assert "exit" in [a.name for a in s.enabled_actions(0)]

    def test_action_named_unknown(self):
        from repro.sim import SimulationError

        with pytest.raises(SimulationError):
            NADiners().action_named("nope")

    def test_five_actions_in_paper_order(self):
        names = [a.name for a in NADiners().actions()]
        assert names == ["join", "leave", "enter", "exit", "fixdepth"]


class TestInitialState:
    def test_initial_depths_exact_on_ring(self):
        s = System(ring(4), NADiners())
        # Node-order orientation: 0->1->2->3 and 0->3; the longest chain
        # from 0 runs through the whole ring (the documented long-chain
        # finding: 3 exceeds the diameter 2).
        assert [s.read_local(p, "depth") for p in s.pids] == [3, 2, 1, 0]

    def test_initial_quiescence_on_path_like_graphs(self):
        # Where the longest initial chain equals the diameter, the exact
        # initial depths make the initial state quiescent.
        from repro.sim import binary_tree

        for topo in (line(5), star(4), binary_tree(3)):
            assert System(topo, NADiners()).is_quiescent()

    def test_ring_initial_state_churns(self):
        # On a ring the node-order chain exceeds the diameter, so the
        # process at the top legitimately has a (spurious) exit enabled —
        # the behaviour the threshold finding documents.
        s = System(ring(4), NADiners())
        assert [(p, a.name) for p, a in s.all_enabled()] == [(0, "exit")]

    def test_hunger_variable_declared(self):
        assert NADiners().hunger_variable == "needs"
