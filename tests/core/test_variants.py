"""Unit tests for the ablation variants."""

import pytest

from repro.analysis import plant_priority_cycle
from repro.core import (
    NADiners,
    NoDynamicThresholdDiners,
    NoFixdepthDiners,
    WrongDiameterDiners,
    overestimated_diameter,
    underestimated_diameter,
)
from repro.sim import AlwaysHungry, Engine, System, WeaklyFairDaemon, line, ring


class TestNoFixdepth:
    def test_actions(self):
        names = [a.name for a in NoFixdepthDiners().actions()]
        assert names == ["join", "leave", "enter", "exit"]

    def test_exit_ignores_depth(self):
        topo = line(3)
        s = System(topo, NoFixdepthDiners())
        s.write_local(0, "depth", 99)
        assert "exit" not in [a.name for a in s.enabled_actions(0)]

    def test_fair_livelock_exists_without_fixdepth(self):
        """The checker finds a weakly fair hungry/thinking alternation wave
        trapped on a priority cycle — the paper's Figure 2 narration — that
        the full program provably does not have (see verification tests)."""
        from repro.core import e_holds, nc_holds
        from repro.verification import (
            TransitionSystem,
            check_convergence,
            confirm_fair_livelock,
            enumerate_configurations,
        )

        topo = ring(3)
        algo = NoFixdepthDiners(depth_cap=1)
        configs = enumerate_configurations(
            algo, topo, fixed_locals={"needs": True, "depth": 0}
        )
        ts = TransitionSystem(algo, topo)
        report = check_convergence(
            ts, lambda c: nc_holds(c) and e_holds(c), configs
        )
        assert not report.converges
        assert report.failure_kind == "no-escape-action"
        assert confirm_fair_livelock(ts, report.stuck_scc)

    def test_random_fair_schedules_usually_escape(self):
        # The livelock needs a coordinated rotating schedule; a randomized
        # fair daemon escapes it with overwhelming probability, so the
        # simulated system still makes progress.  The defect is the
        # *existence* of a fair livelock, which the checker test pins down.
        topo = ring(4)
        s = System(topo, NoFixdepthDiners())
        plant_priority_cycle(s, [0, 1, 2, 3])
        for p in s.pids:
            s.write_local(p, "state", "H")
        e = Engine(s, WeaklyFairDaemon(), hunger=AlwaysHungry(), seed=1)
        e.run(20_000)
        assert e.total_eats() > 0

    def test_behaves_like_paper_program_without_faults(self):
        topo = line(4)
        s = System(topo, NoFixdepthDiners())
        e = Engine(s, hunger=AlwaysHungry(), seed=2)
        e.run(3000)
        assert all(e.eats_of(p) > 0 for p in s.pids)


class TestNoDynamicThreshold:
    def test_actions(self):
        names = [a.name for a in NoDynamicThresholdDiners().actions()]
        assert names == ["join", "enter", "exit", "fixdepth"]

    def test_still_live_without_faults(self):
        s = System(ring(5), NoDynamicThresholdDiners())
        e = Engine(s, hunger=AlwaysHungry(), seed=3)
        e.run(5000)
        assert all(e.eats_of(p) > 0 for p in s.pids)

    def test_hungry_process_never_yields(self):
        s = System(line(3), NoDynamicThresholdDiners())
        s.write_local(1, "state", "H")
        s.write_local(0, "state", "H")  # hungry ancestor
        assert "leave" not in [a.name for a in s.enabled_actions(1)]


class TestWrongDiameter:
    def test_name_embeds_value(self):
        assert WrongDiameterDiners(5).name == "na-diners/D=5"

    def test_underestimate_factory(self):
        topo = line(5)
        algo = underestimated_diameter(topo)
        assert algo.diameter_override == topo.diameter - 1

    def test_overestimate_factory(self):
        topo = line(5)
        algo = overestimated_diameter(topo, factor=3)
        assert algo.diameter_override == topo.diameter * 3

    def test_overestimate_factor_validation(self):
        with pytest.raises(ValueError):
            overestimated_diameter(line(3), factor=0)

    def test_underestimate_keeps_liveness(self):
        topo = line(5)
        s = System(topo, underestimated_diameter(topo))
        e = Engine(s, hunger=AlwaysHungry(), seed=4)
        e.run(8000)
        assert all(e.eats_of(p) > 0 for p in s.pids)

    def test_underestimate_causes_spurious_exits(self):
        # With D underestimated, legitimate depths trip the exit guard:
        # more exits than enters must occur.
        topo = line(5)
        s = System(topo, WrongDiameterDiners(1))
        e = Engine(s, hunger=AlwaysHungry(), seed=4)
        e.run(8000)
        exits = sum(v for (p, n), v in e.action_counts.items() if n == "exit")
        assert exits > e.total_eats()

    def test_overestimate_slows_cycle_detection(self):
        """A planted cycle takes longer to break when D is overestimated.

        Measured with nobody wanting to eat, so the only way the cycle can
        break is the depth-propagation machinery (an eating ``exit`` would
        otherwise break it first and mask the effect).
        """
        from repro.core import nc_holds
        from repro.sim import NeverHungry

        def steps_to_acyclic(algo, seed):
            topo = ring(6)
            s = System(topo, algo)
            plant_priority_cycle(s, list(range(6)))
            e = Engine(s, WeaklyFairDaemon(), hunger=NeverHungry(), seed=seed)
            result = e.run(200_000, stop_when=nc_holds)
            assert result.stopped
            return result.steps

        exact = sum(steps_to_acyclic(NADiners(), seed) for seed in range(4))
        slow = sum(
            steps_to_acyclic(WrongDiameterDiners(12), seed) for seed in range(4)
        )
        assert slow > exact
