"""Tests replaying the paper's Figure 2 exactly."""

import pytest

from repro.core import (
    FIGURE2_SEQUENCE,
    figure2_configuration,
    figure2_system,
    green_set,
    nc_holds,
    red_set,
    run_figure2,
)
from repro.analysis import find_live_cycles


class TestInitialPanel:
    def test_states_match_figure(self):
        c = figure2_configuration()
        expected = {"a": "E", "b": "H", "c": "T", "d": "H", "e": "H", "f": "T", "g": "H"}
        assert {p: c.local(p, "state") for p in c.topology.nodes} == expected

    def test_a_is_dead(self):
        assert figure2_configuration().dead == frozenset({"a"})

    def test_depths_match_figure(self):
        c = figure2_configuration()
        assert c.local("e", "depth") == 2
        assert c.local("f", "depth") == 3
        assert c.local("g", "depth") == 4

    def test_efg_cycle_present(self):
        c = figure2_configuration()
        cycles = find_live_cycles(c)
        assert any(set(cycle) == {"e", "f", "g"} for cycle in cycles)

    def test_nc_violated_initially(self):
        assert not nc_holds(figure2_configuration())

    def test_g_depth_exceeds_diameter(self):
        c = figure2_configuration()
        assert c.local("g", "depth") > c.topology.diameter


class TestNarratedTransitions:
    def test_replay_succeeds(self):
        replay = run_figure2()
        assert replay.executed == FIGURE2_SEQUENCE

    def test_d_has_leave_enabled_initially(self):
        s = figure2_system()
        assert "leave" in [a.name for a in s.enabled_actions("d")]

    def test_d_cannot_enter_initially(self):
        s = figure2_system()
        assert "enter" not in [a.name for a in s.enabled_actions("d")]

    def test_g_has_exit_enabled_initially(self):
        s = figure2_system()
        assert "exit" in [a.name for a in s.enabled_actions("g")]

    def test_e_cannot_enter_before_cycle_breaks(self):
        s = figure2_system()
        assert "enter" not in [a.name for a in s.enabled_actions("e")]

    def test_b_is_stuck_forever(self):
        # b is hungry with the dead eater among its descendants and no
        # ancestors: every eating-related action is disabled, now and
        # forever (only the harmless fixdepth bookkeeping can fire).
        s = figure2_system()
        names = {a.name for a in s.enabled_actions("b")}
        assert not names & {"join", "leave", "enter", "exit"}


class TestFinalPanel:
    def test_e_eats(self):
        replay = run_figure2()
        assert replay.final.local("e", "state") == "E"

    def test_d_yielded(self):
        replay = run_figure2()
        assert replay.final.local("d", "state") == "T"

    def test_cycle_broken(self):
        replay = run_figure2()
        assert nc_holds(replay.final)
        assert not find_live_cycles(replay.final)

    def test_g_reset(self):
        replay = run_figure2()
        assert replay.final.local("g", "state") == "T"
        assert replay.final.local("g", "depth") == 0


class TestCrashContainment:
    def test_red_set_within_distance_two(self):
        """The figure's headline: the crash's effect is contained within
        distance 2 — every red process is within 2 hops of the crash."""
        replay = run_figure2()
        c = replay.final
        topo = c.topology
        for p in red_set(c):
            assert topo.distance("a", p) <= 2

    def test_efg_stay_green(self):
        replay = run_figure2()
        assert green_set(replay.final) >= {"e", "f", "g"}

    def test_d_turns_red_after_yielding(self):
        # d is green while hungry (leave is enabled), red once it yielded
        # behind the forever-hungry b.
        replay = run_figure2()
        assert "d" not in red_set(replay.initial)
        assert "d" in red_set(replay.final)


class TestDivergenceDetection:
    def test_replay_rejects_algorithm_without_depth_exit(self):
        from repro.core import NoFixdepthDiners

        # Without the depth > D disjunct, g's narrated exit cannot fire.
        with pytest.raises(AssertionError, match="not enabled"):
            run_figure2(NoFixdepthDiners())

    def test_replay_rejects_algorithm_missing_action(self):
        from repro.core import NoDynamicThresholdDiners
        from repro.sim import SimulationError

        with pytest.raises(SimulationError, match="leave"):
            run_figure2(NoDynamicThresholdDiners())
