"""Unit tests for the shared diners vocabulary (core.state)."""

from repro.core import (
    DinerState,
    NADiners,
    diner_state,
    direct_ancestors,
    direct_descendants,
)
from repro.sim import System, edge, line, star


class TestDinerState:
    def test_values(self):
        assert DinerState.THINKING.value == "T"
        assert DinerState.HUNGRY.value == "H"
        assert DinerState.EATING.value == "E"

    def test_from_string(self):
        assert DinerState("H") is DinerState.HUNGRY

    def test_diner_state_accessor(self):
        s = System(line(3), NADiners())
        s.write_local(1, "state", "E")
        assert diner_state(s.snapshot(), 1) is DinerState.EATING


class TestAncestryAccessors:
    def test_initial_line_orientation(self):
        c = System(line(4), NADiners()).snapshot()
        assert direct_ancestors(c, 0) == ()
        assert direct_ancestors(c, 2) == (1,)
        assert direct_descendants(c, 2) == (3,)
        assert direct_descendants(c, 3) == ()

    def test_flip_changes_roles(self):
        s = System(line(3), NADiners())
        s.write_edge(edge(0, 1), 1)  # 1 becomes 0's ancestor
        c = s.snapshot()
        assert direct_ancestors(c, 0) == (1,)
        assert set(direct_descendants(c, 1)) == {0, 2}  # 2 by node order

    def test_partition_of_neighbors(self):
        """Every neighbour is exactly one of: ancestor or descendant."""
        s = System(star(5), NADiners())
        c = s.snapshot()
        for p in c.topology.nodes:
            ancestors = set(direct_ancestors(c, p))
            descendants = set(direct_descendants(c, p))
            assert not ancestors & descendants
            assert ancestors | descendants == set(c.topology.neighbors(p))

    def test_symmetry(self):
        """q is p's ancestor iff p is q's descendant."""
        c = System(star(4), NADiners()).snapshot()
        for p in c.topology.nodes:
            for q in direct_ancestors(c, p):
                assert p in direct_descendants(c, q)
