"""Unit tests for the §3 predicates: NC, SH/ST, E, I, RD."""

import math

from repro.core import (
    NADiners,
    e_holds,
    eating_pairs,
    green_set,
    invariant_holds,
    invariant_report,
    invariant_with_threshold,
    is_shallow,
    longest_live_ancestor_chain,
    nc_holds,
    priority_edges,
    red_set,
    st_holds,
    stably_shallow_set,
)
from repro.sim import System, edge, line, ring


def line4():
    return System(line(4), NADiners())


class TestPriorityEdges:
    def test_initial_orientation(self):
        c = line4().snapshot()
        assert priority_edges(c) == ((0, 1), (1, 2), (2, 3))

    def test_after_flip(self):
        s = line4()
        s.write_edge(edge(0, 1), 1)
        assert (1, 0) in priority_edges(s.snapshot())


class TestNC:
    def test_initial_acyclic(self):
        assert nc_holds(line4().snapshot())

    def test_live_cycle_violates(self):
        s = System(ring(4), NADiners())
        for i in range(4):  # orient the ring into a directed cycle
            s.write_edge(edge(i, (i + 1) % 4), i)
        assert not nc_holds(s.snapshot())

    def test_cycle_through_dead_process_allowed(self):
        s = System(ring(4), NADiners())
        for i in range(4):
            s.write_edge(edge(i, (i + 1) % 4), i)
        s.kill(0)
        assert nc_holds(s.snapshot())

    def test_acyclic_orientation_of_cycle_graph(self):
        s = System(ring(4), NADiners())  # node-order orientation is acyclic
        assert nc_holds(s.snapshot())


class TestAncestorChain:
    def test_source(self):
        c = line4().snapshot()
        assert longest_live_ancestor_chain(c, 0) == 1

    def test_sink(self):
        c = line4().snapshot()
        assert longest_live_ancestor_chain(c, 3) == 4

    def test_dead_process_zero(self):
        s = line4()
        s.kill(2)
        assert longest_live_ancestor_chain(s.snapshot(), 2) == 0

    def test_dead_ancestor_cuts_chain(self):
        s = line4()
        s.kill(0)
        assert longest_live_ancestor_chain(s.snapshot(), 3) == 3

    def test_live_cycle_is_infinite(self):
        s = System(ring(4), NADiners())
        for i in range(4):
            s.write_edge(edge(i, (i + 1) % 4), i)
        assert longest_live_ancestor_chain(s.snapshot(), 0) == math.inf


class TestShallow:
    def test_initial_line_all_shallow(self):
        c = line4().snapshot()
        assert all(is_shallow(c, p) for p in range(4))

    def test_depth_above_diameter_not_shallow(self):
        s = line4()
        s.write_local(3, "depth", 4)  # diameter is 3
        assert not is_shallow(s.snapshot(), 3)

    def test_dead_always_shallow(self):
        s = line4()
        s.write_local(1, "depth", 99)
        s.kill(1)
        assert is_shallow(s.snapshot(), 1)

    def test_propagation_hazard_detected(self):
        # descendant's depth + ancestor-chain length exceeds D while
        # fixdepth is still enabled: unstably deep.
        s = line4()
        s.write_local(2, "depth", 3)  # descendant of 1
        s.write_local(1, "depth", 1)
        # depth.2 + l.1 = 3 + 2 = 5 > 3 and depth.2 + 1 = 4 > depth.1
        assert not is_shallow(s.snapshot(), 1)

    def test_fixdepth_disabled_rescues(self):
        s = line4()
        s.write_local(2, "depth", 2)
        s.write_local(1, "depth", 3)  # depth.2 + 1 <= depth.1: no propagation
        assert is_shallow(s.snapshot(), 1)

    def test_threshold_parameter(self):
        s = System(ring(3), NADiners())
        c = s.snapshot()
        # literal diameter (1): the chain's source has depth 2 > 1;
        # corrected threshold (longest simple path = 2): shallow.
        assert not is_shallow(c, 0)
        assert is_shallow(c, 0, threshold=2)


class TestStablyShallow:
    def test_initial_line_all_stable(self):
        c = line4().snapshot()
        assert stably_shallow_set(c) == frozenset(range(4))
        assert st_holds(c)

    def test_deep_descendant_destabilises(self):
        s = line4()
        s.write_local(3, "depth", 9)  # 3 is everyone's descendant
        stable = stably_shallow_set(s.snapshot())
        assert 3 not in stable
        assert 2 not in stable  # 3 is reachable from 2

    def test_dead_process_always_stable(self):
        s = line4()
        s.write_local(3, "depth", 9)
        s.kill(3)
        assert 3 in stably_shallow_set(s.snapshot())


class TestE:
    def test_no_eaters(self):
        assert e_holds(line4().snapshot())

    def test_live_neighbors_eating_violates(self):
        s = line4()
        s.write_local(1, "state", "E")
        s.write_local(2, "state", "E")
        assert not e_holds(s.snapshot())

    def test_dead_pair_allowed(self):
        s = line4()
        s.write_local(1, "state", "E")
        s.write_local(2, "state", "E")
        s.kill(1)
        s.kill(2)
        assert e_holds(s.snapshot())

    def test_one_dead_one_live_still_violates(self):
        s = line4()
        s.write_local(1, "state", "E")
        s.write_local(2, "state", "E")
        s.kill(1)
        assert not e_holds(s.snapshot())

    def test_nonadjacent_eaters_fine(self):
        s = line4()
        s.write_local(0, "state", "E")
        s.write_local(2, "state", "E")
        assert e_holds(s.snapshot())

    def test_eating_pairs(self):
        s = line4()
        s.write_local(1, "state", "E")
        s.write_local(2, "state", "E")
        assert eating_pairs(s.snapshot()) == frozenset({edge(1, 2)})


class TestInvariant:
    def test_initial_state_legitimate(self):
        c = line4().snapshot()
        assert invariant_holds(c)
        assert invariant_report(c) == {"NC": True, "ST": True, "E": True}

    def test_k3_literal_invariant_empty_but_threshold_fixes(self):
        c = System(ring(3), NADiners()).snapshot()
        assert not invariant_holds(c)  # the documented K3 finding
        assert invariant_holds(c, threshold=2)

    def test_invariant_with_threshold_factory(self):
        pred = invariant_with_threshold(2)
        assert pred(System(ring(3), NADiners()).snapshot())


class TestRedGreen:
    def test_no_crash_all_green(self):
        c = line4().snapshot()
        assert red_set(c) == frozenset()
        assert green_set(c) == frozenset(range(4))

    def test_dead_is_red(self):
        s = line4()
        s.kill(1)
        assert 1 in red_set(s.snapshot())

    def test_thinking_behind_dead_eater_is_red(self):
        s = line4()
        s.write_local(0, "state", "E")
        s.kill(0)  # 0 is 1's ancestor, eating forever
        assert 1 in red_set(s.snapshot())

    def test_hungry_above_dead_eater_is_red(self):
        # 1 hungry; its descendant 2 eats forever (dead); 1's ancestor 0
        # must be red-and-thinking for RD's third disjunct.
        s = line4()
        s.write_local(2, "state", "E")
        s.kill(2)
        s.write_local(1, "state", "H")
        s.write_local(0, "state", "T")
        s.kill(0)
        red = red_set(s.snapshot())
        assert 1 in red

    def test_red_propagates_transitively(self):
        s = System(line(5), NADiners())
        s.write_local(0, "state", "E")
        s.kill(0)
        s.write_local(1, "state", "H")  # red: blocked hungry? -> thinking chain
        # 1 is thinking? set states to form a chain of blocked thinkers.
        s.write_local(1, "state", "T")
        # 1 red? ancestor 0 red and eating -> yes (T disjunct).
        red = red_set(s.snapshot())
        assert 1 in red

    def test_hungry_with_live_ancestor_not_red(self):
        s = line4()
        s.write_local(1, "state", "H")
        assert 1 not in red_set(s.snapshot())

    def test_figure2_red_set(self):
        from repro.core import figure2_configuration

        c = figure2_configuration()
        assert red_set(c) == frozenset({"a", "b", "c"})
        assert green_set(c) == frozenset({"d", "e", "f", "g"})
