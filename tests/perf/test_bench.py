"""Unit tests for the benchmark registry and runner."""

import pytest

from repro.perf import (
    Benchmark,
    registry,
    robust_stats,
    run_benchmark,
    run_benchmarks,
    select,
)
from repro.perf.bench import register, _REGISTRY


def make_bench(name="t/x", **kwargs):
    calls = []

    def setup():
        def kernel():
            calls.append(1)

        return kernel

    bench = Benchmark(name=name, setup=setup, **kwargs)
    return bench, calls


class TestRegistry:
    def test_default_kernels_registered(self):
        names = set(registry())
        # The kernels the ISSUE names must all be present.
        assert "engine/steps/ring16" in names
        assert "engine/steps/line16" in names
        assert "engine/steps/grid4x4" in names
        assert "snapshot/ring16" in names
        assert "invariant/eval/ring16" in names
        assert "checker/successors/ring6" in names
        assert "mp/ticks/ring8" in names
        assert "campaign/shard/sim_ring6" in names
        assert "net/codec/binary-roundtrip" in names
        assert "gateway/mux" in names

    def test_select_filters_by_substring(self):
        engine_only = select("engine/steps")
        assert engine_only
        assert all("engine/steps" in b.name for b in engine_only)
        assert [b.name for b in engine_only] == sorted(b.name for b in engine_only)

    def test_select_no_filter_returns_everything(self):
        assert len(select()) == len(registry())

    def test_duplicate_registration_rejected(self):
        @register("test/dup-guard")
        def setup():  # pragma: no cover - never run
            return lambda: None

        try:
            with pytest.raises(ValueError):
                register("test/dup-guard")(setup)
        finally:
            _REGISTRY.pop("test/dup-guard", None)


class TestRobustStats:
    def test_odd_sample(self):
        stats = robust_stats([3.0, 1.0, 2.0])
        assert stats["median_s"] == 2.0
        assert stats["min_s"] == 1.0
        assert stats["max_s"] == 3.0
        assert stats["mean_s"] == 2.0

    def test_even_sample_interpolates_median(self):
        assert robust_stats([1.0, 2.0, 3.0, 4.0])["median_s"] == 2.5

    def test_iqr(self):
        # 1..9: q1 = 3, q3 = 7 -> IQR 4.
        stats = robust_stats([float(v) for v in range(1, 10)])
        assert stats["iqr_s"] == pytest.approx(4.0)

    def test_outlier_does_not_move_median(self):
        calm = robust_stats([1.0, 1.0, 1.0, 1.0, 1.0])
        noisy = robust_stats([1.0, 1.0, 1.0, 1.0, 100.0])
        assert noisy["median_s"] == calm["median_s"] == 1.0


class TestRunner:
    def test_rounds_and_warmup_counted(self):
        bench, calls = make_bench(rounds=4, warmup=2)
        result = run_benchmark(bench)
        assert len(calls) == 6  # warmup + timed
        assert result.rounds == 4
        assert result.warmup == 2
        assert len(result.times) == 4

    def test_quick_plan(self):
        bench, calls = make_bench(quick_rounds=2, quick_warmup=1)
        result = run_benchmark(bench, quick=True)
        assert len(calls) == 3
        assert result.rounds == 2

    def test_fake_clock_gives_exact_stats(self):
        bench, _ = make_bench(rounds=3, warmup=0)
        ticks = iter([0.0, 1.0, 10.0, 12.0, 20.0, 23.0])  # deltas 1, 2, 3
        result = run_benchmark(bench, clock=lambda: next(ticks))
        assert result.times == (1.0, 2.0, 3.0)
        assert result.stats["median_s"] == 2.0
        assert result.stats["min_s"] == 1.0

    def test_ops_per_sec(self):
        bench, _ = make_bench(rounds=1, warmup=0, ops=500)
        ticks = iter([0.0, 2.0])
        result = run_benchmark(bench, clock=lambda: next(ticks))
        assert result.ops_per_sec == 250.0

    def test_run_benchmarks_progress(self):
        seen = []
        b1, _ = make_bench("t/a", rounds=1, warmup=0)
        b2, _ = make_bench("t/b", rounds=1, warmup=0)
        results = run_benchmarks([b1, b2], progress=lambda r: seen.append(r.name))
        assert seen == ["t/a", "t/b"]
        assert [r.name for r in results] == ["t/a", "t/b"]

    def test_real_kernel_smoke(self):
        # One cheap real kernel end to end: positive, finite timings.
        bench = registry()["snapshot/ring16"]
        result = run_benchmark(bench, quick=True)
        assert result.median > 0
        assert result.ops_per_sec > 0

    def test_codec_kernel_json_mode(self, monkeypatch):
        # The env switch re-times the JSON path under the same name.
        bench = registry()["net/codec/binary-roundtrip"]
        monkeypatch.setenv("REPRO_CODEC_JSON", "1")
        result = run_benchmark(bench, quick=True)
        assert result.median > 0

    def test_gateway_mux_kernel_smoke(self):
        bench = registry()["gateway/mux"]
        result = run_benchmark(bench, quick=True)
        assert result.median > 0

    def test_payload_shape(self):
        bench, _ = make_bench(rounds=2, warmup=0, ops=10)
        ticks = iter([0.0, 1.0, 1.0, 2.0])
        payload = run_benchmark(bench, clock=lambda: next(ticks)).payload()
        assert payload["ops"] == 10
        assert payload["rounds"] == 2
        assert set(payload["stats"]) == {
            "median_s", "iqr_s", "min_s", "max_s", "mean_s",
        }
        assert payload["ops_per_sec"] == 10.0
