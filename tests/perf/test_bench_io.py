"""BENCH file round-trip, provenance, and the regression gate."""

import json

import pytest

from repro.cli import main
from repro.perf import (
    BENCH_FORMAT_VERSION,
    BenchResult,
    bench_payload,
    compare,
    environment,
    format_compare,
    read_bench,
    write_bench,
)


def result(name, times=(1.0, 2.0, 3.0), ops=10):
    return BenchResult(
        name=name, ops=ops, rounds=len(times), warmup=1, times=tuple(times)
    )


class TestEnvironment:
    def test_provenance_keys(self):
        env = environment()
        for key in ("git_rev", "python", "platform", "cpu_count", "timestamp"):
            assert key in env
        assert env["python"].count(".") == 2

    def test_git_rev_in_this_checkout(self):
        # The test suite runs inside the repo, so the rev must resolve.
        assert environment()["git_rev"]


class TestRoundTrip:
    def test_write_then_read(self, tmp_path):
        path = tmp_path / "BENCH_t.json"
        write_bench(path, [result("a/b"), result("c/d")], options={"quick": True})
        doc = read_bench(path)
        assert doc["format"] == BENCH_FORMAT_VERSION
        assert doc["options"]["quick"] is True
        assert set(doc["benchmarks"]) == {"a/b", "c/d"}
        stats = doc["benchmarks"]["a/b"]["stats"]
        assert stats["median_s"] == 2.0
        assert stats["min_s"] == 1.0

    def test_read_rejects_non_bench_json(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text('{"hello": 1}')
        with pytest.raises(ValueError):
            read_bench(path)

    def test_read_rejects_bad_format_version(self, tmp_path):
        path = tmp_path / "x.json"
        payload = bench_payload([result("a")])
        payload["format"] = 99
        path.write_text(json.dumps(payload))
        with pytest.raises(ValueError):
            read_bench(path)

    def test_read_rejects_invalid_json(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text("{nope")
        with pytest.raises(ValueError):
            read_bench(path)


def _slow_copy(doc, name, factor):
    """A deep-enough copy of ``doc`` with one benchmark slowed by ``factor``."""
    copy = json.loads(json.dumps(doc))
    stats = copy["benchmarks"][name]["stats"]
    stats["median_s"] *= factor
    return copy


class TestCompare:
    def _doc(self):
        return bench_payload([result("a/b"), result("c/d", times=(4.0, 5.0, 6.0))])

    def test_identical_is_clean(self):
        doc = self._doc()
        report = compare(doc, doc)
        assert report.ok
        assert [d.ratio for d in report.deltas] == [1.0, 1.0]

    def test_injected_slowdown_fails_the_gate(self):
        doc = self._doc()
        report = compare(doc, _slow_copy(doc, "a/b", 2.0), threshold=0.25)
        assert not report.ok
        assert [d.name for d in report.regressions] == ["a/b"]
        assert report.regressions[0].ratio == pytest.approx(2.0)

    def test_slowdown_within_threshold_tolerated(self):
        doc = self._doc()
        report = compare(doc, _slow_copy(doc, "a/b", 1.2), threshold=0.25)
        assert report.ok

    def test_deltas_ranked_worst_first(self):
        doc = self._doc()
        new = _slow_copy(_slow_copy(doc, "a/b", 1.5), "c/d", 3.0)
        report = compare(doc, new)
        assert [d.name for d in report.deltas] == ["c/d", "a/b"]

    def test_added_and_removed_reported(self):
        old = bench_payload([result("gone"), result("both")])
        new = bench_payload([result("both"), result("fresh")])
        report = compare(old, new)
        assert report.added == ["fresh"]
        assert report.removed == ["gone"]
        assert [d.name for d in report.deltas] == ["both"]

    def test_format_mentions_verdicts(self):
        doc = self._doc()
        text = format_compare(compare(doc, _slow_copy(doc, "a/b", 2.0)))
        assert "REGRESSION" in text
        assert "regression(s)" in text
        clean = format_compare(compare(doc, doc))
        assert "no regressions" in clean


class TestCliEndToEnd:
    """The acceptance-criteria flow: bench --out, then --compare."""

    def test_quick_out_then_compare_clean(self, tmp_path, capsys):
        out = tmp_path / "BENCH_pr.json"
        assert main([
            "bench", "--quick", "--filter", "snapshot", "--out", str(out),
        ]) == 0
        assert main(["bench", "--compare", str(out), str(out)]) == 0
        assert "no regressions" in capsys.readouterr().out

    def test_compare_exits_nonzero_on_artificial_slowdown(self, tmp_path, capsys):
        out = tmp_path / "BENCH_old.json"
        assert main([
            "bench", "--quick", "--filter", "snapshot", "--out", str(out),
        ]) == 0
        doc = read_bench(out)
        slowed = tmp_path / "BENCH_new.json"
        slowed.write_text(
            json.dumps(_slow_copy(doc, "snapshot/ring16", 10.0))
        )
        assert main(["bench", "--compare", str(out), str(slowed)]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_compare_missing_file_is_clean_error(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["bench", "--compare", str(tmp_path / "no.json"),
                  str(tmp_path / "pe.json")])

    def test_bench_carries_provenance(self, tmp_path):
        out = tmp_path / "BENCH_pr.json"
        main(["bench", "--quick", "--filter", "snapshot", "--out", str(out)])
        env = read_bench(out)["env"]
        assert env["git_rev"]
        assert env["cpu_count"] >= 1

    def test_unknown_filter_exits(self):
        with pytest.raises(SystemExit):
            main(["bench", "--filter", "no-such-kernel", "--list"])


def _zeroed_copy(doc, name):
    copy = json.loads(json.dumps(doc))
    copy["benchmarks"][name]["stats"]["median_s"] = 0.0
    return copy


class TestNoBaseline:
    """Kernels without a usable baseline median must be reported, not gated."""

    def _doc(self):
        return bench_payload([result("a/b"), result("c/d", times=(4.0, 5.0, 6.0))])

    def test_zero_baseline_median_does_not_crash_or_regress(self):
        doc = self._doc()
        report = compare(_zeroed_copy(doc, "a/b"), doc)
        assert report.ok
        assert report.no_baseline == ["a/b"]
        assert [d.name for d in report.deltas] == ["c/d"]

    def test_zero_new_median_is_no_baseline_too(self):
        doc = self._doc()
        report = compare(doc, _zeroed_copy(doc, "a/b"))
        assert report.ok
        assert report.no_baseline == ["a/b"]

    def test_missing_stats_block(self):
        doc = self._doc()
        broken = json.loads(json.dumps(doc))
        del broken["benchmarks"]["a/b"]["stats"]
        report = compare(broken, doc)
        assert report.ok and report.no_baseline == ["a/b"]

    def test_malformed_median_values(self):
        doc = self._doc()
        for bad in (None, "fast", True, float("nan"), -1.0):
            broken = json.loads(json.dumps(doc))
            broken["benchmarks"]["a/b"]["stats"]["median_s"] = bad
            report = compare(broken, doc)
            assert report.ok, bad
            assert report.no_baseline == ["a/b"], bad

    def test_format_compare_mentions_no_baseline(self):
        doc = self._doc()
        text = format_compare(compare(_zeroed_copy(doc, "a/b"), doc))
        assert "new kernel / no baseline" in text
        assert "a/b" in text

    def test_cli_compare_survives_zero_baseline(self, tmp_path, capsys):
        doc = self._doc()
        old = tmp_path / "BENCH_old.json"
        new = tmp_path / "BENCH_new.json"
        old.write_text(json.dumps(_zeroed_copy(doc, "a/b")))
        new.write_text(json.dumps(doc))
        assert main(["bench", "--compare", str(old), str(new)]) == 0
        out = capsys.readouterr().out
        assert "no baseline" in out and "no regressions" in out


class TestHistoryScan:
    """A garbage BENCH_*.json degrades the history table, never aborts it."""

    def _write(self, directory, name, payload):
        (directory / name).write_text(
            payload if isinstance(payload, str) else json.dumps(payload)
        )

    def test_garbage_files_are_skipped_with_warning(self, tmp_path):
        from repro.perf import scan_bench_history

        good = bench_payload([result("a/b")])
        self._write(tmp_path, "BENCH_good.json", good)
        self._write(tmp_path, "BENCH_truncated.json", '{"kind": "bench", "form')
        self._write(tmp_path, "BENCH_wrong_shape.json", {"kind": "bench"})
        self._write(tmp_path, "BENCH_list.json", [1, 2, 3])
        self._write(tmp_path, "BENCH_bad_benchmarks.json", {
            "kind": "bench", "format": 1, "benchmarks": "nope",
        })
        entries, ignored = scan_bench_history(tmp_path)
        assert [e.label for e in entries] == ["good"]
        assert sorted(ignored) == [
            "BENCH_bad_benchmarks.json",
            "BENCH_list.json",
            "BENCH_truncated.json",
            "BENCH_wrong_shape.json",
        ]

    def test_malformed_entries_inside_valid_file_are_tolerated(self, tmp_path):
        from repro.perf import scan_bench_history

        doc = bench_payload([result("a/b"), result("c/d")])
        doc["benchmarks"]["a/b"] = "not a mapping"
        doc["benchmarks"]["c/d"]["stats"]["median_s"] = "bogus"
        doc["env"] = {"timestamp": 12345, "git_rev": ["not", "a", "str"]}
        self._write(tmp_path, "BENCH_odd.json", doc)
        entries, ignored = scan_bench_history(tmp_path)
        assert ignored == []
        assert len(entries) == 1
        assert entries[0].medians == {}
        assert entries[0].timestamp is None and entries[0].git_rev is None

    def test_cli_history_prints_warning_and_table(self, tmp_path, capsys):
        self._write(tmp_path, "BENCH_ok.json", bench_payload([result("a/b")]))
        self._write(tmp_path, "BENCH_junk.json", "not json at all")
        assert main(["bench", "--history", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "ignored 1 non-BENCH file(s): BENCH_junk.json" in out
        assert "a/b" in out

    def test_missing_directory_is_clean_error(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["bench", "--history", str(tmp_path / "absent")])
