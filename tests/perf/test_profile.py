"""Profiling hooks: cProfile → hotspot rows → metrics artefacts."""

from repro.cli import main
from repro.obs import MetricsRegistry, read_metrics
from repro.perf import (
    format_hotspots,
    hotspots,
    profile_call,
    publish_hotspots,
    write_profile_metrics,
)


def busy():
    return sum(i * i for i in range(20_000))


class TestProfileCall:
    def test_returns_result_and_profile(self):
        result, profile = profile_call(busy)
        assert result == sum(i * i for i in range(20_000))
        assert hotspots(profile)

    def test_profile_captures_exceptions_region(self):
        def boom():
            busy()
            raise RuntimeError("x")

        try:
            profile_call(boom)
        except RuntimeError:
            pass  # profile must have been disabled cleanly


class TestHotspots:
    def test_rows_ranked_by_cumulative(self):
        _, profile = profile_call(busy)
        rows = hotspots(profile, top=5)
        assert len(rows) <= 5
        cums = [row["cum_s"] for row in rows]
        assert cums == sorted(cums, reverse=True)
        assert all({"where", "calls", "tot_s", "cum_s"} <= set(r) for r in rows)

    def test_busy_function_appears(self):
        _, profile = profile_call(busy)
        assert any("busy" in row["where"] for row in hotspots(profile))

    def test_format_renders_every_row(self):
        _, profile = profile_call(busy)
        rows = hotspots(profile, top=3)
        text = format_hotspots(rows)
        assert len(text.splitlines()) == len(rows) + 1  # header + rows


class TestPublish:
    def test_meta_gauges(self):
        _, profile = profile_call(busy)
        registry = publish_hotspots(MetricsRegistry(), hotspots(profile, top=4))
        assert registry["profile/hotspots"].meta
        assert registry["profile/00"].value["cum_s"] >= 0
        # Meta metrics: invisible to deterministic snapshots.
        assert "profile/00" not in registry.snapshot(include_meta=False)

    def test_write_then_read_metrics(self, tmp_path):
        _, profile = profile_call(busy)
        path = write_profile_metrics(
            tmp_path / "p.metrics", profile, header={"steps": 1}, top=6
        )
        parsed = read_metrics(path)
        assert parsed.header["source"] == "profile"
        assert parsed.header["steps"] == 1
        assert "profile/00" in parsed.metrics


class TestCliProfilePaths:
    def test_run_profile_out_readable_by_stats(self, tmp_path, capsys):
        out = tmp_path / "run_profile.metrics"
        assert main([
            "run", "--topology", "ring:6", "--steps", "800",
            "--profile-out", str(out),
        ]) == 0
        assert out.exists()
        assert main(["stats", str(out)]) == 0
        text = capsys.readouterr().out
        assert "profile:" in text
        assert "profile/00" in text

    def test_bench_profile_readable_by_stats(self, tmp_path, capsys):
        out = tmp_path / "bench_profile.metrics"
        assert main([
            "bench", "--quick", "--filter", "snapshot",
            "--profile", "--profile-out", str(out),
        ]) == 0
        assert main(["stats", str(out)]) == 0
        text = capsys.readouterr().out
        assert "source: profile" in text

    def test_engine_run_profiled_hook(self):
        from repro.core import NADiners
        from repro.sim import AlwaysHungry, Engine, System, ring

        engine = Engine(
            System(ring(5), NADiners()), hunger=AlwaysHungry(), seed=0
        )
        result, profile = engine.run_profiled(300)
        assert result.steps == 300
        assert any("engine" in row["where"] for row in hotspots(profile))

    def test_mp_engine_run_profiled_hook(self):
        from repro.mp import MpEngine, build_diners
        from repro.sim import ring

        topo = ring(5)
        engine = MpEngine(topo, build_diners(topo), seed=1)
        taken, profile = engine.run_profiled(300)
        assert taken == 300
        assert hotspots(profile)
