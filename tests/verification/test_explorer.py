"""Unit tests for state-space enumeration and the transition system."""

import pytest

from repro.core import NADiners
from repro.mp import KStateToken
from repro.sim import SimulationError, System, line, ring
from repro.verification import (
    TransitionSystem,
    enumerate_configurations,
    space_size,
)


class TestEnumeration:
    def test_space_size_matches_enumeration(self):
        topo = line(2)
        algo = NADiners(depth_cap=2)
        configs = list(enumerate_configurations(algo, topo))
        # per process: 3 states x 2 needs x 3 depths = 18; edge: 2 values.
        assert space_size(algo, topo) == 18 * 18 * 2 == len(configs)

    def test_fixed_locals_shrink_space(self):
        topo = line(2)
        algo = NADiners(depth_cap=2)
        full = space_size(algo, topo)
        fixed = space_size(algo, topo, fixed_locals={"needs": True})
        assert fixed * 4 == full

    def test_fixed_value_applied(self):
        topo = line(2)
        algo = NADiners(depth_cap=2)
        for config in enumerate_configurations(algo, topo, fixed_locals={"needs": True}):
            assert config.local(0, "needs") is True
            assert config.local(1, "needs") is True

    def test_unknown_fixed_variable(self):
        with pytest.raises(SimulationError):
            list(enumerate_configurations(NADiners(depth_cap=2), line(2), fixed_locals={"zap": 1}))

    def test_all_distinct(self):
        topo = line(2)
        algo = NADiners(depth_cap=1)
        configs = list(enumerate_configurations(algo, topo))
        assert len(set(configs)) == len(configs)

    def test_dead_marking(self):
        topo = line(2)
        algo = NADiners(depth_cap=1)
        for config in enumerate_configurations(algo, topo, dead=[0]):
            assert config.is_dead(0)


class TestTransitionSystem:
    def test_successors_match_simulator(self):
        topo = line(3)
        algo = NADiners()
        system = System(topo, algo)
        for p in system.pids:
            system.write_local(p, "needs", True)
        config = system.snapshot()
        ts = TransitionSystem(algo, topo)
        labels = {(t.pid, t.action) for t in ts.successors(config)}
        expected = {(p, a.name) for p, a in system.all_enabled()}
        assert labels == expected

    def test_successor_state_correct(self):
        topo = line(3)
        algo = NADiners()
        system = System(topo, algo)
        system.write_local(0, "needs", True)
        ts = TransitionSystem(algo, topo)
        (transition,) = ts.successors(system.snapshot())
        assert transition.action == "join"
        assert transition.target.local(0, "state") == "H"

    def test_source_unmodified(self):
        topo = line(3)
        algo = NADiners()
        system = System(topo, algo)
        system.write_local(0, "needs", True)
        config = system.snapshot()
        ts = TransitionSystem(algo, topo)
        ts.successors(config)
        assert config.local(0, "state") == "T"

    def test_dead_processes_have_no_transitions(self):
        topo = line(2)
        algo = NADiners()
        system = System(topo, algo, initially_dead=[0])
        system.write_local(1, "needs", True)
        ts = TransitionSystem(algo, topo)
        assert all(t.pid != 0 for t in ts.successors(system.snapshot()))

    def test_enabled_listing(self):
        topo = line(2)
        algo = NADiners()
        system = System(topo, algo)
        system.write_local(1, "needs", True)
        ts = TransitionSystem(algo, topo)
        assert (1, "join") in ts.enabled(system.snapshot())


class TestReachability:
    def test_reachable_closure(self):
        topo = ring(3)
        algo = KStateToken(k=4)
        system = System(topo, algo)
        ts = TransitionSystem(algo, topo)
        graph = ts.reachable_from([system.snapshot()])
        # From a legitimate K-state configuration the reachable set is the
        # legitimate orbit: counters advance cyclically (k * n states).
        assert len(graph) == 12

    def test_max_states_guard(self):
        topo = ring(3)
        algo = KStateToken(k=4)
        ts = TransitionSystem(algo, topo)
        system = System(topo, algo)
        with pytest.raises(SimulationError):
            ts.reachable_from([system.snapshot()], max_states=3)

    def test_every_graph_entry_expanded(self):
        topo = ring(3)
        algo = KStateToken(k=4)
        ts = TransitionSystem(algo, topo)
        system = System(topo, algo)
        graph = ts.reachable_from([system.snapshot()])
        for config, transitions in graph.items():
            assert transitions, "token circulation never quiesces"
            for t in transitions:
                assert t.target in graph
