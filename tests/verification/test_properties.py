"""Machine-checked versions of the paper's lemmas on small instances.

These are the strongest tests in the repository: they quantify over the
*entire* state space of a small instance, so a pass is an exhaustive proof
for that instance rather than a sampled observation.
"""

import pytest

from repro.core import (
    NADiners,
    e_holds,
    invariant_holds,
    invariant_with_threshold,
    nc_holds,
    red_set,
    stably_shallow_set,
)
from repro.sim import line, ring
from repro.verification import (
    TransitionSystem,
    check_all_states,
    check_closure,
    check_convergence,
    check_monotone_set,
    confirm_fair_livelock,
    enumerate_configurations,
)


@pytest.fixture(scope="module")
def line3():
    """Shared instance: line(3), literal paper threshold, needs pinned."""
    topo = line(3)
    algo = NADiners(depth_cap=topo.diameter + 1)
    configs = list(
        enumerate_configurations(algo, topo, fixed_locals={"needs": True})
    )
    return topo, algo, configs, TransitionSystem(algo, topo)


class TestLemma1NC:
    def test_nc_closed(self, line3):
        _, _, configs, ts = line3
        assert check_closure(ts, nc_holds, configs).holds

    def test_exit_never_creates_cycles(self, line3):
        # stronger form: from ANY state (cyclic or not) the number of
        # live-cycle-free... NC itself is the property; closure covers it.
        _, _, configs, ts = line3
        report = check_closure(ts, nc_holds, configs)
        assert report.counterexample is None


class TestLemma2StablyShallow:
    def test_stably_shallow_is_monotone(self, line3):
        """Once stably shallow, always stably shallow — over every
        transition of the full state space."""
        _, _, configs, ts = line3
        report = check_monotone_set(ts, stably_shallow_set, configs)
        assert report.holds, report.counterexample


class TestLemma4E:
    def test_e_closed(self, line3):
        _, _, configs, ts = line3
        assert check_closure(ts, e_holds, configs).holds


class TestTheorem1:
    def test_invariant_closed(self, line3):
        _, _, configs, ts = line3
        report = check_closure(ts, invariant_holds, configs)
        assert report.holds
        assert report.checked_states > 0  # I is non-empty on a line

    def test_convergence_proved(self, line3):
        _, _, configs, ts = line3
        report = check_convergence(ts, invariant_holds, configs)
        assert report.converges
        assert report.legit_states > 0

    def test_safety_inside_invariant(self, line3):
        """Every I-state satisfies E by construction — checked explicitly
        as the Theorem 3 base case."""
        _, _, configs, ts = line3
        legit = [c for c in configs if invariant_holds(c)]
        ok, counterexample = check_all_states(e_holds, legit)
        assert ok, counterexample


class TestTheorem1OnTriangle:
    """The K3 finding: the literal threshold has an empty invariant, the
    corrected (longest-simple-path) threshold restores the theorem."""

    @pytest.fixture(scope="class")
    def triangle(self):
        topo = ring(3)
        t = topo.longest_simple_path()
        algo = NADiners(depth_cap=t + 1, diameter_override=t)
        configs = list(
            enumerate_configurations(algo, topo, fixed_locals={"needs": True})
        )
        return topo, algo, configs, TransitionSystem(algo, topo), t

    def test_literal_invariant_empty(self, triangle):
        topo, _, configs, _, _ = triangle
        assert not any(invariant_holds(c) for c in configs)

    def test_corrected_invariant_nonempty_and_closed(self, triangle):
        _, _, configs, ts, t = triangle
        pred = invariant_with_threshold(t)
        report = check_closure(ts, pred, configs)
        assert report.holds
        assert report.checked_states > 0

    def test_corrected_convergence_proved(self, triangle):
        _, _, configs, ts, t = triangle
        report = check_convergence(ts, invariant_with_threshold(t), configs)
        assert report.converges


class TestLemma5RedStaysRed:
    def test_red_monotone_with_dead_process(self):
        """Within I (and with a dead process present), a red process never
        turns green."""
        topo = line(3)
        algo = NADiners(depth_cap=topo.diameter + 1)
        configs = list(
            enumerate_configurations(
                algo, topo, fixed_locals={"needs": True}, dead=[0]
            )
        )
        ts = TransitionSystem(algo, topo)
        report = check_monotone_set(
            ts, red_set, configs, only_when=invariant_holds
        )
        assert report.holds, report.counterexample


class TestAblationLivelock:
    def test_no_fixdepth_has_fair_livelock(self):
        from repro.core import NoFixdepthDiners

        topo = ring(3)
        algo = NoFixdepthDiners(depth_cap=1)
        configs = list(
            enumerate_configurations(
                algo, topo, fixed_locals={"needs": True, "depth": 0}
            )
        )
        ts = TransitionSystem(algo, topo)
        report = check_convergence(
            ts, lambda c: nc_holds(c) and e_holds(c), configs
        )
        assert not report.converges
        assert confirm_fair_livelock(ts, report.stuck_scc)

    def test_full_program_has_none(self):
        topo = ring(3)
        t = topo.longest_simple_path()
        algo = NADiners(depth_cap=t + 1, diameter_override=t)
        configs = list(
            enumerate_configurations(algo, topo, fixed_locals={"needs": True})
        )
        ts = TransitionSystem(algo, topo)
        report = check_convergence(ts, invariant_with_threshold(t), configs)
        assert report.converges


class TestConfirmFairLivelock:
    def test_empty_states(self):
        topo = line(2)
        ts = TransitionSystem(NADiners(), topo)
        assert not confirm_fair_livelock(ts, [])

    def test_single_state_without_self_loop(self):
        from repro.sim import System

        topo = line(2)
        algo = NADiners()
        ts = TransitionSystem(algo, topo)
        config = System(topo, algo).snapshot()
        assert not confirm_fair_livelock(ts, [config])


class TestBuildGraph:
    def test_without_reachability_closure(self):
        from repro.sim import System
        from repro.verification import build_graph

        topo = line(3)
        algo = NADiners()
        system = System(topo, algo)
        system.write_local(0, "needs", True)
        config = system.snapshot()
        ts = TransitionSystem(algo, topo)
        graph = build_graph(ts, [config], close_under_reachability=False)
        assert list(graph) == [config]
        assert graph[config]  # join is enabled

    def test_with_reachability_closure(self):
        from repro.sim import System
        from repro.verification import build_graph

        topo = line(3)
        algo = NADiners()
        system = System(topo, algo)
        system.write_local(0, "needs", True)
        ts = TransitionSystem(algo, topo)
        graph = build_graph(ts, [system.snapshot()])
        assert len(graph) > 1
        for transitions in graph.values():
            for t in transitions:
                assert t.target in graph


class TestCounterexamples:
    def test_closure_counterexample_is_actionable(self):
        """Use a deliberately wrong predicate and confirm the reported
        counterexample names a real transition that breaks it."""
        topo = line(3)
        algo = NADiners(depth_cap=topo.diameter + 1)
        ts = TransitionSystem(algo, topo)
        configs = enumerate_configurations(
            algo, topo, fixed_locals={"needs": True}
        )
        nobody_eats = lambda c: all(
            c.local(p, "state") != "E" for p in c.topology.nodes
        )
        report = check_closure(ts, nobody_eats, configs)
        assert not report.holds
        ce = report.counterexample
        assert ce is not None
        assert ce.action == "enter"
        assert nobody_eats(ce.source)
        assert not nobody_eats(ce.target)

    def test_monotone_counterexample_shape(self):
        from repro.core import green_set

        # green is NOT monotone (a green process may turn red), so the
        # checker must find a counterexample with a dead process around.
        topo = line(3)
        algo = NADiners(depth_cap=topo.diameter + 1)
        ts = TransitionSystem(algo, topo)
        configs = enumerate_configurations(
            algo, topo, fixed_locals={"needs": True}, dead=[0]
        )
        report = check_monotone_set(ts, green_set, configs)
        assert not report.holds
        ce = report.counterexample
        assert not green_set(ce.source) <= green_set(ce.target)


class TestTheorem3Exhaustive:
    def test_eating_pairs_nonincreasing_everywhere(self, line3):
        """Theorem 3, strengthened and machine-checked: from EVERY state of
        line(3) — inside or outside I — no transition increases the count
        of simultaneously-eating neighbour pairs."""
        from repro.core import eating_pairs
        from repro.verification import check_numeric_nonincreasing

        _, _, configs, ts = line3
        report = check_numeric_nonincreasing(
            ts, lambda c: len(eating_pairs(c)), configs
        )
        assert report.holds, report.counterexample

    def test_the_check_can_fail(self):
        """Sanity: a measure that genuinely increases is caught."""
        from repro.verification import check_numeric_nonincreasing

        topo = line(3)
        algo = NADiners(depth_cap=topo.diameter + 1)
        ts = TransitionSystem(algo, topo)
        configs = enumerate_configurations(algo, topo, fixed_locals={"needs": True})
        hungry_count = lambda c: sum(
            1 for p in c.topology.nodes if c.local(p, "state") == "H"
        )
        report = check_numeric_nonincreasing(ts, hungry_count, configs)
        assert not report.holds
        assert report.counterexample.action == "join"


class TestConvergenceDistances:
    def test_legit_states_at_zero(self, line3):
        from repro.verification import build_graph, convergence_distances

        _, _, configs, ts = line3
        graph = build_graph(ts, configs)
        distances = convergence_distances(graph, invariant_holds)
        for config, d in distances.items():
            if invariant_holds(config):
                assert d == 0

    def test_every_state_can_recover(self, line3):
        from repro.verification import build_graph, optimal_recovery_diameter

        _, _, configs, ts = line3
        graph = build_graph(ts, configs)
        diameter = optimal_recovery_diameter(graph, invariant_holds)
        assert diameter is not None
        # the optimal recovery is short relative to system size: a few
        # corrective actions per process suffice on line(3).
        assert 1 <= diameter <= 20

    def test_unreachable_marked_none(self):
        from repro.verification import build_graph, optimal_recovery_diameter

        # With an unsatisfiable target nothing can ever reach it.
        topo = line(3)
        algo = NADiners(depth_cap=topo.diameter + 1)
        ts = TransitionSystem(algo, topo)
        configs = list(
            enumerate_configurations(algo, topo, fixed_locals={"needs": True})
        )
        graph = build_graph(ts, configs)
        assert optimal_recovery_diameter(graph, lambda c: False) is None
