"""The corpus schedule-file contract: versioned, canonical, validated."""

import json
from pathlib import Path

import pytest

from repro.adversary import (
    SCHEDULE_FORMAT_VERSION,
    read_schedule,
    schedule_from_doc,
    schedule_to_doc,
    write_schedule,
)
from repro.net import build_schedule
from repro.sim import ring


def sample_schedule(seed=3, **kwargs):
    kwargs.setdefault("restarts", 1)
    return build_schedule(ring(4), seed=seed, duration_s=6.0, **kwargs)


class TestRoundTrip:
    def test_doc_and_back_preserves_structure(self):
        # ``at_s`` is canonicalised to 6 decimals on write, so compare
        # structure plus a second round trip being an exact fixed point.
        schedule = sample_schedule()
        loaded = schedule_from_doc(
            schedule_to_doc(schedule, topology_spec="ring:4")
        )
        assert loaded.topology_spec == "ring:4"
        assert loaded.schedule.seed == schedule.seed
        assert loaded.schedule.duration_s == schedule.duration_s
        assert loaded.schedule.profiles == schedule.profiles
        assert len(loaded.schedule.events) == len(schedule.events)
        for got, want in zip(loaded.schedule.events, schedule.events):
            assert got.kind == want.kind
            assert got.links == want.links
            assert got.node == want.node
            assert got.garbage == want.garbage
            assert abs(got.at_s - want.at_s) < 1e-6

    def test_second_round_trip_is_exact(self):
        schedule = sample_schedule()
        once = schedule_from_doc(
            schedule_to_doc(schedule, topology_spec="ring:4")
        ).schedule
        twice = schedule_from_doc(
            schedule_to_doc(once, topology_spec="ring:4")
        ).schedule
        assert twice == once

    def test_garbage_bytes_survive_json(self, tmp_path):
        schedule = sample_schedule(malicious_crashes=2)
        assert any(e.garbage for e in schedule.events)
        path = write_schedule(
            tmp_path / "s.json", schedule, topology_spec="ring:4"
        )
        loaded = read_schedule(path).schedule
        assert [e.garbage for e in loaded.events] == [
            e.garbage for e in schedule.events
        ]

    def test_meta_is_carried_but_not_interpreted(self, tmp_path):
        path = write_schedule(
            tmp_path / "s.json",
            sample_schedule(),
            topology_spec="ring:4",
            meta={"score": 12.5, "signature": [1, 2, 3]},
        )
        loaded = read_schedule(path)
        assert loaded.meta["score"] == 12.5
        assert loaded.meta["signature"] == [1, 2, 3]

    def test_file_is_self_contained(self, tmp_path):
        # The replayer reconstructs the graph from the file, never from
        # CLI flags: topology comes back as the real object.
        path = write_schedule(
            tmp_path / "s.json", sample_schedule(), topology_spec="ring:4"
        )
        loaded = read_schedule(path)
        assert len(loaded.topology) == 4


class TestCanonicalBytes:
    def test_write_is_deterministic(self, tmp_path):
        schedule = sample_schedule()
        a = write_schedule(tmp_path / "a.json", schedule, topology_spec="ring:4")
        b = write_schedule(tmp_path / "b.json", schedule, topology_spec="ring:4")
        assert a.read_bytes() == b.read_bytes()

    def test_sorted_keys_and_trailing_newline(self, tmp_path):
        path = write_schedule(
            tmp_path / "s.json", sample_schedule(), topology_spec="ring:4"
        )
        text = path.read_text()
        assert text.endswith("\n")
        doc = json.loads(text)
        assert list(doc) == sorted(doc)
        assert doc["format"] == SCHEDULE_FORMAT_VERSION

    def test_no_tmp_file_left_behind(self, tmp_path):
        write_schedule(
            tmp_path / "s.json", sample_schedule(), topology_spec="ring:4"
        )
        assert [p.name for p in tmp_path.iterdir()] == ["s.json"]


class TestValidationOnRead:
    def good_doc(self):
        return schedule_to_doc(sample_schedule(), topology_spec="ring:4")

    def test_unsupported_format_is_refused(self):
        doc = self.good_doc()
        doc["format"] = SCHEDULE_FORMAT_VERSION + 1
        with pytest.raises(ValueError, match="unsupported schedule format"):
            schedule_from_doc(doc)

    def test_missing_topology_is_refused(self):
        doc = self.good_doc()
        del doc["topology"]
        with pytest.raises(ValueError, match="topology"):
            schedule_from_doc(doc)

    def test_unknown_node_is_refused(self):
        doc = self.good_doc()
        doc["events"].append(
            {"at_s": 1.0, "kind": "restart", "links": [], "node": "99"}
        )
        with pytest.raises(ValueError, match="not in the document's topology"):
            schedule_from_doc(doc)

    def test_orphan_restart_is_refused(self):
        # The validate_schedule regression, exercised through the loader:
        # a hand-edited corpus entry reviving a node that never crashed
        # must fail before a cluster boots.
        doc = schedule_to_doc(
            sample_schedule(restarts=0, malicious_crashes=0),
            topology_spec="ring:4",
        )
        doc["events"].append(
            {"at_s": 1.0, "kind": "restart", "links": [], "node": "0"}
        )
        with pytest.raises(ValueError, match="no prior crash"):
            schedule_from_doc(doc)

    def test_unknown_kind_is_refused(self):
        doc = self.good_doc()
        doc["events"].append({"at_s": 1.0, "kind": "meteor", "links": []})
        with pytest.raises(ValueError, match="unknown fault kind"):
            schedule_from_doc(doc)

    def test_read_wraps_errors_with_the_path(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(ValueError, match="broken.json"):
            read_schedule(path)


class TestCommittedCorpus:
    """The checked-in ``corpus/`` stays loadable and honestly named.

    Replaying each entry under a live soak is the CI ``fuzz-smoke`` job's
    duty; tier-1 only guards the cheap invariants a hand-edit could break.
    """

    def corpus_files(self):
        root = Path(__file__).resolve().parents[2] / "corpus"
        return sorted(root.glob("*.json"))

    def test_corpus_is_not_empty(self):
        assert self.corpus_files()

    def test_every_entry_loads_and_validates(self):
        for path in self.corpus_files():
            loaded = read_schedule(path)  # validate_schedule runs inside
            assert loaded.schedule.events

    def test_filenames_match_their_contents(self):
        for path in self.corpus_files():
            loaded = read_schedule(path)
            slug = loaded.topology_spec.replace(":", "")
            assert path.name.startswith(f"{slug}-s")

    def test_entries_carry_fuzzer_provenance(self):
        for path in self.corpus_files():
            meta = read_schedule(path).meta
            assert "signature" in meta and "fuzz" in meta

    def test_no_byzantine_entries_are_committed(self):
        # Byzantine schedules violate safety *by design* on live replay;
        # CI replays this corpus asserting zero violations, so they are
        # banned here and demonstrated in tests instead.
        for path in self.corpus_files():
            kinds = {e.kind for e in read_schedule(path).schedule.events}
            assert "byzantine-crash" not in kinds
