"""The coverage-guided fuzzer: determinism, mutation validity, corpus
emission.  Budgets here are tiny — the point is the contracts, not finds.
"""

import random

import pytest

from repro.adversary import FuzzLimits, evaluate_schedule, run_fuzz
from repro.adversary.fuzz import minimise_schedule, mutate_schedule
from repro.net import build_schedule, validate_schedule
from repro.sim import ring

FAST = FuzzLimits(steps=800, sample_every=20)


def sample_schedule(seed=5):
    return build_schedule(ring(3), seed=seed, duration_s=4.0, restarts=1)


class TestEvaluate:
    def test_deterministic(self):
        schedule = sample_schedule()
        a = evaluate_schedule(schedule, ring(3), limits=FAST)
        b = evaluate_schedule(schedule, ring(3), limits=FAST)
        assert a == b

    def test_signature_shape(self):
        outcome = evaluate_schedule(sample_schedule(), ring(3), limits=FAST)
        assert len(outcome.signature) == 7
        assert all(isinstance(x, int) for x in outcome.signature)
        assert outcome.score >= 0.0

    def test_metrics_cover_the_run(self):
        outcome = evaluate_schedule(sample_schedule(), ring(3), limits=FAST)
        assert outcome.metrics["samples"] > 0
        assert outcome.metrics["min_eats"] >= 0


class TestMutation:
    def test_mutants_always_validate(self):
        topo = ring(3)
        schedule = sample_schedule()
        for seed in range(24):
            mutant = mutate_schedule(schedule, topo, random.Random(seed))
            validate_schedule(mutant)  # must never raise
            assert mutant.duration_s == schedule.duration_s

    def test_mutation_actually_changes_something(self):
        topo = ring(3)
        schedule = sample_schedule()
        changed = sum(
            1
            for seed in range(24)
            if mutate_schedule(schedule, topo, random.Random(seed)) != schedule
        )
        assert changed > 12  # identity fallback is the exception

    def test_minimise_preserves_the_signature(self):
        topo = ring(3)
        schedule = sample_schedule()
        outcome = evaluate_schedule(schedule, topo, limits=FAST)
        smaller, evals = minimise_schedule(
            schedule, topo, outcome.signature, limits=FAST, budget=8
        )
        assert evals <= 8
        kept = evaluate_schedule(smaller, topo, limits=FAST)
        assert kept.signature == outcome.signature
        assert len(smaller.events) <= len(schedule.events)


class TestRunFuzz:
    def fuzz(self, corpus_dir=None, seed=3, jobs=1):
        return run_fuzz(
            "ring:3",
            seed=seed,
            budget=8,
            duration_s=4.0,
            jobs=jobs,
            keep=2,
            corpus_dir=corpus_dir,
            limits=FAST,
            minimise_budget=4,
        )

    def test_budget_is_respected(self):
        result = self.fuzz()
        assert result.executed == 8
        assert result.coverage >= 1

    def test_corpus_files_are_byte_identical_across_runs(self, tmp_path):
        a = self.fuzz(corpus_dir=tmp_path / "a")
        b = self.fuzz(corpus_dir=tmp_path / "b")
        assert [p.name for p in a.written] == [p.name for p in b.written]
        assert a.written  # something was kept
        for pa, pb in zip(a.written, b.written):
            assert pa.read_bytes() == pb.read_bytes()

    def test_jobs_do_not_change_the_result(self, tmp_path):
        serial = self.fuzz(corpus_dir=tmp_path / "serial", jobs=1)
        parallel = self.fuzz(corpus_dir=tmp_path / "par", jobs=4)
        for pa, pb in zip(serial.written, parallel.written):
            assert pa.read_bytes() == pb.read_bytes()

    def test_written_schedules_replay_through_the_evaluator(self, tmp_path):
        from repro.adversary import read_schedule

        result = self.fuzz(corpus_dir=tmp_path)
        for path in result.written:
            loaded = read_schedule(path)
            outcome = evaluate_schedule(
                loaded.schedule, loaded.topology, limits=FAST
            )
            assert list(outcome.signature) == loaded.meta["signature"]

    def test_different_seeds_explore_differently(self, tmp_path):
        a = self.fuzz(corpus_dir=tmp_path / "s3", seed=3)
        b = self.fuzz(corpus_dir=tmp_path / "s4", seed=4)
        bytes_a = b"".join(p.read_bytes() for p in a.written)
        bytes_b = b"".join(p.read_bytes() for p in b.written)
        assert bytes_a != bytes_b

    def test_byzantine_mode_is_opt_in(self):
        clean = self.fuzz()
        spiked = run_fuzz(
            "ring:3",
            seed=3,
            budget=8,
            duration_s=4.0,
            keep=2,
            limits=FAST,
            byzantine=True,
            minimise_budget=4,
        )
        assert all(
            all(e.kind != "byzantine-crash" for e in entry.schedule.events)
            for entry in clean.entries
        )
        assert any(
            any(e.kind == "byzantine-crash" for e in entry.schedule.events)
            for entry in spiked.entries
        )

    def test_budget_must_be_positive(self):
        with pytest.raises(ValueError):
            run_fuzz("ring:3", budget=0)
