"""The malicious-crash *boundary*, demonstrated.

The paper tolerates crashes whose arbitrary phase is **finite**.  A
byzantine diner never leaves that phase: it keeps emitting protocol-shaped
fork frames forever.  These tests show (a) the bare protocol then violates
neighbour exclusion, (b) every violating pair contains the byzantine node
— so (c) excluding it restores a safe system, which is exactly the
attribution argument :func:`repro.net.attribute_violations` automates.
"""

import random

import pytest

from repro.adversary import ByzantineDinerProcess, subvert
from repro.mp import MpEngine
from repro.mp.diners_mp import build_diners, neighbours_both_eating
from repro.net import attribute_violations
from repro.net.lock import Violation
from repro.sim import ring


def overlap_pairs(seed=4, n=4, warmup=150, steps=600):
    """Run diners, subvert node 0 mid-run, collect overlapping pairs."""
    topo = ring(n)
    procs = build_diners(topo, eat_ticks=2, seed=seed, repair=True)
    engine = MpEngine(topo, procs, seed=seed)
    for _ in range(warmup):
        engine.step()
    byz = topo.nodes[0]
    engine.processes[byz] = subvert(engine.processes[byz], seed=seed)
    pairs = set()
    for _ in range(steps):
        engine.step()
        pairs.update(neighbours_both_eating(topo, engine.processes))
    return topo, byz, pairs


class TestBoundaryDemonstration:
    def test_bare_protocol_violates_exclusion(self):
        _, _, pairs = overlap_pairs()
        assert pairs  # the byzantine node *does* break safety

    def test_every_violation_includes_the_byzantine_node(self):
        _, byz, pairs = overlap_pairs()
        for p, q in pairs:
            assert byz in (p, q)

    def test_excluding_the_byzantine_node_restores_safety(self):
        _, byz, pairs = overlap_pairs()
        clean = [pair for pair in pairs if byz not in pair]
        assert clean == []

    def test_repair_counters_fence_non_incident_edges(self):
        # Forged fork frames land only on the byzantine node's own edges;
        # a node two hops away never even sees one.
        topo, byz, _ = overlap_pairs(n=5)
        far = topo.nodes[2]
        assert not topo.are_neighbors(byz, far)


class TestSubvert:
    def test_preserves_identity_and_counters(self):
        topo = ring(3)
        procs = build_diners(topo, seed=1, repair=True)
        original = procs[topo.nodes[1]]
        original.edge_c = dict(original.edge_c)
        byz = subvert(original, seed=7)
        assert isinstance(byz, ByzantineDinerProcess)
        assert byz.pid == original.pid

    def test_rejects_non_diner_processes(self):
        with pytest.raises(TypeError):
            subvert(object())

    def test_deaf_and_always_eating(self):
        topo = ring(3)
        procs = build_diners(topo, seed=2, repair=True)
        engine = MpEngine(topo, procs, seed=2)
        byz = subvert(engine.processes[topo.nodes[0]])
        engine.processes[topo.nodes[0]] = byz
        for _ in range(50):
            engine.step()
        assert byz.state == "E"
        assert byz.forged > 0


class TestAttribution:
    def v(self, a, b):
        return Violation(a, b, 0.0, 1.0)

    def test_single_culprit_recovered(self):
        violations = [self.v("0", "1"), self.v("0", "2"), self.v("0", "3")]
        assert attribute_violations(violations) == ["0"]

    def test_empty_stream_blames_nobody(self):
        assert attribute_violations([]) == []

    def test_two_culprits_recovered(self):
        violations = [
            self.v("0", "1"),
            self.v("0", "2"),
            self.v("4", "3"),
            self.v("4", "5"),
        ]
        assert sorted(attribute_violations(violations)) == ["0", "4"]

    def test_ties_break_alphabetically(self):
        assert attribute_violations([self.v("1", "0")]) == ["0"]

    def test_engine_run_is_attributed_to_the_byzantine_node(self):
        _, byz, pairs = overlap_pairs()
        violations = [Violation(repr(p), repr(q), 0.0, 1.0) for p, q in pairs]
        assert attribute_violations(violations) == [repr(byz)]
