"""The state-reading simulator adversary: chain extraction and the
:class:`ChainStarveStrategy` driving a :class:`StrategyDaemon`."""

import random

import pytest

from repro.adversary import ChainStarveStrategy, longest_waiting_chain
from repro.core import NADiners
from repro.sim import (
    AlwaysHungry,
    Engine,
    SchedulingError,
    StrategyDaemon,
    System,
    line,
    ring,
)


def randomized(topo, seed):
    s = System(topo, NADiners())
    s.randomize(random.Random(seed))
    return s


class TestLongestWaitingChain:
    def test_pure_function_of_configuration(self):
        s = randomized(ring(6), 11)
        snap = s.snapshot()
        assert longest_waiting_chain(snap) == longest_waiting_chain(snap)

    def test_members_are_hungry_and_linked(self):
        for seed in range(8):
            s = randomized(ring(7), seed)
            snap = s.snapshot()
            chain = longest_waiting_chain(snap)
            for p in chain:
                assert snap.local(p, "state") == "H"
            for p, q in zip(chain, chain[1:]):
                assert s.topology.are_neighbors(p, q)

    def test_no_duplicates_and_bounded(self):
        for seed in range(8):
            s = randomized(line(9), seed)
            chain = longest_waiting_chain(s.snapshot())
            assert len(chain) == len(set(chain))
            assert len(chain) <= len(s.topology)

    def test_empty_when_nobody_hungry(self):
        s = System(ring(4), NADiners())  # initial state: everyone thinking
        snap = s.snapshot()
        if all(snap.local(p, "state") == "T" for p in s.topology.nodes):
            assert longest_waiting_chain(snap) == ()

    def test_faulty_processes_are_excluded(self):
        s = randomized(ring(5), 3)
        victim = s.topology.nodes[0]
        s.kill(victim)
        chain = longest_waiting_chain(s.snapshot())
        assert victim not in chain


def drive(seed, steps=120):
    """One adversarial run; returns (choice trace, chain history)."""
    s = randomized(ring(5), seed)
    strategy = ChainStarveStrategy()
    engine = Engine(
        s,
        hunger=AlwaysHungry(),
        daemon=StrategyDaemon(strategy, patience=32),
        seed=seed,
    )
    trace = []
    for _ in range(steps):
        if not engine.step():
            break
        trace.append(s.snapshot())  # Configuration defines value equality
    return trace, list(strategy.history)


class TestChainStarveStrategy:
    def test_deterministic_for_a_seed(self):
        assert drive(5) == drive(5)

    def test_different_seeds_diverge(self):
        # Not a hard guarantee, but with 120 steps on a ring of 5 two
        # seeds agreeing step-for-step would mean the rng is ignored.
        assert drive(1)[0] != drive(2)[0]

    def test_history_records_valid_chains(self):
        s = randomized(ring(5), 9)
        strategy = ChainStarveStrategy()
        engine = Engine(
            s,
            hunger=AlwaysHungry(),
            daemon=StrategyDaemon(strategy, patience=32),
            seed=9,
        )
        for _ in range(80):
            engine.step()
        assert strategy.history  # one entry per engine step observed
        for chain in strategy.history:
            for p, q in zip(chain, chain[1:]):
                assert s.topology.are_neighbors(p, q)

    def test_reset_forgets_targeting_state(self):
        strategy = ChainStarveStrategy()
        s = randomized(ring(4), 2)
        engine = Engine(
            s,
            hunger=AlwaysHungry(),
            daemon=StrategyDaemon(strategy),
            seed=2,
        )
        for _ in range(30):
            engine.step()
        assert strategy.history
        strategy.reset()
        assert strategy.history == []
        assert strategy._chain == ()

    def test_daemon_rejects_non_enabled_choice(self):
        class Rogue(ChainStarveStrategy):
            def choose(self, system, enabled, step, rng):
                return ("nonsense", None)

        s = randomized(ring(4), 1)
        engine = Engine(
            s,
            hunger=AlwaysHungry(),
            daemon=StrategyDaemon(Rogue()),
            seed=1,
        )
        with pytest.raises(SchedulingError):
            for _ in range(5):
                engine.step()
