"""The adaptive live-cluster adversary, unit-tested on synthetic obs rows.

No sockets: rows are fed straight into ``observe`` and decisions are
checked as pure functions of (observed state, seeded RNG) — the property
that makes an adaptive run replayable.
"""

import asyncio

from repro.adversary import FeedbackChaosController
from repro.net import EVENT_KINDS, build_schedule, validate_schedule
from repro.sim import ring


def controller(seed=1, **kwargs):
    topo = ring(4)
    schedule = build_schedule(
        topo, seed=seed, duration_s=10.0, partitions=0, malicious_crashes=0
    )
    return FeedbackChaosController(schedule, topo, seed=seed, **kwargs)


def grant(node, t):
    return {"event": "net-grant", "node": node, "t": t}


def release(node, t):
    return {"event": "net-release", "node": node, "t": t}


def restart(node, t):
    return {"event": "net-node-restart", "node": node, "t": t}


def converged(node, t):
    return {"event": "net-convergence", "node": node, "t": t}


class TestObserve:
    def test_grant_marks_holding(self):
        c = controller()
        c.observe(grant("1", 0.5))
        assert "1" not in c.waiting_chain()

    def test_release_resumes_waiting(self):
        c = controller()
        c.observe(grant("1", 0.5))
        c.observe(release("1", 0.9))
        assert "1" in c.waiting_chain()

    def test_rows_without_node_are_ignored(self):
        c = controller()
        c.observe({"event": "net-grant", "t": 1.0})  # no crash, no effect
        assert c.waiting_chain()


class TestWaitingChain:
    def test_head_is_the_longest_waiter(self):
        c = controller()
        # Everyone starts waiting at 0.0; node 2 waited longest after
        # these releases (earlier release time = longer wait).
        for node, t in (("0", 3.0), ("1", 2.0), ("2", 1.0), ("3", 2.5)):
            c.observe(grant(node, t - 0.5))
            c.observe(release(node, t))
        assert c.waiting_chain()[0] == "2"

    def test_chain_follows_waiting_neighbours(self):
        c = controller()
        chain = c.waiting_chain()
        # ring:4 — consecutive chain members must be ring neighbours.
        for a, b in zip(chain, chain[1:]):
            assert abs(int(a) - int(b)) in (1, 3)

    def test_holders_are_not_in_the_chain(self):
        c = controller()
        c.observe(grant("0", 1.0))
        assert "0" not in c.waiting_chain()


class TestDecide:
    def test_converging_restarter_is_partitioned_first(self):
        c = controller()
        c.observe(restart("2", 1.0))
        events = c.decide(2.0)
        assert len(events) == 1
        event = events[0]
        assert event.kind == "partition"
        assert repr(event.node) == "2"
        # Its heal is pending, scheduled hold_s later.
        assert len(c._pending_heals) == 1
        assert c._pending_heals[0].kind == "heal"
        assert c._pending_heals[0].at_s > event.at_s

    def test_convergence_clears_the_priority_target(self):
        c = controller()
        c.observe(restart("2", 1.0))
        c.observe(converged("2", 1.5))
        events = c.decide(2.0)
        # With nobody mid-restart the decision reverts to the chain head.
        assert events
        assert c.reasons[-1].startswith("chain-head")

    def test_decisions_use_known_kinds_inside_the_window(self):
        c = controller()
        for t in (0.5, 1.0, 1.5, 2.0, 4.0, 9.0, 12.0):
            for event in c.decide(t):
                assert event.kind in EVENT_KINDS
                assert 0.0 <= event.at_s <= c.schedule.duration_s

    def test_deterministic_for_a_seed(self):
        def run(seed):
            c = controller(seed=seed)
            c.observe(release("1", 0.2))
            c.observe(release("3", 0.4))
            out = []
            for t in (1.0, 2.0, 3.0, 4.0, 5.0):
                out.extend(e.describe() for e in c.decide(t))
            return out

        assert run(7) == run(7)

    def test_replay_targets_only_inbound_links(self):
        # Drive decisions until a replay appears; its links must all end
        # at the targeted node (frames are replayed *into* it).
        c = controller(seed=3)
        for t in [0.5 * i for i in range(1, 40)]:
            for event in c.decide(t):
                if event.kind == "replay":
                    assert event.links
                    assert all(b == event.node for _, b in event.links)
                    return
        raise AssertionError("no replay decision in 40 tries")


class TestAsSchedule:
    def test_applied_events_become_a_valid_static_plan(self):
        c = controller()
        c.observe(restart("1", 0.5))

        async def drive():
            # Apply a planned-style crash first so the improvised events
            # land in ``applied`` the same way a live run records them.
            for event in c.decide(1.0):
                await c.apply(event)
            for event in list(c._pending_heals):
                c._pending_heals.remove(event)
                await c.apply(event)

        asyncio.run(drive())
        replayable = c.as_schedule()
        assert replayable.events  # partition + heal at least
        validate_schedule(replayable)
        assert replayable.seed == c.schedule.seed
        assert replayable.duration_s == c.schedule.duration_s

    def test_max_decisions_is_a_budget_not_a_crash(self):
        c = controller(max_decisions=0)
        assert c.max_decisions == 0
