"""Unit tests for FIFO channels."""

import random

import pytest

from repro.mp import Channel
from repro.sim import SimulationError


class TestFifo:
    def test_send_deliver_order(self):
        ch = Channel("a", "b", capacity=4)
        ch.send(("x",))
        ch.send(("y",))
        assert ch.deliver().payload == ("x",)
        assert ch.deliver().payload == ("y",)

    def test_message_addressing(self):
        ch = Channel("a", "b")
        ch.send(("m",))
        msg = ch.deliver()
        assert msg.src == "a" and msg.dst == "b"

    def test_deliver_empty_raises(self):
        with pytest.raises(SimulationError):
            Channel("a", "b").deliver()

    def test_len_and_empty(self):
        ch = Channel("a", "b")
        assert ch.empty
        ch.send(("m",))
        assert len(ch) == 1 and not ch.empty

    def test_payload_tuple_coerced(self):
        ch = Channel("a", "b")
        ch.send(["tag", 1])
        assert ch.deliver().payload == ("tag", 1)


class TestCapacity:
    def test_overflow_dropped_and_counted(self):
        ch = Channel("a", "b", capacity=2)
        assert ch.send(("1",))
        assert ch.send(("2",))
        assert not ch.send(("3",))
        assert ch.dropped == 1
        assert len(ch) == 2

    def test_capacity_positive(self):
        with pytest.raises(SimulationError):
            Channel("a", "b", capacity=0)


class TestFaults:
    def test_corrupt_fills_with_junk(self):
        ch = Channel("a", "b", capacity=6)
        ch.send(("real",))
        ch.corrupt(random.Random(3), lambda rng: ("junk", rng.random()))
        assert all(m.payload[0] == "junk" for m in ch.peek_all())
        assert len(ch) <= 6

    def test_corrupt_respects_capacity(self):
        ch = Channel("a", "b", capacity=3)
        for seed in range(20):
            ch.corrupt(random.Random(seed), lambda rng: ("j",))
            assert len(ch) <= 3

    def test_clear(self):
        ch = Channel("a", "b")
        ch.send(("m",))
        ch.clear()
        assert ch.empty

    def test_tag_property(self):
        ch = Channel("a", "b")
        ch.send(("fork", "key"))
        assert ch.deliver().tag == "fork"


class TestLossyChannel:
    def test_loss_is_silent_to_sender(self):
        ch = Channel("a", "b", capacity=4, loss_probability=0.9999,
                     rng=random.Random(1))
        # loss returns True (unobservable to the sender); nothing is queued.
        results = [ch.send(("m", i)) for i in range(50)]
        assert ch.lost > 40
        assert len(ch) < 10
        # Every send that was lost (not overflowed) reported success:
        assert sum(results) == 50 - ch.dropped

    def test_zero_loss_default(self):
        ch = Channel("a", "b")
        for i in range(5):
            ch.send(("m", i))
        assert ch.lost == 0 and len(ch) == 5

    def test_invalid_probability(self):
        import pytest as _pytest
        from repro.sim import SimulationError

        with _pytest.raises(SimulationError):
            Channel("a", "b", loss_probability=1.0)
        with _pytest.raises(SimulationError):
            Channel("a", "b", loss_probability=-0.1)
