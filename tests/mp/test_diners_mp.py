"""Unit tests for message-passing diners (Chandy–Misra fork collection)."""

import pytest

from repro.mp import (
    MpEngine,
    build_diners,
    eating_now,
    edge_key,
    neighbours_both_eating,
)
from repro.sim import line, ring, star


def run_and_watch_safety(topo, steps, seed, **build_kwargs):
    procs = build_diners(topo, **build_kwargs)
    engine = MpEngine(topo, procs, seed=seed)
    violations = 0
    for _ in range(steps):
        if not engine.step():
            break
        if neighbours_both_eating(topo, procs):
            violations += 1
    return procs, engine, violations


class TestInitialPlacement:
    def test_forks_at_earlier_endpoint(self):
        topo = line(3)
        procs = build_diners(topo)
        assert procs[0].holds_fork[1]
        assert not procs[1].holds_fork[0]
        assert procs[1].holds_fork[2]

    def test_request_tokens_opposite(self):
        topo = line(3)
        procs = build_diners(topo)
        assert not procs[0].holds_request[1]
        assert procs[1].holds_request[0]

    def test_all_forks_dirty(self):
        topo = ring(4)
        procs = build_diners(topo)
        assert all(
            not proc.fork_clean[q] for proc in procs.values() for q in proc.fork_clean
        )

    def test_eat_ticks_validation(self):
        with pytest.raises(ValueError):
            build_diners(line(2), eat_ticks=0)


class TestSafetyAndLiveness:
    def test_no_neighbours_both_eating(self):
        _, _, violations = run_and_watch_safety(ring(6), 30_000, seed=1)
        assert violations == 0

    def test_everyone_eats_on_ring(self):
        procs, _, _ = run_and_watch_safety(ring(6), 30_000, seed=2)
        assert all(p.eats > 0 for p in procs.values())

    def test_everyone_eats_on_star(self):
        procs, _, _ = run_and_watch_safety(star(4), 30_000, seed=3)
        assert all(p.eats > 0 for p in procs.values())

    def test_longer_meals_still_safe(self):
        procs, _, violations = run_and_watch_safety(
            ring(5), 30_000, seed=4, eat_ticks=4
        )
        assert violations == 0
        assert all(p.eats > 0 for p in procs.values())

    def test_selective_hunger(self):
        topo = line(4)
        procs = build_diners(topo)
        # Only process 2 wants to eat.
        for pid, proc in procs.items():
            proc._needs = (lambda: True) if pid == 2 else (lambda: False)
        engine = MpEngine(topo, procs, seed=5)
        engine.run(10_000, stop_when=lambda e: procs[2].eats > 0)
        assert procs[2].eats > 0
        assert all(procs[p].eats == 0 for p in (0, 1, 3))


class TestFaults:
    def test_crashed_eater_blocks_neighbours_only_via_forks(self):
        topo = line(5)
        procs = build_diners(topo)
        engine = MpEngine(topo, procs, seed=6)
        # run until 0 eats, then crash it at the table.
        engine.run(50_000, stop_when=lambda e: procs[0].state == "E")
        assert procs[0].state == "E"
        engine.crash(0)
        baseline = {p: procs[p].eats for p in topo.nodes}
        engine.run(60_000)
        assert procs[1].eats == baseline[1]  # fork held by the dead eater
        assert procs[4].eats > baseline[4]  # far end keeps going

    def test_malicious_crash_contained_to_own_edges(self):
        """A malicious process can forge forks, but only on its incident
        edges: any simultaneous-eating pair it causes includes itself."""
        topo = ring(6)
        procs = build_diners(topo)
        engine = MpEngine(topo, procs, seed=7)
        engine.run(2000)
        engine.crash_maliciously(0, havoc_steps=20)
        for _ in range(30_000):
            if not engine.step():
                break
            for p, q in neighbours_both_eating(topo, procs):
                assert 0 in (p, q), "live-live safety violated away from the crash"

    def test_edge_key_canonical(self):
        assert edge_key(1, 2) == edge_key(2, 1)

    def test_junk_payloads_ignored(self):
        topo = line(2)
        procs = build_diners(topo)
        engine = MpEngine(topo, procs, seed=8)
        engine.channel(0, 1).send(("fork", "wrong-key"))
        engine.channel(0, 1).send(("complete", "garbage", 1, 2, 3))
        engine.run(200)
        # 1 must not believe it holds the 0-1 fork because of junk.
        # (it may have legitimately received it by request; check only that
        # the engine didn't crash and states remain valid)
        assert procs[1].state in ("T", "H", "E")

    def test_eating_now(self):
        topo = line(2)
        procs = build_diners(topo)
        procs[0].state = "E"
        assert eating_now(procs) == (0,)


class TestForkConservation:
    """Exactly one fork exists per edge at all times: held by one endpoint
    or in flight — never zero, never two.  The strongest structural
    invariant of the protocol; any duplication/loss bug trips it."""

    def count_forks(self, topo, procs, engine, p, q):
        from repro.mp import edge_key

        held = int(procs[p].holds_fork[q]) + int(procs[q].holds_fork[p])
        key = edge_key(p, q)
        in_flight = sum(
            1
            for src, dst in ((p, q), (q, p))
            for m in engine.channel(src, dst).peek_all()
            if m.payload == ("fork", key)
        )
        return held + in_flight

    @pytest.mark.parametrize("seed", range(3))
    def test_one_fork_per_edge_always(self, seed):
        topo = ring(5)
        procs = build_diners(topo)
        engine = MpEngine(topo, procs, seed=seed)
        for step in range(5000):
            if not engine.step():
                break
            if step % 7:
                continue
            for e in topo.edges:
                p, q = tuple(e)
                assert self.count_forks(topo, procs, engine, p, q) == 1, (
                    f"fork conservation broken on {p}-{q} at step {step}"
                )

    def test_request_token_conservation(self):
        from repro.mp import edge_key

        topo = line(4)
        procs = build_diners(topo)
        engine = MpEngine(topo, procs, seed=9)
        for step in range(4000):
            if not engine.step():
                break
            if step % 11:
                continue
            for e in topo.edges:
                p, q = tuple(e)
                key = edge_key(p, q)
                held = int(procs[p].holds_request[q]) + int(
                    procs[q].holds_request[p]
                )
                in_flight = sum(
                    1
                    for src, dst in ((p, q), (q, p))
                    for m in engine.channel(src, dst).peek_all()
                    if m.payload == ("request", key)
                )
                assert held + in_flight == 1
