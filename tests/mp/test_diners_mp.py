"""Unit tests for message-passing diners (Chandy–Misra fork collection)."""

import random

import pytest

from repro.mp import (
    TAG_ACK,
    TAG_FORK,
    TAG_MISSING,
    TAG_REQUEST,
    MpEngine,
    build_diners,
    eating_now,
    edge_key,
    neighbours_both_eating,
)
from repro.sim import line, ring, star


def run_and_watch_safety(topo, steps, seed, **build_kwargs):
    procs = build_diners(topo, **build_kwargs)
    engine = MpEngine(topo, procs, seed=seed)
    violations = 0
    for _ in range(steps):
        if not engine.step():
            break
        if neighbours_both_eating(topo, procs):
            violations += 1
    return procs, engine, violations


class TestInitialPlacement:
    def test_forks_at_earlier_endpoint(self):
        topo = line(3)
        procs = build_diners(topo)
        assert procs[0].holds_fork[1]
        assert not procs[1].holds_fork[0]
        assert procs[1].holds_fork[2]

    def test_request_tokens_opposite(self):
        topo = line(3)
        procs = build_diners(topo)
        assert not procs[0].holds_request[1]
        assert procs[1].holds_request[0]

    def test_all_forks_dirty(self):
        topo = ring(4)
        procs = build_diners(topo)
        assert all(
            not proc.fork_clean[q] for proc in procs.values() for q in proc.fork_clean
        )

    def test_eat_ticks_validation(self):
        with pytest.raises(ValueError):
            build_diners(line(2), eat_ticks=0)


class TestSafetyAndLiveness:
    def test_no_neighbours_both_eating(self):
        _, _, violations = run_and_watch_safety(ring(6), 30_000, seed=1)
        assert violations == 0

    def test_everyone_eats_on_ring(self):
        procs, _, _ = run_and_watch_safety(ring(6), 30_000, seed=2)
        assert all(p.eats > 0 for p in procs.values())

    def test_everyone_eats_on_star(self):
        procs, _, _ = run_and_watch_safety(star(4), 30_000, seed=3)
        assert all(p.eats > 0 for p in procs.values())

    def test_longer_meals_still_safe(self):
        procs, _, violations = run_and_watch_safety(
            ring(5), 30_000, seed=4, eat_ticks=4
        )
        assert violations == 0
        assert all(p.eats > 0 for p in procs.values())

    def test_selective_hunger(self):
        topo = line(4)
        procs = build_diners(topo)
        # Only process 2 wants to eat.
        for pid, proc in procs.items():
            proc._needs = (lambda: True) if pid == 2 else (lambda: False)
        engine = MpEngine(topo, procs, seed=5)
        engine.run(10_000, stop_when=lambda e: procs[2].eats > 0)
        assert procs[2].eats > 0
        assert all(procs[p].eats == 0 for p in (0, 1, 3))


class TestFaults:
    def test_crashed_eater_blocks_neighbours_only_via_forks(self):
        topo = line(5)
        procs = build_diners(topo)
        engine = MpEngine(topo, procs, seed=6)
        # run until 0 eats, then crash it at the table.
        engine.run(50_000, stop_when=lambda e: procs[0].state == "E")
        assert procs[0].state == "E"
        engine.crash(0)
        baseline = {p: procs[p].eats for p in topo.nodes}
        engine.run(60_000)
        assert procs[1].eats == baseline[1]  # fork held by the dead eater
        assert procs[4].eats > baseline[4]  # far end keeps going

    def test_malicious_crash_contained_to_own_edges(self):
        """A malicious process can forge forks, but only on its incident
        edges: any simultaneous-eating pair it causes includes itself."""
        topo = ring(6)
        procs = build_diners(topo)
        engine = MpEngine(topo, procs, seed=7)
        engine.run(2000)
        engine.crash_maliciously(0, havoc_steps=20)
        for _ in range(30_000):
            if not engine.step():
                break
            for p, q in neighbours_both_eating(topo, procs):
                assert 0 in (p, q), "live-live safety violated away from the crash"

    def test_edge_key_canonical(self):
        assert edge_key(1, 2) == edge_key(2, 1)

    def test_junk_payloads_ignored(self):
        topo = line(2)
        procs = build_diners(topo)
        engine = MpEngine(topo, procs, seed=8)
        engine.channel(0, 1).send(("fork", "wrong-key"))
        engine.channel(0, 1).send(("complete", "garbage", 1, 2, 3))
        engine.run(200)
        # 1 must not believe it holds the 0-1 fork because of junk.
        # (it may have legitimately received it by request; check only that
        # the engine didn't crash and states remain valid)
        assert procs[1].state in ("T", "H", "E")

    def test_eating_now(self):
        topo = line(2)
        procs = build_diners(topo)
        procs[0].state = "E"
        assert eating_now(procs) == (0,)


class TestForkConservation:
    """Exactly one fork exists per edge at all times: held by one endpoint
    or in flight — never zero, never two.  The strongest structural
    invariant of the protocol; any duplication/loss bug trips it."""

    def count_forks(self, topo, procs, engine, p, q):
        from repro.mp import edge_key

        held = int(procs[p].holds_fork[q]) + int(procs[q].holds_fork[p])
        key = edge_key(p, q)
        in_flight = sum(
            1
            for src, dst in ((p, q), (q, p))
            for m in engine.channel(src, dst).peek_all()
            if m.payload == ("fork", key)
        )
        return held + in_flight

    @pytest.mark.parametrize("seed", range(3))
    def test_one_fork_per_edge_always(self, seed):
        topo = ring(5)
        procs = build_diners(topo)
        engine = MpEngine(topo, procs, seed=seed)
        for step in range(5000):
            if not engine.step():
                break
            if step % 7:
                continue
            for e in topo.edges:
                p, q = tuple(e)
                assert self.count_forks(topo, procs, engine, p, q) == 1, (
                    f"fork conservation broken on {p}-{q} at step {step}"
                )

    def test_request_token_conservation(self):
        from repro.mp import edge_key

        topo = line(4)
        procs = build_diners(topo)
        engine = MpEngine(topo, procs, seed=9)
        for step in range(4000):
            if not engine.step():
                break
            if step % 11:
                continue
            for e in topo.edges:
                p, q = tuple(e)
                key = edge_key(p, q)
                held = int(procs[p].holds_request[q]) + int(
                    procs[q].holds_request[p]
                )
                in_flight = sum(
                    1
                    for src, dst in ((p, q), (q, p))
                    for m in engine.channel(src, dst).peek_all()
                    if m.payload == ("request", key)
                )
                assert held + in_flight == 1


class LossyCtx:
    """Drives a process directly; drops a fraction of sends."""

    def __init__(self, pid, topo, queues, rng, loss):
        self.pid = pid
        self.neighbors = topo.neighbors(pid)
        self._queues = queues
        self._rng = rng
        self._loss = loss

    def send(self, dst, payload):
        if self._rng.random() < self._loss:
            return True  # the frame is lost in transit, not at the sender
        self._queues[dst].append((self.pid, payload))
        return True


def run_lossy(topo, procs, steps, *, loss=0.15, seed=42, corrupt_at=None):
    rng = random.Random(seed)
    queues = {p: [] for p in topo.nodes}
    ctxs = {p: LossyCtx(p, topo, queues, rng, loss) for p in topo.nodes}
    violations = []
    for step in range(steps):
        for p in topo.nodes:
            inbox, queues[p] = queues[p], []
            for src, payload in inbox:
                procs[p].on_message(ctxs[p], src, payload)
            procs[p].on_tick(ctxs[p])
        for pair in neighbours_both_eating(topo, procs):
            violations.append((step, pair))
        if corrupt_at is not None and step == corrupt_at:
            procs[corrupt_at_pid(topo)].corrupt(random.Random(7))
    return violations


def corrupt_at_pid(topo):
    return list(topo.nodes)[0]


class TestRepairMode:
    """The stabilizing edge repair the live cluster runs with: counted
    fork transfers, retransmission, regeneration, cycle breaking."""

    def test_liveness_under_loss(self):
        """Without repair a single dropped token frame deadlocks the ring;
        with repair everyone keeps eating at a healthy rate."""
        topo = ring(3)
        procs = build_diners(topo, repair=True, eat_ticks=2)
        violations = run_lossy(topo, procs, 10_000)
        assert not violations
        assert all(p.eats > 50 for p in procs.values()), {
            p: procs[p].eats for p in topo.nodes
        }

    def test_bare_mode_deadlocks_under_loss(self):
        """Control: the classic protocol starves once tokens are lost —
        this is the failure repair mode exists to fix."""
        topo = ring(3)
        procs = build_diners(topo, repair=False, eat_ticks=2)
        run_lossy(topo, procs, 10_000)
        assert min(p.eats for p in procs.values()) < 10

    def test_converges_after_corruption(self):
        """Restart-from-arbitrary-state: corrupt one node mid-run; the
        system must return to everyone eating (the §3 stabilization claim
        exercised at the fork layer)."""
        topo = ring(3)
        procs = build_diners(topo, repair=True, eat_ticks=2)
        run_lossy(topo, procs, 5_000)
        corrupted = corrupt_at_pid(topo)
        procs[corrupted].corrupt(random.Random(7))
        before = {p: procs[p].eats for p in topo.nodes}
        violations = run_lossy(topo, procs, 5_000, seed=43)
        assert all(procs[p].eats > before[p] for p in topo.nodes)
        # Transient violations are allowed, but only on the corrupted
        # node's own edges (the paper's containment property).
        assert all(corrupted in pair for _, pair in violations)

    def test_fork_regeneration_by_earlier_endpoint(self):
        """A request arriving at a fork-less earlier endpoint with a fresh
        counter regenerates the fork, dirty, and serves the requester."""
        topo = line(2)
        procs = build_diners(topo, repair=True)
        sent = []

        class Ctx:
            pid = 0
            neighbors = topo.neighbors(0)

            def send(self, dst, payload):
                sent.append((dst, payload))
                return True

        p0 = procs[0]
        p0.holds_fork[1] = False  # the fork token is lost
        p0.state = "T"
        p0.on_message(Ctx(), 1, (TAG_REQUEST, edge_key(0, 1), 0))
        forks = [pl for _, pl in sent if pl[0] == TAG_FORK]
        assert forks, sent
        assert forks[0][2] > 0  # fresh counter invalidates stale copies
        assert not p0.holds_fork[1]  # regenerated and surrendered

    def test_later_endpoint_reports_missing(self):
        """The later endpoint cannot regenerate; it reports back so the
        earlier endpoint's rule fires."""
        topo = line(2)
        procs = build_diners(topo, repair=True)
        sent = []

        class Ctx:
            pid = 1
            neighbors = topo.neighbors(1)

            def send(self, dst, payload):
                sent.append((dst, payload))
                return True

        p1 = procs[1]
        assert not p1.holds_fork[0]
        p1.on_message(Ctx(), 0, (TAG_REQUEST, edge_key(0, 1), 0))
        assert any(pl[0] == TAG_MISSING for _, pl in sent), sent
        assert not p1.holds_fork[0]

    def test_stale_fork_rejected_and_acked(self):
        """A duplicate fork frame with an old counter must not resurrect
        the fork, but is still acknowledged so retransmission stops."""
        topo = line(2)
        procs = build_diners(topo, repair=True)
        sent = []

        class Ctx:
            pid = 1
            neighbors = topo.neighbors(1)

            def send(self, dst, payload):
                sent.append((dst, payload))
                return True

        p1 = procs[1]
        p1.edge_c[0] = 5
        p1.holds_fork[0] = False
        p1.on_message(Ctx(), 0, (TAG_FORK, edge_key(0, 1), 3))
        assert not p1.holds_fork[0]
        assert (0, (TAG_ACK, edge_key(0, 1), 3)) in sent

    def test_surrendered_fork_retransmits_until_acked(self):
        topo = line(2)
        procs = build_diners(topo, repair=True, resend_every=2)
        sent = []

        class Ctx:
            pid = 0
            neighbors = topo.neighbors(0)

            def send(self, dst, payload):
                sent.append((dst, payload))
                return True

        p0 = procs[0]
        p0.on_message(Ctx(), 1, (TAG_REQUEST, edge_key(0, 1), 0))
        first = [pl for _, pl in sent if pl[0] == TAG_FORK]
        assert first and p0._fork_resend[1] == first[0][2]
        sent.clear()
        for _ in range(6):
            p0.on_tick(Ctx())
        resends = [pl for _, pl in sent if pl[0] == TAG_FORK]
        assert resends and all(pl[2] == first[0][2] for pl in resends)
        p0.on_message(Ctx(), 1, (TAG_ACK, edge_key(0, 1), first[0][2]))
        assert p0._fork_resend[1] is None
        sent.clear()
        for _ in range(6):
            p0.on_tick(Ctx())
        assert not [pl for _, pl in sent if pl[0] == TAG_FORK]

    def test_repair_frames_are_three_fields(self):
        """Repair mode rejects bare two-field frames as junk (a malicious
        burst must not trip regeneration without a counter)."""
        topo = line(2)
        procs = build_diners(topo, repair=True)

        class Ctx:
            pid = 1
            neighbors = topo.neighbors(1)

            def send(self, dst, payload):
                return True

        p1 = procs[1]
        p1.on_message(Ctx(), 0, (TAG_FORK, edge_key(0, 1)))
        assert not p1.holds_fork[0]
        p1.on_message(Ctx(), 0, (TAG_FORK, edge_key(0, 1), True))
        assert not p1.holds_fork[0]
        p1.on_message(Ctx(), 0, (TAG_FORK, edge_key(0, 1), -1))
        assert not p1.holds_fork[0]

    def test_legacy_wire_shape_unchanged(self):
        """repair=False keeps the classic two-field frames bit-for-bit."""
        topo = line(2)
        procs = build_diners(topo)
        sent = []

        class Ctx:
            pid = 1
            neighbors = topo.neighbors(1)

            def send(self, dst, payload):
                sent.append(payload)
                return True

        p1 = procs[1]
        p1.state = "H"
        p1.on_tick(Ctx())
        assert (TAG_REQUEST, edge_key(0, 1)) in sent
