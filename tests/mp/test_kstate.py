"""Unit tests for Dijkstra's K-state token circulation."""

import random

import pytest

from repro.mp import KStateToken, privileged, single_privilege
from repro.sim import Engine, System, TopologyError, line, ring


class TestStructure:
    def test_requires_ring(self):
        algo = KStateToken(k=5)
        s = System(line(4), algo)
        with pytest.raises(TopologyError):
            s.enabled_actions(0)

    def test_k_validation(self):
        with pytest.raises(ValueError):
            KStateToken(k=1)

    def test_single_action(self):
        assert [a.name for a in KStateToken(5).actions()] == ["pass"]


class TestLegitimateOperation:
    def test_initial_state_single_privilege(self):
        s = System(ring(5), KStateToken(k=7))
        assert single_privilege(s.snapshot(), s.algorithm)

    def test_privilege_circulates(self):
        algo = KStateToken(k=7)
        s = System(ring(5), algo)
        e = Engine(s, seed=1)
        holders = set()
        for _ in range(100):
            holders.update(privileged(s.snapshot(), algo))
            if not e.step():
                break
        assert holders == set(range(5))

    def test_exactly_one_privilege_is_invariant(self):
        algo = KStateToken(k=6)
        s = System(ring(4), algo)
        e = Engine(s, seed=2)
        for _ in range(300):
            assert single_privilege(s.snapshot(), algo)
            e.step()

    def test_never_quiescent(self):
        # Token circulation never terminates: some action always enabled.
        algo = KStateToken(k=5)
        s = System(ring(4), algo)
        e = Engine(s, seed=3)
        result = e.run(500)
        assert result.exhausted


class TestStabilization:
    @pytest.mark.parametrize("seed", range(5))
    def test_converges_from_arbitrary_counters(self, seed):
        algo = KStateToken(k=7)
        s = System(ring(5), algo)
        s.randomize(random.Random(seed))
        e = Engine(s, seed=seed)
        result = e.run(
            5000, stop_when=lambda c: single_privilege(c, algo), check_every=1
        )
        assert result.stopped or single_privilege(s.snapshot(), algo)

    def test_stays_converged(self):
        algo = KStateToken(k=7)
        s = System(ring(5), algo)
        s.randomize(random.Random(9))
        e = Engine(s, seed=9)
        e.run(5000, stop_when=lambda c: single_privilege(c, algo))
        for _ in range(300):
            e.step()
            assert single_privilege(s.snapshot(), algo)

    def test_model_checked_convergence(self):
        """Exhaustive proof on a small instance: from every counter
        assignment the protocol converges to a single circulating
        privilege under weak fairness."""
        from repro.verification import (
            TransitionSystem,
            check_closure,
            check_convergence,
            enumerate_configurations,
        )

        topo = ring(3)
        algo = KStateToken(k=4)  # k >= n
        configs = list(enumerate_configurations(algo, topo))
        assert len(configs) == 4**3
        ts = TransitionSystem(algo, topo)
        legit = lambda c: single_privilege(c, algo)
        assert check_closure(ts, legit, configs).holds
        report = check_convergence(ts, legit, configs)
        assert report.converges


class TestCounterBoundary:
    """How many counter values does stabilization need?  Machine-checked
    on ring(4): k=2 admits a confirmed weakly fair livelock with multiple
    circulating privileges, while k=3 (= n-1) already converges."""

    def test_k2_has_fair_livelock(self):
        from repro.verification import (
            TransitionSystem,
            check_convergence,
            confirm_fair_livelock,
            enumerate_configurations,
        )

        topo = ring(4)
        algo = KStateToken(k=2)
        configs = list(enumerate_configurations(algo, topo))
        ts = TransitionSystem(algo, topo)
        report = check_convergence(
            ts, lambda c: single_privilege(c, algo), configs
        )
        assert not report.converges
        assert confirm_fair_livelock(ts, report.stuck_scc)

    def test_k3_converges_on_ring4(self):
        from repro.verification import (
            TransitionSystem,
            check_convergence,
            enumerate_configurations,
        )

        topo = ring(4)
        algo = KStateToken(k=3)
        configs = list(enumerate_configurations(algo, topo))
        ts = TransitionSystem(algo, topo)
        report = check_convergence(
            ts, lambda c: single_privilege(c, algo), configs
        )
        assert report.converges
