"""Unit tests for the stabilizing per-edge handshake."""

import random

import pytest

from repro.mp import (
    HandshakeSession,
    MpEngine,
    make_session_pair,
)
from repro.sim import line


class TestSessionBasics:
    def test_master_slave_pairing(self):
        m, s = make_session_pair("a", "b", k=9)
        assert m.master and not s.master
        assert m.session_key == s.session_key

    def test_k_validation(self):
        with pytest.raises(ValueError):
            HandshakeSession("a", "b", master=True, k=2)

    def test_junk_rejected(self):
        m, _ = make_session_pair("a", "b", k=9)
        assert not m.handle(("garbage",))
        assert not m.handle(("hs", m.session_key, "not-an-int", None))
        assert not m.handle(("hs", "wrong-key", 1, None))
        assert not m.handle(("hs", m.session_key, 99, None))  # out of range
        assert m.stats.received_junk == 4

    def test_slave_silent_until_contacted(self):
        _, s = make_session_pair("a", "b", k=9)
        assert s.tick_payload("data") is None


def drive(master, slave, rounds, data_m="M", data_s="S", drop=None):
    """Lock-step exchange helper; drop is a predicate on frame index."""
    sent = 0
    for _ in range(rounds):
        f = master.tick_payload(data_m)
        if f is not None:
            sent += 1
            if drop is None or not drop(sent):
                slave.handle(f)
        f = slave.tick_payload(data_s)
        if f is not None:
            sent += 1
            if drop is None or not drop(sent):
                master.handle(f)


class TestAlternation:
    def test_caches_converge(self):
        m, s = make_session_pair("a", "b", k=9)
        drive(m, s, rounds=5)
        assert m.peer_data == "S"
        assert s.peer_data == "M"

    def test_rounds_advance(self):
        m, s = make_session_pair("a", "b", k=9)
        drive(m, s, rounds=6)
        assert m.stats.rounds >= 5
        assert s.stats.rounds >= 5

    def test_token_alternates(self):
        m, s = make_session_pair("a", "b", k=9)
        drive(m, s, rounds=3)
        # After a completed exchange the master holds the token again.
        assert m.holds_token

    def test_retransmission_survives_drops(self):
        m, s = make_session_pair("a", "b", k=9)
        drive(m, s, rounds=30, drop=lambda i: i % 3 == 0)
        assert m.peer_data == "S"
        assert s.peer_data == "M"

    def test_data_updates_propagate(self):
        m, s = make_session_pair("a", "b", k=9)
        drive(m, s, rounds=3, data_m="old")
        drive(m, s, rounds=3, data_m="new")
        assert s.peer_data == "new"


class TestStabilization:
    @pytest.mark.parametrize("seed", range(8))
    def test_converges_from_corrupt_state(self, seed):
        rng = random.Random(seed)
        m, s = make_session_pair("a", "b", k=9)
        m.corrupt(rng)
        s.corrupt(rng)
        drive(m, s, rounds=20)
        assert m.peer_data == "S"
        assert s.peer_data == "M"
        assert m.holds_token  # clean alternation restored

    def test_converges_despite_channel_junk(self):
        """Junk frames in flight are absorbed; genuine data wins."""
        rng = random.Random(42)
        m, s = make_session_pair("a", "b", k=11)
        junk = [m.random_frame(rng, lambda r: ("junk", r.random())) for _ in range(4)]
        for frame in junk:  # stale junk delivered to both sides first
            s.handle(frame)
            m.handle(frame)
        drive(m, s, rounds=20)
        assert m.peer_data == "S"
        assert s.peer_data == "M"


from repro.mp import HandshakeNode


class TestOverRealChannels:
    def make(self, seed=0):
        topo = line(2)
        procs = {
            0: HandshakeNode(0, 1, master=True),
            1: HandshakeNode(1, 0, master=False),
        }
        return procs, MpEngine(topo, procs, channel_capacity=4, seed=seed)

    def test_caches_converge(self):
        procs, engine = self.make(seed=1)
        engine.run(400)
        assert procs[0].session.peer_data == "data-from-1"
        assert procs[1].session.peer_data == "data-from-0"

    def test_converges_after_transient_fault(self):
        procs, engine = self.make(seed=2)
        engine.run(200)
        engine.transient_fault()  # corrupt sessions AND channel contents
        engine.run(800)
        assert procs[0].session.peer_data == "data-from-1"
        assert procs[1].session.peer_data == "data-from-0"

    @pytest.mark.parametrize("seed", range(5))
    def test_stabilization_across_seeds(self, seed):
        procs, engine = self.make(seed=seed)
        engine.transient_fault()
        engine.run(1500)
        assert procs[0].session.peer_data == "data-from-1"
        assert procs[1].session.peer_data == "data-from-0"


class TestLossyChannels:
    @pytest.mark.parametrize("loss", [0.1, 0.3])
    def test_handshake_survives_message_loss(self, loss):
        """Retransmission makes the handshake loss-tolerant — the reason
        tick-driven design was chosen over request/response."""
        topo = line(2)
        procs = {
            0: HandshakeNode(0, 1, master=True),
            1: HandshakeNode(1, 0, master=False),
        }
        engine = MpEngine(
            topo, procs, channel_capacity=4, loss_probability=loss, seed=5
        )
        engine.run(3000)
        assert procs[0].session.peer_data == "data-from-1"
        assert procs[1].session.peer_data == "data-from-0"
        assert sum(ch.lost for ch in engine.channels()) > 0
