"""Message-passing engine × event bus: every MpEventKind is published."""

from typing import Tuple

from repro.mp import MpEngine, MpProcess
from repro.obs import EventBus, MpEventKind
from repro.sim import line, ring


class Chatter(MpProcess):
    """Pings every neighbour each tick; replies to pings."""

    def on_message(self, ctx, src, payload):
        if payload and payload[0] == "ping":
            ctx.send(src, ("pong",))

    def on_tick(self, ctx):
        for q in ctx.neighbors:
            ctx.send(q, ("ping",))

    def corrupt(self, rng):
        pass

    def random_payload(self, rng) -> Tuple:
        return ("junk", rng.randrange(4))


def engine_with_bus(topology, **kwargs):
    bus = EventBus()
    seen = []
    bus.subscribe_all(seen.append)
    engine = MpEngine(
        topology,
        {p: Chatter(p) for p in topology.nodes},
        bus=bus,
        **kwargs,
    )
    return engine, seen


def kinds_of(seen):
    return {e.kind for e in seen}


class TestMpBusEvents:
    def test_send_deliver_tick_flow(self):
        engine, seen = engine_with_bus(ring(4), seed=1)
        engine.run(200)
        kinds = kinds_of(seen)
        assert MpEventKind.SEND in kinds
        assert MpEventKind.DELIVER in kinds
        assert MpEventKind.TICK in kinds

    def test_send_events_match_engine_counters(self):
        engine, seen = engine_with_bus(ring(4), seed=1)
        engine.run(200)
        delivers = [e for e in seen if e.kind is MpEventKind.DELIVER]
        assert len(delivers) == engine.delivered
        ticks = [e for e in seen if e.kind is MpEventKind.TICK]
        assert len(ticks) == engine.ticks

    def test_crash_event(self):
        engine, seen = engine_with_bus(line(3), seed=1)
        engine.run(20)
        engine.crash(0)
        crashes = [e for e in seen if e.kind is MpEventKind.CRASH]
        assert [e.pid for e in crashes] == [0]

    def test_malice_and_havoc_events(self):
        engine, seen = engine_with_bus(line(3), seed=1)
        engine.crash_maliciously(1, havoc_steps=4)
        engine.run(50)
        begins = [e for e in seen if e.kind is MpEventKind.MALICE_BEGIN]
        assert [(e.pid, e.detail) for e in begins] == [(1, 4)]
        havocs = [e for e in seen if e.kind is MpEventKind.HAVOC]
        assert havocs and all(e.pid == 1 for e in havocs)

    def test_transient_event_carries_targets(self):
        engine, seen = engine_with_bus(line(3), seed=1)
        engine.transient_fault([2])
        faults = [e for e in seen if e.kind is MpEventKind.TRANSIENT]
        assert len(faults) == 1

    def test_drop_event_on_full_channel(self):
        # in-transit loss is invisible to senders (send() still returns
        # True); DROP is a *bounded-capacity* rejection, so force it with
        # a one-slot channel and a chatty workload.
        engine, seen = engine_with_bus(ring(4), seed=3, channel_capacity=1)
        engine.run(300)
        assert MpEventKind.DROP in kinds_of(seen)

    def test_no_bus_costs_nothing(self):
        topology = ring(4)
        engine = MpEngine(topology, {p: Chatter(p) for p in topology.nodes}, seed=1)
        assert engine.bus is None
        engine.run(50)  # must not raise
