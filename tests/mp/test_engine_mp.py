"""Unit tests for the message-passing engine."""

from typing import Tuple

import pytest

from repro.mp import MpEngine, MpProcess
from repro.sim import DeadProcessError, SimulationError, line, ring


class Echo(MpProcess):
    """Replies to every message; counts what it saw."""

    def __init__(self, pid):
        super().__init__(pid)
        self.seen = []
        self.tick_count = 0

    def on_message(self, ctx, src, payload):
        self.seen.append((src, payload))
        if payload and payload[0] == "ping":
            ctx.send(src, ("pong",))

    def on_tick(self, ctx):
        self.tick_count += 1

    def corrupt(self, rng):
        self.seen = []

    def random_payload(self, rng) -> Tuple:
        return ("junk", rng.randrange(10))


class Chatter(Echo):
    """Sends a ping to each neighbour on every tick."""

    def on_tick(self, ctx):
        super().on_tick(ctx)
        for q in ctx.neighbors:
            ctx.send(q, ("ping",))


def build(topo, cls=Echo, **kwargs):
    procs = {p: cls(p) for p in topo.nodes}
    return procs, MpEngine(topo, procs, **kwargs)


class TestConstruction:
    def test_processes_must_cover_nodes(self):
        topo = line(3)
        with pytest.raises(SimulationError):
            MpEngine(topo, {0: Echo(0)})

    def test_channels_per_direction(self):
        topo = line(3)
        _, engine = build(topo)
        assert engine.channel(0, 1) is not engine.channel(1, 0)

    def test_unknown_channel(self):
        topo = line(3)
        _, engine = build(topo)
        with pytest.raises(SimulationError):
            engine.channel(0, 2)


class TestDeliveryAndTicks:
    def test_messages_eventually_delivered(self):
        topo = line(2)
        procs, engine = build(topo, Chatter, seed=1)
        engine.run(200)
        assert procs[0].seen and procs[1].seen

    def test_every_process_ticks(self):
        topo = ring(4)
        procs, engine = build(topo, Echo, seed=2)
        engine.run(200)
        assert all(p.tick_count > 0 for p in procs.values())

    def test_fairness_bounds_tick_gap(self):
        # With patience k, a process cannot be denied a tick forever.
        topo = ring(5)
        procs, engine = build(topo, Chatter, seed=3, patience=16)
        engine.run(2000)
        ticks = [procs[p].tick_count for p in topo.nodes]
        assert min(ticks) > 0
        assert max(ticks) < 40 * min(ticks)

    def test_determinism(self):
        def run(seed):
            topo = ring(4)
            procs, engine = build(topo, Chatter, seed=seed)
            engine.run(500)
            return [procs[p].tick_count for p in topo.nodes], engine.delivered

        assert run(7) == run(7)
        assert run(7) != run(8)

    def test_stop_when(self):
        topo = line(2)
        procs, engine = build(topo, Chatter, seed=1)
        taken = engine.run(10_000, stop_when=lambda e: e.delivered >= 5)
        assert engine.delivered >= 5
        assert taken < 10_000

    def test_in_flight(self):
        topo = line(2)
        procs, engine = build(topo, Echo, seed=1)
        engine.channel(0, 1).send(("x",))
        assert engine.in_flight() == 1


class TestCrashes:
    def test_crash_stops_ticks(self):
        topo = line(3)
        procs, engine = build(topo, Echo, seed=4)
        engine.crash(1)
        engine.run(300)
        assert procs[1].tick_count == 0
        assert not engine.is_alive(1)

    def test_messages_to_dead_are_discarded(self):
        topo = line(2)
        procs, engine = build(topo, Echo, seed=5)
        engine.crash(1)
        engine.channel(0, 1).send(("ping",))
        engine.run(100)
        assert procs[1].seen == []
        assert engine.in_flight() == 0  # drained, not stuck

    def test_double_crash_rejected(self):
        topo = line(2)
        _, engine = build(topo)
        engine.crash(0)
        with pytest.raises(DeadProcessError):
            engine.crash(0)

    def test_malicious_crash_havocs_then_halts(self):
        topo = line(3)
        procs, engine = build(topo, Echo, seed=6)
        engine.crash_maliciously(1, havoc_steps=5)
        engine.run(2000)
        assert not engine.is_alive(1)
        # junk reached at least one neighbour with high probability
        junk = [m for p in (0, 2) for m in procs[p].seen if m[1][0] == "junk"]
        assert junk

    def test_malicious_zero_steps_is_benign(self):
        topo = line(2)
        _, engine = build(topo)
        engine.crash_maliciously(0, havoc_steps=0)
        assert not engine.is_alive(0)

    def test_negative_havoc_rejected(self):
        topo = line(2)
        _, engine = build(topo)
        with pytest.raises(SimulationError):
            engine.crash_maliciously(0, havoc_steps=-1)


class TestTransient:
    def test_transient_corrupts_channels(self):
        topo = line(2)
        procs, engine = build(topo, Echo, seed=8)
        engine.transient_fault()
        total = engine.in_flight()
        junk_frames = sum(
            1
            for ch in engine.channels()
            for m in ch.peek_all()
            if m.payload[0] == "junk"
        )
        assert junk_frames == total  # everything in flight is junk now

    def test_transient_scoped(self):
        topo = line(4)
        procs, engine = build(topo, Echo, seed=9)
        procs[3].seen.append(("marker", ("m",)))
        engine.transient_fault(pids=[0])
        assert procs[3].seen  # untouched
