"""Fault edges of the message-passing engine.

Channel overflow under bounded capacity, and malicious-crash garbage
delivery — the in-process mirror of what the live chaos proxy does at the
socket level (see :mod:`repro.net.chaos`), so the two fault repertoires
stay bit-for-bit aligned.
"""

import random

import pytest

from repro.mp import MpEngine
from repro.mp.channel import Channel
from repro.mp.diners_mp import (
    build_diners,
    eating_now,
    neighbours_both_eating,
)
from repro.net import WireChannel
from repro.sim import SimulationError, line, ring


class TestBoundedCapacity:
    def test_overflow_drops_and_counts(self):
        channel = Channel(0, 1, capacity=2)
        assert channel.send(("a",)) and channel.send(("b",))
        assert not channel.send(("c",))
        assert channel.dropped == 1
        assert len(channel) == 2

    def test_deliver_frees_a_slot(self):
        channel = Channel(0, 1, capacity=1)
        channel.send(("a",))
        assert not channel.send(("b",))
        assert channel.deliver().payload == ("a",)
        assert channel.send(("b",))

    def test_capacity_must_be_positive(self):
        with pytest.raises(SimulationError):
            Channel(0, 1, capacity=0)

    def test_fifo_order_survives_overflow(self):
        channel = Channel(0, 1, capacity=3)
        for payload in ("a", "b", "c", "d", "e"):
            channel.send((payload,))
        assert [m.payload[0] for m in channel.peek_all()] == ["a", "b", "c"]

    def test_engine_diners_survive_tiny_channels(self):
        # Capacity 1 forces constant overflow; retransmission (hungry
        # processes re-request every tick) must still make progress.
        topo = ring(4)
        procs = build_diners(topo, seed=1)
        engine = MpEngine(topo, procs, channel_capacity=1, seed=5)
        engine.run(6000)
        assert sum(p.eats for p in procs.values()) > 0
        assert neighbours_both_eating(topo, procs) == ()
        assert sum(c.dropped for c in engine.channels()) > 0


class TestMaliciousCrashGarbage:
    def run_with_malice(self, channel_factory=None):
        topo = ring(5)
        procs = build_diners(topo, seed=2)
        kwargs = {} if channel_factory is None else {
            "channel_factory": channel_factory
        }
        engine = MpEngine(topo, procs, seed=11, **kwargs)
        engine.run(1500)
        engine.crash_maliciously(0, havoc_steps=25)
        engine.run(6000)
        return topo, procs, engine

    def test_junk_is_delivered_and_survived(self):
        topo, procs, engine = self.run_with_malice()
        assert not engine.is_alive(0)
        # The victim's junk payloads were delivered to its neighbours and
        # validated away; the survivors keep dining safely.
        assert neighbours_both_eating(topo, procs) == ()
        live = [p for p in topo.nodes if engine.is_alive(p)]
        assert 0 not in eating_now(procs) or procs[0].state is None
        assert sum(procs[p].eats for p in live) > 0

    def test_same_malice_through_the_wire_codec(self):
        # Identical schedule over WireChannel: every junk payload crosses
        # encode -> bytes -> garbage-tolerant decode, the same path the
        # chaos proxy's garbage burst takes between live nodes.
        topo, procs, engine = self.run_with_malice(channel_factory=WireChannel)
        assert not engine.is_alive(0)
        assert neighbours_both_eating(topo, procs) == ()
        for channel in engine.channels():
            assert isinstance(channel, WireChannel)

    def test_transient_fault_fills_channels_with_junk(self):
        topo = line(4)
        procs = build_diners(topo, seed=3)
        engine = MpEngine(topo, procs, seed=7, channel_factory=WireChannel)
        engine.run(500)
        engine.transient_fault()
        assert engine.in_flight() <= sum(c.capacity for c in engine.channels())
        engine.run(6000)
        assert neighbours_both_eating(topo, procs) == ()
        assert sum(p.eats for p in procs.values()) > 0

    def test_raw_garbage_mirrors_socket_bytes(self):
        # Byte-level equivalence: the same seeded burst the proxy sprays is
        # absorbed by a WireChannel's decoder without forging any message.
        rng = random.Random(4)
        channel = WireChannel(0, 1, 8)
        burst = bytes(rng.randrange(256) for _ in range(rng.randint(16, 128)))
        channel.inject_garbage(burst)
        assert channel.decoder.garbage_bytes + len(channel.decoder) == len(burst)
        assert channel.empty
