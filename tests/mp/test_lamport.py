"""Engine-maintained Lamport clocks on the message-passing simulator."""

from repro.mp import MpEngine, build_diners
from repro.obs.bus import EventBus
from repro.sim import ring


def run_engine(seed=3, steps=400):
    topo = ring(4)
    engine = MpEngine(topo, build_diners(topo), seed=seed)
    engine.run(steps)
    return engine


class TestEngineClocks:
    def test_every_process_has_a_clock_that_advanced(self):
        engine = run_engine()
        assert set(engine.clocks) == set(engine.topology.nodes)
        for clock in engine.clocks.values():
            assert clock.value > 0

    def test_delivery_merges_the_senders_clock(self):
        topo = ring(4)
        engine = MpEngine(topo, build_diners(topo), seed=5)
        # Drive until at least one delivery happened, then check dominance:
        # a receiver that ever heard from a peer is past that peer's stamp
        # at the moment of the last delivery, hence cannot be at zero.
        engine.run(200)
        assert engine.delivered > 0
        delivered_to = [
            pid for pid in engine.topology.nodes
            if engine.counters[("delivered", pid)] > 0
        ]
        assert delivered_to
        for pid in delivered_to:
            assert engine.clocks[pid].value > 0

    def test_clocks_are_deterministic_for_a_seed(self):
        one = {repr(p): c.value for p, c in run_engine(seed=9).clocks.items()}
        two = {repr(p): c.value for p, c in run_engine(seed=9).clocks.items()}
        assert one == two

    def test_replay_byte_identity_is_preserved(self):
        """The clocks must not alter the observable event stream."""
        def events(seed):
            topo = ring(4)
            bus = EventBus()
            rows = []
            bus.subscribe_all(
                lambda e: rows.append((e.step, e.kind.value, repr(e.pid),
                                       repr(e.detail)))
            )
            engine = MpEngine(topo, build_diners(topo), seed=seed, bus=bus)
            engine.run(300)
            return rows

        assert events(11) == events(11)
