"""Live byzantine boundary: a soak whose "crashed" node never halts.

The cluster-level twin of ``tests/adversary/test_byzantine.py``: one node
is subverted at its scheduled crash time and keeps emitting protocol
frames.  The audit must (a) observe real neighbour-exclusion violations,
(b) attribute every one of them to the subverted node, and (c) report a
system that is safe once that node is excluded — the failing-then-excluded
reading of the paper's malicious-crash model.
"""

import asyncio

import pytest

from repro.net import ClusterConfig, neighbour_violations, soak
from repro.sim import ring


@pytest.fixture(scope="module")
def byzantine_soak():
    config = ClusterConfig(
        topology=ring(3),
        topology_spec="ring:3",
        seed=5,
        tick_interval=0.005,
        lock_service=True,
        chaos=True,
        partitions=0,
        malicious_crashes=0,
        byzantine=1,
    )
    return asyncio.run(soak(config, 6.0, hold_s=0.02))


class TestByzantineSoak:
    def test_one_node_was_subverted(self, byzantine_soak):
        assert len(byzantine_soak.cluster.byzantine) == 1

    def test_safety_is_violated(self, byzantine_soak):
        assert byzantine_soak.violations

    def test_blame_lands_on_the_subverted_node(self, byzantine_soak):
        assert byzantine_soak.blamed == byzantine_soak.cluster.byzantine
        byz = byzantine_soak.cluster.byzantine[0]
        for v in byzantine_soak.violations:
            assert byz in (v.node_a, v.node_b)

    def test_soak_result_mirrors_cluster_result(self, byzantine_soak):
        assert byzantine_soak.byzantine == byzantine_soak.cluster.byzantine

    def test_excluding_the_culprit_clears_the_audit(self, byzantine_soak):
        result = byzantine_soak
        remaining = neighbour_violations(
            ring(3),
            result.intervals,
            exclude=result.byzantine + result.cluster.killed,
        )
        assert remaining == []
