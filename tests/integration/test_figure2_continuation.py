"""Beyond Figure 2's last panel: the long-run fate of the seven processes.

The paper stops the narration once ``e`` eats.  Running the system onwards
must show the steady state the theorems promise: ``e``, ``f``, ``g`` dine
forever; ``b`` and ``c`` stay starved; every red process is within the
crash's 2-ball; no safety violation ever occurs.

A detail the figure's narration doesn't reach: ``f``'s stale ``depth = 3``
can cascade — ``fixdepth`` at ``d`` raises ``depth.d`` past the diameter,
``d`` spuriously exits, ``b``'s ``fixdepth`` copies the transiently large
value and ``b`` exits too (to *thinking*, forever blocked behind the dead
eater), which frees ``d`` to dine.  Whether ``d`` recovers is therefore
schedule-dependent; both outcomes respect locality 2 (an upper bound on
the affected set), so the tests only assert the guaranteed facts.
"""

import pytest

from repro.analysis import live_eating_pairs_count
from repro.core import (
    NADiners,
    figure2_system,
    green_set,
    nc_holds,
    red_set,
    run_figure2,
)
from repro.sim import AlwaysHungry, Engine, System, WeaklyFairDaemon


@pytest.fixture
def continued_engine():
    replay = run_figure2()
    system = System.from_configuration(NADiners(), replay.final)
    engine = Engine(system, WeaklyFairDaemon(), hunger=AlwaysHungry(), seed=99)
    return system, engine


class TestSteadyState:
    def test_efg_dine_forever(self, continued_engine):
        system, engine = continued_engine
        engine.run(30_000)
        for p in "efg":
            assert engine.eats_of(p) > 10, f"{p} should keep dining"

    def test_bc_starve(self, continued_engine):
        system, engine = continued_engine
        engine.run(30_000)
        for p in "bc":
            assert engine.eats_of(p) == 0, f"{p} is blocked by the dead eater"

    def test_no_safety_violation_ever(self, continued_engine):
        system, engine = continued_engine
        for _ in range(8_000):
            if not engine.step():
                break
            assert live_eating_pairs_count(system.snapshot()) == 0

    def test_nc_stays_restored(self, continued_engine):
        system, engine = continued_engine
        for i in range(4_000):
            if not engine.step():
                break
            if i % 40 == 0:
                assert nc_holds(system.snapshot())

    def test_colors_stabilize_within_two_ball(self, continued_engine):
        system, engine = continued_engine
        engine.run(20_000)
        final = system.snapshot()
        reds = red_set(final)
        assert frozenset("abc") <= reds <= frozenset("abcd")
        assert green_set(final) >= frozenset("efg")
        topo = final.topology
        assert all(topo.distance("a", p) <= 2 for p in reds)

    def test_fairness_among_survivors(self, continued_engine):
        system, engine = continued_engine
        engine.run(40_000)
        meals = [engine.eats_of(p) for p in "efg"]
        assert min(meals) > 0
        assert max(meals) < 5 * min(meals)


class TestFromPanelOne:
    def test_engine_reproduces_the_figure_outcome(self):
        """Without scripting the transitions, a fair run from panel 1 must
        reach the same steady state the figure narrates."""
        system = figure2_system()
        engine = Engine(system, WeaklyFairDaemon(), hunger=AlwaysHungry(), seed=7)
        engine.run(40_000)
        final = system.snapshot()
        assert nc_holds(final)
        for p in "efg":
            assert engine.eats_of(p) > 0
        for p in "bc":
            assert engine.eats_of(p) == 0
        # d's fate is schedule-dependent (see module docstring); whichever
        # way it went, the affected set stays inside the crash's 2-ball.
        topo = final.topology
        assert all(topo.distance("a", p) <= 2 for p in red_set(final))
