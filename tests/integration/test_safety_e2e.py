"""End-to-end safety: Theorem 3 as a trajectory property.

Starting from corrupted states that *already* violate safety, the number of
simultaneously-eating neighbour pairs must never increase and must reach
zero (for live pairs).
"""

import random

import pytest

from repro.analysis import (
    StepMonitor,
    eating_pairs_count,
    live_eating_pairs_count,
    run_monitored,
)
from repro.core import NADiners
from repro.sim import AlwaysHungry, Engine, System, line, ring


def corrupt_with_eaters(topo, n_eaters, seed):
    """A system whose first n_eaters processes all eat simultaneously."""
    s = System(topo, NADiners())
    s.randomize(random.Random(seed))
    for p in list(topo.nodes)[:n_eaters]:
        s.write_local(p, "state", "E")
    return s


class TestPairCountMonotone:
    @pytest.mark.parametrize("seed", range(5))
    def test_line_never_increases(self, seed):
        s = corrupt_with_eaters(line(7), 4, seed)
        e = Engine(s, hunger=AlwaysHungry(), seed=seed)
        monitor = StepMonitor("pairs", eating_pairs_count)
        run_monitored(e, [monitor], 5000)
        assert monitor.is_non_increasing(), monitor.series[:50]

    @pytest.mark.parametrize("seed", range(5))
    def test_ring_never_increases(self, seed):
        s = corrupt_with_eaters(ring(8), 5, seed)
        e = Engine(s, hunger=AlwaysHungry(), seed=seed)
        monitor = StepMonitor("pairs", eating_pairs_count)
        run_monitored(e, [monitor], 5000)
        assert monitor.is_non_increasing()

    def test_reaches_zero(self, ):
        s = corrupt_with_eaters(line(7), 7, seed=9)
        e = Engine(s, hunger=AlwaysHungry(), seed=9)
        monitor = StepMonitor("pairs", live_eating_pairs_count)
        run_monitored(e, [monitor], 10_000)
        assert monitor.final() == 0

    def test_zero_is_absorbing(self):
        s = corrupt_with_eaters(line(6), 6, seed=11)
        e = Engine(s, hunger=AlwaysHungry(), seed=11)
        monitor = StepMonitor("pairs", live_eating_pairs_count)
        run_monitored(e, [monitor], 15_000)
        series = monitor.series
        first_zero = series.index(0)
        assert all(v == 0 for v in series[first_zero:])


class TestPairCountWithDeadEaters:
    def test_dead_pair_persists_but_is_discounted(self):
        s = System(line(4), NADiners())
        s.write_local(1, "state", "E")
        s.write_local(2, "state", "E")
        s.kill(1)
        s.kill(2)
        e = Engine(s, hunger=AlwaysHungry(), seed=12)
        e.run(3000)
        final = s.snapshot()
        assert eating_pairs_count(final) == 1  # frozen forever
        assert live_eating_pairs_count(final) == 0

    def test_live_member_of_bad_pair_backs_off(self):
        s = System(line(4), NADiners())
        s.write_local(1, "state", "E")
        s.write_local(2, "state", "E")
        s.kill(1)  # 2 is alive and must exit
        e = Engine(s, hunger=AlwaysHungry(), seed=13)
        e.run(5000)
        assert live_eating_pairs_count(s.snapshot()) == 0
