"""End-to-end stabilization: Theorem 1 under the simulator.

From arbitrary states — random corruption, planted cycles, corrupt depths —
the program must reach the invariant and stay there, on several topologies
and under several daemons.
"""

import random

import pytest

from repro.analysis import plant_priority_cycle, steps_to_predicate
from repro.core import NADiners, invariant_holds, invariant_with_threshold, nc_holds
from repro.sim import (
    AlwaysHungry,
    Engine,
    ProbabilisticHunger,
    RoundRobinDaemon,
    System,
    WeaklyFairDaemon,
    binary_tree,
    grid,
    line,
    random_connected,
    ring,
    star,
)


def converges(system, predicate, seed, max_steps=200_000, daemon=None):
    result = steps_to_predicate(
        system, predicate, max_steps=max_steps, seed=seed, daemon=daemon,
        check_every=4,
    )
    return result.converged


class TestFromRandomStates:
    @pytest.mark.parametrize("seed", range(5))
    def test_line(self, seed):
        s = System(line(6), NADiners())
        s.randomize(random.Random(seed))
        assert converges(s, invariant_holds, seed)

    @pytest.mark.parametrize("seed", range(5))
    def test_tree(self, seed):
        s = System(binary_tree(3), NADiners())
        s.randomize(random.Random(seed))
        assert converges(s, invariant_holds, seed)

    @pytest.mark.parametrize("seed", range(5))
    def test_star(self, seed):
        s = System(star(6), NADiners())
        s.randomize(random.Random(seed))
        assert converges(s, invariant_holds, seed)

    @pytest.mark.parametrize("seed", range(3))
    def test_ring_with_corrected_threshold(self, seed):
        topo = ring(6)
        t = topo.longest_simple_path()
        s = System(topo, NADiners(diameter_override=t))
        s.randomize(random.Random(seed))
        assert converges(s, invariant_with_threshold(t), seed)

    @pytest.mark.parametrize("seed", range(3))
    def test_random_graph_nc_restored(self, seed):
        # On arbitrary graphs at least the acyclicity conjunct must always
        # be restored (threshold-independent).
        topo = random_connected(10, 0.15, seed=seed)
        s = System(topo, NADiners())
        s.randomize(random.Random(seed))
        assert converges(s, nc_holds, seed)


class TestFromPlantedCycles:
    @pytest.mark.parametrize("n", [4, 6, 8])
    def test_ring_cycle_breaks(self, n):
        s = System(ring(n), NADiners())
        plant_priority_cycle(s, list(range(n)))
        assert converges(s, nc_holds, seed=n)

    def test_grid_cycle_breaks(self):
        topo = grid(3, 3)
        s = System(topo, NADiners())
        plant_priority_cycle(s, [0, 1, 4, 3])  # a unit square of the mesh
        assert converges(s, nc_holds, seed=1)

    def test_breaks_under_round_robin(self):
        s = System(ring(6), NADiners())
        plant_priority_cycle(s, list(range(6)))
        assert converges(s, nc_holds, seed=2, daemon=RoundRobinDaemon())


class TestClosureEmpirically:
    def test_invariant_never_lost_in_long_run(self):
        topo = line(7)
        s = System(topo, NADiners())
        e = Engine(s, WeaklyFairDaemon(), hunger=ProbabilisticHunger(0.6), seed=5)
        for step in range(10_000):
            if not e.step():
                break
            if step % 50 == 0:
                assert invariant_holds(s.snapshot()), f"invariant lost at {step}"

    def test_liveness_after_convergence(self):
        s = System(binary_tree(3), NADiners())
        s.randomize(random.Random(3))
        steps_to_predicate(s, invariant_holds, max_steps=200_000, seed=3)
        e = Engine(s, hunger=AlwaysHungry(), seed=4)
        e.run(30_000)
        assert all(e.eats_of(p) > 0 for p in s.pids)


class TestTransientFaultMidRun:
    def test_recovers_from_injected_transient(self):
        from repro.sim import TransientFault

        topo = line(6)
        s = System(topo, NADiners())
        e = Engine(s, hunger=AlwaysHungry(), seed=6)
        e.run(2000)
        e.inject(TransientFault())
        result = e.run(200_000, stop_when=invariant_holds, check_every=4)
        assert result.stopped or invariant_holds(s.snapshot())
        # and liveness resumes
        before = e.total_eats()
        e.run(10_000)
        assert e.total_eats() > before
