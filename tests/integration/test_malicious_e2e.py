"""End-to-end malicious crashes: the paper's headline fault model.

A malicious crash = finite arbitrary behaviour + halt.  The composed claim
(Proposition 1 + Theorems 1–3): after the arbitrary phase ends, the system
stabilizes, and every process far enough from the crash site eats again.
"""

import pytest

from repro.analysis import StepMonitor, live_eating_pairs_count, run_monitored
from repro.core import NADiners, invariant_holds, nc_holds, red_set
from repro.sim import (
    AlwaysHungry,
    Engine,
    FaultPlan,
    MaliciousCrash,
    ProcessStatus,
    System,
    line,
    ring,
)


class TestSingleMaliciousCrash:
    @pytest.mark.parametrize("malice", [1, 5, 20])
    def test_invariant_restored_after_malice(self, malice):
        topo = line(7)
        s = System(topo, NADiners())
        plan = FaultPlan([MaliciousCrash(3, at_step=500, malicious_steps=malice)])
        e = Engine(s, hunger=AlwaysHungry(), faults=plan, seed=malice)
        e.run(1000)  # malice begins and ends inside this window
        assert s.status(3) is ProcessStatus.DEAD
        result = e.run(300_000, stop_when=invariant_holds, check_every=8)
        assert result.stopped or invariant_holds(s.snapshot())

    def test_far_processes_eat_again(self):
        topo = line(9)
        s = System(topo, NADiners())
        plan = FaultPlan([MaliciousCrash(0, at_step=1000, malicious_steps=10)])
        e = Engine(s, hunger=AlwaysHungry(), faults=plan, seed=2)
        e.run(8000)
        baseline = {p: e.eats_of(p) for p in topo.nodes}
        e.run(40_000)
        for p in topo.nodes:
            if s.is_live(p) and topo.distance(0, p) > 2:
                assert e.eats_of(p) > baseline[p], f"{p} starved"

    def test_red_set_bounded_after_settling(self):
        topo = line(9)
        s = System(topo, NADiners())
        plan = FaultPlan([MaliciousCrash(0, at_step=500, malicious_steps=8)])
        e = Engine(s, hunger=AlwaysHungry(), faults=plan, seed=3)
        e.run(100_000)
        reds = red_set(s.snapshot())
        assert all(topo.distance(0, p) <= 2 for p in reds)


class TestMultipleMaliciousCrashes:
    def test_two_staggered_crashes(self):
        topo = ring(12)
        s = System(topo, NADiners())
        plan = FaultPlan(
            [
                MaliciousCrash(0, at_step=500, malicious_steps=5),
                MaliciousCrash(6, at_step=5000, malicious_steps=5),
            ]
        )
        e = Engine(s, hunger=AlwaysHungry(), faults=plan, seed=4)
        e.run(15_000)
        baseline = {p: e.eats_of(p) for p in topo.nodes}
        e.run(50_000)
        for p in topo.nodes:
            if s.is_live(p) and min(topo.distance(0, p), topo.distance(6, p)) > 2:
                assert e.eats_of(p) > baseline[p]

    def test_nc_restored_despite_both(self):
        topo = ring(10)
        s = System(topo, NADiners())
        plan = FaultPlan(
            [
                MaliciousCrash(0, at_step=200, malicious_steps=10),
                MaliciousCrash(5, at_step=400, malicious_steps=10),
            ]
        )
        e = Engine(s, hunger=AlwaysHungry(), faults=plan, seed=5)
        e.run(2000)
        result = e.run(300_000, stop_when=nc_holds, check_every=8)
        assert result.stopped or nc_holds(s.snapshot())


class TestSafetyDuringRecovery:
    def test_live_eating_pairs_vanish_and_stay_gone(self):
        """Theorem 3's operational content: after the malice ends, live
        simultaneous eating disappears and never comes back."""
        topo = line(8)
        s = System(topo, NADiners())
        plan = FaultPlan([MaliciousCrash(4, at_step=100, malicious_steps=15)])
        e = Engine(s, hunger=AlwaysHungry(), faults=plan, seed=6)
        e.run(400)  # malice over
        monitor = StepMonitor("live-pairs", live_eating_pairs_count)
        run_monitored(e, [monitor], 30_000, sample_every=10)
        series = monitor.series
        # find the last index with a violation; all zero afterwards
        last_bad = max((i for i, v in enumerate(series) if v > 0), default=-1)
        assert last_bad < len(series) - 1, "violations persisted to the end"
        # and violations can only have come from the corrupted prefix
        if last_bad >= 0:
            assert series[last_bad + 1 :].count(0) == len(series) - last_bad - 1

    def test_masking_of_benign_crashes(self):
        """The paper: benign crashes (no arbitrary phase) are *masked* —
        safety never violated at all."""
        from repro.sim import BenignCrash

        topo = line(8)
        s = System(topo, NADiners())
        plan = FaultPlan([BenignCrash(4, at_step=300)])
        e = Engine(s, hunger=AlwaysHungry(), faults=plan, seed=7)
        for _ in range(20_000):
            if not e.step():
                break
            assert live_eating_pairs_count(s.snapshot()) == 0
