"""End-to-end failure locality: Theorem 2 and the baseline contrast."""

import pytest

from repro.analysis import measure_failure_locality
from repro.baselines import ChoySinghDiners, ForkOrderingDiners, HygienicDiners
from repro.core import NADiners
from repro.sim import binary_tree, line, ring


PARAMS = dict(warmup_steps=40_000, settle_steps=10_000, window=40_000)


class TestNADinersLocality:
    @pytest.mark.parametrize("n", [8, 12])
    def test_line(self, n):
        topo = line(n)
        report = measure_failure_locality(NADiners(), topo, [0], seed=n, **PARAMS)
        assert report.all_beyond_radius_eat(topo, radius=2)
        assert report.starvation_radius is None or report.starvation_radius <= 2

    def test_ring(self):
        topo = ring(10)
        report = measure_failure_locality(NADiners(), topo, [0], seed=1, **PARAMS)
        assert report.all_beyond_radius_eat(topo, radius=2)
        assert report.starvation_radius is None or report.starvation_radius <= 2

    def test_tree(self):
        topo = binary_tree(3)
        report = measure_failure_locality(NADiners(), topo, [0], seed=2, **PARAMS)
        assert report.all_beyond_radius_eat(topo, radius=2)

    def test_interior_crash_on_line(self):
        topo = line(11)
        report = measure_failure_locality(NADiners(), topo, [5], seed=3, **PARAMS)
        assert report.all_beyond_radius_eat(topo, radius=2)

    def test_two_crashes(self):
        topo = line(14)
        report = measure_failure_locality(
            NADiners(), topo, [0, 13], seed=4, **PARAMS
        )
        assert report.all_beyond_radius_eat(topo, radius=2)


class TestMaliciousLocality:
    @pytest.mark.parametrize("malice", [3, 10])
    def test_malicious_crash_still_local(self, malice):
        topo = line(10)
        report = measure_failure_locality(
            NADiners(), topo, [0], malicious_steps=malice, seed=malice, **PARAMS
        )
        assert report.all_beyond_radius_eat(topo, radius=2)
        assert report.starvation_radius is None or report.starvation_radius <= 2


class TestBaselineContrast:
    def test_choy_singh_also_local(self):
        # Choy–Singh has locality 2 for benign crashes (its design point).
        topo = line(10)
        report = measure_failure_locality(
            ChoySinghDiners(), topo, [0], seed=5, **PARAMS
        )
        assert report.all_beyond_radius_eat(topo, radius=2)

    def test_hygienic_not_guaranteed_local(self):
        """Hygienic's starvation can reach past distance 2 on some seed —
        the chains the dynamic threshold exists to cut."""
        topo = line(10)
        worst = 0
        for seed in range(6):
            report = measure_failure_locality(
                HygienicDiners(), topo, [0], seed=seed, **PARAMS
            )
            if report.starvation_radius is not None:
                worst = max(worst, report.starvation_radius)
        assert worst > 2

    def test_fork_ordering_blocks_neighbors(self):
        topo = line(8)
        report = measure_failure_locality(
            ForkOrderingDiners(), topo, [0], seed=6, **PARAMS
        )
        # the crashed eater holds its forks forever: neighbour 1 starves.
        assert 1 in report.starving


class TestRandomGraphs:
    @pytest.mark.parametrize("seed", [3, 11])
    def test_locality_on_random_graphs(self, seed):
        from repro.sim import random_connected

        topo = random_connected(12, 0.12, seed=seed)
        report = measure_failure_locality(
            NADiners(), topo, [topo.nodes[0]], seed=seed, **PARAMS
        )
        assert report.all_beyond_radius_eat(topo, radius=2)
        assert report.starvation_radius is None or report.starvation_radius <= 2


class TestScale:
    def test_hundred_process_ring(self):
        """Scalability smoke: locality still holds at n=100 and the
        engine sustains a long run comfortably."""
        from repro.sim import AlwaysHungry, BenignCrash, Engine, System, ring

        topo = ring(100)
        system = System(topo, NADiners())
        engine = Engine(system, hunger=AlwaysHungry(), seed=5)
        engine.run(20_000)
        engine.inject(BenignCrash(0))
        baseline = dict(engine.action_counts)
        engine.run(40_000)
        starving = [
            p
            for p in topo.nodes
            if system.is_live(p)
            and engine.action_counts.get((p, "enter"), 0)
            == baseline.get((p, "enter"), 0)
        ]
        assert all(topo.distance(0, p) <= 2 for p in starving)


class TestAdversarialSchedules:
    def test_adversary_cannot_starve_beyond_radius_two(self):
        """Theorem 2 under a hostile (but weakly fair) daemon: with a dead
        eater at the end of the line, an adversary that always prefers not
        to schedule process 3 (distance 3) still cannot starve it."""
        from repro.core import NADiners
        from repro.sim import (
            AdversarialDaemon,
            AlwaysHungry,
            Engine,
            System,
            line,
            starve_target,
        )

        topo = line(8)
        system = System(topo, NADiners())
        system.write_local(0, "state", "E")
        system.kill(0)
        engine = Engine(
            system,
            AdversarialDaemon(starve_target(3), patience=48),
            hunger=AlwaysHungry(),
            seed=13,
        )
        engine.run(60_000)
        assert engine.eats_of(3) > 0
        # and the contained processes stay contained
        assert engine.eats_of(1) == 0
