"""E3 — stabilization time: Theorem 1, quantified.

Two workloads:

* **random corruption** — the whole state replaced with arbitrary values;
  steps to the invariant ``I``, across system sizes (line topologies, where
  the paper's literal diameter threshold applies);
* **planted cycle** — the adversarial transient fault: a directed priority
  cycle with zeroed depths on rings of growing size; steps until the cycle
  is broken (NC restored), with nobody eating so only depth propagation can
  break it.

Paper shape: every trial converges; cycle-break time grows with the ring
size (depth must climb hop by hop past the threshold).
"""

import statistics

from conftest import print_table

from repro.analysis import convergence_study, plant_priority_cycle, steps_to_predicate
from repro.core import NADiners, nc_holds
from repro.sim import NeverHungry, System, line, ring


def random_corruption_sweep():
    results = {}
    for n in (5, 8, 11, 14):
        summary = convergence_study(
            NADiners, line(n), trials=10, max_steps=500_000, seed=n, check_every=8
        )
        results[n] = summary
    return results


def test_e3_random_corruption(benchmark):
    results = benchmark.pedantic(random_corruption_sweep, rounds=1, iterations=1)
    rows = [
        (
            n,
            f"{summary.converged}/{summary.trials}",
            f"{summary.mean_steps:.0f}",
            f"{summary.median_steps:.0f}",
            summary.max_steps,
        )
        for n, summary in results.items()
    ]
    print_table(
        "E3a: steps to invariant I from random corruption (line(n))",
        ("n", "converged", "mean", "median", "max"),
        rows,
    )
    benchmark.extra_info["mean_steps_by_n"] = {
        n: summary.mean_steps for n, summary in results.items()
    }
    # --- shape: everything converges ---
    assert all(summary.all_converged for summary in results.values())


def cycle_break_sweep():
    results = {}
    for n in (4, 6, 8, 10, 12):
        times = []
        for seed in range(8):
            system = System(ring(n), NADiners())
            plant_priority_cycle(system, list(range(n)))
            result = steps_to_predicate(
                system, nc_holds, max_steps=500_000, seed=seed, hunger=NeverHungry()
            )
            assert result.converged
            times.append(result.steps)
        results[n] = times
    return results


def rounds_sweep():
    from repro.analysis import rounds_to_predicate

    results = {}
    for n in (4, 8, 12, 16):
        rounds = []
        for seed in range(8):
            system = System(ring(n), NADiners())
            plant_priority_cycle(system, list(range(n)))
            r = rounds_to_predicate(
                system, nc_holds, max_steps=500_000, seed=seed, hunger=NeverHungry()
            )
            assert r is not None
            rounds.append(r)
        results[n] = rounds
    return results


def test_e3_cycle_break_rounds(benchmark):
    """E3c: the same cycle-break experiment measured in asynchronous
    rounds, the stabilization literature's time unit.  Depth information
    travels many hops per round (every process's fixdepth fires each
    round), so round complexity grows far slower than step complexity."""
    results = benchmark.pedantic(rounds_sweep, rounds=1, iterations=1)
    rows = [
        (n, f"{statistics.fmean(r):.1f}", max(r)) for n, r in results.items()
    ]
    print_table(
        "E3c: rounds to break a planted priority cycle (ring(n))",
        ("n", "mean rounds", "max rounds"),
        rows,
    )
    benchmark.extra_info["rows"] = rows
    # --- shape: bounded growth, far below the step counts of E3b ---
    assert all(max(r) <= 4 + n // 2 for n, r in results.items())


def test_e3_cycle_break_scaling(benchmark):
    results = benchmark.pedantic(cycle_break_sweep, rounds=1, iterations=1)
    means = {n: statistics.fmean(times) for n, times in results.items()}
    rows = [
        (n, ring(n).diameter, f"{means[n]:.0f}", max(results[n]))
        for n in results
    ]
    print_table(
        "E3b: steps to break a planted priority cycle (ring(n), nobody eats)",
        ("n", "diameter", "mean steps", "max steps"),
        rows,
    )
    benchmark.extra_info["mean_steps_by_n"] = means
    # --- shape: detection latency grows with the ring size ---
    sizes = sorted(means)
    assert means[sizes[-1]] > means[sizes[0]]
