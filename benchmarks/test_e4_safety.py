"""E4 — safety: Theorem 3 as a measured trajectory.

Start from corrupted states in which many neighbours eat simultaneously and
record the count of simultaneously-eating neighbour pairs after every step.

Paper shape: the series never increases, reaches zero for live pairs, and
zero is absorbing.
"""

import random

from conftest import print_table

from repro.analysis import (
    StepMonitor,
    eating_pairs_count,
    live_eating_pairs_count,
    run_monitored,
)
from repro.core import NADiners
from repro.sim import AlwaysHungry, Engine, System, ring


def violation_decay(n=10, seeds=range(6)):
    """Per seed: (initial pairs, steps until zero, monotone?)."""
    results = []
    for seed in seeds:
        system = System(ring(n), NADiners())
        system.randomize(random.Random(seed))
        for p in list(system.pids)[: n // 2 + 2]:
            system.write_local(p, "state", "E")
        engine = Engine(system, hunger=AlwaysHungry(), seed=seed)
        total = StepMonitor("pairs", eating_pairs_count)
        live = StepMonitor("live-pairs", live_eating_pairs_count)
        run_monitored(engine, [total, live], 8000)
        series = live.series
        first_zero = series.index(0) if 0 in series else None
        results.append(
            {
                "seed": seed,
                "initial": series[0],
                "steps_to_zero": first_zero,
                "monotone": total.is_non_increasing(),
                "absorbing": first_zero is not None
                and all(v == 0 for v in series[first_zero:]),
            }
        )
    return results


def test_e4_safety_violation_decay(benchmark):
    results = benchmark.pedantic(violation_decay, rounds=1, iterations=1)
    rows = [
        (
            r["seed"],
            r["initial"],
            r["steps_to_zero"],
            "yes" if r["monotone"] else "NO",
            "yes" if r["absorbing"] else "NO",
        )
        for r in results
    ]
    print_table(
        "E4: simultaneously-eating neighbour pairs from corrupted starts (ring(10))",
        ("seed", "initial pairs", "steps to 0", "never increases", "0 absorbing"),
        rows,
    )
    benchmark.extra_info["rows"] = rows

    # --- the paper's shape (Theorem 3) ---
    assert all(r["monotone"] for r in results)
    assert all(r["steps_to_zero"] is not None for r in results)
    assert all(r["absorbing"] for r in results)
