#!/bin/sh
# Regenerate the committed performance baseline (benchmarks/BENCH_baseline.json).
#
# Run from anywhere.  Uses full rounds (not --quick) so the recorded medians
# are stable; per-round work is identical either way, so CI's --quick runs
# compare cleanly against this file.  Record a new baseline only from a
# quiet machine, and mention the regeneration in the PR description: every
# later `repro bench --compare` judges against this file.
set -e
cd "$(dirname "$0")/.."
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" \
    python -m repro bench --out benchmarks/BENCH_baseline.json "$@"
