"""Shared helpers for the experiment benchmarks.

Each ``benchmarks/test_eN_*.py`` regenerates one experiment from DESIGN.md
§4.  Conventions:

* heavy experiments run once per benchmark (``benchmark.pedantic`` with one
  round) — the timing is the experiment's wall-clock cost, and the printed
  table is the experiment's result;
* every benchmark prints its result table (visible with ``-s``) *and*
  attaches the same rows to ``benchmark.extra_info`` so the JSON output
  carries them;
* every benchmark asserts the paper's qualitative *shape*, so a regression
  in behaviour — not just speed — fails the suite.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def print_table(title: str, header: Sequence[str], rows: Iterable[Sequence]) -> str:
    """Render and print a fixed-width results table; returns the text."""
    rows = [tuple(str(c) for c in row) for row in rows]
    widths = [len(h) for h in header]
    for row in rows:
        widths = [max(w, len(c)) for w, c in zip(widths, row)]
    line = "  ".join(h.ljust(w) for h, w in zip(header, widths))
    out = [f"\n=== {title} ===", line, "-" * len(line)]
    for row in rows:
        out.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    text = "\n".join(out)
    print(text)
    return text
