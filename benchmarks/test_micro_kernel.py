"""Micro-benchmarks of the library itself (not a paper experiment).

Thin pytest-benchmark veneer over the **shared** benchmark registry
(:func:`repro.perf.registry`): the same kernels ``repro bench`` times —
engine step throughput, snapshot cost, predicate evaluation, model-checker
successor generation, message-passing ticks, campaign-shard cost — so the
pytest tables and the ``BENCH_*.json`` trajectory can never drift apart.

Run ``repro bench`` for the JSON artefact + regression gate; run this file
for interactive pytest-benchmark tables.
"""

import pytest

from repro.perf import registry

BENCHES = registry()


@pytest.mark.parametrize("name", sorted(BENCHES))
def test_micro(benchmark, name):
    bench = BENCHES[name]
    kernel = bench.setup()
    benchmark.pedantic(
        kernel,
        rounds=bench.quick_rounds,
        warmup_rounds=bench.quick_warmup,
        iterations=1,
    )
    benchmark.extra_info["ops_per_round"] = bench.ops
