"""Micro-benchmarks of the library itself (not a paper experiment).

Engine step throughput, snapshot cost, predicate evaluation, and model
checker successor generation: the numbers downstream users care about when
sizing their own experiments, and the regressions the experiment suite
would otherwise only show as timeouts.
"""

import random

from repro.core import NADiners, invariant_holds, red_set
from repro.sim import AlwaysHungry, Engine, System, WeaklyFairDaemon, ring
from repro.verification import TransitionSystem


def test_micro_engine_steps(benchmark):
    """Steps/second of the full engine loop (ring(16), everyone hungry)."""
    system = System(ring(16), NADiners())
    engine = Engine(system, WeaklyFairDaemon(), hunger=AlwaysHungry(), seed=1)

    def thousand_steps():
        engine.run(1000)

    benchmark.pedantic(thousand_steps, rounds=20, iterations=1)
    benchmark.extra_info["steps_per_round"] = 1000


def test_micro_snapshot(benchmark):
    """Configuration snapshot cost (ring(16))."""
    system = System(ring(16), NADiners())
    benchmark(system.snapshot)


def test_micro_invariant_eval(benchmark):
    """Full invariant I evaluation on a converged ring(16) state."""
    system = System(ring(16), NADiners())
    engine = Engine(system, hunger=AlwaysHungry(), seed=2)
    engine.run(3000)
    config = system.snapshot()
    benchmark(invariant_holds, config)


def test_micro_red_fixpoint(benchmark):
    """RD fixpoint on a corrupted ring(16) with two dead processes."""
    system = System(ring(16), NADiners())
    system.randomize(random.Random(3))
    system.kill(0)
    system.kill(8)
    config = system.snapshot()
    benchmark(red_set, config)


def test_micro_checker_successors(benchmark):
    """Model-checker successor generation from a busy state (ring(6))."""
    topo = ring(6)
    algo = NADiners(depth_cap=topo.diameter + 1)
    system = System(topo, algo)
    for p in system.pids:
        system.write_local(p, "needs", True)
    config = system.snapshot()
    ts = TransitionSystem(algo, topo)
    benchmark(ts.successors, config)


def test_micro_havoc(benchmark):
    """One malicious havoc step (ring(16))."""
    system = System(ring(16), NADiners())
    rng = random.Random(4)
    benchmark(system.havoc_process, 5, rng)
