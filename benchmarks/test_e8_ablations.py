"""E8 — ablations: each mechanism buys exactly its property.

* **no fixdepth** (= Choy–Singh baseline): the model checker exhibits a
  weakly fair livelock trapped on a priority cycle — the stabilization
  mechanism is necessary;
* **no dynamic threshold**: the starvation radius after a crash grows with
  the topology — the locality mechanism is necessary;
* **wrong D**: underestimating costs spurious exits (churn) but keeps both
  properties; overestimating slows cycle detection proportionally.
"""

from conftest import print_table

from repro.analysis import (
    frozen_chain_radius,
    plant_priority_cycle,
    steps_to_predicate,
)
from repro.core import (
    NADiners,
    NoDynamicThresholdDiners,
    NoFixdepthDiners,
    WrongDiameterDiners,
    e_holds,
    nc_holds,
)
from repro.sim import AlwaysHungry, Engine, NeverHungry, System, line, ring


def test_e8a_no_fixdepth_livelock(benchmark):
    from repro.verification import (
        TransitionSystem,
        check_convergence,
        confirm_fair_livelock,
        enumerate_configurations,
    )

    def run():
        topo = ring(3)
        algo = NoFixdepthDiners(depth_cap=1)
        configs = list(
            enumerate_configurations(
                algo, topo, fixed_locals={"needs": True, "depth": 0}
            )
        )
        ts = TransitionSystem(algo, topo)
        report = check_convergence(ts, lambda c: nc_holds(c) and e_holds(c), configs)
        livelock = confirm_fair_livelock(ts, report.stuck_scc)
        return report, livelock

    report, livelock = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        "E8a: no-fixdepth on ring(3) — exhaustive check",
        ("metric", "value"),
        [
            ("states", report.total_states),
            ("converges", report.converges),
            ("stuck SCC size", len(report.stuck_scc)),
            ("confirmed weakly fair livelock", livelock),
        ],
    )
    assert not report.converges
    assert livelock  # the Figure 2 alternation, machine-confirmed


"""E8b uses the library's worst-case construction (see
repro.analysis.locality.frozen_chain_scenario)."""


def test_e8b_no_threshold_locality_grows(benchmark):
    def run():
        rows = []
        for n in (8, 12, 16):
            rows.append(
                (
                    n,
                    frozen_chain_radius(NADiners(), line(n), seed=n),
                    frozen_chain_radius(NoDynamicThresholdDiners(), line(n), seed=n),
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        "E8b: starvation radius, frozen hungry chain behind a crashed eater",
        ("line n", "full program", "no-threshold"),
        rows,
    )
    benchmark.extra_info["rows"] = rows
    # --- shape: with `leave` the radius stays <= 2 at every size; without
    # it the whole chain starves, so the radius equals the line length ---
    assert all(full <= 2 for _, full, _ in rows)
    for n, _, ablated in rows:
        assert ablated == n - 1


def test_e8c_wrong_diameter_costs(benchmark):
    def run():
        results = {}
        # spurious-exit churn with underestimated D
        for label, algo in (
            ("exact D", NADiners()),
            ("D=1 (under)", WrongDiameterDiners(1)),
        ):
            system = System(line(8), algo)
            engine = Engine(system, hunger=AlwaysHungry(), seed=5)
            engine.run(30_000)
            eats = engine.total_eats()
            exits = sum(
                v for (p, a), v in engine.action_counts.items() if a == "exit"
            )
            results[label] = {"meals": eats, "exits": exits, "spurious": exits - eats}
        # cycle-detection latency with overestimated D
        for label, algo in (
            ("exact D", NADiners()),
            ("D*4 (over)", WrongDiameterDiners(ring(8).diameter * 4)),
        ):
            times = []
            for seed in range(6):
                system = System(ring(8), algo)
                plant_priority_cycle(system, list(range(8)))
                result = steps_to_predicate(
                    system, nc_holds, max_steps=500_000, seed=seed,
                    hunger=NeverHungry(),
                )
                assert result.converged
                times.append(result.steps)
            results.setdefault(label, {})["cycle_break"] = sum(times) / len(times)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        (
            label,
            data.get("meals", "-"),
            data.get("spurious", "-"),
            f"{data['cycle_break']:.0f}" if "cycle_break" in data else "-",
        )
        for label, data in results.items()
    ]
    print_table(
        "E8c: the cost of a wrong D",
        ("variant", "meals (30k steps)", "spurious exits", "mean cycle-break steps"),
        rows,
    )
    benchmark.extra_info["rows"] = rows
    # --- shape ---
    assert results["D=1 (under)"]["spurious"] > results["exact D"]["spurious"]
    assert results["D*4 (over)"]["cycle_break"] > results["exact D"]["cycle_break"]
    # and liveness survives the underestimate
    assert results["D=1 (under)"]["meals"] > 0
