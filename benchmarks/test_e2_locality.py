"""E2 — failure locality sweep: Theorem 2 vs the baselines.

One process crashes while eating on lines of growing length; we measure the
starvation radius (max distance from the crash to a starving process) for
the paper's program and the three baselines.

Paper shape:

* na-diners and choy-singh: radius <= 2 at every size (locality 2, optimal);
* hygienic: radius grows with the line (its blocked chain covers it);
* fork-ordering: the crashed fork-holder starves its neighbourhood and
  degrades throughput along the whole chain.
"""

import pytest
from conftest import print_table

from repro.analysis import measure_failure_locality
from repro.baselines import ChoySinghDiners, ForkOrderingDiners, HygienicDiners
from repro.core import NADiners
from repro.sim import line

SIZES = (8, 12, 16)
PARAMS = dict(warmup_steps=40_000, settle_steps=15_000, window=50_000)


def sweep(algorithm_factory):
    results = {}
    for n in SIZES:
        report = measure_failure_locality(
            algorithm_factory(), line(n), [0], seed=n, **PARAMS
        )
        results[n] = report
    return results


@pytest.mark.parametrize(
    "factory,shape",
    [
        (NADiners, "local"),
        (ChoySinghDiners, "local"),
        (HygienicDiners, "chain"),
        (ForkOrderingDiners, "gradient"),
    ],
    ids=["na-diners", "choy-singh", "hygienic", "fork-ordering"],
)
def test_e2_locality(benchmark, factory, shape):
    results = benchmark.pedantic(sweep, args=(factory,), rounds=1, iterations=1)

    rows = []
    for n, report in results.items():
        radius = "-" if report.starvation_radius is None else report.starvation_radius
        rows.append((n, radius, len(report.starving), sorted(report.starving)))
    print_table(
        f"E2: starvation radius, {factory().name}, crash at end of line",
        ("n", "radius", "#starving", "starving"),
        rows,
    )
    benchmark.extra_info["radius_by_n"] = {
        n: report.starvation_radius for n, report in results.items()
    }

    # --- the paper's shape ---
    if shape == "local":
        # locality 2 at every size (Theorem 2 / Choy–Singh optimality).
        for n, report in results.items():
            assert report.starvation_radius is None or report.starvation_radius <= 2
            assert report.all_beyond_radius_eat(line(n), radius=2)
    elif shape == "chain":
        # unbounded locality: the blocked chain reaches past distance 2.
        worst = max((r.starvation_radius or 0) for r in results.values())
        assert worst > 2
    else:
        # fork-ordering: the dead fork-holder starves its neighbourhood and
        # throughput climbs with distance from the crash (a waiting chain
        # expressed as a gradient rather than full starvation).
        for n, report in results.items():
            assert 1 in report.starving
            grouped = report.eats_by_distance(line(n))
            near = min(d for d in grouped if d >= 2)
            far = max(grouped)
            near_rate = grouped[near][1] / grouped[near][0]
            far_rate = grouped[far][1] / grouped[far][0]
            assert far_rate > 2 * near_rate
