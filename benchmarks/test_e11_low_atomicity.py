"""E11 (extension) — the atomicity gap §4 defers to [15].

The paper's program assumes composite atomicity (a guard reads several
neighbours atomically).  Running the *same* program over one-remote-read-
per-step caches (:mod:`repro.lowatom`) measures what that assumption is
worth:

* **safety collapses**: stale caches let neighbours eat simultaneously in
  a measurable fraction of states — worst under register-level atomicity;
* **liveness survives** but throughput drops (refresh steps compete with
  protocol steps);
* the repaired construction — token-based synchronization as in the
  message-passing diners of :mod:`repro.mp` (E7c) — restores zero
  violations, which is exactly the role of [15]'s stabilizing handshake.
"""

from conftest import print_table

from repro.analysis import live_eating_pairs_count
from repro.core import NADiners
from repro.lowatom import LowAtomicityAdapter
from repro.sim import AlwaysHungry, Engine, System, ring


def run_mode(algorithm, seed=1, steps=30_000):
    system = System(ring(6), algorithm)
    engine = Engine(system, hunger=AlwaysHungry(), seed=seed)
    violating = 0
    for _ in range(steps):
        if not engine.step():
            break
        if live_eating_pairs_count(system.snapshot()):
            violating += 1
    refreshes = sum(
        v for (p, a), v in engine.action_counts.items() if a == "refresh"
    )
    return {
        "meals": engine.total_eats(),
        "violating_states": violating,
        "violation_rate": violating / steps,
        "refreshes": refreshes,
    }


def experiment():
    return {
        "composite (paper model)": run_mode(NADiners()),
        "low-atomicity, process read": run_mode(LowAtomicityAdapter(NADiners())),
        "low-atomicity, register read": run_mode(
            LowAtomicityAdapter(NADiners(), refresh_whole_neighbor=False)
        ),
    }


def test_e11_atomicity_gap(benchmark):
    results = benchmark.pedantic(experiment, rounds=1, iterations=1)
    rows = [
        (
            label,
            data["meals"],
            data["violating_states"],
            f"{100 * data['violation_rate']:.1f}%",
            data["refreshes"],
        )
        for label, data in results.items()
    ]
    print_table(
        "E11: the same program under weaker atomicity (ring(6), 30k steps)",
        ("execution model", "meals", "violating states", "rate", "refresh steps"),
        rows,
    )
    benchmark.extra_info["rows"] = rows

    composite = results["composite (paper model)"]
    process = results["low-atomicity, process read"]
    register = results["low-atomicity, register read"]
    # --- shape ---
    assert composite["violating_states"] == 0
    assert process["violating_states"] > 0  # the gap is real
    assert register["violating_states"] > 0
    # liveness survives in every mode
    assert process["meals"] > 0 and register["meals"] > 0
    # and the paper's assumption is not free: caching costs throughput
    assert process["meals"] < composite["meals"]
