"""E10 (extension) — how non-masking is the program?

The paper's conclusion distinguishes its guarantee (*eventual* correctness
outside the failure locality) from *masking* tolerance (correctness outside
the locality **during** the crash), which it leaves to future work.  This
experiment measures the gap on the paper's program:

* during the arbitrary phase the malicious process can pose as an eater
  next to a genuine eater — safety violations **involving the faulty
  process** are observed, all within/just after the malice window;
* violations between two **live non-faulty** processes are *never*
  observed: the enter guard is local, so arbitrary behaviour cannot
  manufacture a remote violation.  Outside the 1-ball of the crash the
  program is effectively masking already — quantifying why the paper calls
  full masking "more attractive" but attainable.
"""

from conftest import print_table

from repro.analysis import masking_probe
from repro.core import NADiners
from repro.sim import ring


def sweep():
    rows = []
    for malice in (20, 80, 200):
        for seed in range(4):
            report = masking_probe(
                NADiners(),
                ring(8),
                1,
                malicious_steps=malice,
                warmup=2_000,
                observe=20_000,
                seed=seed,
            )
            rows.append(report)
    return rows


def test_e10_masking_gap(benchmark):
    reports = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        (
            r.malicious_steps,
            i % 4,
            r.faulty_involved,
            r.clean_pair,
            r.last_violation_step,
            "yes" if r.violations_transient else "NO",
        )
        for i, r in enumerate(reports)
    ]
    print_table(
        "E10: safety-violation census during malicious crash (ring(8), victim 1)",
        ("malice", "seed", "faulty-involved", "clean-pair", "last violation", "transient"),
        rows,
    )
    benchmark.extra_info["rows"] = rows

    # --- shape ---
    # 1. no violation between two healthy processes, ever:
    assert all(r.masks_clean_pairs for r in reports)
    # 2. every observed violation is transient (clears before the run ends):
    assert all(r.violations_transient for r in reports)
    # 3. the non-masking gap is real: with a long arbitrary phase the faulty
    #    process does violate safety with a neighbour at least sometimes.
    long_runs = [r for r in reports if r.malicious_steps == 200]
    assert any(r.faulty_involved > 0 for r in long_runs)
    # 4. all violations fall within/just after the malice window:
    for r in reports:
        if r.last_violation_step >= 0:
            assert r.last_violation_step <= r.malicious_steps + 50
