"""E1 — Figure 2: the paper's example operation, regenerated.

Replays the exact seven-process fragment: the crashed eater's containment
at distance 2 (dynamic threshold at ``d``) and the priority-cycle break via
depth overflow at ``g``, ending with ``e`` eating.

Paper shape: red set ⊆ ball(a, 2); e/f/g green; cycle broken by ``g``'s
``exit``; ``e`` eats after the third panel.
"""

from conftest import print_table

from repro.analysis import find_live_cycles
from repro.core import FIGURE2_SEQUENCE, green_set, nc_holds, red_set, run_figure2


def test_e1_figure2_replay(benchmark):
    replay = benchmark.pedantic(run_figure2, rounds=5, iterations=1)

    rows = []
    labels = ("panel 1", "panel 2", "panel 3", "panel 4")
    for label, config in zip(labels, replay.configurations):
        states = " ".join(
            f"{p}:{config.local(p, 'state')}" for p in config.topology.nodes
        )
        cycles = find_live_cycles(config)
        rows.append(
            (
                label,
                states,
                "yes" if cycles else "no",
                ",".join(sorted(map(str, red_set(config)))),
            )
        )
    print_table(
        "E1: Figure 2 replay (transitions: "
        + ", ".join(f"{p}.{a}" for p, a in FIGURE2_SEQUENCE)
        + ")",
        ("panel", "states", "live cycle", "red"),
        rows,
    )
    benchmark.extra_info["panels"] = rows

    final = replay.final
    topo = final.topology
    # --- the paper's shape ---
    assert final.local("e", "state") == "E"  # e eats after panel 3
    assert nc_holds(final)  # cycle broken
    assert not find_live_cycles(final)
    assert all(topo.distance("a", p) <= 2 for p in red_set(final))  # locality
    assert green_set(final) >= {"e", "f", "g"}
