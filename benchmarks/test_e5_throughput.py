"""E5 — fault-free throughput and fairness.

All processes continuously hungry; 40 000 steps on several topologies; we
report system throughput (meals per 1000 steps), Jain's fairness index, and
the max/min meal spread, for the paper's program and the baselines.

Paper shape: liveness means every process eats (spread finite, Jain high).
The paper makes no throughput claims — the numbers quantify the overhead
its extra actions (leave/fixdepth bookkeeping) cost relative to hygienic,
which has fewer guards to satisfy.
"""

import pytest
from conftest import print_table

from repro.analysis import throughput_report
from repro.baselines import ChoySinghDiners, ForkOrderingDiners, HygienicDiners
from repro.core import NADiners
from repro.sim import AlwaysHungry, Engine, System, grid, line, ring

TOPOLOGIES = {
    "ring(12)": lambda: ring(12),
    "line(12)": lambda: line(12),
    "grid(4x3)": lambda: grid(4, 3),
}

ALGORITHMS = {
    "na-diners": NADiners,
    "choy-singh": ChoySinghDiners,
    "hygienic": HygienicDiners,
    "fork-ordering": ForkOrderingDiners,
}


def measure(topo_name):
    rows = {}
    for algo_name, factory in ALGORITHMS.items():
        system = System(TOPOLOGIES[topo_name](), factory())
        engine = Engine(system, hunger=AlwaysHungry(), seed=99)
        rows[algo_name] = throughput_report(engine, 40_000)
    return rows


@pytest.mark.parametrize("topo_name", list(TOPOLOGIES), ids=list(TOPOLOGIES))
def test_e5_throughput(benchmark, topo_name):
    reports = benchmark.pedantic(measure, args=(topo_name,), rounds=1, iterations=1)
    rows = [
        (
            name,
            f"{r.per_1000_steps:.1f}",
            f"{r.jain_index:.3f}",
            r.min_eats,
            r.max_eats,
        )
        for name, r in reports.items()
    ]
    print_table(
        f"E5: throughput & fairness, {topo_name}, everyone hungry, 40k steps",
        ("algorithm", "meals/1k steps", "jain", "min meals", "max meals"),
        rows,
    )
    benchmark.extra_info["throughput"] = {
        name: r.per_1000_steps for name, r in reports.items()
    }

    # --- shape: liveness for every algorithm without faults ---
    for name, r in reports.items():
        assert r.min_eats > 0, f"{name} starved someone without faults"
    # The priority-rotating algorithms are fair (exit demotes the eater, so
    # turns rotate); static fork ordering is known to be positionally
    # biased — higher-ordered positions eat more.  Assert both shapes.
    for name in ("na-diners", "choy-singh", "hygienic"):
        assert reports[name].jain_index > 0.8, (
            f"{name} grossly unfair: {reports[name].jain_index}"
        )
    assert reports["fork-ordering"].jain_index < reports["na-diners"].jain_index
