"""E7 — the §4 message-passing transformation.

Three measurements:

* **handshake stabilization** — after a transient fault corrupting both
  endpoints and the channel contents, how many engine steps until both
  caches are genuine again, as a function of the counter modulus K;
* **K-state token circulation** — steps to a single privilege from random
  counters, as a function of ring size (the substrate the handshake's
  counters are modelled on);
* **MP diners** — throughput and safety of the Chandy–Misra fork-collection
  diners over real channels.

Paper shape: the handshake layer stabilizes for every K above the junk
bound (K >= 2C + 3); the MP diners are safe and live.
"""

import random

from conftest import print_table

from repro.mp import (
    HandshakeNode,
    KStateToken,
    MpEngine,
    build_diners,
    neighbours_both_eating,
    single_privilege,
)
from repro.sim import Engine, System, line, ring


def handshake_recovery(k, seed):
    topo = line(2)
    procs = {
        0: HandshakeNode(0, 1, master=True, k=k),
        1: HandshakeNode(1, 0, master=False, k=k),
    }
    engine = MpEngine(topo, procs, channel_capacity=4, seed=seed)
    engine.run(200)
    engine.transient_fault()

    def recovered(e):
        return (
            procs[0].session.peer_data == "data-from-1"
            and procs[1].session.peer_data == "data-from-0"
        )

    steps = engine.run(20_000, stop_when=recovered)
    return steps if recovered(engine) else None


def handshake_sweep():
    results = {}
    for k in (11, 15, 23, 31):
        times = [handshake_recovery(k, seed) for seed in range(8)]
        results[k] = times
    return results


def test_e7_handshake_stabilization(benchmark):
    results = benchmark.pedantic(handshake_sweep, rounds=1, iterations=1)
    rows = []
    for k, times in results.items():
        ok = [t for t in times if t is not None]
        rows.append(
            (k, f"{len(ok)}/{len(times)}", f"{sum(ok)/len(ok):.0f}" if ok else "-", max(ok, default="-"))
        )
    print_table(
        "E7a: handshake recovery after transient fault (channel capacity 4)",
        ("K", "recovered", "mean steps", "max steps"),
        rows,
    )
    benchmark.extra_info["rows"] = rows
    # --- shape: every K above the junk bound stabilizes, every seed ---
    assert all(t is not None for times in results.values() for t in times)


def kstate_sweep():
    results = {}
    for n in (4, 6, 8, 10):
        algo = KStateToken(k=n + 2)
        times = []
        for seed in range(8):
            system = System(ring(n), algo)
            system.randomize(random.Random(seed))
            engine = Engine(system, seed=seed)
            result = engine.run(
                50_000, stop_when=lambda c: single_privilege(c, algo)
            )
            assert result.stopped or single_privilege(system.snapshot(), algo)
            times.append(result.steps)
        results[n] = times
    return results


def test_e7_kstate_stabilization(benchmark):
    results = benchmark.pedantic(kstate_sweep, rounds=1, iterations=1)
    rows = [
        (n, n + 2, f"{sum(t)/len(t):.0f}", max(t)) for n, t in results.items()
    ]
    print_table(
        "E7b: Dijkstra K-state — steps to single privilege from random counters",
        ("ring n", "K", "mean steps", "max steps"),
        rows,
    )
    benchmark.extra_info["rows"] = rows
    means = {n: sum(t) / len(t) for n, t in results.items()}
    sizes = sorted(means)
    assert means[sizes[-1]] > means[sizes[0]]  # grows with the ring


def mp_diners_run():
    topo = ring(8)
    procs = build_diners(topo)
    engine = MpEngine(topo, procs, seed=3)
    violations = 0
    for _ in range(60_000):
        if not engine.step():
            break
        if neighbours_both_eating(topo, procs):
            violations += 1
    return procs, engine, violations


def test_e7_mp_diners(benchmark):
    procs, engine, violations = benchmark.pedantic(
        mp_diners_run, rounds=1, iterations=1
    )
    meals = {p: procs[p].eats for p in sorted(procs)}
    print_table(
        "E7c: message-passing diners (Chandy–Misra fork collection, ring(8))",
        ("metric", "value"),
        [
            ("engine steps", engine.step_count),
            ("messages delivered", engine.delivered),
            ("total meals", sum(meals.values())),
            ("min meals", min(meals.values())),
            ("safety violations", violations),
        ],
    )
    benchmark.extra_info["meals"] = meals
    # --- shape ---
    assert violations == 0
    assert min(meals.values()) > 0
