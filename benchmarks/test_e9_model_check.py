"""E9 — exhaustive model checking: the paper's lemmas, proved per instance.

For each instance we enumerate the *entire* state space and machine-check:

* closure of the invariant ``I`` (Theorem 1, closure part);
* convergence to ``I`` under weak fairness, via the SCC fair-escape
  argument (Theorem 1, convergence part);
* the threshold finding: on the triangle the literal diameter threshold
  yields an *empty* invariant, while the longest-simple-path threshold
  restores a non-empty, closed, convergent one.

These runs also double as macro-benchmarks of the checker itself.
"""

from conftest import print_table

from repro.core import NADiners, invariant_with_threshold
from repro.mp import KStateToken, single_privilege
from repro.sim import line, ring, star
from repro.verification import (
    TransitionSystem,
    build_graph,
    check_closure,
    check_convergence,
    enumerate_configurations,
    optimal_recovery_diameter,
)


def check_instance(topo, threshold=None):
    t = topo.diameter if threshold is None else threshold
    algo = NADiners(depth_cap=t + 1, diameter_override=t)
    pred = invariant_with_threshold(t)
    configs = list(
        enumerate_configurations(algo, topo, fixed_locals={"needs": True})
    )
    ts = TransitionSystem(algo, topo)
    closure = check_closure(ts, pred, configs)
    graph = build_graph(ts, configs)
    convergence = check_convergence(ts, pred, configs, graph=graph)
    recovery = optimal_recovery_diameter(graph, pred)
    return {
        "states": len(configs),
        "legit": convergence.legit_states,
        "closed": closure.holds,
        "converges": convergence.converges,
        "sccs": convergence.scc_count,
        "optimal_recovery": recovery,
    }


def test_e9_diners_instances(benchmark):
    def run():
        return {
            "line(3), D literal": check_instance(line(3)),
            "star(3), D literal": check_instance(star(3)),
            "ring(3), D literal": check_instance(ring(3)),
            "ring(3), longest path": check_instance(
                ring(3), threshold=ring(3).longest_simple_path()
            ),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        (
            name,
            data["states"],
            data["legit"],
            "yes" if data["closed"] else "NO",
            "yes" if data["converges"] else "NO",
            "-" if data["optimal_recovery"] is None else data["optimal_recovery"],
        )
        for name, data in results.items()
    ]
    print_table(
        "E9a: exhaustive verification of Theorem 1 per instance",
        ("instance", "states", "legit states", "I closed", "converges", "opt. recovery"),
        rows,
    )
    benchmark.extra_info["rows"] = rows

    # --- shape ---
    assert results["line(3), D literal"]["converges"]
    assert results["line(3), D literal"]["legit"] > 0
    assert results["star(3), D literal"]["converges"]
    # the documented finding: literal threshold on the triangle -> empty I
    assert results["ring(3), D literal"]["legit"] == 0
    # corrected threshold restores the theorem
    corrected = results["ring(3), longest path"]
    assert corrected["legit"] > 0 and corrected["closed"] and corrected["converges"]


def test_e9_kstate_instance(benchmark):
    def run():
        topo = ring(4)
        algo = KStateToken(k=5)
        configs = list(enumerate_configurations(algo, topo))
        ts = TransitionSystem(algo, topo)
        pred = lambda c: single_privilege(c, algo)
        return {
            "states": len(configs),
            "closed": check_closure(ts, pred, configs).holds,
            "converges": check_convergence(ts, pred, configs).converges,
        }

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        "E9b: Dijkstra K-state (ring(4), k=5), exhaustive",
        ("metric", "value"),
        list(result.items()),
    )
    assert result["closed"] and result["converges"]
