"""E6 — the headline: malicious crashes, end to end.

A process crashes *maliciously* — k arbitrary steps perturbing its own
variables and incident edges, then a silent halt — on a line while
everything is busy.  We measure, per malice budget:

* steps from the end of the arbitrary phase until the invariant I holds;
* the starvation radius afterwards;
* whether every process beyond distance 2 eats again (Proposition 1 +
  Theorems 1–2 composed).

Paper shape: recovery always succeeds, the radius never exceeds 2, and the
malice budget only affects how scrambled the neighbourhood starts, not
whether or how far recovery reaches.
"""

from conftest import print_table

from repro.analysis import measure_failure_locality
from repro.core import NADiners, invariant_holds
from repro.sim import AlwaysHungry, Engine, MaliciousCrash, System, line


def recovery_time(malice, seed):
    """Steps from end-of-malice until I holds."""
    topology = line(9)
    system = System(topology, NADiners())
    engine = Engine(system, hunger=AlwaysHungry(), seed=seed)
    engine.run(1500)
    engine.inject(MaliciousCrash(4, malicious_steps=malice))
    engine.run(malice + 1)  # play out the arbitrary phase
    result = engine.run(500_000, stop_when=invariant_holds, check_every=4)
    assert result.stopped or invariant_holds(system.snapshot())
    return result.steps


def experiment():
    rows = []
    for malice in (1, 5, 20, 80):
        times = [recovery_time(malice, seed) for seed in range(5)]
        topo = line(10)
        report = measure_failure_locality(
            NADiners(),
            topo,
            [0],
            malicious_steps=malice,
            warmup_steps=40_000,
            settle_steps=15_000,
            window=40_000,
            seed=malice,
        )
        rows.append(
            {
                "malice": malice,
                "mean_recovery": sum(times) / len(times),
                "max_recovery": max(times),
                "radius": report.starvation_radius,
                "far_ok": report.all_beyond_radius_eat(topo, radius=2),
            }
        )
    return rows


def test_e6_malicious_crash(benchmark):
    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    print_table(
        "E6: malicious crash (line, victim mid-run): recovery and containment",
        ("malice steps", "mean recovery", "max recovery", "starv. radius", "far eat"),
        [
            (
                r["malice"],
                f"{r['mean_recovery']:.0f}",
                r["max_recovery"],
                "-" if r["radius"] is None else r["radius"],
                "yes" if r["far_ok"] else "NO",
            )
            for r in rows
        ],
    )
    benchmark.extra_info["rows"] = [
        {k: v for k, v in r.items()} for r in rows
    ]

    # --- the paper's shape ---
    for r in rows:
        assert r["far_ok"], f"malice={r['malice']}: a far process starved"
        assert r["radius"] is None or r["radius"] <= 2
