#!/usr/bin/env python3
"""Live cluster demo: real sockets, injected chaos, service-level safety.

Boots a 4-node ring of §4 Chandy–Misra lock servers on localhost — every
node a real asyncio TCP daemon, every link routed through a chaos proxy —
then drives one lock client per node for a few seconds while the seeded
fault schedule injects link faults and one *malicious crash* (a garbage
burst on the victim's outgoing links, then silence).  Afterwards it audits
the emitted grant/release event stream: no two neighbouring nodes may ever
hold their locks at once.

Run:  python examples/live_cluster_demo.py
"""

import asyncio

from repro.net import ClusterConfig, soak
from repro.sim import ring

SEED = 11
DURATION_S = 3.0


def main() -> None:
    config = ClusterConfig(
        topology=ring(4),
        topology_spec="ring:4",
        seed=SEED,
        tick_interval=0.005,
        lock_service=True,
        chaos=True,
    )
    result = asyncio.run(soak(config, DURATION_S, hold_s=0.03))
    cluster = result.cluster

    print(f"soaked {config.topology_spec} for {DURATION_S}s (seed {SEED})")
    print()
    print("per-node lock service:")
    for node in cluster.nodes:
        counters = cluster.counters[node]
        crashed = "  <- maliciously crashed" if node in cluster.killed else ""
        print(
            f"  node {node}: {counters['grants']:3d} grants, "
            f"{counters['garbage_bytes']:3d} garbage bytes absorbed{crashed}"
        )
    print()
    faults = ", ".join(
        f"{kind}×{count}" for kind, count in sorted(cluster.chunk_faults.items())
    )
    print(f"chaos injected: {faults or 'none'}")
    print(f"clients: {sum(c.acquired for c in result.clients)} acquisitions, "
          f"{sum(c.timeouts for c in result.clients)} timeouts")
    print(f"violations: {len(result.violations)}")

    assert result.safe
    assert cluster.total_grants > 0
    print("\nOK: chaos absorbed, no neighbouring lock holders — ever.")


if __name__ == "__main__":
    main()
