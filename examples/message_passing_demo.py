#!/usr/bin/env python3
"""The §4 message-passing transformation, in three layers.

1. **Dijkstra K-state token circulation** (reference [9]) on the
   shared-memory kernel — the protocol the handshake counters are modelled
   on — recovering a single privilege from corrupted counters.
2. **The stabilizing per-edge handshake** over real FIFO channels: after a
   transient fault corrupts both endpoints *and* the channel contents, the
   neighbour caches re-converge to genuine data.
3. **Message-passing diners** via Chandy–Misra fork collection (§4's first
   suggested route): safety and liveness on a ring of six philosophers
   exchanging fork and request-token messages.

Run:  python examples/message_passing_demo.py
"""

import random

from repro.mp import (
    KStateToken,
    MpEngine,
    build_diners,
    neighbours_both_eating,
    privileged,
    single_privilege,
)
from repro.sim import Engine, System, line, ring


def layer_one() -> None:
    print("layer 1 — Dijkstra K-state token circulation on ring(6), k=8")
    algo = KStateToken(k=8)
    system = System(ring(6), algo)
    system.randomize(random.Random(11))
    snapshot = system.snapshot()
    print(f"  corrupted counters: {[snapshot.local(p, 'x') for p in range(6)]}")
    print(f"  privileges now: {privileged(snapshot, algo)}")
    engine = Engine(system, seed=11)
    result = engine.run(10_000, stop_when=lambda c: single_privilege(c, algo))
    print(f"  single privilege restored after {result.steps} steps")
    holders = set()
    for _ in range(60):
        holders.update(privileged(system.snapshot(), algo))
        engine.step()
    print(f"  privilege then visits every process: {sorted(holders)}")
    print()


def layer_two() -> None:
    print("layer 2 — stabilizing per-edge handshake over FIFO channels")
    from repro.mp import HandshakeNode

    topo = line(2)
    procs = {
        0: HandshakeNode(0, 1, master=True),
        1: HandshakeNode(1, 0, master=False),
    }
    engine = MpEngine(topo, procs, channel_capacity=4, seed=12)
    engine.run(300)
    print(f"  caches before fault: {procs[0].session.peer_data!r} / "
          f"{procs[1].session.peer_data!r}")
    engine.transient_fault()  # corrupt sessions and channel contents
    print(f"  after transient fault: {engine.in_flight()} junk frames in flight")
    engine.run(1200)
    print(f"  caches after recovery: {procs[0].session.peer_data!r} / "
          f"{procs[1].session.peer_data!r}")
    assert procs[0].session.peer_data == "data-from-1"
    assert procs[1].session.peer_data == "data-from-0"
    print()


def layer_three() -> None:
    print("layer 3 — message-passing diners (Chandy–Misra fork collection)")
    topo = ring(6)
    procs = build_diners(topo)
    engine = MpEngine(topo, procs, seed=13)
    violations = 0
    for _ in range(30_000):
        if not engine.step():
            break
        if neighbours_both_eating(topo, procs):
            violations += 1
    print(f"  {engine.delivered} messages delivered, {engine.ticks} ticks")
    print(f"  meals: { {p: procs[p].eats for p in topo.nodes} }")
    print(f"  neighbour pairs eating together: {violations}")
    assert violations == 0
    assert all(p.eats > 0 for p in procs.values())
    print("  safe and live over message passing.")


def main() -> None:
    layer_one()
    layer_two()
    layer_three()


if __name__ == "__main__":
    main()
