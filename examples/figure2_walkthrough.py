#!/usr/bin/env python3
"""Walk through the paper's Figure 2, panel by panel.

Reconstructs the exact seven-process configuration of Figure 2 — process
``a`` crashed while eating, ``d`` hungry behind the blocked ``b``, and the
priority cycle ``e -> f -> g -> e`` with ``depth.g = 4`` exceeding the
diameter 3 — then replays the narrated transitions:

    state 1 --(d: leave)--> state 2 --(g: exit)--> state 3 --(e: enter)--> ...

and prints, per panel, each process's state, the red/green colouring, and
whether the priority graph still has a live cycle.

Run:  python examples/figure2_walkthrough.py
"""

from repro.analysis import find_live_cycles
from repro.core import FIGURE2_SEQUENCE, green_set, red_set, run_figure2


def render(config, topo) -> str:
    reds = red_set(config)
    rows = []
    for pid in topo.nodes:
        state = config.local(pid, "state")
        depth = config.local(pid, "depth")
        status = "crashed" if pid in config.dead else ("red" if pid in reds else "green")
        rows.append(f"    {pid}: state={state} depth={depth} [{status}]")
    cycles = find_live_cycles(config)
    rows.append(f"    live priority cycles: {[''.join(map(str, c)) for c in cycles] or 'none'}")
    return "\n".join(rows)


def main() -> None:
    replay = run_figure2()
    topo = replay.initial.topology
    print(f"Figure 2 topology: {topo} (diameter {topo.diameter})")
    print()

    narration = (
        "state 1 — a crashed while eating; b and c blocked; the e/f/g cycle "
        "has grown depth.g past the diameter",
        "state 2 — d executed `leave`: the dynamic threshold; d yields to "
        "its descendant e, containing the crash at distance 2",
        "state 3 — g executed `exit` (depth.g = 4 > D = 3): the cycle is "
        "broken",
        "state 4 — e executed `enter`: e eats, three hops from the crash",
    )
    for i, config in enumerate(replay.configurations):
        print(narration[i])
        print(render(config, topo))
        if i < len(FIGURE2_SEQUENCE):
            pid, action = FIGURE2_SEQUENCE[i]
            print(f"    next: {pid} executes `{action}`")
        print()

    final = replay.final
    print("summary:")
    print(f"  red (affected) processes: {sorted(red_set(final))}")
    print(f"  green processes:          {sorted(green_set(final))}")
    print(
        "  every red process is within distance "
        f"{max(topo.distance('a', p) for p in red_set(final))} of the crash — "
        "the paper's failure locality 2."
    )


if __name__ == "__main__":
    main()
