#!/usr/bin/env python3
"""Quickstart: run the paper's algorithm on a ring and watch it work.

Builds an 8-process ring running the Nesterenko–Arora diners program, makes
everyone permanently hungry, and runs 10 000 weakly-fair steps.  Prints the
per-process meal counts (liveness + fairness), confirms that no two
neighbours ever ate simultaneously (safety), and shows the invariant holds
at the end.

Run:  python examples/quickstart.py
"""

from repro.analysis import StepMonitor, live_eating_pairs_count, run_monitored
from repro.core import NADiners, invariant_report
from repro.sim import AlwaysHungry, Engine, System, WeaklyFairDaemon, ring


def main() -> None:
    topology = ring(8)
    system = System(topology, NADiners())
    engine = Engine(system, WeaklyFairDaemon(), hunger=AlwaysHungry(), seed=2026)

    safety = StepMonitor("live eating pairs", live_eating_pairs_count)
    steps = run_monitored(engine, [safety], 10_000, sample_every=5)

    print(f"ran {steps} steps on {topology}")
    print()
    print("meals per process (liveness + fairness):")
    for pid in topology.nodes:
        meals = engine.eats_of(pid)
        print(f"  process {pid}: {meals:4d} meals  {'#' * (meals // 20)}")
    print()
    violations = sum(1 for v in safety.series if v > 0)
    print(f"safety: {violations} sampled states had neighbours eating together")
    print(f"invariant at the end: {invariant_report(system.snapshot())}")

    assert violations == 0
    assert all(engine.eats_of(p) > 0 for p in topology.nodes)
    print("\nOK: every process ate, no safety violation, invariant holds.")


if __name__ == "__main__":
    main()
