#!/usr/bin/env python3
"""Failure locality: the paper's program vs the classic baselines.

On a 12-process line, the first process crashes *while eating* (the worst
case — its neighbours can never clear their guards again).  After a settling
period we count meals per process over a long window and report who starved
and how far from the crash the starvation reached.

Expected shape (the paper's Theorem 2 + Choy–Singh optimality):

* na-diners and choy-singh — starvation radius <= 2: the crash is contained;
* hygienic and fork-ordering — starvation chains can reach further; the
  whole line may stall behind the dead eater.

Run:  python examples/failure_locality_demo.py
"""

from repro.analysis import measure_failure_locality
from repro.baselines import ChoySinghDiners, ForkOrderingDiners, HygienicDiners
from repro.core import NADiners
from repro.sim import line


def main() -> None:
    topology = line(12)
    algorithms = [
        NADiners(),
        ChoySinghDiners(),
        HygienicDiners(),
        ForkOrderingDiners(),
    ]
    print(f"topology: {topology}; crash: process 0, while eating, benign")
    print()
    header = f"{'algorithm':<16} {'starving':<24} {'radius':>6}   meals by distance"
    print(header)
    print("-" * len(header))
    for algorithm in algorithms:
        report = measure_failure_locality(
            algorithm,
            topology,
            [0],
            warmup_steps=40_000,
            settle_steps=15_000,
            window=50_000,
            seed=7,
        )
        by_distance = report.eats_by_distance(topology)
        meals = " ".join(
            f"d{d}:{total}" for d, (_, total) in sorted(by_distance.items())
        )
        radius = "-" if report.starvation_radius is None else report.starvation_radius
        print(
            f"{algorithm.name:<16} {str(sorted(report.starving)):<24} "
            f"{radius:>6}   {meals}"
        )
    print()
    print(
        "na-diners contains the crash within distance 2; the chain-prone\n"
        "baselines let it propagate (hygienic/fork-ordering radii grow with\n"
        "the line length — rerun with line(20) to see it stretch)."
    )


if __name__ == "__main__":
    main()
