#!/usr/bin/env python3
"""Generate a self-contained markdown experiment report.

Runs the programmatic experiment suite (locality contrast, stabilization,
throughput & fairness, malicious-crash recovery, masking census) and writes
``REPORT.md`` next to this script — the one-command answer to "does the
reproduction hold on my machine?".

Run:  python examples/generate_report.py [--full] [--seed N]
"""

import argparse
import pathlib

from repro.analysis import SuiteConfig, run_suite, to_markdown


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--full", action="store_true", help="larger systems and longer windows"
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--output",
        type=pathlib.Path,
        default=pathlib.Path(__file__).with_name("REPORT.md"),
    )
    args = parser.parse_args()

    config = SuiteConfig(quick=not args.full, seed=args.seed)
    print(f"running suite ({'full' if args.full else 'quick'} mode, seed {args.seed})...")
    result = run_suite(config)
    markdown = to_markdown(result)
    args.output.write_text(markdown)
    print(f"wrote {args.output} ({len(markdown.splitlines())} lines)")
    print()
    print(markdown)


if __name__ == "__main__":
    main()
