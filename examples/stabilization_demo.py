#!/usr/bin/env python3
"""Stabilization: recovery from transient faults and malicious crashes.

Three acts on a 9-process line:

1. **Transient fault** — the entire state is replaced with random values;
   we time how long the program takes to re-establish the invariant
   ``I = NC ∧ ST ∧ E`` (Theorem 1).
2. **Planted priority cycle** — the adversarial corruption: a directed
   cycle with zeroed depths on a ring; we watch ``depth`` climb past the
   diameter until an ``exit`` breaks the cycle (the Figure 2 mechanism).
3. **Malicious crash** — a process behaves arbitrarily for 15 steps, then
   halts; the system re-stabilizes and everyone beyond distance 2 eats.

Run:  python examples/stabilization_demo.py
"""

from repro.analysis import (
    convergence_study,
    find_live_cycles,
    plant_priority_cycle,
)
from repro.core import NADiners, invariant_holds, invariant_report, nc_holds
from repro.sim import (
    AlwaysHungry,
    Engine,
    MaliciousCrash,
    NeverHungry,
    System,
    line,
    ring,
)


def act_one() -> None:
    print("act 1 — transient fault on line(9)")
    topology = line(9)
    summary = convergence_study(
        NADiners, topology, trials=10, max_steps=300_000, seed=1
    )
    print(f"  trials converged: {summary.converged}/{summary.trials}")
    print(
        f"  steps to invariant: mean {summary.mean_steps:.0f}, "
        f"median {summary.median_steps:.0f}, max {summary.max_steps}"
    )
    print()


def act_two() -> None:
    print("act 2 — planted priority cycle on ring(8)")
    topology = ring(8)
    system = System(topology, NADiners())
    plant_priority_cycle(system, list(range(8)))
    print(f"  planted cycles: {find_live_cycles(system.snapshot())}")
    engine = Engine(system, hunger=NeverHungry(), seed=2)
    result = engine.run(100_000, stop_when=nc_holds)
    fixdepths = sum(v for (p, a), v in engine.action_counts.items() if a == "fixdepth")
    exits = sum(v for (p, a), v in engine.action_counts.items() if a == "exit")
    print(
        f"  cycle broken after {result.steps} steps "
        f"({fixdepths} fixdepth propagations, {exits} exits)"
    )
    print(f"  cycles now: {find_live_cycles(system.snapshot()) or 'none'}")
    print()


def act_three() -> None:
    print("act 3 — malicious crash on line(9)")
    topology = line(9)
    system = System(topology, NADiners())
    engine = Engine(system, hunger=AlwaysHungry(), seed=3)
    engine.run(2000)
    engine.inject(MaliciousCrash(0, malicious_steps=15))
    engine.run(100)  # let the arbitrary phase play out
    print(f"  after malice: {invariant_report(system.snapshot())}")
    result = engine.run(300_000, stop_when=invariant_holds, check_every=8)
    print(f"  invariant restored after {result.steps} further steps")
    before = {p: engine.eats_of(p) for p in topology.nodes}
    engine.run(30_000)
    eaters = [
        p
        for p in topology.nodes
        if system.is_live(p) and engine.eats_of(p) > before[p]
    ]
    print(f"  processes eating again: {eaters}")
    far = [p for p in topology.nodes if topology.distance(0, p) > 2]
    assert all(p in eaters for p in far), "a far process starved!"
    print("  every process beyond distance 2 of the crash eats — Theorem 2.")


def main() -> None:
    act_one()
    act_two()
    act_three()


if __name__ == "__main__":
    main()
