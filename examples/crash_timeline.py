#!/usr/bin/env python3
"""A timeline view of a malicious crash and its containment.

Renders a 16-process line as one character per process
(``.`` thinking, ``?`` hungry, ``#`` eating, ``!`` malicious, ``x`` dead)
and prints a strip every few steps, so the whole story is visible at a
glance: normal rotation of meals, the arbitrary phase of the crash, the
neighbourhood freezing, and everything beyond distance 2 going back to
eating.

Run:  python examples/crash_timeline.py
"""

from repro.analysis import render_strip
from repro.core import NADiners, invariant_holds, red_set
from repro.sim import AlwaysHungry, Engine, MaliciousCrash, System, line

N = 16
VICTIM = 7
MALICE = 30


def main() -> None:
    topology = line(N)
    system = System(topology, NADiners())
    engine = Engine(system, hunger=AlwaysHungry(), seed=2002)

    print(f"line({N}), victim {VICTIM} crashes maliciously ({MALICE} havoc steps)")
    print("legend: . thinking   ? hungry   # eating   ! malicious   x dead")
    print()
    print("         " + "".join(str(i % 10) for i in range(N)))

    def frame(label: str) -> None:
        print(f"{label:>8} {render_strip(system.snapshot())}")

    for step in range(0, 200, 40):
        engine.run(40)
        frame(f"t={engine.step_count}")

    engine.inject(MaliciousCrash(VICTIM, malicious_steps=MALICE))
    frame("CRASH")
    for _ in range(6):
        engine.run(10)
        frame(f"t={engine.step_count}")

    engine.run(2000)
    frame(f"t={engine.step_count}")
    engine.run(2000)
    frame(f"t={engine.step_count}")

    print()
    reds = sorted(red_set(system.snapshot()))
    print(f"red (affected) processes: {reds}")
    print(f"all within distance {max((topology.distance(VICTIM, p) for p in reds), default=0)} "
          f"of the crash; invariant holds: {invariant_holds(system.snapshot())}")
    baseline = {p: engine.eats_of(p) for p in topology.nodes}
    engine.run(10_000)
    eaters = [p for p in topology.nodes
              if system.is_live(p) and engine.eats_of(p) > baseline[p]]
    print(f"processes still dining: {eaters}")


if __name__ == "__main__":
    main()
