"""Unified observability layer: event bus, metrics, probes, and traces.

One pipeline serves both engines and both moments:

* **live** — attach an :class:`EventBus` to an engine, subscribe probes
  and a :class:`~repro.sim.trace.TraceRecorder`, run;
* **offline** — :func:`read_trace` a recorded JSONL file and
  :func:`analyze` it through the same probes.

Identical event/snapshot streams give identical metrics and summaries,
so ``repro trace`` on a recorded file reproduces the live run's numbers
byte for byte.
"""

from .bus import EventBus
from .events import EventKind, MpEventKind, NetEventKind, TraceEvent
from .metrics import (
    METRICS_FORMAT_VERSION,
    Counter,
    Gauge,
    Histogram,
    Metric,
    MetricsFile,
    MetricsRegistry,
    Series,
    Timer,
    metrics_lines,
    percentile_of_sorted,
    read_metrics,
    write_metrics,
)
from .probes import (
    DepthProbe,
    EatingPairsProbe,
    EatsProbe,
    InvariantProbe,
    LocalityProbe,
    Probe,
    StepTimerProbe,
    WaitingChainProbe,
    standard_probes,
    waiting_chain_length,
)
from .trace_io import (
    TRACE_FORMAT_VERSION,
    Trace,
    TraceAnalysis,
    analyze,
    build_header,
    read_trace,
    trace_from_recorder,
    write_analysis_metrics,
    write_trace,
)

__all__ = [
    "EventBus",
    "EventKind",
    "MpEventKind",
    "NetEventKind",
    "TraceEvent",
    "METRICS_FORMAT_VERSION",
    "Counter",
    "Gauge",
    "Histogram",
    "Metric",
    "MetricsFile",
    "MetricsRegistry",
    "Series",
    "Timer",
    "metrics_lines",
    "percentile_of_sorted",
    "read_metrics",
    "write_metrics",
    "DepthProbe",
    "EatingPairsProbe",
    "EatsProbe",
    "InvariantProbe",
    "LocalityProbe",
    "Probe",
    "StepTimerProbe",
    "WaitingChainProbe",
    "standard_probes",
    "waiting_chain_length",
    "TRACE_FORMAT_VERSION",
    "Trace",
    "TraceAnalysis",
    "analyze",
    "build_header",
    "read_trace",
    "trace_from_recorder",
    "write_analysis_metrics",
    "write_trace",
]
