"""Paper-grounded probes: the theorems' witnesses as streaming instruments.

Each probe turns one of the paper's observable guarantees into numbers:

* :class:`EatsProbe` — per-process meal counts (liveness, Theorem 2's
  "every green hungry process eats");
* :class:`DepthProbe` — the depth histogram and the count of ``exit``
  firings taken with ``depth > D``.  A deep exit is the *witness that a
  priority cycle was broken*: depth only climbs past the diameter while
  ``fixdepth`` propagates around a cycle (§3.1);
* :class:`InvariantProbe` — the per-conjunct booleans ``NC``/``ST``/``E``
  over time and their *distance* (number of violated conjuncts), the
  stabilization trajectory of Theorem 1;
* :class:`WaitingChainProbe` — the length of the longest chain of hungry
  processes each waiting on a hungry ancestor; the dynamic threshold is
  what keeps this bounded near crashes (failure locality 2);
* :class:`EatingPairsProbe` — simultaneously-eating neighbour pairs over
  time, the safety witness of Theorem 3;
* :class:`LocalityProbe` — which processes never eat again after a crash,
  and the radius of that set around the crash sites (Theorem 2).

Probes consume the event stream (:meth:`Probe.on_event`) and periodic
configuration samples (:meth:`Probe.on_sample`), then flush into a
:class:`~repro.obs.metrics.MetricsRegistry` via :meth:`Probe.publish`.
They are driven either live — subscribed to an engine's bus — or offline by
:func:`repro.obs.trace_io.analyze` replaying a recorded trace; both paths
produce identical registries for identical streams.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional, Tuple

from ..core.predicates import e_holds, eating_pairs, nc_holds, st_holds
from ..core.state import VAR_DEPTH, VAR_STATE, DinerState, direct_ancestors
from ..sim.configuration import Configuration
from ..sim.serialize import encode_literal
from ..sim.trace import EventKind, TraceEvent
from .bus import EventBus
from .metrics import MetricsRegistry


class Probe:
    """Base class; probes override the hooks they care about."""

    def on_event(self, event: TraceEvent) -> None:
        """One engine occurrence (any kind)."""

    def on_sample(self, step: int, config: Configuration) -> None:
        """One periodic configuration snapshot."""

    def publish(self, registry: MetricsRegistry) -> None:
        """Flush accumulated state into the registry."""

    def attach(self, bus: EventBus) -> "Probe":
        """Subscribe :meth:`on_event` to every event on ``bus``."""
        bus.subscribe_all(self.on_event)
        return self


class EatsProbe(Probe):
    """Meal counts per process, resolved from the algorithm's enter action."""

    def __init__(self, enter_action: str = "enter") -> None:
        self.enter_action = enter_action
        self.eats: Dict[Any, int] = {}

    def on_event(self, event: TraceEvent) -> None:
        if event.kind is EventKind.ACTION and event.detail == self.enter_action:
            self.eats[event.pid] = self.eats.get(event.pid, 0) + 1

    @property
    def total(self) -> int:
        return sum(self.eats.values())

    def publish(self, registry: MetricsRegistry) -> None:
        for pid, count in self.eats.items():
            registry.counter(f"eats/{encode_literal(pid)}").inc(count)
        registry.counter("eats/total").inc(self.total)


class DepthProbe(Probe):
    """Depth distribution and ``depth > D`` exit firings (cycle breaks).

    ``threshold`` is the constant the program compares depth against — the
    diameter, or the override the algorithm was built with.
    """

    def __init__(self, threshold: int, *, exit_action: str = "exit") -> None:
        self.threshold = threshold
        self.exit_action = exit_action
        self.histogram: Dict[int, int] = {}
        self.deep_exits = 0
        self.max_depth = 0

    def on_event(self, event: TraceEvent) -> None:
        if event.kind is not EventKind.ACTION or event.detail != self.exit_action:
            return
        locals_before = event.payload
        if not isinstance(locals_before, dict):
            return
        depth = locals_before.get(VAR_DEPTH)
        if isinstance(depth, int) and depth > self.threshold:
            self.deep_exits += 1

    def on_sample(self, step: int, config: Configuration) -> None:
        faulty = config.faulty
        for pid in config.topology.nodes:
            if pid in faulty:
                continue
            depth = config.locals_of(pid).get(VAR_DEPTH)
            if not isinstance(depth, int):
                continue  # algorithm without a depth counter
            self.histogram[depth] = self.histogram.get(depth, 0) + 1
            if depth > self.max_depth:
                self.max_depth = depth

    def publish(self, registry: MetricsRegistry) -> None:
        hist = registry.histogram("depth/histogram")
        for depth in sorted(self.histogram):
            hist.observe(depth, self.histogram[depth])
        registry.gauge("depth/max").set(self.max_depth)
        registry.counter("depth/deep_exits").inc(self.deep_exits)


class InvariantProbe(Probe):
    """``NC``/``ST``/``E`` per sample; distance = number of violated
    conjuncts (0 means the invariant ``I`` holds)."""

    def __init__(self, threshold: Optional[int] = None) -> None:
        self.threshold = threshold
        #: ``(step, nc, st, e)`` per sample, in sample order.
        self.timeline: List[Tuple[int, bool, bool, bool]] = []

    def on_sample(self, step: int, config: Configuration) -> None:
        self.timeline.append(
            (
                step,
                nc_holds(config),
                st_holds(config, self.threshold),
                e_holds(config),
            )
        )

    @staticmethod
    def distance(entry: Tuple[int, bool, bool, bool]) -> int:
        return sum(1 for flag in entry[1:] if not flag)

    @property
    def final(self) -> Optional[Dict[str, bool]]:
        if not self.timeline:
            return None
        _, nc, st, e = self.timeline[-1]
        return {"NC": nc, "ST": st, "E": e}

    def first_legitimate_step(self) -> Optional[int]:
        """The earliest sampled step where ``I`` held, if any."""
        for entry in self.timeline:
            if self.distance(entry) == 0:
                return entry[0]
        return None

    def publish(self, registry: MetricsRegistry) -> None:
        series = registry.series("invariant/distance")
        for entry in self.timeline:
            series.append(entry[0], self.distance(entry))
        for index, name in ((1, "nc"), (2, "st"), (3, "e")):
            registry.counter(f"invariant/{name}_violations").inc(
                sum(1 for entry in self.timeline if not entry[index])
            )
        registry.counter("invariant/samples").inc(len(self.timeline))


def waiting_chain_length(config: Configuration) -> int:
    """Longest chain of live hungry processes each waiting on a live hungry
    direct ancestor.

    A hungry process whose ancestor is not thinking cannot ``enter``; chains
    of such processes are exactly what the dynamic threshold (``leave``)
    keeps short.  A priority cycle of hungry processes makes the chain
    unbounded; this returns the live-process count in that case.
    """
    hungry = DinerState.HUNGRY.value
    faulty = config.faulty
    nodes = [
        p
        for p in config.topology.nodes
        if p not in faulty and config.local(p, VAR_STATE) == hungry
    ]
    hungry_set = set(nodes)
    cap = len(config.topology.nodes)
    memo: Dict[Any, int] = {}
    ON_STACK = -1

    def chain(p) -> int:
        cached = memo.get(p)
        if cached == ON_STACK:
            return cap  # cycle of hungry processes: unbounded wait
        if cached is not None:
            return cached
        memo[p] = ON_STACK
        best = 1
        for q in direct_ancestors(config, p):
            if q in hungry_set:
                best = max(best, min(cap, 1 + chain(q)))
        memo[p] = best
        return best

    return max((chain(p) for p in nodes), default=0)


class WaitingChainProbe(Probe):
    """Distribution and maximum of :func:`waiting_chain_length`."""

    def __init__(self) -> None:
        self.histogram: Dict[int, int] = {}
        self.max_length = 0

    def on_sample(self, step: int, config: Configuration) -> None:
        length = waiting_chain_length(config)
        self.histogram[length] = self.histogram.get(length, 0) + 1
        if length > self.max_length:
            self.max_length = length

    def publish(self, registry: MetricsRegistry) -> None:
        hist = registry.histogram("waiting_chain/histogram")
        for length in sorted(self.histogram):
            hist.observe(length, self.histogram[length])
        registry.gauge("waiting_chain/max").set(self.max_length)


class EatingPairsProbe(Probe):
    """Simultaneously-eating neighbour pairs over time (Theorem 3)."""

    def __init__(self) -> None:
        self.timeline: List[Tuple[int, int]] = []
        self.max_pairs = 0

    def on_sample(self, step: int, config: Configuration) -> None:
        count = len(eating_pairs(config))
        self.timeline.append((step, count))
        if count > self.max_pairs:
            self.max_pairs = count

    def publish(self, registry: MetricsRegistry) -> None:
        series = registry.series("eating_pairs/count")
        for step, count in self.timeline:
            series.append(step, count)
        registry.gauge("eating_pairs/max").set(self.max_pairs)


class LocalityProbe(Probe):
    """Observed locality radius per crash.

    Watches crash events; afterwards counts who still eats.  At publish
    time the starving set is every live process with zero meals since the
    *first* crash, and the observed radius is the farthest such process's
    distance to its nearest crash site — the empirical counterpart of the
    paper's failure locality 2 (processes beyond distance 2 keep eating).
    """

    def __init__(self, enter_action: str = "enter") -> None:
        self.enter_action = enter_action
        #: ``(step, pid)`` per crash-family event, in order.
        self.crashes: List[Tuple[int, Any]] = []
        self.eats_after: Dict[Any, int] = {}
        self._last_config: Optional[Configuration] = None

    def on_event(self, event: TraceEvent) -> None:
        if event.kind in (EventKind.CRASH, EventKind.MALICE_BEGIN):
            if event.pid is not None and not any(
                pid == event.pid for _, pid in self.crashes
            ):
                self.crashes.append((event.step, event.pid))
        elif (
            self.crashes
            and event.kind is EventKind.ACTION
            and event.detail == self.enter_action
        ):
            self.eats_after[event.pid] = self.eats_after.get(event.pid, 0) + 1

    def on_sample(self, step: int, config: Configuration) -> None:
        self._last_config = config

    def observed_radius(self) -> Optional[int]:
        """None before any crash or without a configuration sample;
        0 when nothing starves."""
        if not self.crashes or self._last_config is None:
            return None
        config = self._last_config
        topology = config.topology
        sites = [pid for _, pid in self.crashes]
        starving = [
            p
            for p in topology.nodes
            if p not in config.faulty and self.eats_after.get(p, 0) == 0
        ]
        if not starving:
            return 0
        return max(
            min(topology.distance(p, site) for site in sites) for p in starving
        )

    def publish(self, registry: MetricsRegistry) -> None:
        if not self.crashes:
            return
        registry.counter("locality/crashes").inc(len(self.crashes))
        registry.gauge("locality/observed_radius").set(self.observed_radius())


class StepTimerProbe(Probe):
    """Wall-clock per-action timing and steps/sec (meta metrics).

    Attributes the wall time between consecutive events to the action (or
    event kind) observed, which measures whole engine steps including the
    fault/hunger phases — honest accounting for "where does a run's time
    go".  Never part of a deterministic artefact.
    """

    def __init__(self, clock=time.perf_counter) -> None:
        self._clock = clock
        self._last: Optional[float] = None
        self._start: Optional[float] = None
        self.events = 0
        self.per_label: Dict[str, List[float]] = {}

    def on_event(self, event: TraceEvent) -> None:
        now = self._clock()
        if self._start is None:
            self._start = now
        if self._last is not None:
            label = (
                str(event.detail)
                if event.kind is EventKind.ACTION
                else event.kind.value
            )
            self.per_label.setdefault(label, []).append(now - self._last)
        self._last = now
        self.events += 1

    def publish(self, registry: MetricsRegistry) -> None:
        elapsed = (
            (self._last - self._start)
            if self._last is not None and self._start is not None
            else 0.0
        )
        rate = registry.gauge("rate/events_per_sec", meta=True)
        rate.set(round(self.events / elapsed, 3) if elapsed > 0 else None)
        for label, durations in self.per_label.items():
            timer = registry.timer(f"step_time/{label}")
            for duration in durations:
                timer.observe(duration)


def standard_probes(
    *,
    threshold: int,
    enter_action: str = "enter",
    exit_action: str = "exit",
    has_depth: bool = True,
) -> List[Probe]:
    """The default probe set for a shared-memory diners run.

    ``has_depth=False`` (algorithms outside the NADiners family, whose edge
    cells are not priorities) drops the depth-, chain-, and invariant
    probes, which are only meaningful over priority graphs; meals, eating
    pairs, and locality apply to every diners algorithm.
    """
    probes: List[Probe] = [
        EatsProbe(enter_action),
        EatingPairsProbe(),
        LocalityProbe(enter_action),
    ]
    if has_depth:
        probes.insert(1, DepthProbe(threshold, exit_action=exit_action))
        probes.append(WaitingChainProbe())
        probes.append(InvariantProbe(threshold))
    return probes
