"""The offline timeline: merge per-node span logs into one causal order.

``repro timeline`` feeds every node's span artefact through this module:

* :func:`merge_timeline` flattens spans to entries and sorts them by
  ``(lc, node, seq)`` — a happened-before-consistent total order (Lamport's
  construction), deterministic under any permutation of the input files
  (the property test pins this);
* :func:`causality_report` rebuilds the happened-before graph (program
  order per node + matched send→recv message edges) and checks it is
  acyclic with strictly increasing clocks along every edge — a cycle or an
  inversion means the trace is corrupted (clock tampering, a mis-merged
  file, or a byzantine node forging stamps);
* :func:`attribute_grants` splits each granted acquire's latency into
  queueing (request to first fork traffic), chaos-induced retransmit
  (gaps closed only by re-sending), and fork transfer (the rest);
* :func:`reconstruct_violations` walks a soak's neighbour-exclusion
  overlaps back to the spans that were open across them, localising an
  injected byzantine violation to the subverted node's spans.

Timeline artefacts (``source: "timeline"``) are canonical JSONL and
byte-stable for a given set of span files.
"""

from __future__ import annotations

import json
import os
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from .tracing import Span

TIMELINE_FORMAT_VERSION = 1
#: ``source`` value of the timeline artefact.
TIMELINE_SOURCE = "timeline"

_CANONICAL = dict(sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class TimelineEntry:
    """One point of the global order: a span open/close or a span event."""

    lc: int
    node: str
    seq: int  #: program-order index within the node (assigned by the merge)
    span: str
    name: str  #: the owning span's name
    ev: str  #: ``open`` / ``close`` / the span-event name
    t: float
    detail: Dict[str, Any] = field(default_factory=dict)

    def sort_key(self) -> Tuple[int, str, int]:
        return (self.lc, self.node, self.seq)

    def to_json(self) -> Dict[str, Any]:
        return {
            "kind": "entry",
            "lc": self.lc,
            "node": self.node,
            "seq": self.seq,
            "span": self.span,
            "name": self.name,
            "ev": self.ev,
            "t": self.t,
            "detail": self.detail,
        }


def _node_entries(node: str, spans: Sequence[Span]) -> List[TimelineEntry]:
    """One node's entries in program order (its clock ticks every recorded
    event, so sorting by lc recovers the order events happened in; the sort
    is stable, so a corrupted file with duplicate stamps still yields a
    deterministic — and flagged — order)."""
    raw: List[Tuple[int, str, str, str, float, Dict[str, Any]]] = []
    for span in spans:
        raw.append((span.open_lc, span.span_id, span.name, "open",
                    span.open_t, dict(span.attrs)))
        for event in span.events:
            raw.append((event.lc, span.span_id, span.name, event.name,
                        event.t, dict(event.detail)))
        if span.close_lc is not None:
            raw.append((span.close_lc, span.span_id, span.name, "close",
                        span.close_t or 0.0, {}))
    raw.sort(key=lambda item: item[0])
    return [
        TimelineEntry(lc=lc, node=node, seq=i, span=span_id, name=name,
                      ev=ev, t=t, detail=detail)
        for i, (lc, span_id, name, ev, t, detail) in enumerate(raw)
    ]


def merge_timeline(
    spans_by_node: Mapping[str, Sequence[Span]]
) -> List[TimelineEntry]:
    """All nodes' spans as one ``(lc, node, seq)``-ordered timeline.

    The output is a pure function of the *set* of per-node span lists —
    feeding the files in any order produces identical entries.
    """
    entries: List[TimelineEntry] = []
    for node in sorted(spans_by_node):
        entries.extend(_node_entries(node, spans_by_node[node]))
    entries.sort(key=TimelineEntry.sort_key)
    return entries


# -------------------------------------------------------------- causality


@dataclass
class CausalityReport:
    """What the happened-before reconstruction found."""

    entries: int = 0
    matched_messages: int = 0
    violations: List[str] = field(default_factory=list)
    acyclic: bool = True

    @property
    def ok(self) -> bool:
        return self.acyclic and not self.violations


def causality_report(entries: Sequence[TimelineEntry]) -> CausalityReport:
    """Check the merged timeline is a consistent causal history.

    Rebuilds the happened-before graph — program-order edges within each
    node plus one edge per matched ``send``→``recv`` pair (matched on the
    per-link sequence number the transport already stamps) — and requires
    (a) strictly increasing clocks along every edge and (b) an acyclic
    graph (Kahn's algorithm).  Any failure means the trace is corrupted.
    """
    report = CausalityReport(entries=len(entries))
    by_node: Dict[str, List[TimelineEntry]] = {}
    for entry in entries:
        by_node.setdefault(entry.node, []).append(entry)

    ids: Dict[Tuple[str, int], int] = {}
    for node, rows in by_node.items():
        rows.sort(key=lambda e: e.seq)
        for row in rows:
            ids[(node, row.seq)] = len(ids)
    edges: List[Tuple[int, int]] = []

    for node, rows in by_node.items():
        for prev, nxt in zip(rows, rows[1:]):
            edges.append((ids[(node, prev.seq)], ids[(node, nxt.seq)]))
            if nxt.lc <= prev.lc:
                report.violations.append(
                    f"program-order inversion at {node} seq {nxt.seq}: "
                    f"lc {nxt.lc} after lc {prev.lc}"
                )

    sends: Dict[Tuple[str, str, int], TimelineEntry] = {}
    recvs: Dict[Tuple[str, str, int], TimelineEntry] = {}
    for entry in entries:
        seq = entry.detail.get("seq")
        if not isinstance(seq, int):
            continue
        if entry.ev == "send" and "dst" in entry.detail:
            sends[(entry.node, str(entry.detail["dst"]), seq)] = entry
        elif entry.ev == "recv" and "src" in entry.detail:
            recvs[(str(entry.detail["src"]), entry.node, seq)] = entry
    for key, send in sends.items():
        recv = recvs.get(key)
        if recv is None:
            continue  # dropped by chaos, or the peer's log was truncated
        report.matched_messages += 1
        edges.append((ids[(send.node, send.seq)], ids[(recv.node, recv.seq)]))
        if recv.lc <= send.lc:
            report.violations.append(
                f"message inversion {send.node}->{recv.node} seq {key[2]}: "
                f"recv lc {recv.lc} <= send lc {send.lc}"
            )

    # Kahn's algorithm over the combined graph.
    indegree = [0] * len(ids)
    outgoing: Dict[int, List[int]] = {}
    for a, b in edges:
        outgoing.setdefault(a, []).append(b)
        indegree[b] += 1
    queue = deque(i for i, d in enumerate(indegree) if d == 0)
    processed = 0
    while queue:
        a = queue.popleft()
        processed += 1
        for b in outgoing.get(a, ()):  # noqa: B909 - static graph
            indegree[b] -= 1
            if indegree[b] == 0:
                queue.append(b)
    report.acyclic = processed == len(ids)
    if not report.acyclic:
        report.violations.append(
            f"happened-before cycle: {len(ids) - processed} entries "
            "unreachable by topological sort"
        )
    return report


# ------------------------------------------------------------ attribution

#: Span events that are fork-negotiation traffic.
_MSG_EVENTS = ("send", "recv")


@dataclass(frozen=True)
class GrantAttribution:
    """Where one granted acquire's latency went."""

    span: str
    node: str
    total_s: float
    queue_s: float  #: request accepted → first fork traffic
    retransmit_s: float  #: waiting closed only by re-sending (chaos-induced)
    transfer_s: float  #: the remaining fork-negotiation time
    retransmits: int


def attribute_grants(
    spans_by_node: Mapping[str, Sequence[Span]]
) -> List[GrantAttribution]:
    """Latency attribution for every span that reached its grant."""
    out: List[GrantAttribution] = []
    for node in sorted(spans_by_node):
        for span in spans_by_node[node]:
            grant = span.first_event("grant")
            if grant is None:
                continue
            total = max(0.0, grant.t - span.open_t)
            first_msg = next(
                (e for e in span.events
                 if e.name in _MSG_EVENTS and e.t <= grant.t),
                None,
            )
            queue = total if first_msg is None else max(
                0.0, min(total, first_msg.t - span.open_t)
            )
            retransmit = 0.0
            retransmits = 0
            prev_t = span.open_t
            for event in span.events:
                if event.t > grant.t:
                    break
                if event.name == "retransmit":
                    retransmits += 1
                    retransmit += max(0.0, event.t - prev_t)
                prev_t = event.t
            retransmit = min(retransmit, max(0.0, total - queue))
            transfer = max(0.0, total - queue - retransmit)
            out.append(
                GrantAttribution(
                    span=span.span_id,
                    node=node,
                    total_s=round(total, 6),
                    queue_s=round(queue, 6),
                    retransmit_s=round(retransmit, 6),
                    transfer_s=round(transfer, 6),
                    retransmits=retransmits,
                )
            )
    return out


def attribution_by_node(
    attributions: Iterable[GrantAttribution],
) -> Dict[str, Dict[str, float]]:
    """Per-node totals of the attribution buckets."""
    totals: Dict[str, Dict[str, float]] = {}
    for attribution in attributions:
        row = totals.setdefault(
            attribution.node,
            {"grants": 0, "total_s": 0.0, "queue_s": 0.0,
             "retransmit_s": 0.0, "transfer_s": 0.0, "retransmits": 0},
        )
        row["grants"] += 1
        row["total_s"] = round(row["total_s"] + attribution.total_s, 6)
        row["queue_s"] = round(row["queue_s"] + attribution.queue_s, 6)
        row["retransmit_s"] = round(
            row["retransmit_s"] + attribution.retransmit_s, 6
        )
        row["transfer_s"] = round(row["transfer_s"] + attribution.transfer_s, 6)
        row["retransmits"] += attribution.retransmits
    return totals


# ----------------------------------------------------------- violations


def reconstruct_violations(
    topology,
    events: Sequence[Mapping[str, Any]],
    spans_by_node: Mapping[str, Sequence[Span]],
    *,
    end_t: float,
    exclude: Sequence[str] = (),
    byzantine: Sequence[str] = (),
) -> List[Dict[str, Any]]:
    """Each neighbour-exclusion overlap of a soak, walked back to spans.

    Re-runs the soak audit (:func:`repro.net.lock.hold_intervals` /
    ``neighbour_violations``) over the event log, then finds, for both
    nodes of every overlap, the spans that were open across it.  A node
    from ``byzantine`` is named as the localisation — its spans *are* the
    violation's causal context.
    """
    # Deferred: repro.net imports repro.obs at package init.
    from ..net.lock import hold_intervals, neighbour_violations

    intervals = hold_intervals(list(events), end_t=end_t)
    violations = neighbour_violations(topology, intervals, exclude=exclude)
    byz = set(byzantine)
    out: List[Dict[str, Any]] = []
    for violation in violations:
        spans: Dict[str, List[str]] = {}
        for node in (violation.node_a, violation.node_b):
            hits = []
            for span in spans_by_node.get(node, ()):
                close_t = span.close_t if span.close_t is not None else end_t
                if (span.open_t <= violation.overlap_end
                        and close_t >= violation.overlap_start):
                    hits.append(span.span_id)
            spans[node] = hits
        out.append(
            {
                "node_a": violation.node_a,
                "node_b": violation.node_b,
                "start": violation.overlap_start,
                "end": violation.overlap_end,
                "spans": spans,
                "byzantine": sorted(
                    n for n in (violation.node_a, violation.node_b) if n in byz
                ),
            }
        )
    return out


# ------------------------------------------------------------------- JSONL


@dataclass(frozen=True)
class TimelineFile:
    """A parsed timeline artefact."""

    header: Mapping[str, Any]
    entries: List[TimelineEntry]
    skipped: int = 0


def write_timeline(
    path: Path | str,
    entries: Sequence[TimelineEntry],
    *,
    header: Optional[Mapping[str, Any]] = None,
) -> Path:
    """The merged timeline as canonical JSONL — byte-stable for a given
    span-file set, which the CI trace-smoke job enforces with ``cmp``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    nodes = sorted({entry.node for entry in entries})
    head: Dict[str, Any] = {
        "format": TIMELINE_FORMAT_VERSION,
        "kind": "header",
        "source": TIMELINE_SOURCE,
        "nodes": nodes,
        "entries": len(entries),
    }
    if header:
        head.update(header)
    tmp = path.with_name(path.name + ".tmp")
    with tmp.open("w", encoding="utf-8") as handle:
        handle.write(json.dumps(head, **_CANONICAL) + "\n")
        for entry in entries:
            handle.write(json.dumps(entry.to_json(), **_CANONICAL) + "\n")
        handle.flush()
        os.fsync(handle.fileno())
    tmp.replace(path)
    return path


def read_timeline(path: Path | str) -> TimelineFile:
    """Parse a timeline artefact leniently (bad lines counted, not fatal)."""
    header: Dict[str, Any] = {}
    entries: List[TimelineEntry] = []
    skipped = 0
    with Path(path).open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
            except ValueError:
                skipped += 1
                continue
            if not isinstance(row, dict):
                skipped += 1
            elif row.get("kind") == "header":
                header = row
            elif row.get("kind") == "entry" and isinstance(row.get("lc"), int):
                entries.append(
                    TimelineEntry(
                        lc=row["lc"],
                        node=str(row.get("node", "?")),
                        seq=int(row.get("seq") or 0),
                        span=str(row.get("span", "?")),
                        name=str(row.get("name", "?")),
                        ev=str(row.get("ev", "?")),
                        t=float(row.get("t") or 0.0),
                        detail=dict(row.get("detail") or {}),
                    )
                )
            else:
                skipped += 1
    return TimelineFile(header=header, entries=entries, skipped=skipped)
