"""Prometheus text exposition, stdlib only.

The cluster supervisor's ``/metrics`` endpoint renders its live samples in
the Prometheus text format (version 0.0.4) so any off-the-shelf scraper —
or ``repro top`` — can consume them.  Only the subset the toolkit needs is
implemented: ``HELP``/``TYPE`` comments, labelled samples, gauges and
counters.  :func:`parse_prometheus` is the matching reader, tolerant of
comments and foreign lines the way every other loader in the repo is.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

PROM_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_NAME_OK = re.compile(r"[^a-zA-Z0-9_:]")
_SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?\s+(?P<value>[^\s]+)\s*$"
)
_LABEL = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


@dataclass(frozen=True)
class Sample:
    """One exposition line: ``name{labels} value``."""

    name: str
    value: float
    labels: Mapping[str, str] = field(default_factory=dict)
    kind: str = "gauge"  #: prometheus metric type (gauge/counter)
    help: str = ""

    def key(self) -> Tuple[str, Tuple[Tuple[str, str], ...]]:
        return (self.name, tuple(sorted(self.labels.items())))


def sanitize_name(name: str) -> str:
    """A repo metric name as a legal prometheus metric name."""
    cleaned = _NAME_OK.sub("_", name).strip("_")
    if not cleaned or cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return cleaned


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def render_prometheus(samples: Iterable[Sample]) -> str:
    """The samples as one exposition document.

    Samples are grouped by metric name (``HELP``/``TYPE`` emitted once per
    group) and sorted by name then labels, so the document is deterministic
    for a given sample set.
    """
    groups: Dict[str, List[Sample]] = {}
    for sample in samples:
        groups.setdefault(sample.name, []).append(sample)
    lines: List[str] = []
    for name in sorted(groups):
        group = sorted(groups[name], key=lambda s: tuple(sorted(s.labels.items())))
        first = group[0]
        if first.help:
            lines.append(f"# HELP {name} {first.help}")
        lines.append(f"# TYPE {name} {first.kind}")
        for sample in group:
            if sample.labels:
                rendered = ",".join(
                    f'{k}="{_escape_label(str(v))}"'
                    for k, v in sorted(sample.labels.items())
                )
                lines.append(f"{name}{{{rendered}}} {_format(sample.value)}")
            else:
                lines.append(f"{name} {_format(sample.value)}")
    return "\n".join(lines) + "\n"


def _format(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def parse_prometheus(text: str) -> List[Sample]:
    """Samples from an exposition document (comments and junk skipped).

    Proxied ``/metrics`` responses arrive with CRLF line endings, trailing
    whitespace, or a BOM prepended by a middlebox; all are tolerated — every
    line is stripped before matching, and the ``TYPE`` kind is the first
    token after the metric name so a stray ``\\r`` or annotation cannot leak
    into the recorded kind.
    """
    kinds: Dict[str, str] = {}
    samples: List[Sample] = []
    for line in text.lstrip("\ufeff").splitlines():
        line = line.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 4 and parts[1] == "TYPE":
                kinds[parts[2]] = parts[3].split()[0]
            continue
        match = _SAMPLE.match(line)
        if match is None:
            continue
        try:
            value = float(match.group("value"))
        except ValueError:
            continue
        labels: Dict[str, str] = {}
        raw = match.group("labels")
        if raw:
            for key, val in _LABEL.findall(raw):
                labels[key] = val.replace('\\"', '"').replace("\\n", "\n").replace(
                    "\\\\", "\\"
                )
        name = match.group("name")
        samples.append(
            Sample(name=name, value=value, labels=labels,
                   kind=kinds.get(name, "gauge"))
        )
    return samples


def find(
    samples: Iterable[Sample], name: str, **labels: str
) -> Optional[Sample]:
    """The first sample matching ``name`` and the given label subset."""
    for sample in samples:
        if sample.name != name:
            continue
        if all(sample.labels.get(k) == v for k, v in labels.items()):
            return sample
    return None


def sum_by_label(
    samples: Iterable[Sample], name: str, label: str
) -> Dict[str, float]:
    """``label value -> summed sample value`` for one metric family.

    How the gateway's per-reason shed counters and per-node queue depths
    roll up for a summary line without re-walking the sample list per
    label value.
    """
    totals: Dict[str, float] = {}
    for sample in samples:
        if sample.name != name:
            continue
        key = sample.labels.get(label)
        if key is not None:
            totals[key] = totals.get(key, 0.0) + sample.value
    return totals
