"""Event vocabulary of the observability layer.

The shared-memory engine already has an event type —
:class:`~repro.sim.trace.TraceEvent` with :class:`~repro.sim.trace.EventKind`
— and the bus reuses it unchanged.  The message-passing engine gets its own
kind enum here (its occurrences are sends, deliveries, and ticks rather than
guarded actions) but publishes the *same* event dataclass, so one subscriber,
one recorder, and one JSONL schema serve both models.
"""

from __future__ import annotations

import enum

from ..sim.trace import EventKind, TraceEvent

__all__ = ["EventKind", "MpEventKind", "NetEventKind", "TraceEvent"]


class MpEventKind(enum.Enum):
    """What a message-passing engine event records."""

    SEND = "mp-send"  #: A process offered a message to a channel (accepted).
    DROP = "mp-drop"  #: A channel dropped a message (loss or full).
    DELIVER = "mp-deliver"  #: The head of a channel reached its destination.
    TICK = "mp-tick"  #: A process took one spontaneous step.
    HAVOC = "mp-havoc"  #: A malicious process took one arbitrary step.
    CRASH = "mp-crash"  #: A process halted.
    MALICE_BEGIN = "mp-malice-begin"  #: A malicious crash began its arbitrary phase.
    TRANSIENT = "mp-transient"  #: A transient fault corrupted states/channels.
    RESTART = "mp-restart"  #: A halted process was relaunched in place.
    BYZANTINE = "mp-byzantine"  #: A process was subverted: it keeps talking
    #: protocol-shaped frames instead of halting (beyond the paper's model).


class NetEventKind(enum.Enum):
    """What a live-cluster (:mod:`repro.net`) event records.

    The live runtime publishes the same :class:`TraceEvent` dataclass as
    both engines; ``step`` carries a per-publisher monotonic sequence
    number (real time is environmental and goes in ``detail`` when an
    event needs it).
    """

    NODE_START = "net-node-start"  #: A node daemon began serving.
    NODE_STOP = "net-node-stop"  #: A node daemon shut down (or was killed).
    CONN_OPEN = "net-conn-open"  #: A peer/client connection was established.
    CONN_LOST = "net-conn-lost"  #: A connection dropped (reconnects follow).
    HELLO_OK = "net-hello-ok"  #: Protocol-version handshake succeeded.
    HELLO_BAD = "net-hello-bad"  #: Handshake rejected (version/garbage).
    SEND = "net-send"  #: A frame was written toward a peer.
    RECV = "net-recv"  #: A valid frame was decoded from a peer.
    GARBAGE = "net-garbage"  #: Bytes discarded by the garbage-tolerant decoder.
    CHAOS = "net-chaos"  #: The chaos proxy applied a scheduled fault.
    GRANT = "net-grant"  #: The lock service granted an acquire (entered eating).
    RELEASE = "net-release"  #: The lock service released (exited eating).
    CRASH_DETECT = "net-crash-detect"  #: The supervisor saw a node die.
    NODE_RESTART = "net-node-restart"  #: A crashed node was relaunched.
    CLIENT_RECONNECT = "net-client-reconnect"  #: A lock client re-established its link.
    CONVERGENCE = "net-convergence"  #: A restarted node issued its first client grant.
    BYZANTINE = "net-byzantine"  #: A "crashed" node was subverted and keeps
    #: emitting protocol-shaped frames instead of halting.
    ADVERSARY = "net-adversary"  #: The adaptive adversary took a decision.
    SPAN_OPEN = "net-span-open"  #: A trace span opened (lock-acquire lifecycle).
    SPAN_CLOSE = "net-span-close"  #: A trace span closed (grant latency in detail).
