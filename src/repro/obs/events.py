"""Event vocabulary of the observability layer.

The shared-memory engine already has an event type —
:class:`~repro.sim.trace.TraceEvent` with :class:`~repro.sim.trace.EventKind`
— and the bus reuses it unchanged.  The message-passing engine gets its own
kind enum here (its occurrences are sends, deliveries, and ticks rather than
guarded actions) but publishes the *same* event dataclass, so one subscriber,
one recorder, and one JSONL schema serve both models.
"""

from __future__ import annotations

import enum

from ..sim.trace import EventKind, TraceEvent

__all__ = ["EventKind", "MpEventKind", "TraceEvent"]


class MpEventKind(enum.Enum):
    """What a message-passing engine event records."""

    SEND = "mp-send"  #: A process offered a message to a channel (accepted).
    DROP = "mp-drop"  #: A channel dropped a message (loss or full).
    DELIVER = "mp-deliver"  #: The head of a channel reached its destination.
    TICK = "mp-tick"  #: A process took one spontaneous step.
    HAVOC = "mp-havoc"  #: A malicious process took one arbitrary step.
    CRASH = "mp-crash"  #: A process halted.
    MALICE_BEGIN = "mp-malice-begin"  #: A malicious crash began its arbitrary phase.
    TRANSIENT = "mp-transient"  #: A transient fault corrupted states/channels.
