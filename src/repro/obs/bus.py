"""A lightweight typed event bus.

Both engines publish their occurrences here: :class:`~repro.sim.engine.Engine`
publishes :class:`~repro.sim.trace.TraceEvent` (kinds from
:class:`~repro.sim.trace.EventKind`) and :class:`~repro.mp.engine.MpEngine`
publishes the same event type under :class:`~repro.obs.events.MpEventKind`.
Subscribers are plain callables; a subscription is either *per kind* or
*catch-all*.

The default is zero-overhead: engines hold no bus at all (``bus=None``) and
their emit path is a single ``is None`` test.  An attached bus with no
subscribers costs one truthiness check per event.  This is what lets the
trace/metrics machinery stay opt-in while being first-class when wanted.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Hashable, List, Protocol


class BusEvent(Protocol):
    """Anything publishable: an object with a hashable ``kind``."""

    kind: Hashable


Subscriber = Callable[[Any], None]


class EventBus:
    """Dispatches published events to per-kind and catch-all subscribers.

    Subscribers run synchronously, in subscription order, on the publisher's
    thread; a slow subscriber slows the run, which is the honest contract for
    instrumentation (no hidden queues, no reordering).
    """

    __slots__ = ("_by_kind", "_all")

    def __init__(self) -> None:
        self._by_kind: Dict[Hashable, List[Subscriber]] = {}
        self._all: List[Subscriber] = []

    # ---------------------------------------------------------- subscribe

    def subscribe(self, kind: Hashable, fn: Subscriber) -> Subscriber:
        """Call ``fn(event)`` for every published event of ``kind``."""
        self._by_kind.setdefault(kind, []).append(fn)
        return fn

    def subscribe_all(self, fn: Subscriber) -> Subscriber:
        """Call ``fn(event)`` for every published event, any kind."""
        self._all.append(fn)
        return fn

    def unsubscribe(self, fn: Subscriber) -> bool:
        """Remove ``fn`` wherever it is subscribed; True if it was found."""
        found = False
        if fn in self._all:
            self._all.remove(fn)
            found = True
        for subscribers in self._by_kind.values():
            if fn in subscribers:
                subscribers.remove(fn)
                found = True
        return found

    # ------------------------------------------------------------ publish

    @property
    def active(self) -> bool:
        """True when at least one subscriber is attached."""
        return bool(self._all) or any(self._by_kind.values())

    def publish(self, event: Any) -> None:
        """Deliver ``event`` to catch-all, then per-kind subscribers."""
        for fn in self._all:
            fn(event)
        subscribers = self._by_kind.get(event.kind)
        if subscribers:
            for fn in subscribers:
                fn(event)
