"""The metrics registry: counters, gauges, histograms, timers → JSONL.

Every quantitative claim later PRs make about performance or behaviour
should flow through one of these instruments, so the numbers always arrive
with the same schema and determinism contract as the campaign records:

* **deterministic metrics** (the default) are pure functions of the run —
  eats, depth histograms, invariant distances.  Writing them with
  ``include_meta=False`` produces a byte-stable file for a given seed.
* **meta metrics** (``meta=True`` at registration: wall-clock timers,
  steps/sec) are environmental.  They are written only when the caller asks
  (``include_meta=True``) and excluded from any byte-identical comparison.

The file format is versioned JSON Lines: one ``header`` line, then one line
per metric in name order.  ``read_metrics`` round-trips what ``write_metrics``
produced and tolerates foreign lines the way the campaign loader does.
"""

from __future__ import annotations

import json
import math
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterator, List, Mapping, Optional, Tuple

METRICS_FORMAT_VERSION = 1

_CANONICAL = dict(sort_keys=True, separators=(",", ":"))


def _canonical(payload: Any) -> str:
    return json.dumps(payload, **_CANONICAL)


def percentile_of_sorted(values: List[float], q: float) -> float:
    """Linearly interpolated quantile ``q`` (in ``[0, 1]``) of a pre-sorted
    sequence — numpy's default definition, without numpy.

    One shared definition serves the bench runner's robust stats and the
    instruments below, so "median" means the same thing in a ``BENCH_*.json``
    file and a metrics artefact.
    """
    if not values:
        raise ValueError("percentile of an empty sequence")
    if not 0.0 <= q <= 1.0:
        raise ValueError("q must be within [0, 1]")
    if len(values) == 1:
        return values[0]
    pos = q * (len(values) - 1)
    lo = int(math.floor(pos))
    hi = int(math.ceil(pos))
    frac = pos - lo
    # lo + (hi - lo) * frac, not lo*(1-frac) + hi*frac: the symmetric form
    # drifts by an ulp on identical neighbours (q=0.999 over a thousand
    # equal samples must return exactly that sample, not max + 1 ulp).
    # The clamp pins the tail inside [values[lo], values[hi]] — and hence
    # inside the observed min/max — against any residual rounding.
    result = values[lo] + (values[hi] - values[lo]) * frac
    return min(max(result, values[lo]), values[hi])


class Metric:
    """Base class: a named instrument that renders to one JSON payload."""

    type_name = "metric"

    def __init__(self, name: str, *, meta: bool = False) -> None:
        self.name = name
        self.meta = meta

    def payload(self) -> Dict[str, Any]:  # pragma: no cover - abstract-ish
        raise NotImplementedError


class Counter(Metric):
    """A monotonically increasing count."""

    type_name = "counter"

    def __init__(self, name: str, *, meta: bool = False) -> None:
        super().__init__(name, meta=meta)
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount

    def payload(self) -> Dict[str, Any]:
        return {"value": self.value}


class Gauge(Metric):
    """A value that can move both ways (last write wins)."""

    type_name = "gauge"

    def __init__(self, name: str, *, meta: bool = False) -> None:
        super().__init__(name, meta=meta)
        self.value: Any = None

    def set(self, value: Any) -> None:
        self.value = value

    def track_max(self, value: Any) -> None:
        """Keep the largest value observed."""
        if self.value is None or value > self.value:
            self.value = value

    def payload(self) -> Dict[str, Any]:
        return {"value": self.value}


class Histogram(Metric):
    """Exact-value buckets over a discrete observation stream.

    The quantities the paper's probes histogram (depths, chain lengths,
    eating-pair counts) are small integers, so exact buckets beat
    logarithmic ones: the ``depth > D`` tail is visible bucket by bucket.
    """

    type_name = "histogram"

    def __init__(self, name: str, *, meta: bool = False) -> None:
        super().__init__(name, meta=meta)
        self.buckets: Dict[Any, int] = {}
        self.count = 0
        self.total = 0

    def observe(self, value: Any, weight: int = 1) -> None:
        self.buckets[value] = self.buckets.get(value, 0) + weight
        self.count += weight
        self.total += value * weight

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else math.nan

    def percentile(self, q: float) -> Any:
        """Smallest bucket value covering quantile ``q`` of the mass
        (nearest-rank over the cumulative bucket counts)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be within [0, 1]")
        if not self.count:
            return None
        # min() guards float-precision overshoot in q*count (e.g. q=0.999
        # over a large merged count can ceil to count+1, which would walk
        # past every bucket); nearest-rank must always land on a bucket, so
        # the result stays within the observed min/max by construction —
        # merge-after-merge chains included.
        target = min(self.count, max(1, math.ceil(q * self.count)))
        cumulative = 0
        ordered = sorted(self.buckets)
        for value in ordered:
            cumulative += self.buckets[value]
            if cumulative >= target:
                return value
        return ordered[-1]

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram's buckets into this one (shard merge)."""
        for value, weight in other.buckets.items():
            self.observe(value, weight)

    def payload(self) -> Dict[str, Any]:
        # JSON object keys must be strings; keep buckets sorted by the
        # underlying value so the rendering is deterministic and readable.
        buckets = {str(k): self.buckets[k] for k in sorted(self.buckets)}
        return {"buckets": buckets, "count": self.count, "sum": self.total}


class Timer(Metric):
    """Wall-clock durations (seconds).  Meta by default — wall time is
    environmental and must never enter a byte-identical artefact."""

    type_name = "timer"

    def __init__(self, name: str, *, meta: bool = True) -> None:
        super().__init__(name, meta=meta)
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        #: Raw observations, kept so percentiles and merges stay exact.
        self.samples: List[float] = []

    def observe(self, seconds: float) -> None:
        self.count += 1
        self.total += seconds
        self.min = seconds if self.min is None else min(self.min, seconds)
        self.max = seconds if self.max is None else max(self.max, seconds)
        self.samples.append(seconds)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else math.nan

    def percentile(self, q: float) -> Optional[float]:
        """Interpolated quantile of the observed durations."""
        if not self.samples:
            return None
        return percentile_of_sorted(sorted(self.samples), q)

    def merge(self, other: "Timer") -> None:
        """Fold another timer's observations into this one."""
        for seconds in other.samples:
            self.observe(seconds)

    def payload(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "total_s": round(self.total, 9),
            "min_s": None if self.min is None else round(self.min, 9),
            "max_s": None if self.max is None else round(self.max, 9),
            "mean_s": None if not self.count else round(self.mean, 9),
            "p50_s": _round_opt(self.percentile(0.5)),
            "p90_s": _round_opt(self.percentile(0.9)),
        }


def _round_opt(value: Optional[float]) -> Optional[float]:
    return None if value is None else round(value, 9)


class Series(Metric):
    """An explicit ``(step, value)`` timeline — the paper's witnesses are
    trajectories (invariant distance over time, eating pairs over time), not
    just endpoints."""

    type_name = "series"

    def __init__(self, name: str, *, meta: bool = False) -> None:
        super().__init__(name, meta=meta)
        self.points: List[Tuple[int, Any]] = []

    def append(self, step: int, value: Any) -> None:
        self.points.append((step, value))

    def payload(self) -> Dict[str, Any]:
        return {"points": [[s, v] for s, v in self.points]}


class MetricsRegistry:
    """A namespace of instruments, created on first use.

    ``counter("a/b")`` twice returns the same object; asking for an existing
    name with a different instrument type is an error (it would silently
    fork the measurement).
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, Metric] = {}

    def _get(self, cls, name: str, **kwargs) -> Any:
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, cls):
                raise TypeError(
                    f"metric {name!r} already registered as {existing.type_name}"
                )
            return existing
        metric = cls(name, **kwargs)
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, *, meta: bool = False) -> Counter:
        return self._get(Counter, name, meta=meta)

    def gauge(self, name: str, *, meta: bool = False) -> Gauge:
        return self._get(Gauge, name, meta=meta)

    def histogram(self, name: str, *, meta: bool = False) -> Histogram:
        return self._get(Histogram, name, meta=meta)

    def timer(self, name: str, *, meta: bool = True) -> Timer:
        return self._get(Timer, name, meta=meta)

    def series(self, name: str, *, meta: bool = False) -> Series:
        return self._get(Series, name, meta=meta)

    # --------------------------------------------------------------- views

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __getitem__(self, name: str) -> Metric:
        return self._metrics[name]

    def names(self) -> Tuple[str, ...]:
        return tuple(sorted(self._metrics))

    def snapshot(self, *, include_meta: bool = True) -> Dict[str, Dict[str, Any]]:
        """``{name: {"type": ..., **payload}}`` in name order."""
        result: Dict[str, Dict[str, Any]] = {}
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if metric.meta and not include_meta:
                continue
            result[name] = {"type": metric.type_name, **metric.payload()}
        return result


# ------------------------------------------------------------------ JSONL


def metrics_lines(
    registry: MetricsRegistry,
    *,
    header: Optional[Mapping[str, Any]] = None,
    include_meta: bool = False,
) -> Iterator[str]:
    """The registry as versioned JSONL: header line, then metric lines."""
    head: Dict[str, Any] = {"format": METRICS_FORMAT_VERSION, "kind": "header"}
    if header:
        head.update(header)
    yield _canonical(head)
    for name, payload in registry.snapshot(include_meta=include_meta).items():
        yield _canonical({"kind": "metric", "name": name, **payload})


def write_metrics(
    path: Path | str,
    registry: MetricsRegistry,
    *,
    header: Optional[Mapping[str, Any]] = None,
    include_meta: bool = False,
) -> Path:
    """Write the registry to ``path`` (parents created, atomic replace,
    fsynced — a teardown racing a SIGKILL keeps the artefact tail)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    with tmp.open("w", encoding="utf-8") as handle:
        for line in metrics_lines(registry, header=header, include_meta=include_meta):
            handle.write(line + "\n")
        handle.flush()
        os.fsync(handle.fileno())
    tmp.replace(path)
    return path


@dataclass(frozen=True)
class MetricsFile:
    """A parsed metrics JSONL file."""

    header: Mapping[str, Any]
    metrics: Mapping[str, Mapping[str, Any]]
    #: Lines that were not valid metric/header records (foreign or truncated).
    skipped: int = 0


def read_metrics(path: Path | str) -> MetricsFile:
    """Parse a file written by :func:`write_metrics`.

    Unknown or truncated lines are counted, not fatal — the same tolerance
    the campaign checkpoint loader applies.
    """
    path = Path(path)
    header: Dict[str, Any] = {}
    metrics: Dict[str, Dict[str, Any]] = {}
    skipped = 0
    with path.open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError:
                skipped += 1
                continue
            if not isinstance(payload, dict):
                skipped += 1
                continue
            if payload.get("kind") == "header":
                if payload.get("format") != METRICS_FORMAT_VERSION:
                    skipped += 1
                    continue
                header = {
                    k: v for k, v in payload.items() if k not in ("kind",)
                }
            elif payload.get("kind") == "metric" and "name" in payload:
                name = payload["name"]
                metrics[name] = {
                    k: v for k, v in payload.items() if k not in ("kind", "name")
                }
            else:
                skipped += 1
    return MetricsFile(header=header, metrics=metrics, skipped=skipped)
