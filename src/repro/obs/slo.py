"""Declarative SLOs, error budgets, and burn rates over the repo's artefacts.

The paper's guarantees are quantitative — neighbour exclusion always,
failure locality 2, bounded hunger, convergence after a malicious crash —
but until now the repo reported them as raw metric streams a human had to
eyeball.  This module is the judgment layer: a versioned, declarative
:class:`SloSpec` (grant-latency percentiles, per-client fairness, waiting
chains, convergence deadlines, hunger bounds, and safety as a zero-budget
*hard* objective) evaluated two ways:

* **offline**, against any mix of existing artefacts — soak event logs,
  span files, flight-recorder dumps, metrics JSONL — producing a
  byte-stable ``slo-report.json`` (``repro slo``);
* **live**, incrementally against the supervisor's event stream
  (:class:`LiveSloEvaluator`), where a newly exhausted budget annotates
  the culprit's span and triggers a flight-recorder dump, and remaining
  budget / burn rate are exported as ``/metrics`` gauges.

Error-budget math is the standard SRE formulation: an objective with
``target`` 0.99 tolerates 1% bad observations; ``budget_spent`` is the
fraction of that allowance consumed, and the *burn rate* is the worst
``window_s``-wide window's bad fraction divided by the budget (a burn of
1.0 sustained for the whole run exactly exhausts it).  Hard objectives
(``target`` = 1.0, and ``safety`` always) have no allowance: any bad
observation exhausts them, and ``budget_spent`` counts the offences.

Determinism contract: a report is a pure function of the spec and the
artefacts.  Floats are rounded to 6 decimals, keys are sorted, and no
wall-clock or environment field enters the document, so running
``repro slo`` twice over the same inputs writes byte-identical reports.
This is the sensor half of ROADMAP's feedback-controller item: a later
controller actuates on these verdicts instead of raw metrics.
"""

from __future__ import annotations

import json
import math
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from .metrics import percentile_of_sorted

SLO_FORMAT_VERSION = 1
#: ``kind`` values of the two SLO document families.
SLO_SPEC_KIND = "slo-spec"
SLO_REPORT_KIND = "slo-report"

#: Every objective kind the evaluator understands.
OBJECTIVE_KINDS = (
    "grant_latency",  #: fraction of grant waits <= threshold (percentile SLO)
    "fairness",  #: coefficient of variation of per-node mean grant waits
    "waiting_chain",  #: fraction of chain-length samples <= threshold
    "convergence",  #: every restart's convergence deadline <= threshold
    "hunger",  #: grant waits <= threshold at target 1.0 — the hunger bound
    "safety",  #: neighbour-exclusion violations; zero-budget, always hard
)

#: Span names whose lifecycle measures lock-acquire latency.
_WAIT_SPANS = ("acquire", "hunger")

_CANONICAL: Dict[str, Any] = {"sort_keys": True, "separators": (",", ":")}


def _round6(value: Optional[float]) -> Optional[float]:
    return None if value is None else round(float(value), 6)


# ------------------------------------------------------------------- spec


@dataclass(frozen=True)
class SloObjective:
    """One objective: a threshold, a target good-fraction, a burn window.

    ``safety`` ignores ``threshold`` (any violation is bad) and is hard
    regardless of ``target``.  ``fairness`` is a scalar objective — the
    budget is the headroom under ``threshold``, and ``target`` is unused.
    """

    name: str
    kind: str
    threshold: Optional[float] = None
    target: float = 1.0
    window_s: float = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("objective needs a name")
        if self.kind not in OBJECTIVE_KINDS:
            raise ValueError(
                f"objective {self.name!r}: unknown kind {self.kind!r} "
                f"(one of {', '.join(OBJECTIVE_KINDS)})"
            )
        if self.kind != "safety" and self.threshold is None:
            raise ValueError(f"objective {self.name!r}: threshold required")
        if self.threshold is not None and self.threshold <= 0:
            raise ValueError(f"objective {self.name!r}: threshold must be positive")
        if not 0.0 < self.target <= 1.0:
            raise ValueError(f"objective {self.name!r}: target must be in (0, 1]")
        if self.window_s <= 0:
            raise ValueError(f"objective {self.name!r}: window_s must be positive")

    @property
    def hard(self) -> bool:
        return self.kind == "safety" or (
            self.kind != "fairness" and self.target >= 1.0
        )

    @property
    def budget(self) -> float:
        """Allowed bad fraction (0.0 for hard objectives)."""
        return 0.0 if self.hard else 1.0 - self.target

    @staticmethod
    def from_json(doc: Mapping[str, Any]) -> "SloObjective":
        if not isinstance(doc, Mapping):
            raise ValueError("objective must be a JSON object")
        threshold = doc.get("threshold", doc.get("threshold_s"))
        return SloObjective(
            name=str(doc.get("name", "")),
            kind=str(doc.get("kind", "")),
            threshold=None if threshold is None else float(threshold),
            target=float(doc.get("target", 1.0)),
            window_s=float(doc.get("window_s", 1.0)),
        )

    def to_json(self) -> Dict[str, Any]:
        doc: Dict[str, Any] = {
            "name": self.name,
            "kind": self.kind,
            "target": self.target,
            "window_s": self.window_s,
        }
        if self.threshold is not None:
            doc["threshold"] = self.threshold
        return doc


@dataclass(frozen=True)
class SloSpec:
    """A named, versioned set of objectives."""

    name: str
    objectives: Tuple[SloObjective, ...]

    def __post_init__(self) -> None:
        if not self.objectives:
            raise ValueError("an SLO spec needs at least one objective")
        names = [o.name for o in self.objectives]
        if len(set(names)) != len(names):
            raise ValueError("objective names must be unique")

    @staticmethod
    def from_json(doc: Mapping[str, Any]) -> "SloSpec":
        if not isinstance(doc, Mapping):
            raise ValueError("spec must be a JSON object")
        if doc.get("kind") != SLO_SPEC_KIND:
            raise ValueError(f'spec kind must be "{SLO_SPEC_KIND}"')
        if doc.get("format") != SLO_FORMAT_VERSION:
            raise ValueError(f"unsupported spec format {doc.get('format')!r}")
        raw = doc.get("objectives")
        if not isinstance(raw, Sequence) or isinstance(raw, (str, bytes)):
            raise ValueError("spec objectives must be a list")
        return SloSpec(
            name=str(doc.get("name", "slo")),
            objectives=tuple(SloObjective.from_json(o) for o in raw),
        )

    def to_json(self) -> Dict[str, Any]:
        return {
            "format": SLO_FORMAT_VERSION,
            "kind": SLO_SPEC_KIND,
            "name": self.name,
            "objectives": [o.to_json() for o in self.objectives],
        }

    def objective(self, name: str) -> SloObjective:
        for o in self.objectives:
            if o.name == name:
                return o
        raise KeyError(name)


def read_slo_spec(path: Path | str) -> SloSpec:
    """Load and validate a spec file; :class:`ValueError` names the path."""
    path = Path(path)
    try:
        doc = json.loads(path.read_text(encoding="utf-8"))
    except ValueError as exc:
        raise ValueError(f"{path}: not valid JSON ({exc})") from exc
    try:
        return SloSpec.from_json(doc)
    except ValueError as exc:
        raise ValueError(f"{path}: {exc}") from exc


# ----------------------------------------------------------- observations


@dataclass
class SloObservations:
    """Everything an evaluation consumes, whatever artefacts it came from.

    All timestamps are run-relative seconds (the artefacts' ``t``), so
    observations from different files of the same run line up.
    """

    duration_s: float = 0.0
    #: ``(t, node, wait_s)`` — one lock-acquire lifecycle each.
    grants: List[Tuple[float, str, float]] = field(default_factory=list)
    #: ``(t, length)`` — waiting-chain length whenever the waiting set moved.
    chain_samples: List[Tuple[float, int]] = field(default_factory=list)
    #: node -> seconds from relaunch to first client-matched grant.
    convergence_s: Dict[str, float] = field(default_factory=dict)
    #: Overlap-start times of neighbour-exclusion violations.
    violation_times: List[float] = field(default_factory=list)
    #: Violations known only as a count (metrics artefacts carry no times).
    violation_count: int = 0

    @property
    def violations(self) -> int:
        return max(self.violation_count, len(self.violation_times))

    def observe_duration(self, duration: Any) -> None:
        if isinstance(duration, (int, float)):
            self.duration_s = max(self.duration_s, float(duration))

    def counts(self) -> Dict[str, int]:
        return {
            "grants": len(self.grants),
            "chain_samples": len(self.chain_samples),
            "convergence": len(self.convergence_s),
            "violations": self.violations,
        }

    # ------------------------------------------------- artefact ingestion

    def add_events(
        self, header: Mapping[str, Any], events: Sequence[Mapping[str, Any]]
    ) -> None:
        """Digest a cluster/soak event log — the richest artefact: grant
        waits, replayed waiting chains, convergence deadlines, and the
        neighbour-exclusion audit all come out of one file."""
        # Deferred: repro.net imports this module at package level.
        from ..net.lock import hold_intervals, neighbour_violations
        from ..sim.topology import from_spec

        end_t = max((float(e.get("t", 0.0)) for e in events), default=0.0)
        self.observe_duration(header.get("duration_s"))
        self.observe_duration(end_t)
        topology = None
        spec = header.get("topology")
        if isinstance(spec, str):
            try:
                topology = from_spec(spec)
            except ValueError:
                topology = None
        for event in events:
            kind = event.get("event")
            node = event.get("node")
            detail = event.get("detail") or {}
            if kind == "net-span-close" and node is not None:
                wait = detail.get("wait_s")
                if isinstance(wait, (int, float)):
                    self.grants.append(
                        (float(event.get("t", 0.0)), str(node), float(wait))
                    )
            elif kind == "net-convergence" and node is not None:
                elapsed = detail.get("elapsed_s")
                if isinstance(elapsed, (int, float)):
                    self.convergence_s[str(node)] = float(elapsed)
        conv = header.get("convergence_s")
        if isinstance(conv, Mapping):
            for node, value in conv.items():
                if isinstance(value, (int, float)):
                    self.convergence_s[str(node)] = float(value)
        if topology is not None:
            killed = [str(k) for k in header.get("killed") or ()]
            intervals = hold_intervals(events, end_t=end_t)
            for violation in neighbour_violations(
                topology, intervals, exclude=killed
            ):
                self.violation_times.append(violation.overlap_start)
            self.chain_samples.extend(_replay_chains(topology, events))

    def add_spans(self, spans: Sequence[Any]) -> None:
        """Grant waits from a span artefact (``spans-*`` or ``flight-*``):
        the interval from span open to its ``grant`` event."""
        for span in spans:
            if span.name not in _WAIT_SPANS:
                continue
            grant = span.first_event("grant")
            if grant is None:
                continue
            wait = round(grant.t - span.open_t, 6)
            if wait >= 0:
                self.grants.append((grant.t, span.node, wait))
            self.observe_duration(span.close_t)
            self.observe_duration(grant.t)

    def add_metrics(
        self, header: Mapping[str, Any], metrics: Mapping[str, Mapping[str, Any]]
    ) -> None:
        """Safety verdict and convergence gauges from a metrics artefact."""
        self.observe_duration(header.get("duration_s"))
        violations = header.get("violations")
        if isinstance(violations, int):
            self.violation_count = max(self.violation_count, violations)
        prefix = "cluster/convergence_s/"
        for name, payload in metrics.items():
            if name.startswith(prefix):
                value = payload.get("value")
                if isinstance(value, (int, float)):
                    self.convergence_s[name[len(prefix):]] = float(value)

    def add_loadgen(self, doc: Mapping[str, Any]) -> None:
        """Grant waits and the safety verdict from a ``loadgen-report``.

        The report stores exact (thinned) per-node wait samples but no
        per-grant timestamps, so grants get synthetic times spread evenly
        over the run — percentile and fairness objectives are exact,
        windowed burn rates are a uniform smear.
        """
        results = doc.get("results") or {}
        duration = results.get("duration_s")
        self.observe_duration(duration)
        span = (
            float(duration)
            if isinstance(duration, (int, float)) and duration > 0
            else max(self.duration_s, 1.0)
        )

        def _spread(samples: Any, node: str) -> bool:
            if not isinstance(samples, list) or not samples:
                return False
            n = len(samples)
            added = False
            for i, wait in enumerate(samples):
                if isinstance(wait, (int, float)):
                    t = span * (i + 1) / (n + 1)
                    self.grants.append((t, node, float(wait)))
                    added = True
            return added

        per_node = results.get("per_node")
        added_any = False
        if isinstance(per_node, Mapping):
            for label, node_doc in sorted(per_node.items()):
                if isinstance(node_doc, Mapping):
                    added_any |= _spread(
                        node_doc.get("samples_s"), str(label)
                    )
        if not added_any:
            _spread(results.get("latency_samples_s"), "gateway")
        safety = results.get("safety")
        if isinstance(safety, Mapping):
            violations = safety.get("violations")
            if isinstance(violations, int):
                self.violation_count = max(self.violation_count, violations)


def neighbor_map(topology: Any) -> Dict[str, List[str]]:
    """``repr(pid) -> [repr(neighbour), ...]`` — the evaluator's view."""
    return {
        repr(p): [repr(q) for q in topology.neighbors(p)]
        for p in topology.nodes
    }


def chain_length(
    waiting: Mapping[str, int],
    holding: "set[str]",
    neighbors: Mapping[str, Sequence[str]],
) -> int:
    """Greedy longest-waiting-head chain — mirrors
    :meth:`repro.net.cluster.ClusterSupervisor.waiting_chain` so live and
    offline evaluations agree."""
    live = {n for n, count in waiting.items() if count > 0 and n not in holding}
    if not live:
        return 0
    chain = [min(live)]
    seen = set(chain)
    while True:
        frontier = [
            n for n in neighbors.get(chain[-1], ())
            if n in live and n not in seen
        ]
        if not frontier:
            return len(chain)
        chain.append(min(frontier))
        seen.add(chain[-1])


def _replay_chains(
    topology: Any, events: Sequence[Mapping[str, Any]]
) -> List[Tuple[float, int]]:
    """Waiting-chain samples replayed from span/grant/release lifecycles."""
    neighbors = neighbor_map(topology)
    waiting: Dict[str, int] = {}
    holding: set = set()
    samples: List[Tuple[float, int]] = []
    for event in sorted(events, key=lambda e: float(e.get("t", 0.0))):
        node = event.get("node")
        if node is None:
            continue
        kind = event.get("event")
        detail = event.get("detail") or {}
        changed = False
        if kind == "net-span-open" and detail.get("name") in _WAIT_SPANS:
            waiting[node] = waiting.get(node, 0) + 1
            changed = True
        elif kind == "net-span-close" and detail.get("name") in _WAIT_SPANS:
            left = waiting.get(node, 0) - 1
            if left > 0:
                waiting[node] = left
            else:
                waiting.pop(node, None)
            changed = True
        elif kind == "net-grant":
            holding.add(node)
            changed = True
        elif kind == "net-release":
            holding.discard(node)
            changed = True
        if changed:
            samples.append(
                (float(event.get("t", 0.0)),
                 chain_length(waiting, holding, neighbors))
            )
    return samples


# -------------------------------------------------------------- evaluation


@dataclass(frozen=True)
class ObjectiveVerdict:
    """One objective's budget accounting.  All floats pre-rounded (6dp)."""

    name: str
    kind: str
    hard: bool
    threshold: Optional[float]
    target: float
    total: int  #: observations considered
    bad: int  #: observations over threshold (or violations)
    value: Optional[float]  #: headline measurement (quantile / CV / max / count)
    good_fraction: Optional[float]
    budget_spent: float  #: >= 1.0 means exhausted (hard: offence count)
    burn_rate: Optional[float]  #: worst ``window_s`` window's burn

    @property
    def ok(self) -> bool:
        return self.budget_spent < 1.0

    @property
    def budget_remaining(self) -> float:
        return max(0.0, round(1.0 - self.budget_spent, 6))

    def to_json(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "kind": self.kind,
            "hard": self.hard,
            "threshold": self.threshold,
            "target": self.target,
            "total": self.total,
            "bad": self.bad,
            "value": self.value,
            "good_fraction": self.good_fraction,
            "budget_spent": self.budget_spent,
            "budget_remaining": self.budget_remaining,
            "burn_rate": self.burn_rate,
            "ok": self.ok,
        }


def _worst_window_burn(
    points: Sequence[Tuple[float, bool]],
    duration_s: float,
    window_s: float,
    budget: float,
) -> Optional[float]:
    """The worst ``window_s``-wide window's burn rate over ``(t, bad)``
    points; hard objectives (budget 0) burn one unit per offence."""
    if not points or duration_s <= 0:
        return None
    windows = max(1, math.ceil(duration_s / window_s))
    totals = [0] * windows
    bads = [0] * windows
    for t, bad in points:
        i = min(windows - 1, max(0, int(t // window_s)))
        totals[i] += 1
        if bad:
            bads[i] += 1
    worst = 0.0
    for total, bad in zip(totals, bads):
        if total == 0:
            continue
        if budget > 0:
            worst = max(worst, (bad / total) / budget)
        else:
            worst = max(worst, float(bad))
    return worst


def evaluate_objective(
    objective: SloObjective,
    obs: SloObservations,
    *,
    burn: bool = True,
) -> ObjectiveVerdict:
    """One objective against the accumulated observations.

    ``burn=False`` skips the windowed pass — the live evaluator's cheap
    exhaustion check on every observation.
    """
    threshold = objective.threshold
    points: List[Tuple[float, bool]] = []
    value: Optional[float] = None
    total = bad = 0
    budget_spent: Optional[float] = None

    if objective.kind in ("grant_latency", "hunger"):
        total = len(obs.grants)
        points = [(t, wait > threshold) for t, _node, wait in obs.grants]
        bad = sum(1 for _t, is_bad in points if is_bad)
        if total:
            ordered = sorted(wait for _t, _node, wait in obs.grants)
            value = percentile_of_sorted(ordered, objective.target)
    elif objective.kind == "waiting_chain":
        total = len(obs.chain_samples)
        points = [(t, length > threshold) for t, length in obs.chain_samples]
        bad = sum(1 for _t, is_bad in points if is_bad)
        if total:
            value = float(max(length for _t, length in obs.chain_samples))
    elif objective.kind == "convergence":
        deadlines = sorted(obs.convergence_s.values())
        total = len(deadlines)
        bad = sum(1 for v in deadlines if v > threshold)
        if deadlines:
            value = deadlines[-1]
    elif objective.kind == "safety":
        total = bad = obs.violations
        value = float(obs.violations)
        points = [(t, True) for t in obs.violation_times]
    elif objective.kind == "fairness":
        by_node: Dict[str, List[float]] = {}
        for _t, node, wait in obs.grants:
            by_node.setdefault(node, []).append(wait)
        means = [sum(waits) / len(waits) for waits in by_node.values()]
        total = len(means)
        if means:
            mean = sum(means) / len(means)
            if mean > 0 and len(means) > 1:
                variance = sum((m - mean) ** 2 for m in means) / len(means)
                value = math.sqrt(variance) / mean
            else:
                value = 0.0
        # Scalar objective: the budget is the headroom under the threshold.
        budget_spent = 0.0 if value is None else value / threshold
        bad = 1 if budget_spent is not None and budget_spent >= 1.0 else 0

    good_fraction = None if not total else (total - bad) / total
    if budget_spent is None:
        if objective.hard:
            budget_spent = float(bad)
        elif total:
            budget_spent = (bad / total) / objective.budget
        else:
            budget_spent = 0.0
    burn_rate = (
        _worst_window_burn(
            points, obs.duration_s, objective.window_s, objective.budget
        )
        if burn and objective.kind != "fairness"
        else None
    )
    return ObjectiveVerdict(
        name=objective.name,
        kind=objective.kind,
        hard=objective.hard,
        threshold=_round6(threshold),
        target=_round6(objective.target) or objective.target,
        total=total,
        bad=bad,
        value=_round6(value),
        good_fraction=_round6(good_fraction),
        budget_spent=_round6(budget_spent) or 0.0,
        burn_rate=_round6(burn_rate),
    )


@dataclass(frozen=True)
class SloReport:
    """The full evaluation: one verdict per objective, plus provenance-free
    observation counts (nothing here depends on the environment)."""

    spec_name: str
    duration_s: float
    verdicts: Tuple[ObjectiveVerdict, ...]
    observations: Dict[str, int]

    @property
    def exhausted(self) -> List[str]:
        return [v.name for v in self.verdicts if not v.ok]

    @property
    def ok(self) -> bool:
        return not self.exhausted

    def to_json(self) -> Dict[str, Any]:
        return {
            "format": SLO_FORMAT_VERSION,
            "kind": SLO_REPORT_KIND,
            "spec": self.spec_name,
            "ok": self.ok,
            "exhausted": self.exhausted,
            "duration_s": self.duration_s,
            "observations": dict(sorted(self.observations.items())),
            "objectives": [v.to_json() for v in self.verdicts],
        }


def evaluate(spec: SloSpec, obs: SloObservations) -> SloReport:
    """Every objective against the accumulated observations."""
    return SloReport(
        spec_name=spec.name,
        duration_s=_round6(obs.duration_s) or 0.0,
        verdicts=tuple(evaluate_objective(o, obs) for o in spec.objectives),
        observations=obs.counts(),
    )


def write_slo_report(path: Path | str, report: SloReport) -> Path:
    """The byte-stable report document (atomic replace, fsynced)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    body = json.dumps(report.to_json(), sort_keys=True, indent=2) + "\n"
    tmp = path.with_name(path.name + ".tmp")
    with tmp.open("w", encoding="utf-8") as handle:
        handle.write(body)
        handle.flush()
        os.fsync(handle.fileno())
    tmp.replace(path)
    return path


def read_slo_report(path: Path | str) -> Dict[str, Any]:
    """Parse a report document; :class:`ValueError` if it is not one."""
    path = Path(path)
    try:
        doc = json.loads(path.read_text(encoding="utf-8"))
    except ValueError as exc:
        raise ValueError(f"{path}: not valid JSON") from exc
    if not isinstance(doc, dict) or doc.get("kind") != SLO_REPORT_KIND:
        raise ValueError(f"{path}: not an slo-report document")
    return doc


def format_report(report: SloReport) -> str:
    """The human-readable verdict table ``repro slo`` prints.

    The last line is the machine-greppable budget verdict:
    ``budget: OK ...`` or ``budget: EXHAUSTED ...``.
    """
    lines = [
        f"slo spec: {report.spec_name}  "
        f"(window {report.duration_s}s, "
        + ", ".join(f"{k} {v}" for k, v in sorted(report.observations.items()))
        + ")"
    ]
    width = max(len(v.name) for v in report.verdicts)
    for v in report.verdicts:
        status = "ok" if v.ok else "EXHAUSTED"
        detail = f"{v.kind:<13}"
        if v.value is not None:
            detail += f" value={v.value:g}"
        if v.threshold is not None:
            detail += f" thr={v.threshold:g}"
        if v.good_fraction is not None:
            detail += f" good={v.good_fraction:.2%} ({v.total - v.bad}/{v.total})"
        if v.hard:
            detail += " hard"
        detail += f" spent={v.budget_spent:g}"
        if v.burn_rate is not None:
            detail += f" burn={v.burn_rate:g}"
        lines.append(f"  {v.name:<{width}}  {detail}  {status}")
    if report.ok:
        lines.append(
            f"budget: OK — {len(report.verdicts)} objectives within budget"
        )
    else:
        lines.append("budget: EXHAUSTED — " + ", ".join(report.exhausted))
    return "\n".join(lines)


# ------------------------------------------------------------ live stream


class LiveSloEvaluator:
    """Incremental evaluation over the supervisor's collected event rows.

    Feeds the same :class:`SloObservations` the offline path uses, so the
    live verdict and the post-run report agree.  :meth:`on_event` returns
    the objectives whose budget that event newly exhausted (with the
    implicated nodes for safety hits) so the supervisor can annotate spans
    and trigger flight dumps; :meth:`samples` exports remaining budget and
    burn rate as Prometheus gauges.
    """

    def __init__(self, spec: SloSpec, topology: Any) -> None:
        self.spec = spec
        self.obs = SloObservations()
        self._neighbors = neighbor_map(topology)
        self._waiting: Dict[str, int] = {}
        self._holding: set = set()
        self._exhausted: set = set()

    def on_event(self, row: Mapping[str, Any]) -> List[Dict[str, Any]]:
        t = float(row.get("t", 0.0))
        self.obs.observe_duration(t)
        node = row.get("node")
        kind = row.get("event")
        detail = row.get("detail") or {}
        observed = False
        chain_moved = False
        implicated: List[str] = []
        if node is not None:
            if kind == "net-span-close":
                wait = detail.get("wait_s")
                if isinstance(wait, (int, float)):
                    self.obs.grants.append((t, node, float(wait)))
                    observed = True
                if detail.get("name") in _WAIT_SPANS:
                    left = self._waiting.get(node, 0) - 1
                    if left > 0:
                        self._waiting[node] = left
                    else:
                        self._waiting.pop(node, None)
                    chain_moved = True
            elif kind == "net-span-open":
                if detail.get("name") in _WAIT_SPANS:
                    self._waiting[node] = self._waiting.get(node, 0) + 1
                    chain_moved = True
            elif kind == "net-grant":
                for peer in self._neighbors.get(node, ()):
                    if peer in self._holding:
                        # Neighbour exclusion broken right now, live.
                        self.obs.violation_times.append(t)
                        observed = True
                        implicated = sorted({node, peer, *implicated})
                self._holding.add(node)
                chain_moved = True
            elif kind == "net-release":
                self._holding.discard(node)
                chain_moved = True
            elif kind in ("net-crash-detect", "net-node-stop"):
                # A dead node holds nothing: a malicious crash mid-hold
                # must not read as its neighbours breaking exclusion
                # (the offline audit likewise excludes killed holders).
                if node in self._holding or node in self._waiting:
                    self._holding.discard(node)
                    self._waiting.pop(node, None)
                    chain_moved = True
            elif kind == "net-convergence":
                elapsed = detail.get("elapsed_s")
                if isinstance(elapsed, (int, float)):
                    self.obs.convergence_s[node] = float(elapsed)
                    observed = True
        if chain_moved:
            self.obs.chain_samples.append(
                (t, chain_length(self._waiting, self._holding, self._neighbors))
            )
            observed = True
        if not observed:
            return []
        hits: List[Dict[str, Any]] = []
        for objective in self.spec.objectives:
            if objective.name in self._exhausted:
                continue
            verdict = evaluate_objective(objective, self.obs, burn=False)
            if not verdict.ok:
                self._exhausted.add(objective.name)
                hits.append({"objective": objective.name, "nodes": implicated})
        return hits

    @property
    def exhausted(self) -> List[str]:
        return sorted(self._exhausted)

    def reconcile_safety(self, times: Sequence[float]) -> None:
        """Adopt the offline interval audit's violation set wholesale.

        The audit is authoritative both ways: it catches overlaps the
        event order hid from the live check, and it excludes crashed
        holders the live check may have counted before the crash was
        detected.  An objective the live check flagged stays in
        :attr:`exhausted` (its flight dumps already fired), but the final
        :meth:`report` reflects the audited set."""
        self.obs.violation_times = sorted(float(t) for t in times)

    def report(self) -> SloReport:
        return evaluate(self.spec, self.obs)

    def samples(self) -> List[Any]:
        """Remaining-budget and burn-rate gauges for ``/metrics``."""
        from .prom import Sample

        out: List[Any] = []
        for verdict in self.report().verdicts:
            out.append(
                Sample(
                    "repro_slo_budget_remaining",
                    verdict.budget_remaining,
                    labels={"objective": verdict.name},
                    help="Fraction of the SLO error budget left (0 = exhausted)",
                )
            )
            if verdict.burn_rate is not None:
                out.append(
                    Sample(
                        "repro_slo_burn_rate",
                        verdict.burn_rate,
                        labels={"objective": verdict.name},
                        help="Worst windowed error-budget burn rate",
                    )
                )
        return out


# --------------------------------------------------------- artefact intake


def ingest_artefact(obs: SloObservations, path: Path | str) -> str:
    """Sniff one artefact file and feed it into ``obs``.

    Returns the recognised family (``events`` / ``spans`` / ``flight`` /
    ``metrics`` / ``loadgen``); :class:`ValueError` if the file is none
    of them.
    """
    from ..net.cluster import EVENT_SOURCES, read_cluster_events  # deferred
    from ..gateway.report import read_loadgen_report
    from .flight import FLIGHT_SOURCE
    from .metrics import read_metrics
    from .tracing import SPANS_SOURCE, read_spans

    path = Path(path)
    first: Dict[str, Any] = {}
    try:
        with path.open("r", encoding="utf-8") as handle:
            line = handle.readline().strip()
        if line:
            doc = json.loads(line)
            if isinstance(doc, dict):
                first = doc
    except OSError:
        raise ValueError(f"{path}: unreadable artefact")
    except ValueError:
        # Not JSONL. A loadgen report is a pretty-printed whole-file
        # document, so its first line alone never parses — sniff for it
        # before giving up.
        try:
            obs.add_loadgen(read_loadgen_report(path))
        except ValueError:
            raise ValueError(f"{path}: unreadable artefact") from None
        return "loadgen"
    source = first.get("source")
    if first.get("kind") == "loadgen-report":
        obs.add_loadgen(read_loadgen_report(path))
        return "loadgen"
    if source in EVENT_SOURCES:
        header, events, _skipped = read_cluster_events(path)
        obs.add_events(header, events)
        return "events"
    if source in (SPANS_SOURCE, FLIGHT_SOURCE):
        span_file = read_spans(path)
        obs.add_spans(span_file.spans)
        return "flight" if source == FLIGHT_SOURCE else "spans"
    metrics_file = read_metrics(path)
    if metrics_file.metrics or "violations" in metrics_file.header:
        obs.add_metrics(metrics_file.header, metrics_file.metrics)
        return "metrics"
    raise ValueError(f"{path}: not an SLO-evaluable artefact")
