"""Causal tracing: Lamport clocks, spans, and the span JSONL artefact.

The paper's claims are ordering claims — neighbour exclusion, failure
locality 2, convergence after malicious crashes — but a live cluster only
has per-node wall clocks, which real networks skew.  This module gives the
runtime the classic remedy:

* a :class:`LamportClock` per node, ticked on every local event and merged
  (``max + 1``) on every delivery, so ``a happened-before b`` implies
  ``lc(a) < lc(b)`` across the whole cluster;
* :class:`Span` / :class:`SpanRecorder` — one span per lock-acquire
  lifecycle (request → fork negotiation → grant → release) plus a
  long-lived ``node`` root span per server incarnation, with sends,
  deliveries, retransmits, and chaos hits recorded as span events;
* a versioned span JSONL artefact (``source: "spans"``) written per node,
  which :mod:`repro.obs.timeline` merges into one happened-before-consistent
  global timeline offline.

Wall-clock fields (``t``) are environmental and never enter byte-identity
contracts; the deterministic part of a trace is its *order* — the
``(lc, node, seq)`` keys the timeline sorts by.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

SPANS_FORMAT_VERSION = 1
#: ``source`` value of the span artefact family.
SPANS_SOURCE = "spans"
#: Span name of the per-incarnation root span catching ambient traffic.
ROOT_SPAN = "node"

_CANONICAL = dict(sort_keys=True, separators=(",", ":"))


class LamportClock:
    """The scalar logical clock (Lamport 1978).

    ``tick`` stamps a local event; ``merge`` folds a received stamp in
    (``max(local, remote) + 1``), so the delivery counts as an event too.
    Both return the new value.  ``merge`` is monotone in both arguments and
    its result strictly exceeds them — the property test pins this.
    """

    __slots__ = ("value",)

    def __init__(self, value: int = 0) -> None:
        if value < 0:
            raise ValueError("a Lamport clock never runs backwards")
        self.value = value

    def tick(self) -> int:
        self.value += 1
        return self.value

    def merge(self, remote: int) -> int:
        self.value = max(self.value, int(remote)) + 1
        return self.value

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return f"LamportClock({self.value})"


@dataclass
class SpanEvent:
    """One point inside a span: a send, a delivery, a retransmit, a chaos
    hit, the grant, the release."""

    name: str
    lc: int
    t: float
    detail: Dict[str, Any] = field(default_factory=dict)

    def to_json(self) -> Dict[str, Any]:
        return {"name": self.name, "lc": self.lc, "t": self.t,
                "detail": self.detail}


@dataclass
class Span:
    """One causal interval on one node.

    A span still open when the artefact is written keeps ``close_lc`` /
    ``close_t`` as ``None`` — a crash-interrupted soak truncates cleanly
    instead of losing the interval.
    """

    span_id: str
    name: str
    node: str
    epoch: int
    open_lc: int
    open_t: float
    parent: Optional[str] = None
    attrs: Dict[str, Any] = field(default_factory=dict)
    events: List[SpanEvent] = field(default_factory=list)
    close_lc: Optional[int] = None
    close_t: Optional[float] = None

    @property
    def closed(self) -> bool:
        return self.close_lc is not None

    def duration_s(self) -> Optional[float]:
        if self.close_t is None:
            return None
        return round(self.close_t - self.open_t, 6)

    def first_event(self, name: str) -> Optional[SpanEvent]:
        for event in self.events:
            if event.name == name:
                return event
        return None

    def to_json(self) -> Dict[str, Any]:
        return {
            "kind": "span",
            "span": self.span_id,
            "name": self.name,
            "node": self.node,
            "epoch": self.epoch,
            "parent": self.parent,
            "open_lc": self.open_lc,
            "open_t": self.open_t,
            "close_lc": self.close_lc,
            "close_t": self.close_t,
            "attrs": self.attrs,
            "events": [e.to_json() for e in self.events],
        }


def span_from_json(row: Mapping[str, Any]) -> Optional[Span]:
    """A :class:`Span` from one artefact line, or ``None`` if malformed."""
    if row.get("kind") != "span":
        return None
    span_id = row.get("span")
    open_lc = row.get("open_lc")
    if not isinstance(span_id, str) or not isinstance(open_lc, int):
        return None
    events: List[SpanEvent] = []
    for raw in row.get("events") or ():
        if not isinstance(raw, dict) or not isinstance(raw.get("lc"), int):
            return None
        events.append(
            SpanEvent(
                name=str(raw.get("name", "?")),
                lc=raw["lc"],
                t=float(raw.get("t") or 0.0),
                detail=dict(raw.get("detail") or {}),
            )
        )
    return Span(
        span_id=span_id,
        name=str(row.get("name", "?")),
        node=str(row.get("node", "?")),
        epoch=int(row.get("epoch") or 0),
        open_lc=open_lc,
        open_t=float(row.get("open_t") or 0.0),
        parent=row.get("parent"),
        attrs=dict(row.get("attrs") or {}),
        events=events,
        close_lc=row.get("close_lc"),
        close_t=row.get("close_t"),
    )


class SpanRecorder:
    """Per-node span store; the node server drives it, the supervisor
    writes it out.  Survives restarts — the supervisor hands the same
    recorder to every incarnation of a node, with ``epoch`` telling the
    spans apart."""

    def __init__(self, node: str) -> None:
        self.node = node
        self.spans: List[Span] = []
        self._open: List[Span] = []
        self._counter = 0

    def open(
        self,
        name: str,
        *,
        lc: int,
        t: float,
        epoch: int = 0,
        parent: Optional[str] = None,
        attrs: Optional[Dict[str, Any]] = None,
    ) -> Span:
        self._counter += 1
        span = Span(
            span_id=f"{self.node}/{epoch}/{self._counter}",
            name=name,
            node=self.node,
            epoch=epoch,
            open_lc=lc,
            open_t=t,
            parent=parent,
            attrs=dict(attrs or {}),
        )
        self.spans.append(span)
        self._open.append(span)
        return span

    def event(
        self,
        span: Optional[Span],
        name: str,
        *,
        lc: int,
        t: float,
        detail: Optional[Dict[str, Any]] = None,
    ) -> None:
        if span is None:
            return
        span.events.append(SpanEvent(name=name, lc=lc, t=t,
                                     detail=dict(detail or {})))

    def close(self, span: Optional[Span], *, lc: int, t: float) -> None:
        if span is None or span.closed:
            return
        span.close_lc = lc
        span.close_t = t
        try:
            self._open.remove(span)
        except ValueError:
            pass

    def current(self) -> Optional[Span]:
        """The span new events belong to: the newest open lifecycle span,
        falling back to the root span (ambient traffic)."""
        for span in reversed(self._open):
            if span.name != ROOT_SPAN:
                return span
        return self._open[-1] if self._open else None

    def open_spans(self) -> Tuple[Span, ...]:
        return tuple(self._open)

    def __len__(self) -> int:
        return len(self.spans)


# ------------------------------------------------------------------- JSONL


@dataclass(frozen=True)
class SpanFile:
    """A parsed span artefact."""

    header: Mapping[str, Any]
    spans: List[Span]
    #: Lines that were not valid span/header records (foreign or truncated).
    skipped: int = 0


def write_spans(
    path: Path | str,
    spans: "SpanRecorder | Iterable[Span]",
    *,
    header: Optional[Mapping[str, Any]] = None,
) -> Path:
    """One node's spans as versioned JSONL (atomic replace, fsynced so a
    teardown racing a SIGKILL still leaves the tail on disk)."""
    if isinstance(spans, SpanRecorder):
        node, rows = spans.node, spans.spans
    else:
        rows = list(spans)
        node = rows[0].node if rows else "?"
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    head: Dict[str, Any] = {
        "format": SPANS_FORMAT_VERSION,
        "kind": "header",
        "source": SPANS_SOURCE,
        "node": node,
        "spans": len(rows),
    }
    if header:
        head.update(header)
    tmp = path.with_name(path.name + ".tmp")
    with tmp.open("w", encoding="utf-8") as handle:
        handle.write(json.dumps(head, **_CANONICAL) + "\n")
        for span in rows:
            handle.write(json.dumps(span.to_json(), **_CANONICAL) + "\n")
        handle.flush()
        os.fsync(handle.fileno())
    tmp.replace(path)
    return path


def read_spans(path: Path | str) -> SpanFile:
    """Parse a span artefact leniently: bad lines are counted, not fatal."""
    header: Dict[str, Any] = {}
    spans: List[Span] = []
    skipped = 0
    with Path(path).open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
            except ValueError:
                skipped += 1
                continue
            if not isinstance(row, dict):
                skipped += 1
            elif row.get("kind") == "header":
                header = row
            else:
                span = span_from_json(row)
                if span is None:
                    skipped += 1
                else:
                    spans.append(span)
    return SpanFile(header=header, spans=spans, skipped=skipped)
