"""The flight recorder: a bounded black box every node carries.

Post-mortems of a crashed or violating soak currently depend on full
artefacts (event logs, span files) written at teardown — exactly the
moment a crash can destroy.  A :class:`FlightRecorder` is the aircraft
answer: a fixed-capacity ring of the most recent happenings (collected
event rows, decoded/sent wire frames), one per node, kept in memory at
near-zero cost and dumped atomically the instant something goes wrong —
a soak safety violation, an SLO budget exhaustion, a node crash, a
client watchdog stall, or SIGTERM.

A dump is a self-contained ``flight-<node>.jsonl``: a header naming the
trigger, the node's recent spans (so ``repro timeline`` can merge the
black boxes into a causally ordered walk-back — its merge tolerates the
truncated window because unmatched sends are skipped, not fatal), then
the ring's records oldest-first.  The write path is the same
tmp + flush + fsync + atomic-replace sequence as
:func:`repro.obs.tracing.write_spans`, so a dump racing a SIGKILL still
leaves a complete file or none, never a torn one.

Recording must be cheap enough to stay armed always: one dict build and
one ``deque.append`` per happening, no I/O, no serialization until a
dump is actually triggered.  CI gates the armed overhead under 10% on
the ``engine/steps/ring16`` and ``net/codec/roundtrip`` kernels
(``REPRO_FLIGHT=1``).
"""

from __future__ import annotations

import json
import os
from collections import deque
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional

from .tracing import Span, span_from_json

FLIGHT_FORMAT_VERSION = 1
#: ``source`` value of the flight-dump artefact family.
FLIGHT_SOURCE = "flight"
#: Default ring size — enough history to walk back a violation, small
#: enough that N rings cost nothing against a soak's footprint.
DEFAULT_CAPACITY = 512


class FlightRecorder:
    """Fixed-capacity ring of one node's recent happenings.

    ``note_event`` takes the supervisor's collected row shape
    (``{"t", "node", "event", "detail"?}``); ``note_frame`` takes a wire
    frame summary; ``note`` is the raw escape hatch.  The ring drops the
    oldest record on overflow — ``recorded`` minus ``len`` says how many
    were lost to the bound.
    """

    __slots__ = ("node", "capacity", "recorded", "_ring")

    def __init__(self, node: str, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.node = node
        self.capacity = capacity
        self.recorded = 0
        self._ring: "deque[Dict[str, Any]]" = deque(maxlen=capacity)

    # The note_* paths stay call-flat (no delegation, one dict literal,
    # one append) — they run on every frame of every armed node, and CI
    # gates the armed kernels under a 10% overhead budget.

    def note(self, record: Dict[str, Any]) -> None:
        self.recorded += 1
        self._ring.append(record)

    def note_event(self, row: Mapping[str, Any]) -> None:
        detail = row.get("detail")
        if detail:
            self._ring.append(
                {"rec": "event", "t": row.get("t", 0.0),
                 "event": row.get("event"), "detail": detail}
            )
        else:
            self._ring.append(
                {"rec": "event", "t": row.get("t", 0.0),
                 "event": row.get("event")}
            )
        self.recorded += 1

    def note_frame(
        self, t: float, direction: str, frame_type: Any, peer: Any = None
    ) -> None:
        if peer is None:
            self._ring.append(
                {"rec": "frame", "t": t, "dir": direction, "type": frame_type}
            )
        else:
            self._ring.append(
                {"rec": "frame", "t": t, "dir": direction,
                 "type": frame_type, "peer": peer}
            )
        self.recorded += 1

    def records(self) -> List[Dict[str, Any]]:
        """The ring's contents, oldest first."""
        return list(self._ring)

    @property
    def dropped(self) -> int:
        return self.recorded - len(self._ring)

    def __len__(self) -> int:
        return len(self._ring)


# ------------------------------------------------------------------- JSONL


@dataclass(frozen=True)
class FlightFile:
    """A parsed flight dump."""

    header: Mapping[str, Any]
    spans: List[Span]
    records: List[Dict[str, Any]]
    skipped: int = 0


def dump_flight(
    path: Path | str,
    recorder: FlightRecorder,
    *,
    reason: str,
    tracer: Any = None,
    header: Optional[Mapping[str, Any]] = None,
) -> Path:
    """Write one node's black box (atomic replace, fsynced).

    ``tracer`` is the node's :class:`~repro.obs.tracing.SpanRecorder`, if
    tracing is on; its most recent ``capacity`` spans ride along so the
    dump merges into a timeline without the full span artefact.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    spans = [] if tracer is None else list(tracer.spans)[-recorder.capacity:]
    head: Dict[str, Any] = {
        "format": FLIGHT_FORMAT_VERSION,
        "kind": "header",
        "source": FLIGHT_SOURCE,
        "node": recorder.node,
        "reason": reason,
        "records": len(recorder),
        "dropped": recorder.dropped,
        "capacity": recorder.capacity,
        "spans": len(spans),
    }
    if header:
        head.update(header)
    canonical = dict(sort_keys=True, separators=(",", ":"))
    tmp = path.with_name(path.name + ".tmp")
    with tmp.open("w", encoding="utf-8") as handle:
        handle.write(json.dumps(head, **canonical) + "\n")
        for span in spans:
            handle.write(json.dumps(span.to_json(), **canonical) + "\n")
        for record in recorder.records():
            handle.write(
                json.dumps({"kind": "record", **record}, **canonical) + "\n"
            )
        handle.flush()
        os.fsync(handle.fileno())
    tmp.replace(path)
    return path


def read_flight(path: Path | str) -> FlightFile:
    """Parse a flight dump leniently: bad lines are counted, not fatal."""
    header: Dict[str, Any] = {}
    spans: List[Span] = []
    records: List[Dict[str, Any]] = []
    skipped = 0
    with Path(path).open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
            except ValueError:
                skipped += 1
                continue
            if not isinstance(row, dict):
                skipped += 1
            elif row.get("kind") == "header":
                header = row
            elif row.get("kind") == "record":
                records.append({k: v for k, v in row.items() if k != "kind"})
            else:
                span = span_from_json(row)
                if span is None:
                    skipped += 1
                else:
                    spans.append(span)
    return FlightFile(header=header, spans=spans, records=records,
                      skipped=skipped)
