"""``repro top`` — a terminal dashboard over the supervisor's /metrics.

Polls the Prometheus endpoint a running ``cluster run`` / ``cluster soak``
exposes (``--metrics-port``) and renders the live picture the operator
cares about during chaos: per-node grant/traffic rates, per-edge
retransmits, the current waiting-chain length, hunger-latency percentiles,
and convergence deadlines of restarted nodes.

Rendering is a pure function of two consecutive sample sets
(:func:`render_top`), so tests drive it without sockets; the fetch loop is
a thin wrapper.  ``--once`` prints a single snapshot and exits — the CI
smoke path.
"""

from __future__ import annotations

import http.client
import time
import urllib.error
import urllib.request
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .prom import Sample, find, parse_prometheus

#: ANSI clear-screen + home, used between refreshes.
CLEAR = "\x1b[2J\x1b[H"


def fetch_metrics(url: str, *, timeout: float = 2.0) -> str:
    """The exposition document at ``url`` (raises OSError on failure).

    Every failure mode folds into one ``OSError`` — refused/dead endpoints
    (``URLError``), torn HTTP responses mid-teardown
    (``http.client.HTTPException``), and malformed URLs (``ValueError``) —
    so the CLI prints one line and exits nonzero instead of tracebacking.
    """
    try:
        with urllib.request.urlopen(url, timeout=timeout) as response:
            return response.read().decode("utf-8", "replace")
    except urllib.error.URLError as exc:
        raise OSError(f"{url}: {exc.reason}") from None
    except (ValueError, http.client.HTTPException) as exc:
        # A BadStatusLine quotes the peer's raw bytes, newlines included —
        # collapse whitespace so the error genuinely is one line.
        raise OSError(f"{url}: {' '.join(str(exc).split())}") from None


def _rate(
    current: Optional[Sample], previous: Optional[Sample], dt: float
) -> Optional[float]:
    if current is None or previous is None or dt <= 0:
        return None
    return max(0.0, (current.value - previous.value) / dt)


def _fmt_rate(rate: Optional[float]) -> str:
    return "   -  " if rate is None else f"{rate:6.1f}"


def render_top(
    samples: Sequence[Sample],
    previous: Optional[Sequence[Sample]] = None,
    *,
    interval_s: float = 1.0,
) -> str:
    """The dashboard for one sample set (rates need a previous set)."""
    prev_by_key: Dict[Tuple, Sample] = {}
    if previous:
        prev_by_key = {s.key(): s for s in previous}

    def prev(sample: Optional[Sample]) -> Optional[Sample]:
        return None if sample is None else prev_by_key.get(sample.key())

    lines: List[str] = []
    uptime = find(samples, "repro_cluster_uptime_seconds")
    nodes = sorted(
        {s.labels["node"] for s in samples
         if s.name == "repro_node_up" and "node" in s.labels}
    )
    killed = find(samples, "repro_cluster_killed")
    chain = find(samples, "repro_cluster_waiting_chain_length")
    lines.append(
        "cluster: "
        f"up {0.0 if uptime is None else uptime.value:.1f}s  "
        f"nodes {len(nodes)}  "
        f"killed {0 if killed is None else int(killed.value)}  "
        f"waiting-chain {0 if chain is None else int(chain.value)}"
    )
    for q in ("0.5", "0.9", "0.99"):
        sample = find(samples, "repro_cluster_hunger_latency_seconds", q=q)
        if sample is not None:
            lines.append(f"  hunger p{int(float(q) * 100)}: {sample.value:.3f}s")

    lines.append(
        f"{'node':>8}  {'up':>2}  {'grants':>6} {'gr/s':>6}  "
        f"{'msgs in/s':>9}  {'out/s':>6}  {'rtx':>5}  {'epoch':>5}"
    )
    for node in nodes:
        up = find(samples, "repro_node_up", node=node)
        grants = find(samples, "repro_node_grants_total", node=node)
        msgs_in = find(samples, "repro_node_msgs_in_total", node=node)
        msgs_out = find(samples, "repro_node_msgs_out_total", node=node)
        rtx = find(samples, "repro_node_retransmits_total", node=node)
        epoch = find(samples, "repro_node_epoch", node=node)
        lines.append(
            f"{node:>8}  {int(up.value) if up else 0:>2}  "
            f"{int(grants.value) if grants else 0:>6} "
            f"{_fmt_rate(_rate(grants, prev(grants), interval_s))}  "
            f"{_fmt_rate(_rate(msgs_in, prev(msgs_in), interval_s)):>9}  "
            f"{_fmt_rate(_rate(msgs_out, prev(msgs_out), interval_s))}  "
            f"{int(rtx.value) if rtx else 0:>5}  "
            f"{int(epoch.value) if epoch else 0:>5}"
        )

    edges = sorted(
        (s for s in samples if s.name == "repro_edge_retransmits_total"),
        key=lambda s: (s.labels.get("node", ""), s.labels.get("peer", "")),
    )
    busy = [e for e in edges if e.value > 0]
    if busy:
        lines.append("retransmitting edges:")
        for edge in busy:
            rate = _rate(edge, prev(edge), interval_s)
            lines.append(
                f"  {edge.labels.get('node', '?')} -> "
                f"{edge.labels.get('peer', '?')}: {int(edge.value)}"
                + ("" if rate is None else f"  ({rate:.1f}/s)")
            )

    convergence = sorted(
        (s for s in samples if s.name == "repro_cluster_convergence_seconds"),
        key=lambda s: s.labels.get("node", ""),
    )
    for sample in convergence:
        lines.append(
            f"convergence: {sample.labels.get('node', '?')} "
            f"re-granted {sample.value:.3f}s after restart"
        )
    return "\n".join(lines)


def run_top(
    url: str,
    *,
    interval_s: float = 1.0,
    iterations: Optional[int] = None,
    out: Callable[[str], None] = print,
    clear: bool = True,
    sleep: Callable[[float], None] = time.sleep,
) -> int:
    """Poll ``url`` and render until interrupted (or for ``iterations``).

    Returns 0; raises ``OSError`` if the very first fetch fails (a later
    failure is rendered as a status line — the supervisor may simply have
    finished its run)."""
    previous: Optional[List[Sample]] = None
    count = 0
    while iterations is None or count < iterations:
        if count:
            sleep(interval_s)
        try:
            text = fetch_metrics(url)
        except OSError:
            if previous is None:
                raise
            out(f"(endpoint gone: {url} — cluster finished?)")
            return 0
        samples = parse_prometheus(text)
        body = render_top(samples, previous, interval_s=interval_s)
        out((CLEAR if clear and count else "") + body)
        previous = samples
        count += 1
    return 0
