"""Versioned JSONL trace export, loading, and offline replay.

A trace file is the durable form of one run's observability stream:

* one ``header`` line — format version, model (``sim``/``mp``), algorithm,
  topology spec, enter/exit action names, depth threshold, seed, steps
  taken, snapshot cadence;
* one ``event`` line per :class:`~repro.sim.trace.TraceEvent`, pids and
  details encoded with the repr/literal round-trip of
  :mod:`repro.sim.serialize` (no code execution on load);
* one ``snapshot`` line per recorded configuration, embedding the full
  :func:`repro.sim.serialize.to_json` payload (self-describing: the
  topology rides along).

``read_trace(write_trace(t)) == t`` — events, snapshots, and header all
round-trip exactly, which is what makes offline replay trustworthy:
:func:`analyze` pumps a trace through the same probes a live bus would
drive, so ``repro trace`` on a recorded file reproduces the run's summary
and metrics byte for byte.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from ..sim.configuration import Configuration
from ..sim.errors import SimulationError
from ..sim.serialize import decode_literal, encode_literal, from_json, to_json
from ..sim.trace import EventKind, TraceEvent, TraceRecorder
from .events import MpEventKind
from .metrics import MetricsRegistry, write_metrics
from .probes import Probe, standard_probes

TRACE_FORMAT_VERSION = 1

_CANONICAL = dict(sort_keys=True, separators=(",", ":"))

#: Every event kind either engine publishes, keyed by wire value.
_KINDS: Dict[str, Any] = {
    **{k.value: k for k in EventKind},
    **{k.value: k for k in MpEventKind},
}


@dataclass(frozen=True)
class Trace:
    """One run's recorded stream: header + events + snapshots."""

    header: Mapping[str, Any]
    events: Tuple[TraceEvent, ...]
    snapshots: Tuple[Tuple[int, Configuration], ...] = ()

    def events_of_kind(self, kind) -> Tuple[TraceEvent, ...]:
        return tuple(e for e in self.events if e.kind is kind)

    @property
    def steps(self) -> int:
        return int(self.header.get("steps_taken", 0))


def build_header(
    *,
    model: str,
    algorithm: str,
    seed: int,
    steps_taken: int,
    topology: Optional[str] = None,
    enter_action: str = "enter",
    exit_action: str = "exit",
    threshold: Optional[int] = None,
    has_depth: bool = True,
    snapshot_every: int = 0,
    extra: Optional[Mapping[str, Any]] = None,
) -> Dict[str, Any]:
    """The run metadata a trace needs to be replayable on its own."""
    header: Dict[str, Any] = {
        "format": TRACE_FORMAT_VERSION,
        "kind": "header",
        "model": model,
        "algorithm": algorithm,
        "topology": topology,
        "enter_action": enter_action,
        "exit_action": exit_action,
        "threshold": threshold,
        "has_depth": has_depth,
        "seed": seed,
        "steps_taken": steps_taken,
        "snapshot_every": snapshot_every,
    }
    if extra:
        header.update(extra)
    return header


def trace_from_recorder(
    recorder: TraceRecorder, header: Mapping[str, Any]
) -> Trace:
    """Freeze a live recorder into a :class:`Trace`."""
    return Trace(
        header=dict(header),
        events=recorder.events,
        snapshots=recorder.snapshots,
    )


# ----------------------------------------------------------------- encode


def _encode_payload(payload: Any) -> Any:
    if payload is None:
        return None
    if isinstance(payload, dict):
        return {str(k): encode_literal(v) for k, v in sorted(payload.items())}
    return encode_literal(payload)


def _decode_payload(payload: Any) -> Any:
    if payload is None:
        return None
    if isinstance(payload, dict):
        return {k: decode_literal(v) for k, v in payload.items()}
    return decode_literal(payload)


def event_to_line(event: TraceEvent) -> str:
    record = {
        "kind": "event",
        "step": event.step,
        "event": event.kind.value,
        "pid": None if event.pid is None else encode_literal(event.pid),
        "detail": None if event.detail is None else encode_literal(event.detail),
    }
    if event.payload is not None:
        record["payload"] = _encode_payload(event.payload)
    return json.dumps(record, **_CANONICAL)


def event_from_payload(record: Mapping[str, Any]) -> TraceEvent:
    try:
        kind = _KINDS[record["event"]]
    except KeyError:
        raise SimulationError(
            f"unknown trace event kind {record.get('event')!r}"
        ) from None
    pid = record.get("pid")
    detail = record.get("detail")
    return TraceEvent(
        step=record["step"],
        kind=kind,
        pid=None if pid is None else decode_literal(pid),
        detail=None if detail is None else decode_literal(detail),
        payload=_decode_payload(record.get("payload")),
    )


def write_trace(path: Path | str, trace: Trace) -> Path:
    """Write one trace as JSONL (parents created, atomic replace)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    with tmp.open("w", encoding="utf-8") as handle:
        handle.write(json.dumps(dict(trace.header), **_CANONICAL) + "\n")
        for event in trace.events:
            handle.write(event_to_line(event) + "\n")
        for step, config in trace.snapshots:
            line = json.dumps(
                {
                    "kind": "snapshot",
                    "step": step,
                    "config": json.loads(to_json(config, indent=None)),
                },
                **_CANONICAL,
            )
            handle.write(line + "\n")
    tmp.replace(path)
    return path


def read_trace(path: Path | str) -> Trace:
    """Load a trace written by :func:`write_trace`.

    Raises :class:`~repro.sim.errors.SimulationError` on a missing or
    version-mismatched header; a malformed body line is an error too —
    unlike campaign checkpoints, a trace is an analysis input, and silent
    truncation would skew every derived number.
    """
    path = Path(path)
    header: Optional[Dict[str, Any]] = None
    events: List[TraceEvent] = []
    snapshots: List[Tuple[int, Configuration]] = []
    with path.open("r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                raise SimulationError(
                    f"{path}:{lineno}: not valid JSON"
                ) from None
            if not isinstance(record, dict):
                raise SimulationError(f"{path}:{lineno}: not a JSON object")
            kind = record.get("kind")
            if kind == "header":
                if record.get("format") != TRACE_FORMAT_VERSION:
                    raise SimulationError(
                        f"{path}: unsupported trace format "
                        f"{record.get('format')!r}"
                    )
                header = record
            elif kind == "event":
                events.append(event_from_payload(record))
            elif kind == "snapshot":
                config = from_json(json.dumps(record["config"]))
                snapshots.append((record["step"], config))
            else:
                raise SimulationError(
                    f"{path}:{lineno}: unknown line kind {kind!r}"
                )
    if header is None:
        raise SimulationError(f"{path}: no trace header line")
    return Trace(
        header=header, events=tuple(events), snapshots=tuple(snapshots)
    )


# ---------------------------------------------------------------- analyze


@dataclass
class TraceAnalysis:
    """Everything :func:`analyze` derives from one trace."""

    trace: Trace
    registry: MetricsRegistry
    probes: List[Probe] = field(default_factory=list)
    summary: Dict[str, Any] = field(default_factory=dict)

    def summary_json(self) -> str:
        return json.dumps(self.summary, **_CANONICAL)


def analyze(
    trace: Trace, *, extra_probes: Sequence[Probe] = ()
) -> TraceAnalysis:
    """Replay a trace through the standard probe set.

    Events and snapshots are merged in step order (a snapshot labelled *k*
    is the state after *k* steps, so it precedes the event of step *k*).
    This is the one code path behind both the live summary (``repro run``
    analyzing its own in-memory recorder) and the offline one
    (``repro trace`` on a file) — identical streams give identical
    registries and summaries, byte for byte.
    """
    header = trace.header
    threshold = header.get("threshold")
    probes: List[Probe] = standard_probes(
        threshold=0 if threshold is None else int(threshold),
        enter_action=str(header.get("enter_action", "enter")),
        exit_action=str(header.get("exit_action", "exit")),
        has_depth=bool(header.get("has_depth", True)),
    )
    probes.extend(extra_probes)

    # Merge: snapshots first at equal step labels (state-after-k precedes
    # the step-k event).
    stream: List[Tuple[int, int, Any]] = [
        (step, 0, config) for step, config in trace.snapshots
    ]
    stream.extend((event.step, 1, event) for event in trace.events)
    stream.sort(key=lambda item: (item[0], item[1]))
    for step, tag, item in stream:
        if tag == 0:
            for probe in probes:
                probe.on_sample(step, item)
        else:
            for probe in probes:
                probe.on_event(item)

    registry = MetricsRegistry()
    for probe in probes:
        probe.publish(registry)
    summary = _summarize(trace, probes, registry)
    return TraceAnalysis(
        trace=trace, registry=registry, probes=probes, summary=summary
    )


def _summarize(
    trace: Trace, probes: Sequence[Probe], registry: MetricsRegistry
) -> Dict[str, Any]:
    header = trace.header
    event_counts: Dict[str, int] = {}
    for event in trace.events:
        key = event.kind.value
        event_counts[key] = event_counts.get(key, 0) + 1

    summary: Dict[str, Any] = {
        "format": TRACE_FORMAT_VERSION,
        "algorithm": header.get("algorithm"),
        "topology": header.get("topology"),
        "seed": header.get("seed"),
        "steps": header.get("steps_taken"),
        "event_counts": dict(sorted(event_counts.items())),
        "snapshots": len(trace.snapshots),
    }
    for probe in probes:
        name = type(probe).__name__
        if name == "EatsProbe":
            summary["eats"] = {
                encode_literal(pid): count
                for pid, count in sorted(
                    probe.eats.items(), key=lambda kv: encode_literal(kv[0])
                )
            }
            summary["total_eats"] = probe.total
        elif name == "DepthProbe":
            summary["depth_histogram"] = {
                str(d): probe.histogram[d] for d in sorted(probe.histogram)
            }
            summary["deep_exits"] = probe.deep_exits
        elif name == "InvariantProbe":
            summary["invariant_timeline"] = [
                [step, nc, st, e] for step, nc, st, e in probe.timeline
            ]
            summary["final_invariant"] = probe.final
            summary["first_legitimate_step"] = probe.first_legitimate_step()
        elif name == "EatingPairsProbe":
            summary["eating_pairs_timeline"] = [
                [step, count] for step, count in probe.timeline
            ]
            summary["max_eating_pairs"] = probe.max_pairs
        elif name == "WaitingChainProbe":
            summary["waiting_chain_max"] = probe.max_length
        elif name == "LocalityProbe" and probe.crashes:
            summary["crashes"] = [
                [step, encode_literal(pid)] for step, pid in probe.crashes
            ]
            summary["observed_radius"] = probe.observed_radius()
    return summary


def write_analysis_metrics(
    path: Path | str,
    analysis: TraceAnalysis,
    *,
    include_meta: bool = False,
) -> Path:
    """Write an analysis's registry as a metrics JSONL file.

    With ``include_meta=False`` (the default) the output is a deterministic
    function of the trace: running it on a live recorder and on the
    re-loaded trace file produces byte-identical files.
    """
    header = {
        "source": "trace",
        "model": analysis.trace.header.get("model"),
        "algorithm": analysis.trace.header.get("algorithm"),
        "topology": analysis.trace.header.get("topology"),
        "seed": analysis.trace.header.get("seed"),
        "steps": analysis.trace.header.get("steps_taken"),
    }
    return write_metrics(
        path, analysis.registry, header=header, include_meta=include_meta
    )
