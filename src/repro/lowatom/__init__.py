"""Low-atomicity (read/write) execution of composite-atomicity algorithms.

§4 of the paper notes that moving off composite atomicity needs the
atomicity refinement of Nesterenko & Arora [15].  This package provides the
mechanical half of that move — running any kernel algorithm over cached
neighbour state with one remote read per step — and experiment E11 measures
the safety gap the refinement exists to close.
"""

from .adapter import CachedView, LowAtomicityAdapter, cache_var, edge_cache_var

__all__ = ["CachedView", "LowAtomicityAdapter", "cache_var", "edge_cache_var"]
