"""Low-atomicity transformation: guards over cached neighbour state.

The paper's program is written in *composite atomicity*: a guard reads
several neighbours' variables and the command executes in one atomic step.
Real shared-memory (and message-passing) systems only offer read/write
atomicity: a process reads **one** remote variable at a time, so guards are
necessarily evaluated over a possibly stale local *cache*.  §4 points to
Nesterenko & Arora's atomicity refinement [15], which makes that gap safe
with a stabilizing handshake.

:class:`LowAtomicityAdapter` mechanically transforms any kernel
:class:`~repro.sim.process.Algorithm` into its read/write-atomicity
version:

* for every neighbour variable a process's guards may read, it adds a local
  cache variable ``cache::<q>::<var>``;
* it adds one ``refresh::<q>`` action per neighbour, copying that
  neighbour's variables (and the shared edge cell) into the cache in a
  single step — the one remote read the model allows;
* the original actions run unchanged, but their views redirect every
  ``peek``/``edge_value`` to the cache, and ``set_edge`` writes through to
  both the cache and the real cell.

The transformation preserves each action's local effect but **not** the
original correctness proof: two neighbours may both see stale "thinking"
caches and both enter eating.  That failure is the point — experiment E11
measures it, quantifying exactly what [15]'s handshake must repair; the
repaired side of the comparison is the token-synchronized message-passing
diners of :mod:`repro.mp` (experiment E7c), where the fork tokens supply
the synchronization the naive caches lack.

The adapter also demonstrates kernel compositionality: adapted algorithms
run on the unmodified engine, fault machinery, and model checker.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Tuple

from ..sim.domains import Domain
from ..sim.process import ActionDef, Algorithm, ProcessView
from ..sim.topology import Edge, Pid, Topology

CACHE_SEP = "::"


def cache_var(neighbor: Pid, variable: str) -> str:
    """Name of the cache slot for ``neighbor``'s ``variable``."""
    return f"cache{CACHE_SEP}{neighbor!r}{CACHE_SEP}{variable}"


def edge_cache_var(neighbor: Pid) -> str:
    """Name of the cache slot for the shared cell on the edge to ``neighbor``."""
    return f"cache{CACHE_SEP}{neighbor!r}{CACHE_SEP}<edge>"


class CachedView:
    """A :class:`ProcessView` facade that serves remote reads from caches.

    Own-variable access and writes pass through; ``peek`` and ``edge_value``
    read the cache slots; ``set_edge`` writes through to the real cell *and*
    the cache (a process knows what it just wrote).
    """

    __slots__ = ("_inner",)

    def __init__(self, inner: ProcessView) -> None:
        self._inner = inner

    @property
    def pid(self) -> Pid:
        return self._inner.pid

    @property
    def topology(self) -> Topology:
        return self._inner.topology

    @property
    def diameter(self) -> int:
        return self._inner.diameter

    @property
    def neighbors(self) -> Tuple[Pid, ...]:
        return self._inner.neighbors

    def get(self, variable: str) -> Any:
        return self._inner.get(variable)

    def set(self, variable: str, value: Any) -> None:
        self._inner.set(variable, value)

    def peek(self, neighbor: Pid, variable: str) -> Any:
        if neighbor == self._inner.pid:
            return self._inner.get(variable)
        return self._inner.get(cache_var(neighbor, variable))

    def edge_value(self, neighbor: Pid) -> Any:
        return self._inner.get(edge_cache_var(neighbor))

    def set_edge(self, neighbor: Pid, value: Any) -> None:
        self._inner.set_edge(neighbor, value)
        self._inner.set(edge_cache_var(neighbor), value)


class LowAtomicityAdapter(Algorithm):
    """Run ``base`` under read/write atomicity (see module docstring).

    Parameters
    ----------
    base:
        Any algorithm written for composite atomicity.
    refresh_whole_neighbor:
        True (default, and what [15] assumes of a single remote *process*
        read): one refresh action copies all of one neighbour's variables
        plus the shared edge cell.  False splits refreshing into one action
        per (neighbour, variable) — the harshest register-level atomicity.
    """

    def __init__(self, base: Algorithm, *, refresh_whole_neighbor: bool = True) -> None:
        self.base = base
        self.refresh_whole_neighbor = refresh_whole_neighbor
        self.name = f"{base.name}/low-atomicity"
        self.hunger_variable = base.hunger_variable

    # ------------------------------------------------------- declarations

    def local_domains(self, topology: Topology) -> Mapping[str, Domain]:
        base_domains = dict(self.base.local_domains(topology))
        domains: Dict[str, Domain] = dict(base_domains)
        max_degree_nodes = topology.nodes
        # Cache slots must exist for every potential neighbour of every
        # process; the kernel declares domains per-algorithm (not per-pid),
        # so declare slots for every node id.  Unused slots stay at their
        # initial value and cost nothing.
        for q in max_degree_nodes:
            for variable, domain in base_domains.items():
                domains[cache_var(q, variable)] = domain
            domains[edge_cache_var(q)] = _AnyEdgeDomain(self.base, topology)
        return domains

    def edge_domain(self, topology: Topology, e: Edge) -> Domain:
        return self.base.edge_domain(topology, e)

    def initial_locals(self, pid: Pid, topology: Topology) -> Mapping[str, Any]:
        values: Dict[str, Any] = dict(self.base.initial_locals(pid, topology))
        for q in topology.nodes:
            if topology.are_neighbors(pid, q):
                neighbor_initial = self.base.initial_locals(q, topology)
                for variable, value in neighbor_initial.items():
                    values[cache_var(q, variable)] = value
                from ..sim.topology import edge as mk_edge

                values[edge_cache_var(q)] = self.base.initial_edge(
                    mk_edge(pid, q), topology
                )
            else:
                for variable, domain in self.base.local_domains(topology).items():
                    values[cache_var(q, variable)] = next(iter(domain.values()))
                values[edge_cache_var(q)] = pid
        return values

    def initial_edge(self, e: Edge, topology: Topology) -> Any:
        return self.base.initial_edge(e, topology)

    # ------------------------------------------------------------ actions

    def actions(self) -> Tuple[ActionDef, ...]:
        wrapped = tuple(
            ActionDef(
                action.name,
                _wrap_guard(action),
                _wrap_command(action),
            )
            for action in self.base.actions()
        )
        return wrapped + (
            ActionDef("refresh", self._refresh_guard, self._refresh),
        )

    # In the real model re-reading a neighbour is *always* allowed, so the
    # refresh action is semantically always enabled; guarding it on "some
    # cache slot is stale" merely removes the no-op executions (stutter
    # removal), which keeps quiescence detection and fair scheduling sane.
    # One refresh execution performs exactly one remote read: a whole
    # neighbour (one process read, what [15] assumes) or a single stale
    # slot (register-level atomicity, the harshest mode).

    def _refresh_guard(self, view: ProcessView) -> bool:
        return self._first_stale(view) is not None

    def _refresh(self, view: ProcessView) -> None:
        stale = self._first_stale(view)
        assert stale is not None
        q, variable = stale
        if self.refresh_whole_neighbor:
            for name in self.base.local_domains(view.topology):
                view.set(cache_var(q, name), view.peek(q, name))
            view.set(edge_cache_var(q), view.edge_value(q))
        elif variable is None:
            view.set(edge_cache_var(q), view.edge_value(q))
        else:
            view.set(cache_var(q, variable), view.peek(q, variable))

    def _first_stale(self, view: ProcessView) -> Tuple[Pid, Any] | None:
        """The first stale (neighbour, variable) slot; variable None means
        the edge-cell cache.  Deterministic scan order."""
        for q in view.neighbors:
            if view.get(edge_cache_var(q)) != view.edge_value(q):
                return (q, None)
            for variable in self.base.local_domains(view.topology):
                if view.get(cache_var(q, variable)) != view.peek(q, variable):
                    return (q, variable)
        return None


def _wrap_guard(action: ActionDef):
    def guard(view: ProcessView) -> bool:
        return action.guard(CachedView(view))

    return guard


def _wrap_command(action: ActionDef):
    def command(view: ProcessView) -> None:
        action.command(CachedView(view))

    return command


class _AnyEdgeDomain(Domain):
    """Domain of an edge-cache slot: any endpoint id of any edge.

    Edge cells of different edges have different domains; a per-neighbour
    cache slot mirrors exactly one edge, but the declaration is shared
    across processes, so the slot's domain is the union of all node ids.
    """

    def __init__(self, base: Algorithm, topology: Topology) -> None:
        values = set(topology.nodes)
        for e in topology.edges:
            for value in base.edge_domain(topology, e).values():
                values.add(value)
        order = {p: i for i, p in enumerate(topology.nodes)}
        self._values = tuple(
            sorted(values, key=lambda v: (v not in order, order.get(v, 0), repr(v)))
        )
        self._value_set = frozenset(self._values)

    def contains(self, value: Any) -> bool:
        return value in self._value_set

    def sample(self, rng) -> Any:
        return rng.choice(self._values)

    def values(self):
        return iter(self._values)

    def __repr__(self) -> str:
        return f"_AnyEdgeDomain({len(self._values)} values)"
