"""State-space enumeration and the transition relation.

The paper's stabilization claims quantify over **every** state: Theorem 1
says the program converges from an arbitrary state.  On small instances we
can make that "every" literal: enumerate the full configuration space
(product of all variable domains) and compute every transition by executing
the very same :class:`~repro.sim.process.ActionDef` objects the simulator
runs — no second implementation of the semantics exists to drift.

Enumerability requires finite domains, so algorithms must be instantiated
with finite counters (e.g. ``NADiners(depth_cap=topology.diameter + 1)`` —
see :mod:`repro.core.algorithm` for why that cap is sound).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Dict, Iterable, Iterator, List, Mapping, Tuple

from ..sim.configuration import Configuration
from ..sim.errors import SimulationError
from ..sim.network import System
from ..sim.process import Algorithm
from ..sim.topology import Pid, Topology


def space_size(
    algorithm: Algorithm,
    topology: Topology,
    *,
    fixed_locals: Mapping[str, Any] | None = None,
) -> int:
    """How many configurations :func:`enumerate_configurations` will yield."""
    fixed = fixed_locals or {}
    domains = algorithm.local_domains(topology)
    per_process = 1
    for name, domain in domains.items():
        if name in fixed:
            continue
        per_process *= len(list(domain.values()))
    total = per_process ** len(topology)
    for e in topology.edges:
        total *= len(list(algorithm.edge_domain(topology, e).values()))
    return total


def enumerate_configurations(
    algorithm: Algorithm,
    topology: Topology,
    *,
    fixed_locals: Mapping[str, Any] | None = None,
    dead: Iterable[Pid] = (),
) -> Iterator[Configuration]:
    """Yield every configuration of the (possibly restricted) state space.

    ``fixed_locals`` pins variables to one value system-wide — typically
    ``{"needs": True}``, which cuts the space in half per process without
    affecting the stabilization predicates (they never read ``needs``).
    ``dead`` marks processes as crashed; their variables still range over
    their domains (a dead process's state is frozen but arbitrary).
    """
    fixed = dict(fixed_locals or {})
    domains = dict(algorithm.local_domains(topology))
    for name in fixed:
        if name not in domains:
            raise SimulationError(f"fixed variable {name!r} is not declared")

    free_names = [n for n in domains if n not in fixed]
    free_values: List[List[Any]] = [list(domains[n].values()) for n in free_names]
    per_process: List[Dict[str, Any]] = []
    for combo in itertools.product(*free_values):
        values = dict(fixed)
        values.update(zip(free_names, combo))
        per_process.append(values)

    nodes = topology.nodes
    order = {p: i for i, p in enumerate(nodes)}
    edges = sorted(topology.edges, key=lambda e: tuple(sorted(order[x] for x in e)))
    edge_values = [list(algorithm.edge_domain(topology, e).values()) for e in edges]

    dead = tuple(dead)
    for local_combo in itertools.product(per_process, repeat=len(nodes)):
        local_values = dict(zip(nodes, local_combo))
        for edge_combo in itertools.product(*edge_values):
            yield Configuration(
                topology,
                local_values,
                dict(zip(edges, edge_combo)),
                dead=dead,
            )


def shard_configurations(
    algorithm: Algorithm,
    topology: Topology,
    *,
    shard_index: int,
    shard_count: int,
    fixed_locals: Mapping[str, Any] | None = None,
    dead: Iterable[Pid] = (),
) -> Iterator[Configuration]:
    """One deterministic slice of the enumeration: every ``shard_count``-th
    configuration starting at offset ``shard_index``.

    The enumeration order is itself deterministic (itertools.product over
    canonically ordered domains), so shard *i* of *k* names the same
    configurations on every machine and every run — the property the
    campaign runner's checkpoint/resume relies on.  The ``shard_count``
    slices partition the space exactly.
    """
    if shard_count < 1:
        raise SimulationError("shard_count must be >= 1")
    if not 0 <= shard_index < shard_count:
        raise SimulationError(
            f"shard_index {shard_index} outside [0, {shard_count})"
        )
    return itertools.islice(
        enumerate_configurations(
            algorithm, topology, fixed_locals=fixed_locals, dead=dead
        ),
        shard_index,
        None,
        shard_count,
    )


@dataclass(frozen=True)
class Transition:
    """One labelled edge of the transition system."""

    pid: Pid
    action: str
    target: Configuration


class FastExplorer:
    """Packed-state reachability for the checker's visited set.

    Wraps :class:`repro.fastcore.explorer.FastTransitionSystem` behind the
    verification layer's vocabulary: ``enabled``/``successors`` match
    :class:`TransitionSystem` transition-for-transition (the parity battery
    pins this), while :meth:`reachable_count` replaces the object BFS's
    configuration-keyed graph with a compact ``bytes``-hashed visited set —
    the representation that lets exhaustive sweeps scale past toy rings.
    """

    def __init__(self, algorithm: Algorithm, topology: Topology) -> None:
        # Imported lazily: fastcore imports this module for ``Transition``.
        from ..fastcore.explorer import FastTransitionSystem

        self.algorithm = algorithm
        self.topology = topology
        self._fts = FastTransitionSystem(algorithm, topology)

    def enabled(self, config: Configuration) -> List[Tuple[Pid, str]]:
        """Mirror of :meth:`TransitionSystem.enabled`."""
        return self._fts.enabled(config)

    def successors(self, config: Configuration) -> "List[Transition]":
        """Mirror of :meth:`TransitionSystem.successors`."""
        return self._fts.successors(config)

    def reachable_count(
        self,
        sources: Iterable[Configuration],
        *,
        max_states: int = 1_000_000,
    ):
        """BFS closure size + transition/violation counts over packed keys.

        Returns a :class:`repro.fastcore.explorer.FastReachability` whose
        ``states`` equals ``len(TransitionSystem.reachable_from(sources))``.
        """
        return self._fts.reachable_stats(sources, max_states=max_states)


class TransitionSystem:
    """Computes successors of configurations by executing the algorithm.

    A single scratch :class:`System` is reused across calls; each successor
    computation restores it to the source configuration, executes one
    enabled action, and snapshots.

    :class:`FastExplorer` is the packed-state drop-in for the read-only
    surface (``enabled``/``successors``/reachability counting); this class
    remains the reference that defines what those must return.
    """

    def __init__(self, algorithm: Algorithm, topology: Topology) -> None:
        self.algorithm = algorithm
        self.topology = topology
        self._scratch = System(topology, algorithm)

    def enabled(self, config: Configuration) -> List[Tuple[Pid, str]]:
        """Every enabled ``(pid, action name)`` pair at ``config``."""
        self._scratch.restore(config)
        return [
            (pid, action.name)
            for pid, action in self._scratch.all_enabled()
        ]

    def successors(self, config: Configuration) -> List[Transition]:
        """All one-step successors of ``config`` with their labels."""
        scratch = self._scratch
        scratch.restore(config)
        enabled = scratch.all_enabled()
        transitions: List[Transition] = []
        for pid, action in enabled:
            scratch.restore(config)
            scratch.execute(pid, action)
            transitions.append(Transition(pid, action.name, scratch.snapshot()))
        return transitions

    def reachable_from(
        self, sources: Iterable[Configuration], *, max_states: int = 1_000_000
    ) -> Dict[Configuration, List[Transition]]:
        """BFS closure of ``sources`` under the transition relation.

        Returns the full labelled graph ``{config: transitions}``.  Raises
        :class:`SimulationError` past ``max_states`` (guard against an
        accidentally infinite space, e.g. an uncapped depth counter).
        """
        graph: Dict[Configuration, List[Transition]] = {}
        frontier: List[Configuration] = []
        for config in sources:
            if config not in graph:
                graph[config] = []
                frontier.append(config)
        cursor = 0
        while cursor < len(frontier):
            config = frontier[cursor]
            cursor += 1
            transitions = self.successors(config)
            graph[config] = transitions
            for transition in transitions:
                target = transition.target
                if target not in graph:
                    if len(graph) >= max_states:
                        raise SimulationError(
                            f"state space exceeds max_states={max_states}"
                        )
                    graph[target] = []
                    frontier.append(target)
        return graph
