"""Explicit-state model checking of the paper's lemmas on small instances.

Workflow (see experiment E9)::

    from repro.core import NADiners, invariant_holds
    from repro.sim import ring
    from repro.verification import (
        TransitionSystem, enumerate_configurations, check_closure,
        check_convergence,
    )

    topo = ring(3)
    algo = NADiners(depth_cap=topo.diameter + 1)   # finite, sound abstraction
    ts = TransitionSystem(algo, topo)
    configs = list(enumerate_configurations(algo, topo, fixed_locals={"needs": True}))
    assert check_closure(ts, invariant_holds, configs).holds        # I closed
    assert check_convergence(ts, invariant_holds, configs).converges  # true ⤳ I
"""

from .explorer import (
    FastExplorer,
    Transition,
    TransitionSystem,
    enumerate_configurations,
    shard_configurations,
    space_size,
)
from .properties import (
    ClosureReport,
    ConvergenceReport,
    Counterexample,
    build_graph,
    check_all_states,
    check_closure,
    check_convergence,
    check_monotone_set,
    check_numeric_nonincreasing,
    confirm_fair_livelock,
    convergence_distances,
    optimal_recovery_diameter,
)

__all__ = [
    "FastExplorer",
    "Transition",
    "TransitionSystem",
    "enumerate_configurations",
    "shard_configurations",
    "space_size",
    "ClosureReport",
    "ConvergenceReport",
    "Counterexample",
    "build_graph",
    "check_all_states",
    "check_closure",
    "check_convergence",
    "check_monotone_set",
    "check_numeric_nonincreasing",
    "confirm_fair_livelock",
    "convergence_distances",
    "optimal_recovery_diameter",
]
