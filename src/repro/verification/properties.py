"""Exhaustive property checks: closure, convergence, monotonicity.

These functions turn the paper's lemmas into machine-checked statements on
small instances:

* :func:`check_closure` — Lemmas 1/4 closure parts and Theorem 1's "I is
  closed": no transition leaves the predicate.
* :func:`check_monotone_set` — Lemma 2 ("once stably shallow, always stably
  shallow") and Lemma 5 ("a red process never changes colour once I
  holds"): a configuration-to-set function never loses members along any
  transition.
* :func:`check_convergence` — Theorem 1's convergence part, proved per
  instance via strongly connected components:

  1. enumerate the full state space and its transition graph;
  2. condense it into SCCs (Tarjan);
  3. closure makes every SCC purely legitimate or purely illegitimate;
  4. an illegitimate SCC cannot trap a weakly fair computation if it is
     *fair-escapable*: some ``(process, action)`` is enabled at **every**
     state of the SCC and executing it from **any** state of the SCC leaves
     the SCC (weak fairness eventually fires it), or the SCC has no internal
     transition at all (every computation must leave it immediately, or it
     is a terminal deadlock, which fails the check);
  5. the condensation is a DAG, so a computation escapes illegitimate SCCs
     finitely often and its tail lives in a legitimate SCC.

  If every illegitimate SCC is fair-escapable the instance provably
  converges under weak fairness.  The check is sufficient, not necessary:
  a failure returns the offending SCC for inspection instead of claiming
  non-convergence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    AbstractSet,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from ..sim.configuration import Configuration
from ..sim.topology import Pid
from .explorer import Transition, TransitionSystem

Predicate = Callable[[Configuration], bool]
SetFn = Callable[[Configuration], AbstractSet[Pid]]
Graph = Dict[Configuration, List[Transition]]


@dataclass(frozen=True)
class Counterexample:
    """A transition that violated a property."""

    source: Configuration
    pid: Pid
    action: str
    target: Configuration


@dataclass(frozen=True)
class ClosureReport:
    holds: bool
    checked_states: int
    counterexample: Optional[Counterexample]


def build_graph(
    ts: TransitionSystem,
    configs: Iterable[Configuration],
    *,
    close_under_reachability: bool = True,
    max_states: int = 1_000_000,
) -> Graph:
    """The labelled transition graph over ``configs``.

    With ``close_under_reachability`` (default) successors outside the given
    set are explored too, so the graph is transition-closed; exploring a full
    enumerated space adds nothing, but partial seed sets stay sound.
    """
    if close_under_reachability:
        return ts.reachable_from(configs, max_states=max_states)
    return {config: ts.successors(config) for config in configs}


def check_closure(
    ts: TransitionSystem,
    predicate: Predicate,
    configs: Iterable[Configuration],
) -> ClosureReport:
    """Does every transition out of a predicate-state stay in the predicate?

    Only states satisfying the predicate are expanded — exactly the paper's
    definition of a closed predicate.
    """
    checked = 0
    for config in configs:
        if not predicate(config):
            continue
        checked += 1
        for transition in ts.successors(config):
            if not predicate(transition.target):
                return ClosureReport(
                    holds=False,
                    checked_states=checked,
                    counterexample=Counterexample(
                        config, transition.pid, transition.action, transition.target
                    ),
                )
    return ClosureReport(holds=True, checked_states=checked, counterexample=None)


def check_monotone_set(
    ts: TransitionSystem,
    set_fn: SetFn,
    configs: Iterable[Configuration],
    *,
    only_when: Predicate | None = None,
) -> ClosureReport:
    """Does ``set_fn(source) ⊆ set_fn(target)`` hold along every transition?

    ``only_when`` restricts the sources considered (e.g. Lemma 5 is stated
    for computations starting in I).  Note that when ``only_when`` is a
    closed predicate, restricting sources checks whole computations, not
    just single steps.
    """
    checked = 0
    for config in configs:
        if only_when is not None and not only_when(config):
            continue
        checked += 1
        members = set_fn(config)
        for transition in ts.successors(config):
            if not members <= set_fn(transition.target):
                return ClosureReport(
                    holds=False,
                    checked_states=checked,
                    counterexample=Counterexample(
                        config, transition.pid, transition.action, transition.target
                    ),
                )
    return ClosureReport(holds=True, checked_states=checked, counterexample=None)


# ------------------------------------------------------------- convergence


@dataclass(frozen=True)
class ConvergenceReport:
    """Outcome of the SCC-based convergence proof attempt."""

    converges: bool
    total_states: int
    legit_states: int
    scc_count: int
    illegit_scc_count: int
    #: When the check fails: the states of the first SCC that is neither
    #: legitimate nor provably fair-escapable (for inspection).
    stuck_scc: Tuple[Configuration, ...] = ()
    #: "deadlock" when the stuck SCC is a terminal illegitimate state;
    #: "no-escape-action" when it cycles without a provable escape.
    failure_kind: Optional[str] = None


def _tarjan_sccs(graph: Graph) -> List[List[Configuration]]:
    """Iterative Tarjan strongly-connected components."""
    index: Dict[Configuration, int] = {}
    low: Dict[Configuration, int] = {}
    on_stack: set = set()
    stack: List[Configuration] = []
    sccs: List[List[Configuration]] = []
    counter = 0

    for root in graph:
        if root in index:
            continue
        work: List[Tuple[Configuration, int]] = [(root, 0)]
        while work:
            node, child_index = work[-1]
            if child_index == 0:
                index[node] = low[node] = counter
                counter += 1
                stack.append(node)
                on_stack.add(node)
            advanced = False
            transitions = graph[node]
            while child_index < len(transitions):
                child = transitions[child_index].target
                child_index += 1
                if child not in index:
                    work[-1] = (node, child_index)
                    work.append((child, 0))
                    advanced = True
                    break
                if child in on_stack:
                    low[node] = min(low[node], index[child])
            if advanced:
                continue
            work.pop()
            if low[node] == index[node]:
                scc: List[Configuration] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    scc.append(member)
                    if member == node:
                        break
                sccs.append(scc)
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
    return sccs


def _has_internal_transition(scc_set: set, graph: Graph) -> bool:
    return any(
        transition.target in scc_set
        for node in scc_set
        for transition in graph[node]
    )


def _fair_escape_exists(scc: Sequence[Configuration], graph: Graph) -> bool:
    """Is there an action enabled at every SCC state that always exits it?"""
    scc_set = set(scc)
    # Candidate labels: (pid, action) pairs enabled at the first state.
    first = scc[0]
    candidates = {(t.pid, t.action) for t in graph[first]}
    for node in scc:
        labels = {(t.pid, t.action) for t in graph[node]}
        candidates &= labels
        if not candidates:
            return False
    for pid, action in sorted(candidates, key=repr):
        if all(
            all(
                t.target not in scc_set
                for t in graph[node]
                if t.pid == pid and t.action == action
            )
            for node in scc
        ):
            return True
    return False


def check_convergence(
    ts: TransitionSystem,
    predicate: Predicate,
    configs: Iterable[Configuration],
    *,
    max_states: int = 1_000_000,
    graph: Graph | None = None,
) -> ConvergenceReport:
    """Attempt the SCC-based convergence proof (see module docstring).

    ``configs`` seeds the space; it is closed under reachability first, so
    passing the full enumeration checks convergence from truly arbitrary
    states.  Pass a prebuilt ``graph`` (from :func:`build_graph` over the
    same configs) to reuse it across several checks.
    """
    if graph is None:
        graph = build_graph(ts, configs, max_states=max_states)
    legit = {config for config in graph if predicate(config)}
    sccs = _tarjan_sccs(graph)

    illegit_sccs = [scc for scc in sccs if scc[0] not in legit]
    for scc in illegit_sccs:
        scc_set = set(scc)
        internal = _has_internal_transition(scc_set, graph)
        if not internal:
            # Computations cannot linger; but a terminal state would trap.
            if len(scc) == 1 and not graph[scc[0]]:
                return ConvergenceReport(
                    converges=False,
                    total_states=len(graph),
                    legit_states=len(legit),
                    scc_count=len(sccs),
                    illegit_scc_count=len(illegit_sccs),
                    stuck_scc=tuple(scc),
                    failure_kind="deadlock",
                )
            continue
        if not _fair_escape_exists(scc, graph):
            return ConvergenceReport(
                converges=False,
                total_states=len(graph),
                legit_states=len(legit),
                scc_count=len(sccs),
                illegit_scc_count=len(illegit_sccs),
                stuck_scc=tuple(scc),
                failure_kind="no-escape-action",
            )
    return ConvergenceReport(
        converges=True,
        total_states=len(graph),
        legit_states=len(legit),
        scc_count=len(sccs),
        illegit_scc_count=len(illegit_sccs),
    )


def convergence_distances(
    graph: Graph, predicate: Predicate
) -> Dict[Configuration, Optional[int]]:
    """Per state: the length of the *shortest* path to a legitimate state.

    Computed by reverse BFS from the legitimate set, so one pass covers the
    whole graph.  ``None`` marks states from which no legitimate state is
    reachable at all (with a correct stabilizing program there are none).
    The maximum finite value is the instance's optimal-recovery diameter —
    a lower bound on any daemon's worst-case convergence time, useful to
    compare against the measured E3 numbers.
    """
    reverse: Dict[Configuration, List[Configuration]] = {c: [] for c in graph}
    for config, transitions in graph.items():
        for t in transitions:
            reverse[t.target].append(config)
    distances: Dict[Configuration, Optional[int]] = {c: None for c in graph}
    frontier: List[Configuration] = []
    for config in graph:
        if predicate(config):
            distances[config] = 0
            frontier.append(config)
    cursor = 0
    while cursor < len(frontier):
        config = frontier[cursor]
        cursor += 1
        next_distance = distances[config] + 1  # type: ignore[operator]
        for predecessor in reverse[config]:
            if distances[predecessor] is None:
                distances[predecessor] = next_distance
                frontier.append(predecessor)
    return distances


def optimal_recovery_diameter(graph: Graph, predicate: Predicate) -> Optional[int]:
    """max over states of the shortest distance to legitimacy (None when
    some state cannot reach legitimacy at all)."""
    distances = convergence_distances(graph, predicate)
    worst = 0
    for value in distances.values():
        if value is None:
            return None
        worst = max(worst, value)
    return worst


def check_numeric_nonincreasing(
    ts: TransitionSystem,
    measure: Callable[[Configuration], float],
    configs: Iterable[Configuration],
) -> ClosureReport:
    """Does ``measure`` never increase along any transition?

    Theorem 3 in checkable form: with ``measure = len ∘ eating_pairs``,
    a pass over the full enumeration proves the simultaneously-eating-pairs
    count is non-increasing from *every* state, not just inside I.
    """
    checked = 0
    for config in configs:
        checked += 1
        value = measure(config)
        for transition in ts.successors(config):
            if measure(transition.target) > value:
                return ClosureReport(
                    holds=False,
                    checked_states=checked,
                    counterexample=Counterexample(
                        config, transition.pid, transition.action, transition.target
                    ),
                )
    return ClosureReport(holds=True, checked_states=checked, counterexample=None)


def confirm_fair_livelock(
    ts: TransitionSystem, states: Sequence[Configuration]
) -> bool:
    """Is an infinite *weakly fair* execution trapped in ``states``?

    ``states`` must be a strongly connected component of the transition
    graph (as returned in :attr:`ConvergenceReport.stuck_scc`).  Because an
    SCC admits a tour visiting all its states infinitely often, it hosts a
    weakly fair livelock whenever **no action is enabled at every state** —
    along the tour, every action is disabled infinitely often, so weak
    fairness imposes no obligation.  (Sufficient condition; a False result
    is inconclusive.)

    This turns a :class:`ConvergenceReport` failure into a positive
    counterexample: the no-fixdepth ablation's hungry/thinking alternation
    wave (the paper's Figure 2 narration) is confirmed this way.
    """
    if not states:
        return False
    scc_set = set(states)
    if len(states) == 1:
        has_self_loop = any(
            t.target in scc_set for t in ts.successors(states[0])
        )
        if not has_self_loop:
            return False
    common = None
    for config in states:
        labels = set(ts.enabled(config))
        common = labels if common is None else common & labels
        if not common:
            return True
    return False


def check_all_states(
    predicate: Predicate, configs: Iterable[Configuration]
) -> Tuple[bool, Optional[Configuration]]:
    """Does ``predicate`` hold at every configuration?  Returns the first
    counterexample otherwise (used for "safety inside I" style checks)."""
    for config in configs:
        if not predicate(config):
            return False, config
    return True, None
