"""Message-passing diners via Chandy–Misra fork collection (§4, option 1).

§4 of the paper offers two routes from the shared-memory program to message
passing; the first is "Chandy and Misra's fork collection [5]", which this
module implements faithfully:

* one **fork** and one **request token** per edge, carried as messages;
* forks are *clean* or *dirty*; eating dirties every held fork;
* a hungry process holding a request token for a missing fork sends it;
* a process surrenders a held fork when it holds the matching request
  token, the fork is dirty, and it is not eating (the fork is cleaned in
  transit); clean forks and forks at an eating process are deferred;
* a hungry process holding every incident fork eats.

Initial fork placement follows the node order so the precedence graph is
acyclic (fork, dirty, at the earlier endpoint; request token at the other).

Fault posture (measured in E7): safe and live without faults; a benign
crash blocks neighbours waiting on the dead process's forks (Chandy–Misra
has unbounded failure locality — which is exactly why the paper's §4 calls
fork collection "cumbersome" and prefers the priority-based scheme); a
malicious crash can forge forks, but only on its own incident edges, so
every simultaneous-eating pair it causes includes the faulty process.  The
fork layer is not self-stabilizing (duplicated or lost forks persist); the
stabilizing ingredient of §4 is the handshake layer, built and validated in
:mod:`repro.mp.handshake`.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, Tuple

from ..core.state import DinerState
from ..sim.topology import Pid, Topology
from .node import MpContext, MpProcess

T = DinerState.THINKING.value
H = DinerState.HUNGRY.value
E = DinerState.EATING.value

TAG_FORK = "fork"
TAG_REQUEST = "request"


def edge_key(p: Pid, q: Pid) -> Tuple[str, str]:
    """Canonical session key for the edge ``{p, q}``."""
    a, b = sorted((repr(p), repr(q)))
    return (a, b)


class DinersMpProcess(MpProcess):
    """One Chandy–Misra philosopher.

    Parameters
    ----------
    pid / topology:
        Identity and the communication graph (for neighbour order).
    needs:
        Called on every tick while thinking; True means "become hungry".
        Defaults to always-hungry (the liveness experiments' worst case).
    eat_ticks:
        How many of its own ticks a meal lasts before the process exits;
        keeps meals finite, as the problem statement requires.
    """

    def __init__(
        self,
        pid: Pid,
        topology: Topology,
        *,
        needs: Callable[[], bool] | None = None,
        eat_ticks: int = 1,
        seed: int = 0,
    ) -> None:
        super().__init__(pid)
        if eat_ticks < 1:
            raise ValueError("eat_ticks must be positive")
        self._topology = topology
        self._needs = needs if needs is not None else (lambda: True)
        self._eat_ticks = eat_ticks
        self._rng = random.Random(seed)
        order = {p: i for i, p in enumerate(topology.nodes)}
        self.state: str = T
        self.eats = 0
        self._eating_remaining = 0
        self.holds_fork: Dict[Pid, bool] = {}
        self.fork_clean: Dict[Pid, bool] = {}
        self.holds_request: Dict[Pid, bool] = {}
        #: request already sent and not yet answered, per neighbour —
        #: suppresses useless retransmission storms (retransmit anyway on
        #: tick when still hungry, since requests can be dropped).
        for q in topology.neighbors(pid):
            earlier = order[pid] < order[q]
            self.holds_fork[q] = earlier
            self.fork_clean[q] = False  # all forks start dirty
            self.holds_request[q] = not earlier

    # ----------------------------------------------------------- protocol

    def on_message(self, ctx: MpContext, src: Pid, payload: Tuple) -> None:
        if (
            not isinstance(payload, tuple)
            or len(payload) != 2
            or payload[1] != edge_key(self.pid, src)
        ):
            return  # junk
        tag = payload[0]
        if tag == TAG_FORK:
            self.holds_fork[src] = True
            self.fork_clean[src] = True  # forks are cleaned in transit
        elif tag == TAG_REQUEST:
            self.holds_request[src] = True
            self._maybe_surrender(ctx, src)

    def on_tick(self, ctx: MpContext) -> None:
        if self.state == T and self._needs():
            self.state = H
        if self.state == E:
            self._eating_remaining -= 1
            if self._eating_remaining <= 0:
                self._exit(ctx)
            return
        if self.state == H:
            for q in ctx.neighbors:
                if not self.holds_fork[q] and self.holds_request[q]:
                    if ctx.send(q, (TAG_REQUEST, edge_key(self.pid, q))):
                        self.holds_request[q] = False
                self._maybe_surrender(ctx, q)
            if all(self.holds_fork[q] for q in ctx.neighbors):
                self.state = E
                self.eats += 1
                self._eating_remaining = self._eat_ticks
                for q in ctx.neighbors:
                    self.fork_clean[q] = False  # eating dirties every fork
        else:
            # Thinking: nothing to defend — honour any pending requests.
            for q in ctx.neighbors:
                self._maybe_surrender(ctx, q)

    def _maybe_surrender(self, ctx: MpContext, q: Pid) -> None:
        """Send the fork to ``q`` when obliged: request held, fork dirty,
        not eating."""
        if (
            self.state != E
            and self.holds_fork.get(q, False)
            and not self.fork_clean.get(q, True)
            and self.holds_request.get(q, False)
        ):
            if ctx.send(q, (TAG_FORK, edge_key(self.pid, q))):
                self.holds_fork[q] = False

    def _exit(self, ctx: MpContext) -> None:
        self.state = T
        for q in ctx.neighbors:
            self.fork_clean[q] = False
            self._maybe_surrender(ctx, q)

    # -------------------------------------------------------------- faults

    def corrupt(self, rng: random.Random) -> None:
        self.state = rng.choice((T, H, E))
        self._eating_remaining = rng.randrange(self._eat_ticks + 1)
        for q in list(self.holds_fork):
            self.holds_fork[q] = rng.random() < 0.5
            self.fork_clean[q] = rng.random() < 0.5
            self.holds_request[q] = rng.random() < 0.5

    def random_payload(self, rng: random.Random) -> Tuple:
        neighbors = self._topology.neighbors(self.pid)
        q = neighbors[rng.randrange(len(neighbors))]
        tag = rng.choice((TAG_FORK, TAG_REQUEST, "junk"))
        return (tag, edge_key(self.pid, q))


def build_diners(
    topology: Topology,
    *,
    needs: Callable[[], bool] | None = None,
    eat_ticks: int = 1,
    seed: int = 0,
) -> Dict[Pid, DinersMpProcess]:
    """One :class:`DinersMpProcess` per node, ready for an ``MpEngine``."""
    return {
        pid: DinersMpProcess(
            pid, topology, needs=needs, eat_ticks=eat_ticks, seed=seed + i
        )
        for i, pid in enumerate(topology.nodes)
    }


def eating_now(processes: Dict[Pid, DinersMpProcess]) -> Tuple[Pid, ...]:
    """All processes currently in the eating state."""
    return tuple(p for p, proc in processes.items() if proc.state == E)


def neighbours_both_eating(
    topology: Topology, processes: Dict[Pid, DinersMpProcess]
) -> Tuple[Tuple[Pid, Pid], ...]:
    """Safety metric: neighbour pairs simultaneously eating."""
    pairs = []
    for e in topology.edges:
        p, q = tuple(e)
        if processes[p].state == E and processes[q].state == E:
            pairs.append((p, q))
    return tuple(pairs)
