"""Message-passing diners via Chandy–Misra fork collection (§4, option 1).

§4 of the paper offers two routes from the shared-memory program to message
passing; the first is "Chandy and Misra's fork collection [5]", which this
module implements faithfully:

* one **fork** and one **request token** per edge, carried as messages;
* forks are *clean* or *dirty*; eating dirties every held fork;
* a hungry process holding a request token for a missing fork sends it;
* a process surrenders a held fork when it holds the matching request
  token, the fork is dirty, and it is not eating (the fork is cleaned in
  transit); clean forks and forks at an eating process are deferred;
* a hungry process holding every incident fork eats.

Initial fork placement follows the node order so the precedence graph is
acyclic (fork, dirty, at the earlier endpoint; request token at the other).

Fault posture (measured in E7): safe and live without faults; a benign
crash blocks neighbours waiting on the dead process's forks (Chandy–Misra
has unbounded failure locality — which is exactly why the paper's §4 calls
fork collection "cumbersome" and prefers the priority-based scheme); a
malicious crash can forge forks, but only on its own incident edges, so
every simultaneous-eating pair it causes includes the faulty process.  The
bare fork layer is not self-stabilizing (duplicated or lost forks persist);
the stabilizing ingredient of §4 is the handshake layer, built and
validated in :mod:`repro.mp.handshake`.

**Repair mode** (``repair=True``) transplants the handshake's counter idea
into the fork layer so the protocol survives lossy channels and restarts
from arbitrary state — the live cluster needs this, since a single dropped
``fork``/``request`` frame otherwise destroys the edge token forever:

* every frame carries a per-edge transfer counter; each endpoint keeps the
  highest counter it has used or accepted (``edge_c``), and a fork frame is
  honoured only when its counter exceeds it, so stale duplicates are inert;
* a surrendered fork is retransmitted every ``resend_every`` ticks until
  the peer acknowledges it (``ack`` frame, or any frame proving the peer's
  counter advanced past the transfer);
* a hungry process that spent its request token re-sends the request every
  ``resend_every`` ticks — fabricated request tokens are benign because
  possession is a boolean and only forks gate eating;
* a request arriving at an endpoint that neither holds the fork nor has a
  transfer in flight proves the edge's fork token is lost (the requester is
  fork-less by definition, and forks only move between the two endpoints):
  the canonical *earlier* endpoint regenerates the fork, dirty, with a
  fresh counter that invalidates any stale copy; the later endpoint
  instead echoes a request so the earlier endpoint's rule fires.

With ``repair=False`` (the default, used by the in-process simulator over
reliable channels) the wire format and behaviour are exactly the classic
two-field frames, preserving the strict one-token-per-edge invariants the
property tests pin down.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, Tuple

from ..core.state import DinerState
from ..sim.topology import Pid, Topology
from .node import MpContext, MpProcess

T = DinerState.THINKING.value
H = DinerState.HUNGRY.value
E = DinerState.EATING.value

TAG_FORK = "fork"
TAG_REQUEST = "request"
TAG_ACK = "ack"  #: repair mode only: acknowledges a counted fork transfer.
TAG_MISSING = "missing"  #: repair mode only: "I can't serve your request —
#: I don't hold the fork either"; trips the earlier endpoint's regeneration.


def edge_key(p: Pid, q: Pid) -> Tuple[str, str]:
    """Canonical session key for the edge ``{p, q}``."""
    a, b = sorted((repr(p), repr(q)))
    return (a, b)


class DinersMpProcess(MpProcess):
    """One Chandy–Misra philosopher.

    Parameters
    ----------
    pid / topology:
        Identity and the communication graph (for neighbour order).
    needs:
        Called on every tick while thinking; True means "become hungry".
        Defaults to always-hungry (the liveness experiments' worst case).
    eat_ticks:
        How many of its own ticks a meal lasts before the process exits;
        keeps meals finite, as the problem statement requires.
    repair:
        Enable the stabilizing edge repair documented in the module
        docstring (counted transfers, retransmission, fork regeneration).
        Off by default: the simulator's reliable channels don't need it
        and the strict token-conservation invariants assume bare frames.
    resend_every:
        Repair mode's retransmission period, in own ticks.
    """

    def __init__(
        self,
        pid: Pid,
        topology: Topology,
        *,
        needs: Callable[[], bool] | None = None,
        eat_ticks: int = 1,
        seed: int = 0,
        repair: bool = False,
        resend_every: int = 8,
    ) -> None:
        super().__init__(pid)
        if eat_ticks < 1:
            raise ValueError("eat_ticks must be positive")
        if resend_every < 1:
            raise ValueError("resend_every must be positive")
        self._topology = topology
        self._needs = needs if needs is not None else (lambda: True)
        self._eat_ticks = eat_ticks
        self._rng = random.Random(seed)
        order = {p: i for i, p in enumerate(topology.nodes)}
        self.state: str = T
        self.eats = 0
        self._eating_remaining = 0
        self.repair = repair
        self.resend_every = resend_every
        self.holds_fork: Dict[Pid, bool] = {}
        self.fork_clean: Dict[Pid, bool] = {}
        self.holds_request: Dict[Pid, bool] = {}
        #: request already sent and not yet answered, per neighbour —
        #: suppresses useless retransmission storms (repair mode
        #: retransmits on a timer anyway, since requests can be dropped).
        #: highest transfer counter used or accepted per edge (repair mode).
        self.edge_c: Dict[Pid, int] = {}
        #: counter of an unacknowledged outbound fork transfer, per edge.
        self._fork_resend: Dict[Pid, int | None] = {}
        self._earlier: Dict[Pid, bool] = {}
        self._ticks = 0
        self._last_repair_send: Dict[Pid, int] = {}
        self._yield_count: Dict[Pid, int] = {}
        for q in topology.neighbors(pid):
            earlier = order[pid] < order[q]
            self.holds_fork[q] = earlier
            self.fork_clean[q] = False  # all forks start dirty
            self.holds_request[q] = not earlier
            self.edge_c[q] = 0
            self._fork_resend[q] = None
            self._earlier[q] = earlier

    # ----------------------------------------------------------- protocol

    def on_message(self, ctx: MpContext, src: Pid, payload: Tuple) -> None:
        if (
            not isinstance(payload, tuple)
            or len(payload) < 2
            or payload[1] != edge_key(self.pid, src)
        ):
            return  # junk
        if self.repair:
            self._on_repair_message(ctx, src, payload)
            return
        if len(payload) != 2:
            return  # junk
        tag = payload[0]
        if tag == TAG_FORK:
            self.holds_fork[src] = True
            self.fork_clean[src] = True  # forks are cleaned in transit
        elif tag == TAG_REQUEST:
            self.holds_request[src] = True
            self._maybe_surrender(ctx, src)

    def _on_repair_message(self, ctx: MpContext, src: Pid, payload: Tuple) -> None:
        """Repair-mode dispatch: frames are ``(tag, key, counter)``."""
        if (
            len(payload) != 3
            or not isinstance(payload[2], int)
            or isinstance(payload[2], bool)
            or payload[2] < 0
        ):
            return  # junk
        tag, _, c = payload
        pending = self._fork_resend.get(src)
        acked = pending is not None and c >= pending
        if tag == TAG_ACK:
            if acked:
                self._fork_resend[src] = None
            return
        if tag == TAG_FORK:
            if c > self.edge_c[src]:
                self.edge_c[src] = c
                self.holds_fork[src] = True
                self.fork_clean[src] = True
                if acked:
                    self._fork_resend[src] = None
            # Ack every fork frame — fresh, duplicate, or stale — so the
            # sender's retransmission stops even when the first ack drops.
            ctx.send(src, (TAG_ACK, edge_key(self.pid, src), c))
            return
        if tag == TAG_MISSING:
            # The peer received our request but holds no fork and has no
            # transfer in flight; if we are fork-less too, the edge's fork
            # token is lost.  Only the canonical earlier endpoint
            # regenerates (a single deterministic regenerator can't race
            # itself), dirty, with a counter that invalidates stale copies.
            # Request-token state is deliberately untouched: this frame is
            # a report, not a request, so no surrender obligation arises.
            if (
                self._earlier[src]
                and not self.holds_fork[src]
                and pending is None
                and c >= self.edge_c[src]
            ):
                self.edge_c[src] = c + 1
                self.holds_fork[src] = True
                self.fork_clean[src] = False
            elif c > self.edge_c[src]:
                self.edge_c[src] = c
            return
        if tag != TAG_REQUEST:
            return  # junk
        stale = c < self.edge_c[src]
        if acked:
            self._fork_resend[src] = None
        if c > self.edge_c[src]:
            self.edge_c[src] = c
        self.holds_request[src] = True
        self._maybe_surrender(ctx, src)
        if (
            stale
            or self.holds_fork[src]
            or self._fork_resend.get(src) is not None
        ):
            return
        # The requester is fork-less by definition, we are fork-less with
        # no transfer in flight, and the counter proves the request is not
        # a stale crossing: the edge's fork token is lost.  The earlier
        # endpoint regenerates the fork, dirty, so the pending request is
        # honoured on the spot; the later endpoint reports back so the
        # earlier endpoint's :data:`TAG_MISSING` rule fires instead.
        if self._earlier[src]:
            self.edge_c[src] += 1
            self.holds_fork[src] = True
            self.fork_clean[src] = False
            self._maybe_surrender(ctx, src)
        else:
            ctx.send(src, (TAG_MISSING, edge_key(self.pid, src), self.edge_c[src]))

    def on_tick(self, ctx: MpContext) -> None:
        if self.repair:
            self._repair_tick(ctx)
        if self.state == T and self._needs():
            self.state = H
        if self.state == E:
            self._eating_remaining -= 1
            if self._eating_remaining <= 0:
                self._exit(ctx)
            return
        if self.state == H:
            for q in ctx.neighbors:
                if not self.holds_fork[q] and self.holds_request[q]:
                    if ctx.send(q, self._request_payload(q)):
                        self.holds_request[q] = False
                        self._last_repair_send[q] = self._ticks
                self._maybe_surrender(ctx, q)
            if all(self.holds_fork[q] for q in ctx.neighbors):
                self.state = E
                self.eats += 1
                self._eating_remaining = self._eat_ticks
                for q in ctx.neighbors:
                    self.fork_clean[q] = False  # eating dirties every fork
        else:
            # Thinking: nothing to defend — honour any pending requests.
            for q in ctx.neighbors:
                self._maybe_surrender(ctx, q)

    def _repair_tick(self, ctx: MpContext) -> None:
        """Periodic retransmission: unacked fork transfers always, spent
        request tokens while hungry.  Runs in every state — a fork handed
        over just before eating must still be delivered.

        Also breaks precedence cycles.  Classic Chandy–Misra keeps the
        clean/dirty priority graph acyclic, but frame loss and fork
        regeneration re-orient edges independently, so a cycle of hungry
        processes each defending one clean fork can form and deadlock.
        Repair falls back to the statically acyclic node order: a *later*
        endpoint that has starved ``8 * resend_every`` ticks on a clean,
        requested fork dirties it (yielding priority to the earlier
        endpoint), and a thinking process — which has no claim at all —
        dirties such a fork immediately."""
        self._ticks += 1
        for q in ctx.neighbors:
            if (
                self.holds_fork[q]
                and self.fork_clean[q]
                and self.holds_request[q]
                and self.state != E
            ):
                if self.state == T:
                    self.fork_clean[q] = False
                elif not self._earlier[q]:
                    self._yield_count[q] = self._yield_count.get(q, 0) + 1
                    if self._yield_count[q] >= 8 * self.resend_every:
                        self.fork_clean[q] = False
                        self._yield_count[q] = 0
            else:
                self._yield_count[q] = 0
            last = self._last_repair_send.get(q)
            if last is not None and self._ticks - last < self.resend_every:
                continue
            pending = self._fork_resend.get(q)
            key = edge_key(self.pid, q)
            if pending is not None:
                if ctx.send(q, (TAG_FORK, key, pending)):
                    self._last_repair_send[q] = self._ticks
            elif (
                self.state == H
                and not self.holds_fork[q]
                and not self.holds_request[q]
            ):
                # The request token was spent (or lost with the frame);
                # fabricating a replacement is safe — possession is a
                # boolean at the receiver and requests never gate eating.
                if ctx.send(q, (TAG_REQUEST, key, self.edge_c[q])):
                    self._last_repair_send[q] = self._ticks

    def _request_payload(self, q: Pid) -> Tuple:
        key = edge_key(self.pid, q)
        return (TAG_REQUEST, key, self.edge_c[q]) if self.repair else (TAG_REQUEST, key)

    def _maybe_surrender(self, ctx: MpContext, q: Pid) -> None:
        """Send the fork to ``q`` when obliged: request held, fork dirty,
        not eating."""
        if (
            self.state != E
            and self.holds_fork.get(q, False)
            and not self.fork_clean.get(q, True)
            and self.holds_request.get(q, False)
        ):
            if self.repair:
                c = self.edge_c[q] + 1
                if ctx.send(q, (TAG_FORK, edge_key(self.pid, q), c)):
                    self.edge_c[q] = c
                    self.holds_fork[q] = False
                    self._fork_resend[q] = c
                    self._last_repair_send[q] = self._ticks
            elif ctx.send(q, (TAG_FORK, edge_key(self.pid, q))):
                self.holds_fork[q] = False

    def _exit(self, ctx: MpContext) -> None:
        self.state = T
        for q in ctx.neighbors:
            self.fork_clean[q] = False
            self._maybe_surrender(ctx, q)

    # -------------------------------------------------------------- faults

    def corrupt(self, rng: random.Random) -> None:
        self.state = rng.choice((T, H, E))
        self._eating_remaining = rng.randrange(self._eat_ticks + 1)
        for q in list(self.holds_fork):
            self.holds_fork[q] = rng.random() < 0.5
            self.fork_clean[q] = rng.random() < 0.5
            self.holds_request[q] = rng.random() < 0.5
        if self.repair:
            for q in list(self.edge_c):
                self.edge_c[q] = rng.randrange(8)
                self._fork_resend[q] = (
                    rng.randrange(8) if rng.random() < 0.3 else None
                )
                self._last_repair_send.pop(q, None)

    def random_payload(self, rng: random.Random) -> Tuple:
        neighbors = self._topology.neighbors(self.pid)
        q = neighbors[rng.randrange(len(neighbors))]
        tag = rng.choice((TAG_FORK, TAG_REQUEST, "junk"))
        if self.repair:
            return (tag, edge_key(self.pid, q), rng.randrange(16))
        return (tag, edge_key(self.pid, q))


def build_diners(
    topology: Topology,
    *,
    needs: Callable[[], bool] | None = None,
    eat_ticks: int = 1,
    seed: int = 0,
    repair: bool = False,
    resend_every: int = 8,
) -> Dict[Pid, DinersMpProcess]:
    """One :class:`DinersMpProcess` per node, ready for an ``MpEngine``."""
    return {
        pid: DinersMpProcess(
            pid,
            topology,
            needs=needs,
            eat_ticks=eat_ticks,
            seed=seed + i,
            repair=repair,
            resend_every=resend_every,
        )
        for i, pid in enumerate(topology.nodes)
    }


def eating_now(processes: Dict[Pid, DinersMpProcess]) -> Tuple[Pid, ...]:
    """All processes currently in the eating state."""
    return tuple(p for p, proc in processes.items() if proc.state == E)


def neighbours_both_eating(
    topology: Topology, processes: Dict[Pid, DinersMpProcess]
) -> Tuple[Tuple[Pid, Pid], ...]:
    """Safety metric: neighbour pairs simultaneously eating."""
    pairs = []
    for e in topology.edges:
        p, q = tuple(e)
        if processes[p].state == E and processes[q].state == E:
            pairs.append((p, q))
    return tuple(pairs)
