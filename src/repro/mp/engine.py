"""The message-passing engine.

Events are of two kinds: *deliver* the head of a non-empty channel to its
destination, or *tick* a live process.  The engine interleaves them under
the same weak-fairness discipline as the shared-memory daemon: every event
kind that stays continuously available fires within a bounded number of
opportunities.  This gives the two liveness assumptions message-passing
algorithms rely on — every sent message is eventually delivered, and every
process takes infinitely many spontaneous steps.

The fault repertoire mirrors :mod:`repro.sim.faults`:

* :meth:`MpEngine.crash` — the process stops; messages addressed to it are
  still delivered (and silently discarded), as a real network would;
* :meth:`MpEngine.crash_maliciously` — the process takes ``k`` havoc steps
  (state corruption plus junk messages to neighbours) before halting;
* :meth:`MpEngine.transient_fault` — every process state and every channel
  content is replaced with arbitrary values from their legal spaces.
"""

from __future__ import annotations

import random
from collections import Counter
from typing import TYPE_CHECKING, Any, Callable, Dict, Hashable, Iterable, List, Mapping, Tuple

from ..obs.events import MpEventKind
from ..obs.tracing import LamportClock
from ..sim.errors import DeadProcessError, SimulationError, UnknownProcessError
from ..sim.topology import Pid, Topology
from ..sim.trace import TraceEvent
from .channel import Channel
from .node import MpContext, MpProcess

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from ..obs.bus import EventBus


class MpEngine:
    """Runs message-passing processes over a topology of FIFO channels.

    Parameters
    ----------
    topology:
        Communication graph; one directed channel per edge direction.
    processes:
        ``{pid: MpProcess}`` covering every node.
    channel_capacity:
        Bound on in-flight messages per directed channel.
    patience:
        Weak-fairness bound: an event continuously available for this many
        selections fires.
    seed:
        Engine RNG seed (scheduling and fault randomness).
    channel_factory:
        Constructor used for every directed link; defaults to
        :class:`~repro.mp.channel.Channel`.  Must accept the same signature.
        This is the engine-side transport seam: passing
        :class:`repro.net.wire_channel.WireChannel` runs the same processes
        with every payload round-tripped through the live cluster's wire
        codec, which is how codec/simulator parity is tested.
    bus:
        Optional :class:`~repro.obs.bus.EventBus`; sends, drops, deliveries,
        ticks, havoc steps, and faults are published as
        :class:`~repro.sim.trace.TraceEvent` with
        :class:`~repro.obs.events.MpEventKind` kinds.  ``None`` (the
        default) costs nothing.
    """

    def __init__(
        self,
        topology: Topology,
        processes: Mapping[Pid, MpProcess],
        *,
        channel_capacity: int = 8,
        loss_probability: float = 0.0,
        patience: int = 64,
        seed: int = 0,
        channel_factory: Callable[..., Channel] | None = None,
        bus: "EventBus | None" = None,
    ) -> None:
        if set(processes) != set(topology.nodes):
            raise SimulationError("processes must cover exactly the topology nodes")
        if patience < 1:
            raise SimulationError("patience must be at least 1")
        self.topology = topology
        self.processes: Dict[Pid, MpProcess] = dict(processes)
        self._channels: Dict[Tuple[Pid, Pid], Channel] = {}
        factory = channel_factory if channel_factory is not None else Channel
        loss_rng = random.Random(seed ^ 0x10552)
        for p in topology.nodes:
            for q in topology.neighbors(p):
                self._channels[(p, q)] = factory(
                    p,
                    q,
                    channel_capacity,
                    loss_probability=loss_probability,
                    rng=loss_rng,
                )
        self._alive: Dict[Pid, bool] = {p: True for p in topology.nodes}
        self._malicious_budget: Dict[Pid, int] = {}
        self._contexts: Dict[Pid, MpContext] = {
            p: MpContext(self, p) for p in topology.nodes
        }
        self.patience = patience
        self.bus = bus
        self.rng = random.Random(seed)
        self.step_count = 0
        self.delivered = 0
        self.ticks = 0
        #: per-process delivered/tick counters for tests and metrics.
        self.counters: Counter = Counter()
        self._ages: Dict[Hashable, int] = {}
        #: Per-process Lamport clocks, maintained by the engine itself:
        #: ticked on every send/tick/havoc, merged (with the sender's value
        #: at delivery time — an upper bound on its value at send time,
        #: still happened-before-consistent) on every delivery.  Event
        #: detail shapes are untouched, so replay byte-identity holds.
        self.clocks: Dict[Pid, LamportClock] = {
            p: LamportClock() for p in topology.nodes
        }

    # ------------------------------------------------------------- access

    def _emit(self, kind: MpEventKind, pid: Pid | None, detail: Any = None) -> None:
        if self.bus is not None:
            self.bus.publish(TraceEvent(self.step_count, kind, pid, detail))

    def send_message(self, src: Pid, dst: Pid, payload: Tuple) -> bool:
        """Offer ``payload`` to the ``src``→``dst`` channel.

        This is the single path every send takes (contexts route through
        it), so the bus sees an :attr:`~repro.obs.events.MpEventKind.SEND`
        for each accepted message and a
        :attr:`~repro.obs.events.MpEventKind.DROP` for each one the channel
        refused or lost.
        """
        accepted = self.channel(src, dst).send(payload)
        if accepted:
            self.clocks[src].tick()
        self._emit(
            MpEventKind.SEND if accepted else MpEventKind.DROP, src, dst
        )
        return accepted

    def channel(self, src: Pid, dst: Pid) -> Channel:
        try:
            return self._channels[(src, dst)]
        except KeyError:
            raise SimulationError(f"no channel {src!r}->{dst!r}") from None

    def channels(self) -> Tuple[Channel, ...]:
        return tuple(self._channels.values())

    def is_alive(self, pid: Pid) -> bool:
        try:
            return self._alive[pid]
        except KeyError:
            raise UnknownProcessError(pid) from None

    def live_pids(self) -> Tuple[Pid, ...]:
        return tuple(p for p in self.topology.nodes if self._alive[p])

    def in_flight(self) -> int:
        """Total messages currently queued across all channels."""
        return sum(len(c) for c in self._channels.values())

    # ------------------------------------------------------------- faults

    def crash(self, pid: Pid) -> None:
        """Benign crash: the process halts immediately."""
        if not self.is_alive(pid):
            raise DeadProcessError(pid)
        self._alive[pid] = False
        self._malicious_budget.pop(pid, None)
        self._emit(MpEventKind.CRASH, pid)

    def crash_maliciously(self, pid: Pid, havoc_steps: int) -> None:
        """Malicious crash: ``havoc_steps`` arbitrary steps, then halt."""
        if havoc_steps < 0:
            raise SimulationError("havoc_steps must be non-negative")
        if not self.is_alive(pid):
            raise DeadProcessError(pid)
        if havoc_steps == 0:
            self.crash(pid)
        else:
            self._malicious_budget[pid] = havoc_steps
            self._emit(MpEventKind.MALICE_BEGIN, pid, havoc_steps)

    def restart(self, pid: Pid, *, rng: random.Random | None = None) -> None:
        """Relaunch a halted process in place.

        With ``rng`` the process restarts into *arbitrary* local state (its
        :meth:`~repro.mp.node.MpProcess.corrupt` is invoked) — the paper's
        stabilization setting, and the simulator twin of the live cluster's
        :class:`~repro.net.cluster.RestartPolicy` with
        ``arbitrary_state=True``.  Without ``rng`` the process resumes with
        whatever state it halted in.  Channel contents are untouched: junk
        a malicious crash left in flight stays in flight.
        """
        if self.is_alive(pid):
            raise SimulationError(f"restart of a live process {pid!r}")
        self._alive[pid] = True
        self._malicious_budget.pop(pid, None)
        if rng is not None:
            self.processes[pid].corrupt(rng)
        self._emit(MpEventKind.RESTART, pid, rng is not None)

    def transient_fault(self, pids: Iterable[Pid] | None = None) -> None:
        """Corrupt process states and channel contents arbitrarily."""
        targets = tuple(self.topology.nodes if pids is None else pids)
        target_set = set(targets)
        for pid in targets:
            self.processes[pid].corrupt(self.rng)
        for (src, dst), channel in self._channels.items():
            if src in target_set or dst in target_set:
                channel.corrupt(self.rng, self.processes[src].random_payload)
        self._emit(MpEventKind.TRANSIENT, None, targets)

    # ----------------------------------------------------------- stepping

    def _available_events(self) -> List[Hashable]:
        events: List[Hashable] = []
        for key, channel in self._channels.items():
            if not channel.empty:
                events.append(("deliver", key))
        for pid in self.topology.nodes:
            if self._alive[pid]:
                events.append(("tick", pid))
        return events

    def _choose(self, events: List[Hashable]) -> Hashable:
        current = set(events)
        for key in list(self._ages):
            if key not in current:
                del self._ages[key]
        for key in current:
            self._ages[key] = self._ages.get(key, 0) + 1
        oldest = max(events, key=lambda e: self._ages.get(e, 0))
        if self._ages.get(oldest, 0) >= self.patience:
            chosen = oldest
        else:
            chosen = events[self.rng.randrange(len(events))]
        self._ages.pop(chosen, None)
        return chosen

    def step(self) -> bool:
        """One engine step; False when nothing can ever happen again."""
        events = self._available_events()
        if not events:
            return False
        kind, detail = self._choose(events)
        if kind == "deliver":
            src, dst = detail
            message = self._channels[detail].deliver()
            self.delivered += 1
            self.counters[("delivered", dst)] += 1
            self.clocks[dst].merge(self.clocks[src].value)
            self._emit(MpEventKind.DELIVER, dst, src)
            if self._alive[dst]:
                budget = self._malicious_budget.get(dst)
                if budget is None:
                    self.processes[dst].on_message(
                        self._contexts[dst], message.src, message.payload
                    )
                # A malicious process consumes messages without meaningful
                # processing; its havoc happens on its ticks.
        else:
            pid = detail
            self.ticks += 1
            self.counters[("tick", pid)] += 1
            self.clocks[pid].tick()
            budget = self._malicious_budget.get(pid)
            if budget is not None:
                self._emit(MpEventKind.HAVOC, pid)
                self.processes[pid].havoc(self._contexts[pid], self.rng)
                if budget <= 1:
                    self.crash(pid)
                else:
                    self._malicious_budget[pid] = budget - 1
            else:
                self._emit(MpEventKind.TICK, pid)
                self.processes[pid].on_tick(self._contexts[pid])
        self.step_count += 1
        return True

    def run(
        self,
        max_steps: int,
        *,
        stop_when: Callable[["MpEngine"], bool] | None = None,
        check_every: int = 1,
    ) -> int:
        """Step up to ``max_steps``; returns steps taken.

        ``stop_when`` receives the engine itself (message-passing state has
        no global snapshot object) and is polled every ``check_every`` steps.
        """
        if check_every < 1:
            raise ValueError("check_every must be positive")
        taken = 0
        if stop_when is not None and stop_when(self):
            return taken
        while taken < max_steps:
            if not self.step():
                break
            taken += 1
            if stop_when is not None and taken % check_every == 0 and stop_when(self):
                break
        return taken

    def run_profiled(self, max_steps: int, **kwargs):
        """:meth:`run` under ``cProfile``; returns ``(taken, profile)``.

        The message-passing twin of :meth:`repro.sim.engine.Engine.run_profiled`:
        one hook point over the deliver/tick hot loop.
        """
        import cProfile

        profile = cProfile.Profile()
        profile.enable()
        try:
            taken = self.run(max_steps, **kwargs)
        finally:
            profile.disable()
        return taken, profile
