"""Message-passing processes.

An :class:`MpProcess` owns mutable Python state and reacts to two stimuli:

* :meth:`on_message` — a message arrived;
* :meth:`on_tick` — the scheduler gave it a spontaneous step (the model's
  substitute for timeouts: ticks occur infinitely often under the engine's
  fairness, so tick-driven retransmission needs no clocks).

Both receive an :class:`MpContext`, the only door to the network.  The fault
machinery requires every process to know how to *corrupt itself*
(:meth:`corrupt` — transient faults) and how to fabricate junk payloads
(:meth:`random_payload` — channel corruption and malicious havoc), keeping
fault injection honest: a fault can only produce states and messages within
the declared spaces.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Protocol, Tuple, runtime_checkable

from ..sim.errors import NotNeighborsError
from ..sim.topology import Pid, Topology

if TYPE_CHECKING:  # pragma: no cover
    from .engine import MpEngine


@runtime_checkable
class ProcessContext(Protocol):
    """The transport seam: everything a process may ask of its substrate.

    :class:`MpContext` (simulator) and :class:`repro.net.node.NetContext`
    (live asyncio TCP) both satisfy it, which is what lets the same
    :class:`MpProcess` subclasses run unchanged on either.  Keep this
    surface minimal — anything added here must be implementable over a
    real socket transport, not just the in-process engine.
    """

    @property
    def pid(self) -> Pid: ...

    @property
    def neighbors(self) -> Tuple[Pid, ...]: ...

    @property
    def topology(self) -> Topology: ...

    def send(self, dst: Pid, payload: Tuple) -> bool: ...


class MpContext:
    """Capabilities handed to a process during one of its steps."""

    __slots__ = ("_engine", "_pid", "_neighbors")

    def __init__(self, engine: "MpEngine", pid: Pid) -> None:
        self._engine = engine
        self._pid = pid
        self._neighbors = engine.topology.neighbors(pid)

    @property
    def pid(self) -> Pid:
        return self._pid

    @property
    def neighbors(self) -> Tuple[Pid, ...]:
        return self._neighbors

    @property
    def topology(self) -> Topology:
        return self._engine.topology

    def send(self, dst: Pid, payload: Tuple) -> bool:
        """Send to a neighbour; returns False if the channel dropped it."""
        if dst not in self._neighbors:
            raise NotNeighborsError(self._pid, dst)
        return self._engine.send_message(self._pid, dst, payload)


class MpProcess(ABC):
    """A reactive process of the message-passing model."""

    def __init__(self, pid: Pid) -> None:
        self.pid = pid

    @abstractmethod
    def on_message(self, ctx: ProcessContext, src: Pid, payload: Tuple) -> None:
        """Handle one delivered message.

        ``payload`` may be arbitrary junk (transient faults corrupt
        channels; malicious processes send garbage): implementations must
        validate before trusting any field.
        """

    def on_tick(self, ctx: ProcessContext) -> None:
        """One spontaneous step; default does nothing."""

    @abstractmethod
    def corrupt(self, rng: random.Random) -> None:
        """Transient fault: replace all local state with arbitrary values
        from its legal space."""

    @abstractmethod
    def random_payload(self, rng: random.Random) -> Tuple:
        """An arbitrary syntactically valid payload (for fault injection)."""

    def havoc(self, ctx: ProcessContext, rng: random.Random) -> None:
        """One arbitrary step of a malicious crash.

        Default: corrupt the local state and spray junk at a random subset
        of neighbours — the strongest behaviour the model allows a faulty
        process (it cannot forge messages from others).
        """
        self.corrupt(rng)
        for dst in ctx.neighbors:
            if rng.random() < 0.5:
                ctx.send(dst, self.random_payload(rng))

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.pid!r}>"
