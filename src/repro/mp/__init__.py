"""The §4 message-passing transformation and its substrates.

* :mod:`repro.mp.engine` — message-passing simulator (FIFO bounded
  channels, weakly fair delivery/tick scheduling, crash / malicious-crash /
  transient faults);
* :mod:`repro.mp.kstate` — Dijkstra's K-state token circulation [9], the
  synchronization protocol §4's handshake is based on (implemented on the
  shared-memory kernel, where it is also model-checked);
* :mod:`repro.mp.handshake` — the stabilizing per-edge handshake carrying
  neighbour-state caches over channels with arbitrary initial content;
* :mod:`repro.mp.diners_mp` — message-passing diners via Chandy–Misra fork
  collection, §4's first suggested route.
"""

from .channel import Channel
from .diners_mp import (
    TAG_ACK,
    TAG_FORK,
    TAG_MISSING,
    TAG_REQUEST,
    DinersMpProcess,
    build_diners,
    eating_now,
    edge_key,
    neighbours_both_eating,
)
from .engine import MpEngine
from .handshake import HandshakeNode, HandshakeSession, HandshakeStats, make_session_pair
from .kstate import KStateToken, privileged, single_privilege
from .message import Message
from .node import MpContext, MpProcess

__all__ = [
    "Channel",
    "TAG_ACK",
    "TAG_FORK",
    "TAG_MISSING",
    "TAG_REQUEST",
    "DinersMpProcess",
    "build_diners",
    "eating_now",
    "edge_key",
    "neighbours_both_eating",
    "MpEngine",
    "HandshakeNode",
    "HandshakeSession",
    "HandshakeStats",
    "make_session_pair",
    "KStateToken",
    "privileged",
    "single_privilege",
    "Message",
    "MpContext",
    "MpProcess",
]
