"""Dijkstra's K-state self-stabilizing token circulation (reference [9]).

§4 of the paper names "a stabilizing handshake mechanism based on
Dijkstra's K-state token circulation protocol" as the synchronization
substrate of the message-passing transformation.  This module implements
the original protocol on the shared-memory kernel — both as that substrate's
reference semantics and as a second algorithm exercising the kernel and the
model checker.

On a ring ``0 .. n-1`` each process holds a counter ``x ∈ {0 .. K-1}``:

* the *bottom* process 0 is privileged when ``x.0 == x.(n-1)`` and then
  increments its counter mod K;
* every other process ``i`` is privileged when ``x.i != x.(i-1)`` and then
  copies its predecessor's counter.

With ``K >= n`` the protocol stabilizes from any state to exactly one
privilege circulating forever — the classic first self-stabilizing
algorithm, and the one the handshake layer's counters are modelled on.
"""

from __future__ import annotations

from typing import Any, Mapping, Tuple

from ..sim.configuration import Configuration
from ..sim.domains import Domain, FiniteDomain, IntRange
from ..sim.errors import TopologyError
from ..sim.process import ActionDef, Algorithm, ProcessView
from ..sim.topology import Edge, Pid, Topology

VAR_X = "x"
ACTION_PASS = "pass"


def _ring_order(topology: Topology) -> Tuple[Pid, ...]:
    """The nodes in ring order; validates the topology is a simple cycle."""
    n = len(topology)
    if n < 3 or any(topology.degree(p) != 2 for p in topology.nodes):
        raise TopologyError("the K-state protocol runs on a ring")
    start = topology.nodes[0]
    order = [start]
    previous = None
    while len(order) < n:
        current = order[-1]
        nxt = [q for q in topology.neighbors(current) if q != previous]
        previous = current
        order.append(nxt[0])
    if not topology.are_neighbors(order[-1], start):
        raise TopologyError("topology is not a single cycle")
    return tuple(order)


class KStateToken(Algorithm):
    """Dijkstra's K-state protocol as a kernel algorithm.

    Parameters
    ----------
    k:
        Number of counter values; stabilization requires ``k >= n``.
    """

    name = "k-state"
    hunger_variable = None

    def __init__(self, k: int) -> None:
        if k < 2:
            raise ValueError("k must be at least 2")
        self.k = k
        self._actions = (ActionDef(ACTION_PASS, self._guard, self._command),)
        self._order_cache: dict[int, Tuple[Pid, ...]] = {}

    # ------------------------------------------------------- declarations

    def local_domains(self, topology: Topology) -> Mapping[str, Domain]:
        return {VAR_X: IntRange(0, self.k - 1)}

    def edge_domain(self, topology: Topology, e: Edge) -> Domain:
        # The protocol has no shared edge state; a constant placeholder
        # keeps the kernel's edge machinery uniform.
        return FiniteDomain((0,))

    def initial_locals(self, pid: Pid, topology: Topology) -> Mapping[str, Any]:
        return {VAR_X: 0}

    def initial_edge(self, e: Edge, topology: Topology) -> Any:
        return 0

    def actions(self) -> Tuple[ActionDef, ...]:
        return self._actions

    # ------------------------------------------------------------ helpers

    def _order(self, topology: Topology) -> Tuple[Pid, ...]:
        key = id(topology)
        if key not in self._order_cache:
            self._order_cache[key] = _ring_order(topology)
        return self._order_cache[key]

    def _predecessor(self, view: ProcessView) -> Pid:
        order = self._order(view.topology)
        index = order.index(view.pid)
        return order[index - 1]

    def _is_bottom(self, view: ProcessView) -> bool:
        return view.pid == self._order(view.topology)[0]

    # ------------------------------------------------------------- action

    def _guard(self, view: ProcessView) -> bool:
        mine = view.get(VAR_X)
        theirs = view.peek(self._predecessor(view), VAR_X)
        if self._is_bottom(view):
            return mine == theirs
        return mine != theirs

    def _command(self, view: ProcessView) -> None:
        theirs = view.peek(self._predecessor(view), VAR_X)
        if self._is_bottom(view):
            view.set(VAR_X, (theirs + 1) % self.k)
        else:
            view.set(VAR_X, theirs)


def privileged(config: Configuration, algorithm: KStateToken) -> Tuple[Pid, ...]:
    """The processes currently holding a privilege.

    Process 0 (ring order) is privileged when its counter equals its
    predecessor's; every other process when the counters differ.
    """
    order = _ring_order(config.topology)
    result = []
    for index, pid in enumerate(order):
        mine = config.local(pid, VAR_X)
        theirs = config.local(order[index - 1], VAR_X)
        if (mine == theirs) if index == 0 else (mine != theirs):
            result.append(pid)
    return tuple(result)


def single_privilege(config: Configuration, algorithm: KStateToken) -> bool:
    """The protocol's legitimacy predicate: exactly one privilege."""
    return len(privileged(config, algorithm)) == 1
