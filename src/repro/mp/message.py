"""Messages of the message-passing model."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Tuple

from ..sim.topology import Pid


@dataclass(frozen=True)
class Message:
    """One message in flight.

    ``payload`` is an immutable tuple whose first element is, by convention,
    a short string tag (``"token"``, ``"fork"``, ``"request"``, ...); the
    rest is protocol-specific.  Tuples keep messages hashable and cheap to
    corrupt for fault injection.
    """

    src: Pid
    dst: Pid
    payload: Tuple[Any, ...]

    @property
    def tag(self) -> Any:
        """The conventional first payload element."""
        return self.payload[0] if self.payload else None

    def __str__(self) -> str:
        return f"{self.src!r}->{self.dst!r} {self.payload!r}"
