"""A stabilizing neighbour handshake over FIFO channels.

This is the §4 building block: a two-endpoint, per-edge session that (a)
alternates a token between the endpoints and (b) piggybacks each endpoint's
published data on every token pass, so each side keeps an eventually
up-to-date cache of the other's state.  The design transplants the K-state
idea (:mod:`repro.mp.kstate`) to two parties over unreliable-content
channels:

* the **master** (canonically the endpoint earlier in node order) holds the
  token when its counter ``c`` equals the last echo it received; it then
  publishes ``(c+1 mod K, data)`` and waits;
* the **slave** holds the token when it has an unechoed counter; on its next
  tick it echoes ``(counter, data)`` back.

Both endpoints retransmit their latest frame on every tick (channels may
have dropped sends, and an arbitrary initial state may contain no frame at
all), and ignore frames that are not syntactically valid or not addressed
to their session.

Stabilization argument (validated by tests): channels are FIFO with
capacity ``C``, so at most ``2C`` junk frames exist; every junk frame is
consumed on delivery and never regenerated, while retransmission guarantees
genuine frames keep flowing.  With ``K >= 2C + 3`` a junk echo matching the
master's current counter can cause at most one spurious advance before the
counters leave the junk's value range, after which the alternation is clean
and every subsequent cache value is genuine.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable, Optional, Tuple

from ..sim.topology import Pid
from .node import MpProcess

#: Payload tag of handshake frames: (TAG, session_key, counter, data).
TAG_FRAME = "hs"

DataFactory = Callable[[random.Random], Any]


@dataclass
class HandshakeStats:
    """Counters a session keeps for tests and benchmarks."""

    sent: int = 0
    received_valid: int = 0
    received_junk: int = 0
    rounds: int = 0  #: completed master->slave->master exchanges


class HandshakeSession:
    """One endpoint of a per-edge handshake.

    A process owns one session per incident edge.  The session consumes
    frames handed to it by the owner's ``on_message`` and emits frames on
    the owner's ticks via the supplied ``send`` callable.

    Parameters
    ----------
    me / peer:
        The endpoints; ``is_master`` is derived from ``master`` explicitly
        so callers control the orientation.
    k:
        Counter modulus; must be at least ``2 * channel_capacity + 3`` for
        the stabilization argument to apply.
    session_key:
        Distinguishes this edge's frames from other traffic between the
        same pair (and lets junk be recognised).
    """

    def __init__(
        self,
        me: Pid,
        peer: Pid,
        *,
        master: bool,
        k: int,
        session_key: Any = None,
    ) -> None:
        if k < 3:
            raise ValueError("k must be at least 3")
        self.me = me
        self.peer = peer
        self.master = master
        self.k = k
        self.session_key = session_key if session_key is not None else TAG_FRAME
        self.counter = 0
        #: last counter received from the peer (slave: pending echo value).
        self.peer_counter: Optional[int] = None
        #: latest data received from the peer (the cache §4 needs).
        self.peer_data: Any = None
        #: True when this endpoint currently holds the token.
        self.stats = HandshakeStats()

    # -------------------------------------------------------------- state

    @property
    def holds_token(self) -> bool:
        """Token possession: may this endpoint publish next?

        The master holds the token when its last publication has been
        echoed; the slave holds it while it sits on an unechoed counter.
        """
        if self.master:
            return self.peer_counter == self.counter
        return self.peer_counter is not None and self.peer_counter != self.counter

    def fresh(self) -> bool:
        """Has at least one full round completed (cache known genuine)?"""
        return self.stats.rounds > 0

    # ------------------------------------------------------------ protocol

    def corrupt(self, rng: random.Random) -> None:
        """Transient fault on this endpoint's session state."""
        self.counter = rng.randrange(self.k)
        self.peer_counter = rng.choice([None] + list(range(self.k)))
        self.peer_data = None
        self.stats = HandshakeStats()

    def random_frame(self, rng: random.Random, data_factory: DataFactory) -> Tuple:
        """A syntactically valid junk frame (for fault injection)."""
        return (TAG_FRAME, self.session_key, rng.randrange(self.k), data_factory(rng))

    def handle(self, payload: Tuple) -> bool:
        """Consume one incoming frame; True when it was valid for us."""
        if (
            not isinstance(payload, tuple)
            or len(payload) != 4
            or payload[0] != TAG_FRAME
            or payload[1] != self.session_key
            or not isinstance(payload[2], int)
            or not 0 <= payload[2] < self.k
        ):
            self.stats.received_junk += 1
            return False
        _, _, counter, data = payload
        self.stats.received_valid += 1
        if self.master:
            # An echo: adopt it; if it matches our counter a round completed.
            self.peer_counter = counter
            if counter == self.counter:
                self.peer_data = data
                self.stats.rounds += 1
        else:
            if counter != self.peer_counter:
                self.stats.rounds += 1  # a new master publication arrived
            self.peer_counter = counter
            self.peer_data = data
        return True

    def tick_payload(self, data: Any) -> Optional[Tuple]:
        """The frame to (re)transmit this tick, if any.

        The master advances its counter when it holds the token and then
        retransmits ``(counter, data)`` until echoed; the slave retransmits
        the echo of the last counter it saw.  ``None`` when the slave has
        not seen any counter yet.
        """
        if self.master:
            if self.holds_token:
                self.counter = (self.counter + 1) % self.k
            frame = (TAG_FRAME, self.session_key, self.counter, data)
        else:
            if self.peer_counter is None:
                return None
            self.counter = self.peer_counter  # echo = adopting the counter
            frame = (TAG_FRAME, self.session_key, self.counter, data)
        self.stats.sent += 1
        return frame


class HandshakeNode(MpProcess):
    """A ready-made :class:`~repro.mp.node.MpProcess` running one handshake
    session with one peer — the two-process building block §4 composes.

    ``data`` (mutable attribute) is what this endpoint publishes on every
    token pass; the peer's latest publication is ``session.peer_data``.
    """

    def __init__(self, pid: Pid, peer: Pid, *, master: bool, k: int = 11) -> None:
        super().__init__(pid)
        self.session = HandshakeSession(pid, peer, master=master, k=k)
        self.data: Any = f"data-from-{pid}"

    def on_message(self, ctx, src: Pid, payload: Tuple) -> None:
        self.session.handle(payload)

    def on_tick(self, ctx) -> None:
        frame = self.session.tick_payload(self.data)
        if frame is not None:
            ctx.send(self.session.peer, frame)

    def corrupt(self, rng: random.Random) -> None:
        self.session.corrupt(rng)

    def random_payload(self, rng: random.Random) -> Tuple:
        return self.session.random_frame(rng, lambda r: ("junk", r.randrange(9)))

    def havoc(self, ctx, rng: random.Random) -> None:
        """Malicious behaviour: corrupt the session and spray junk frames."""
        self.corrupt(rng)
        if rng.random() < 0.7:
            ctx.send(self.session.peer, self.random_payload(rng))

    def __repr__(self) -> str:
        return f"<HandshakeNode {self.pid!r}<->{self.session.peer!r}>"


def make_session_pair(
    p: Pid, q: Pid, *, k: int, session_key: Any = None
) -> Tuple[HandshakeSession, HandshakeSession]:
    """Master/slave session endpoints for the edge ``{p, q}`` (``p`` master)."""
    key = session_key if session_key is not None else (repr(p), repr(q))
    return (
        HandshakeSession(p, q, master=True, k=k, session_key=key),
        HandshakeSession(q, p, master=False, k=k, session_key=key),
    )
