"""Reliable, FIFO, capacity-bounded directed channels.

The §4 transformation assumes reliable FIFO links; what makes the setting
hard is the *arbitrary initial content* a transient fault can leave in a
channel.  Bounded capacity matters for stabilization: the mod-K handshake
counters must outnumber the junk a channel can hold (see
:mod:`repro.mp.handshake`), so the bound is a first-class model parameter,
not an implementation detail.

A send onto a full channel is dropped (and counted).  Correct protocols in
this repository are tick-driven and retransmit, so an occasional drop only
delays them; the drop counter makes silent overload visible in tests.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Callable, Deque, Tuple

from ..sim.errors import SimulationError
from ..sim.topology import Pid
from .message import Message

PayloadFactory = Callable[[random.Random], Tuple]


class Channel:
    """One directed FIFO link.

    ``loss_probability`` models a fair-lossy link: each send is dropped
    independently with that probability (in addition to overflow drops).
    Tick-driven protocols with retransmission — the handshake, the fork
    collection — must tolerate it; request/response protocols without
    retransmission will hang, which is the point of modelling it.
    """

    def __init__(
        self,
        src: Pid,
        dst: Pid,
        capacity: int = 8,
        *,
        loss_probability: float = 0.0,
        rng: random.Random | None = None,
    ) -> None:
        if capacity < 1:
            raise SimulationError("channel capacity must be positive")
        if not 0.0 <= loss_probability < 1.0:
            raise SimulationError("loss_probability must lie in [0, 1)")
        self.src = src
        self.dst = dst
        self.capacity = capacity
        self.loss_probability = loss_probability
        self._rng = rng if rng is not None else random.Random(0)
        self._queue: Deque[Message] = deque()
        self.dropped = 0
        self.lost = 0

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def empty(self) -> bool:
        return not self._queue

    def send(self, payload: Tuple) -> bool:
        """Enqueue a message; returns False (and counts) when full.

        In-transit loss returns True: a real sender cannot observe it.
        (Overflow is different — a full local buffer *is* observable.)
        Protocols that move unique tokens (the fork collection) must
        therefore run on loss-free channels; retransmitting protocols
        (the handshake) tolerate loss.
        """
        if self.loss_probability and self._rng.random() < self.loss_probability:
            self.lost += 1
            return True
        if len(self._queue) >= self.capacity:
            self.dropped += 1
            return False
        self._queue.append(Message(self.src, self.dst, tuple(payload)))
        return True

    def deliver(self) -> Message:
        """Dequeue the oldest message (caller checks non-emptiness)."""
        if not self._queue:
            raise SimulationError(f"deliver on empty channel {self.src!r}->{self.dst!r}")
        return self._queue.popleft()

    def peek_all(self) -> Tuple[Message, ...]:
        """Read-only view of the queued messages, oldest first."""
        return tuple(self._queue)

    # ------------------------------------------------------------- faults

    def corrupt(self, rng: random.Random, payload_factory: PayloadFactory) -> None:
        """Transient fault: replace the content with arbitrary junk.

        The new content is a random number of random-payload messages (up to
        capacity) — the strongest perturbation the bounded-channel model
        admits.
        """
        self._queue.clear()
        for _ in range(rng.randint(0, self.capacity)):
            self._queue.append(Message(self.src, self.dst, payload_factory(rng)))

    def clear(self) -> None:
        self._queue.clear()

    def __repr__(self) -> str:
        return (
            f"Channel({self.src!r}->{self.dst!r}, {len(self._queue)}/{self.capacity})"
        )
