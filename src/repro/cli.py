"""Command-line interface: run the paper's scenarios without writing code.

Subcommands
-----------

``run``        simulate an algorithm on a topology, report meals/safety
``locality``   crash a process while it eats; report the starvation radius
``stabilize``  corrupt the state (optionally plant a cycle); time recovery
``figure2``    replay the paper's Figure 2, panel by panel
``check``      model-check closure + convergence on a small instance
``sweep``      many-seed randomized campaign across a worker pool
``report``     run the experiment suite, emit markdown
``trace``      replay a recorded trace file offline; re-derive its summary
``stats``      summarise a metrics / records / trace / BENCH / events artefact
``bench``      run the performance benchmark suite; write/compare BENCH files
``node``       serve one live cluster node (asyncio TCP daemon)
``cluster``    run/soak a live N-node cluster with chaos on localhost
``fuzz``       coverage-guided chaos-schedule fuzzing; writes a corpus
``timeline``   merge span logs into one causal global order; attribute latency
``top``        live terminal dashboard over a cluster's /metrics endpoint
``slo``        evaluate a declarative SLO spec against recorded artefacts

Observability: ``run``, ``stabilize``, and ``locality`` accept ``--trace``
(record the run as versioned JSONL) and ``--metrics-out`` (write the
standard probes' metrics).  The same analysis drives both the live summary
and ``repro trace`` on the recorded file, so the two are byte-identical for
the same seed.  ``sweep`` interprets the pair at campaign granularity:
``--trace`` logs shard completions with durations, ``--metrics-out``
aggregates the campaign.

Examples
--------

::

    python -m repro run --topology ring:10 --algorithm na-diners --steps 20000
    python -m repro run --topology ring:8 --trace out/run.trace --metrics-out out/run.metrics
    python -m repro trace out/run.trace
    python -m repro locality --topology line:12 --algorithm hygienic --victim 0
    python -m repro stabilize --topology ring:8 --plant-cycle
    python -m repro figure2
    python -m repro check --topology line:3 --jobs 4
    python -m repro sweep --topology ring:8 --trials 32 --jobs 4 --out out.jsonl
    python -m repro stats out/run.metrics
    python -m repro bench --quick --out BENCH_now.json
    python -m repro bench --compare benchmarks/BENCH_baseline.json BENCH_now.json
    python -m repro cluster run --topology ring:3 --seed 1 --duration 5
    python -m repro cluster soak --nodes 5 --seed 7 --duration 10
    python -m repro fuzz --topology ring:4 --seed 1 --budget 60 --corpus-dir corpus
    python -m repro cluster soak --schedule-file corpus/ring4-s1-r0.json
    python -m repro cluster soak --nodes 3 --trace out/trace --events-out out/soak.events
    python -m repro timeline out/trace --events out/soak.events --out out/timeline.jsonl
    python -m repro cluster run --nodes 5 --duration 60 --metrics-port 9200
    python -m repro top --port 9200
    python -m repro cluster soak --nodes 3 --slo examples/slo.json --flight out/flight
    python -m repro slo examples/slo.json out/soak.events --out slo-report.json
    python -m repro timeline out/flight
    python -m repro bench --history benchmarks/
"""

from __future__ import annotations

import argparse
import json
import os
import random
import sys

from .analysis import (
    find_live_cycles,
    measure_failure_locality,
    plant_priority_cycle,
    steps_to_predicate,
)
from .campaign.shard import ALGORITHMS  # canonical registry, re-exported
from .core import (
    NADiners,
    invariant_report,
    invariant_with_threshold,
    nc_holds,
    red_set,
    run_figure2,
)
from .sim import AlwaysHungry, Engine, System, Topology, from_spec
from .sim.errors import TopologyError


def parse_topology(spec: str) -> Topology:
    """Parse ``kind:arg[:arg]`` specs like ``ring:8`` or ``grid:4:3``.

    CLI-flavoured wrapper over :func:`repro.sim.topology.from_spec`: bad
    specs exit with a message instead of raising.
    """
    try:
        return from_spec(spec)
    except TopologyError as exc:
        raise SystemExit(str(exc)) from None


def make_algorithm(name: str):
    try:
        return ALGORITHMS[name]()
    except KeyError:
        raise SystemExit(f"unknown algorithm {name!r}; one of {sorted(ALGORITHMS)}")


# ------------------------------------------------------------ observability


def _make_recorder(args: argparse.Namespace, steps: int):
    """A trace recorder when ``--trace``/``--metrics-out``/``--timings-out``
    was asked for.

    Returns ``(recorder, snapshot_every)`` — ``(None, 0)`` when the run is
    unobserved.  The snapshot cadence defaults to ~100 snapshots per run;
    ``--snapshot-every`` overrides it.  ``--timings-out`` swaps in a
    recorder that also feeds every event, live, to a
    :class:`~repro.obs.probes.StepTimerProbe` — wall-clock timing cannot be
    recovered from a recorded trace, so it must be captured in-line.
    """
    if not (args.trace or args.metrics_out or getattr(args, "timings_out", None)):
        return None, 0
    from .sim.trace import TraceRecorder

    every = args.snapshot_every or max(1, steps // 100)
    if getattr(args, "timings_out", None):
        from .obs import StepTimerProbe

        class _TimedRecorder(TraceRecorder):
            """Recorder that tees each event into the live timing probe."""

            def __init__(self, probe, **kwargs):
                super().__init__(**kwargs)
                self.timer_probe = probe

            def record_event(self, event):
                self.timer_probe.on_event(event)
                super().record_event(event)

        return _TimedRecorder(StepTimerProbe(), snapshot_every=every), every
    return TraceRecorder(snapshot_every=every), every


def _finish_observability(
    args: argparse.Namespace,
    recorder,
    *,
    model: str,
    algorithm,
    topology_spec: str,
    seed: int,
    steps_taken: int,
    threshold,
    has_depth: bool,
    snapshot_every: int,
) -> None:
    """Write the trace and/or metrics files and print the probe summary.

    Runs the exact analysis ``repro trace`` runs offline, so the summary
    line and the metrics file here are byte-identical to a later replay of
    the recorded trace.
    """
    from .obs import (
        analyze,
        build_header,
        trace_from_recorder,
        write_analysis_metrics,
        write_trace,
    )

    header = build_header(
        model=model,
        algorithm=algorithm.name,
        topology=topology_spec,
        enter_action=algorithm.enter_action,
        exit_action=algorithm.exit_action,
        threshold=threshold,
        has_depth=has_depth,
        seed=seed,
        steps_taken=steps_taken,
        snapshot_every=snapshot_every,
    )
    trace = trace_from_recorder(recorder, header)
    if args.trace:
        path = write_trace(args.trace, trace)
        print(f"trace: {path}")
    analysis = analyze(trace)
    if args.metrics_out:
        path = write_analysis_metrics(args.metrics_out, analysis)
        print(f"metrics: {path}")
    timer_probe = getattr(recorder, "timer_probe", None)
    if timer_probe is not None and getattr(args, "timings_out", None):
        # Live wall-clock timers are meta by nature: they go to their own
        # file (written with meta included) so the deterministic
        # ``--metrics-out`` artefact stays byte-identical under replay.
        from .obs import MetricsRegistry, write_metrics

        registry = MetricsRegistry()
        timer_probe.publish(registry)
        path = write_metrics(
            args.timings_out,
            registry,
            header={
                "source": "timings",
                "model": model,
                "algorithm": algorithm.name,
                "topology": topology_spec,
                "seed": seed,
            },
            include_meta=True,
        )
        print(f"timings: {path}")
    print(f"summary: {analysis.summary_json()}")


def cmd_run(args: argparse.Namespace) -> int:
    topology = parse_topology(args.topology)
    algorithm = make_algorithm(args.algorithm)
    recorder, every = _make_recorder(args, args.steps)
    backend = getattr(args, "backend", "object")
    if backend == "fast":
        from .fastcore import FastEngine, UnsupportedBackendError

        try:
            engine = FastEngine(
                topology,
                algorithm,
                hunger=AlwaysHungry(),
                recorder=recorder,
                seed=args.seed,
            )
        except UnsupportedBackendError as exc:
            raise SystemExit(str(exc)) from None
        snapshot = engine.snapshot
    else:
        system = System(topology, algorithm)
        engine = Engine(
            system, hunger=AlwaysHungry(), recorder=recorder, seed=args.seed
        )
        snapshot = system.snapshot
    if args.profile_out:
        from .perf import write_profile_metrics

        result, profile = engine.run_profiled(args.steps)
        path = write_profile_metrics(
            args.profile_out,
            profile,
            header={
                "model": "sim" if backend == "object" else "fastcore",
                "algorithm": algorithm.name,
                "topology": args.topology,
                "seed": args.seed,
                "steps": result.steps,
            },
        )
        print(f"profile: {path}")
    else:
        result = engine.run(args.steps)
    print(f"{topology} / {algorithm.name}: ran {result.steps} steps")
    for pid in topology.nodes:
        print(f"  {pid}: {engine.eats_of(pid)} meals")
    final = snapshot()
    variables = set(algorithm.local_domains(topology))
    has_depth = "depth" in variables
    if has_depth:
        # NADiners family: the full invariant applies.
        print(f"invariant: {invariant_report(final)}")
    else:
        # Other diners: only the eating-exclusion conjunct is meaningful
        # (fork-ordering's edge cells are forks, not priorities).
        from .core import e_holds

        print(f"no neighbours eating together: {e_holds(final)}")
    if recorder is not None:
        _finish_observability(
            args,
            recorder,
            model="sim",
            algorithm=algorithm,
            topology_spec=args.topology,
            seed=args.seed,
            steps_taken=engine.step_count,
            threshold=topology.diameter if has_depth else None,
            has_depth=has_depth,
            snapshot_every=every,
        )
    return 0


def cmd_locality(args: argparse.Namespace) -> int:
    topology = parse_topology(args.topology)
    algorithm = make_algorithm(args.algorithm)
    victim = topology.nodes[args.victim]
    # Observation budget ~ warmup + settle + window engine steps.
    recorder, every = _make_recorder(args, args.steps * 2 + args.steps // 3)
    report = measure_failure_locality(
        algorithm,
        topology,
        [victim],
        malicious_steps=args.malicious or None,
        warmup_steps=args.steps,
        settle_steps=args.steps // 3,
        window=args.steps,
        seed=args.seed,
        recorder=recorder,
    )
    kind = f"malicious({args.malicious})" if args.malicious else "benign"
    print(f"{topology} / {report.algorithm}: {kind} crash of {victim!r} while eating")
    print(f"  starving: {sorted(report.starving)}")
    print(f"  starvation radius: {report.starvation_radius}")
    for d, (count, total) in report.eats_by_distance(topology).items():
        print(f"  distance {d}: {count} processes, {total} meals")
    if recorder is not None:
        steps_taken = recorder.events[-1].step + 1 if recorder.events else 0
        _finish_observability(
            args,
            recorder,
            model="sim",
            algorithm=algorithm,
            topology_spec=args.topology,
            seed=args.seed,
            steps_taken=steps_taken,
            threshold=topology.diameter,
            has_depth="depth" in algorithm.local_domains(topology),
            snapshot_every=every,
        )
    return 0


def cmd_stabilize(args: argparse.Namespace) -> int:
    topology = parse_topology(args.topology)
    algorithm = make_algorithm(args.algorithm)
    system = System(topology, algorithm)
    system.randomize(random.Random(args.seed))
    if args.plant_cycle:
        from .analysis.stabilization import _find_cycle

        cycle = _find_cycle(topology)
        if cycle is None:
            print("topology has no cycle to plant; corruption only")
        else:
            plant_priority_cycle(system, cycle)
            print(f"planted priority cycle: {cycle}")
    threshold = (
        topology.longest_simple_path()
        if args.corrected_threshold
        else topology.diameter
    )
    if args.nc_only:
        predicate = nc_holds
    elif args.corrected_threshold:
        predicate = invariant_with_threshold(threshold)
    else:
        from .core import invariant_holds

        predicate = invariant_holds
    recorder, every = _make_recorder(args, args.max_steps)
    result = steps_to_predicate(
        system,
        predicate,
        max_steps=args.max_steps,
        seed=args.seed,
        recorder=recorder,
    )
    status = 0
    if result.converged:
        print(f"converged after {result.steps} steps")
        print(f"live cycles now: {find_live_cycles(system.snapshot()) or 'none'}")
    else:
        print(f"did NOT converge within {args.max_steps} steps")
        status = 1
    if recorder is not None:
        steps_taken = recorder.events[-1].step + 1 if recorder.events else 0
        _finish_observability(
            args,
            recorder,
            model="sim",
            algorithm=algorithm,
            topology_spec=args.topology,
            seed=args.seed,
            steps_taken=steps_taken,
            threshold=threshold,
            has_depth="depth" in algorithm.local_domains(topology),
            snapshot_every=every,
        )
    return status


def cmd_figure2(args: argparse.Namespace) -> int:
    replay = run_figure2()
    topo = replay.initial.topology
    for i, config in enumerate(replay.configurations, start=1):
        print(f"panel {i}:")
        states = ", ".join(
            f"{p}={config.local(p, 'state')}" for p in topo.nodes
        )
        print(f"  {states}")
        print(f"  red: {sorted(red_set(config))}")
        print(f"  live cycles: {find_live_cycles(config) or 'none'}")
    print(f"transitions replayed: {replay.executed}")
    return 0


def _check_reachable(args, topology, algo, threshold, ts, backend) -> int:
    """``check --reachable``: BFS the states reachable from the canonical
    all-hungry initial configuration and audit eating-exclusion on each.

    Runs on either backend with identical counts — the CI smoke job diffs
    the two outputs — but the fast backend's bytes-keyed visited set is the
    one that scales: the object graph materializes every configuration.
    """
    if getattr(args, "jobs", 1) > 1:
        raise SystemExit("--reachable does not shard; drop --jobs")
    system = System(topology, algo)
    for pid in topology.nodes:
        system.write_local(pid, "needs", True)
    initial = system.snapshot()
    max_states = getattr(args, "max_states", 1_000_000)
    if backend == "fast":
        from .verification import FastExplorer

        stats = FastExplorer(algo, topology).reachable_count(
            [initial], max_states=max_states
        )
        states, transitions, violations = (
            stats.states,
            stats.transitions,
            stats.violations,
        )
    else:
        from .core import e_holds

        graph = ts.reachable_from([initial], max_states=max_states)
        states = len(graph)
        transitions = sum(len(v) for v in graph.values())
        violations = sum(1 for config in graph if not e_holds(config))
    print(
        f"{topology}, threshold={threshold}: "
        f"reachable from all-hungry initial ({backend} backend)"
    )
    print(f"reachable: {states} states, {transitions} transitions")
    print(f"safety violations (neighbours eating): {violations}")
    return 0 if violations == 0 else 1


def cmd_check(args: argparse.Namespace) -> int:
    from .verification import (
        TransitionSystem,
        check_closure,
        check_convergence,
        enumerate_configurations,
        space_size,
    )

    topology = parse_topology(args.topology)
    threshold = (
        topology.longest_simple_path()
        if args.corrected_threshold
        else topology.diameter
    )
    algo = NADiners(depth_cap=threshold + 1, diameter_override=threshold)
    predicate = invariant_with_threshold(threshold)
    ts = TransitionSystem(algo, topology)
    jobs = getattr(args, "jobs", 1)
    if jobs < 1:
        raise SystemExit("--jobs must be >= 1")

    backend = getattr(args, "backend", "object")
    if getattr(args, "reachable", False):
        return _check_reachable(args, topology, algo, threshold, ts, backend)
    if backend == "fast":
        raise SystemExit(
            "--backend fast runs reachability sweeps (add --reachable); "
            "full closure/convergence checking stays on the object backend"
        )

    if jobs > 1:
        # Sharded path: the enumeration splits into `jobs` deterministic
        # slices; closure runs as campaign shards, convergence merges the
        # per-shard reachability graphs before one SCC pass.
        from .campaign import Shard, parallel_map, run_shards
        from .campaign.shard import build_graph_shard

        params = {"topology": args.topology, "threshold": threshold}
        states = space_size(algo, topology, fixed_locals={"needs": True})
        print(f"{topology}, threshold={threshold}: {states} states ({jobs} shards)")
        closure_shards = [
            Shard(
                "check-closure",
                {**params, "shard_index": i, "shard_count": jobs},
                seed=0,
            )
            for i in range(jobs)
        ]
        check_progress = None
        if getattr(args, "progress", None):
            from .campaign import heartbeat_progress

            check_progress = heartbeat_progress(args.progress)
        campaign = run_shards(closure_shards, jobs=jobs, progress=check_progress)
        results = [campaign.records[key].result for key in sorted(campaign.records)]
        closure_holds = all(r["holds"] for r in results)
        checked = sum(r["checked_states"] for r in results)
        print(f"I closed: {closure_holds} ({checked} legit states)")
        fragments = parallel_map(
            build_graph_shard,
            [(params, i, jobs) for i in range(jobs)],
            jobs=jobs,
        )
        graph = {}
        for fragment in fragments:
            graph.update(fragment)
        convergence = check_convergence(ts, predicate, (), graph=graph)
        print(
            f"converges: {convergence.converges} "
            f"({convergence.scc_count} SCCs, {convergence.legit_states} legit states)"
        )
        return 0 if closure_holds and convergence.converges else 1

    configs = list(
        enumerate_configurations(algo, topology, fixed_locals={"needs": True})
    )
    print(f"{topology}, threshold={threshold}: {len(configs)} states")
    closure = check_closure(ts, predicate, configs)
    print(f"I closed: {closure.holds} ({closure.checked_states} legit states)")
    convergence = check_convergence(ts, predicate, configs)
    print(
        f"converges: {convergence.converges} "
        f"({convergence.scc_count} SCCs, {convergence.legit_states} legit states)"
    )
    return 0 if closure.holds and convergence.converges else 1


def cmd_sweep(args: argparse.Namespace) -> int:
    from .campaign import SweepSpec, aggregate_sim, run_shards

    if args.jobs < 1:
        raise SystemExit("--jobs must be >= 1")
    topologies = tuple(args.topology or ["ring:8"])
    for spec in topologies:
        topology = parse_topology(spec)  # fail fast on bad specs, before forking
        if args.crash_victim is not None and not 0 <= args.crash_victim < len(topology):
            raise SystemExit(
                f"--crash-victim {args.crash_victim} out of range for {spec} "
                f"(has {len(topology)} processes)"
            )
    algorithms = tuple(args.algorithm or ["na-diners"])
    for name in algorithms:
        if name not in ALGORITHMS:
            raise SystemExit(f"unknown algorithm {name!r}; one of {sorted(ALGORITHMS)}")
    fault = None
    if args.crash_victim is not None:
        fault = {
            "victim": args.crash_victim,
            "at_step": args.crash_at,
            "malicious_steps": args.malicious,
        }
    sweep = SweepSpec(
        topologies=topologies,
        algorithms=algorithms,
        trials=args.trials,
        steps=args.steps,
        seed=args.seed,
        fault=fault,
        backend=getattr(args, "backend", "object"),
    )

    progress = _campaign_progress(args)
    trace_log = _CampaignTraceLog(args.trace) if args.trace else None
    if trace_log is not None:
        progress = trace_log.wrap(progress)
    try:
        result = run_shards(
            sweep.shards(),
            jobs=args.jobs,
            out_path=args.out,
            resume=not args.fresh,
            include_meta=not args.no_meta,
            progress=progress,
        )
    finally:
        if trace_log is not None:
            trace_log.close()
    print(
        f"shards: {result.total} "
        f"(executed {result.executed}, resumed {result.resumed})"
    )
    for line_ in aggregate_sim(result.records).lines():
        print(line_)
    if result.path is not None:
        print(f"records: {result.path}")
    if trace_log is not None:
        print(f"trace: {trace_log.path}")
    if args.metrics_out:
        from .campaign import campaign_metrics
        from .obs import write_metrics

        registry = campaign_metrics(result.records)
        path = write_metrics(
            args.metrics_out,
            registry,
            header={
                "source": "campaign",
                "shards": result.total,
                "executed": result.executed,
                "resumed": result.resumed,
            },
            include_meta=not args.no_meta,
        )
        print(f"metrics: {path}")
    return 0


def _campaign_progress(args: argparse.Namespace):
    """The progress callback a campaign command asked for.

    ``--quiet`` silences progress entirely; ``--progress N`` prints one
    heartbeat line (with rate and ETA) per N completed shards; the default
    prints one line per shard.
    """
    if getattr(args, "quiet", False):
        return None
    if getattr(args, "progress", None):
        from .campaign import heartbeat_progress

        return heartbeat_progress(args.progress)

    def progress(record, done, total):
        print(
            f"[{done}/{total}] {record.kind} "
            f"{record.params.get('topology')} "
            f"{record.params.get('algorithm')} seed={record.seed}",
            file=sys.stderr,
        )

    return progress


class _CampaignTraceLog:
    """``sweep --trace``: a JSONL log of shard completions with durations.

    The campaign-granularity sibling of an engine trace: one header line,
    then one line per completed shard in completion order — the timeline a
    profiler wants, complementary to the key-ordered records file.
    """

    def __init__(self, path: str) -> None:
        import pathlib

        self.path = pathlib.Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = self.path.open("w", encoding="utf-8")
        self._write(
            {"format": 1, "kind": "header", "source": "campaign-trace"}
        )

    def _write(self, payload: dict) -> None:
        self._handle.write(
            json.dumps(payload, sort_keys=True, separators=(",", ":")) + "\n"
        )
        self._handle.flush()

    def wrap(self, inner):
        def progress(record, done, total):
            self._write(
                {
                    "kind": "shard",
                    "index": done,
                    "total": total,
                    "key": record.key,
                    "shard_kind": record.kind,
                    "seed": record.seed,
                    "duration_s": record.duration_s,
                }
            )
            if inner is not None:
                inner(record, done, total)

        return progress

    def close(self) -> None:
        self._handle.close()


def cmd_trace(args: argparse.Namespace) -> int:
    """Replay a recorded trace offline: same probes, same summary."""
    from .obs import analyze, read_trace, write_analysis_metrics
    from .sim.errors import SimulationError

    try:
        trace = read_trace(args.path)
    except (OSError, SimulationError) as exc:
        raise SystemExit(str(exc)) from None
    header = trace.header
    print(
        f"trace: {header.get('model')} / {header.get('algorithm')} on "
        f"{header.get('topology')} seed={header.get('seed')} "
        f"({len(trace.events)} events, {len(trace.snapshots)} snapshots)"
    )
    if args.limit:
        for event in trace.events[: args.limit]:
            print(str(event))
        remaining = len(trace.events) - args.limit
        if remaining > 0:
            print(f"... ({remaining} more events)")
    analysis = analyze(trace)
    if args.metrics_out:
        path = write_analysis_metrics(args.metrics_out, analysis)
        print(f"metrics: {path}")
    print(f"summary: {analysis.summary_json()}")
    return 0


def _span_paths(arguments) -> list:
    """Expand directory arguments into their sorted ``spans-*.jsonl`` and
    ``flight-*.jsonl`` files (the layouts
    :class:`~repro.net.cluster.ClusterSupervisor` writes)."""
    paths = []
    for arg in arguments:
        if os.path.isdir(arg):
            found = sorted(
                os.path.join(arg, name)
                for name in os.listdir(arg)
                if name.endswith(".jsonl")
                and (name.startswith("spans-") or name.startswith("flight-"))
            )
            if not found:
                raise SystemExit(
                    f"{arg}: no spans-*.jsonl or flight-*.jsonl files "
                    "in directory"
                )
            paths.extend(found)
        else:
            paths.append(arg)
    return paths


def cmd_timeline(args: argparse.Namespace) -> int:
    """Merge per-node span logs into one happened-before-consistent global
    timeline; verify causal consistency; attribute each grant's latency."""
    from .obs import (
        attribute_grants,
        attribution_by_node,
        causality_report,
        merge_timeline,
        read_spans,
        reconstruct_violations,
        write_timeline,
    )
    from .obs.flight import FLIGHT_SOURCE
    from .obs.tracing import SPANS_SOURCE

    spans_by_node: dict = {}
    for path in _span_paths(args.paths):
        try:
            span_file = read_spans(path)
        except OSError as exc:
            raise SystemExit(str(exc)) from None
        if (
            span_file.header.get("source") not in (SPANS_SOURCE, FLIGHT_SOURCE)
            and not span_file.spans
        ):
            raise SystemExit(f"{path}: not a span artefact")
        for span in span_file.spans:
            spans_by_node.setdefault(span.node, []).append(span)
    entries = merge_timeline(spans_by_node)
    total_spans = sum(len(spans) for spans in spans_by_node.values())
    lo = entries[0].lc if entries else 0
    hi = entries[-1].lc if entries else 0
    print(
        f"timeline: {len(spans_by_node)} nodes, {total_spans} spans, "
        f"{len(entries)} entries, lc {lo}..{hi}"
    )
    report = causality_report(entries)
    if report.ok:
        print(f"causality: OK ({report.matched_messages} matched messages)")
    else:
        print(f"causality: CORRUPTED ({len(report.violations)} violations)")
        for violation in report.violations[:10]:
            print(f"  {violation}")
    attributions = attribute_grants(spans_by_node)
    for node, row in sorted(attribution_by_node(attributions).items()):
        print(
            f"  {node}: {row['grants']} grants, total {row['total_s']:.3f}s "
            f"= queue {row['queue_s']:.3f}s + transfer {row['transfer_s']:.3f}s"
            f" + retransmit {row['retransmit_s']:.3f}s "
            f"({row['retransmits']} retransmits)"
        )
    if args.events:
        from .net import read_cluster_events

        try:
            header, events, _ = read_cluster_events(args.events)
        except (OSError, ValueError) as exc:
            raise SystemExit(f"{args.events}: {exc}") from None
        spec = header.get("topology")
        if not spec:
            raise SystemExit(f"{args.events}: event log has no topology")
        topology = parse_topology(spec)
        end_t = float(header.get("duration_s") or 0.0)
        reconstructed = reconstruct_violations(
            topology,
            events,
            spans_by_node,
            end_t=end_t,
            exclude=header.get("killed") or (),
            byzantine=header.get("byzantine") or (),
        )
        if not reconstructed:
            print("violations: none reconstructed")
        for row in reconstructed:
            blame = ", ".join(row["byzantine"]) or "(no byzantine node)"
            print(
                f"violation: {row['node_a']} ∦ {row['node_b']} "
                f"[{row['start']:.3f}, {row['end']:.3f}]s — {blame}"
            )
            for node, span_ids in sorted(row["spans"].items()):
                print(f"  {node} spans open: {', '.join(span_ids) or '-'}")
    if args.limit:
        for entry in entries[: args.limit]:
            detail = json.dumps(entry.detail, sort_keys=True)
            print(
                f"  lc={entry.lc} {entry.node} {entry.name}/{entry.ev} "
                f"span={entry.span} {detail}"
            )
        remaining = len(entries) - args.limit
        if remaining > 0:
            print(f"  ... ({remaining} more entries)")
    if args.out:
        path = write_timeline(
            args.out,
            entries,
            header={
                "causality_ok": report.ok,
                "matched_messages": report.matched_messages,
            },
        )
        print(f"timeline artefact: {path}")
    return 0 if report.ok else 1


def _artefact_paths(arguments) -> list:
    """Expand directory arguments into every SLO-evaluable artefact they
    hold (``spans-*``, ``flight-*``, ``*.events`` — a ``--trace`` or
    ``--flight`` directory drops straight into ``repro slo``)."""
    paths = []
    for arg in arguments:
        if os.path.isdir(arg):
            found = sorted(
                os.path.join(arg, name)
                for name in os.listdir(arg)
                if (
                    name.endswith(".jsonl")
                    and (name.startswith("spans-") or name.startswith("flight-"))
                )
                or name.endswith(".events")
            )
            if not found:
                raise SystemExit(f"{arg}: no SLO-evaluable artefacts in directory")
            paths.extend(found)
        else:
            paths.append(arg)
    return paths


def cmd_slo(args: argparse.Namespace) -> int:
    """Evaluate an SLO spec offline against recorded artefacts; exit 1 when
    any objective's error budget is exhausted."""
    from .obs import (
        SloObservations,
        evaluate,
        format_report,
        ingest_artefact,
        read_slo_spec,
        write_slo_report,
    )

    try:
        spec = read_slo_spec(args.spec)
    except (OSError, ValueError) as exc:
        raise SystemExit(str(exc)) from None
    observations = SloObservations()
    for path in _artefact_paths(args.artefacts):
        try:
            family = ingest_artefact(observations, path)
        except (OSError, ValueError) as exc:
            raise SystemExit(str(exc)) from None
        print(f"ingested {family}: {path}")
    report = evaluate(spec, observations)
    print(format_report(report))
    if args.out:
        path = write_slo_report(args.out, report)
        print(f"slo report: {path}")
    return 1 if report.exhausted else 0


def cmd_top(args: argparse.Namespace) -> int:
    """Live terminal dashboard over a cluster's /metrics endpoint."""
    from .obs import run_top

    if not args.url and args.port is None:
        raise SystemExit("--url or --port is required")
    url = args.url or f"http://{args.host}:{args.port}/metrics"
    try:
        return run_top(
            url,
            interval_s=args.interval,
            iterations=1 if args.once else None,
            clear=not args.once,
        )
    except OSError as exc:
        raise SystemExit(str(exc)) from None
    except KeyboardInterrupt:
        return 0


def cmd_stats(args: argparse.Namespace) -> int:
    """Summarise any of the repository's artefacts by sniffing the file.

    Recognises metrics JSONL, campaign records, trace JSONL, span logs,
    merged timelines, cluster event logs, flight-recorder dumps, SLO
    reports, loadgen reports, and BENCH JSON.  Anything else —
    including empty, binary, or truncated files — exits nonzero with a
    one-line reason, never a traceback.
    """
    try:
        return _stats(args.path)
    except BrokenPipeError:
        raise  # downstream pager closed; handled quietly in main()
    except (OSError, UnicodeDecodeError, ValueError, KeyError, TypeError) as exc:
        raise SystemExit(f"{args.path}: unreadable artefact ({exc})") from None


def _stats(path: str) -> int:
    from .campaign import read_records
    from .obs import read_metrics

    if not os.path.exists(path):
        raise SystemExit(f"{path}: no such file")
    if os.path.isdir(path):
        raise SystemExit(f"{path}: is a directory, not an artefact file")
    if os.path.getsize(path) == 0:
        raise SystemExit(f"{path}: empty file")

    bench = _try_bench(path)
    if bench is not None:
        env = bench.get("env", {})
        benchmarks = bench["benchmarks"]
        print(f"BENCH file: {len(benchmarks)} benchmarks")
        for key in ("git_rev", "python", "platform", "cpu_count", "timestamp"):
            if env.get(key) is not None:
                print(f"  {key}: {env[key]}")
        for name in sorted(benchmarks):
            stats = benchmarks[name].get("stats", {})
            print(
                f"  {name}: median {stats.get('median_s')}s, "
                f"iqr {stats.get('iqr_s')}s, min {stats.get('min_s')}s"
            )
        return 0

    # Loadgen and SLO reports are also single JSON documents,
    # distinguished by their ``kind`` tag.
    loadgen = _try_loadgen(path)
    if loadgen is not None:
        spec = loadgen.get("spec") or {}
        results = loadgen.get("results") or {}
        lat = results.get("latency") or {}
        fair = results.get("fairness") or {}
        safety = results.get("safety") or {}
        print(
            f"loadgen report [{spec.get('engine', '?')}]: "
            f"{spec.get('topology', '?')} seed={spec.get('seed', '?')} "
            f"clients={spec.get('clients', '?')} "
            f"mode={spec.get('mode', '?')}"
        )
        print(
            f"  grants: {results.get('grants', 0)}, "
            f"shed {results.get('shed_total', 0)}, "
            f"retries {results.get('retries', 0)}, "
            f"failures {results.get('failures', 0)}"
        )
        if lat.get("count"):
            print(
                f"  latency: p50={lat.get('p50_s')}s "
                f"p99={lat.get('p99_s')}s p999={lat.get('p999_s')}s "
                f"(n={lat.get('count')})"
            )
        print(
            f"  fairness: grant_count_cv={fair.get('grant_count_cv')} "
            f"granted={fair.get('clients_granted')}/"
            f"{fair.get('clients_active')}"
        )
        if safety.get("mode") == "live":
            verdict = "OK" if not safety.get("violations") else (
                f"VIOLATED ({safety['violations']} overlaps)"
            )
            print(f"  safety: {verdict}")
        per_node = results.get("per_node") or {}
        for label in sorted(per_node):
            doc = per_node[label]
            print(
                f"  node {label}: {doc.get('grants', 0)} grants, "
                f"p99={doc.get('p99_s')}s"
            )
        return 0

    slo_report = _try_slo_report(path)
    if slo_report is not None:
        verdict = "OK" if slo_report.get("ok") else "EXHAUSTED"
        objectives = slo_report.get("objectives") or []
        print(f"SLO report: {slo_report.get('spec', '?')} — {verdict} "
              f"({len(objectives)} objectives, "
              f"window {slo_report.get('duration_s')}s)")
        for key, value in sorted(
            (slo_report.get("observations") or {}).items()
        ):
            print(f"  {key}: {value}")
        for row in objectives:
            status = "ok" if row.get("ok") else "EXHAUSTED"
            print(
                f"  {row.get('name')}: {row.get('kind')} "
                f"spent={row.get('budget_spent')} "
                f"remaining={row.get('budget_remaining')}  {status}"
            )
        return 0

    # Cluster event logs parse as (empty) metrics files — their header has
    # a source — so they must be sniffed before the generic metrics branch.
    event_log = _try_cluster_events(path)
    if event_log is not None:
        header, events, skipped = event_log
        print(f"cluster event log: {len(events)} events "
              f"({header.get('source', '?')})")
        for key in ("topology", "seed", "duration_s", "nodes", "version"):
            if header.get(key) is not None:
                print(f"  {key}: {header[key]}")
        killed = header.get("killed") or []
        if killed:
            print(f"  maliciously crashed: {', '.join(killed)}")
        schedule = header.get("schedule") or {}
        if schedule.get("events") is not None:
            print(f"  scheduled faults: {len(schedule['events'])}")
        counts = {}
        for event in events:
            kind = event.get("event", "?")
            counts[kind] = counts.get(kind, 0) + 1
        for kind in sorted(counts):
            print(f"  {kind}: {counts[kind]}")
        if skipped:
            print(f"  skipped lines: {skipped} (truncated or foreign)")
        return 0

    # Flight dumps carry spans too, so sniff them before the span branch.
    flight = _try_flight(path)
    if flight is not None:
        header = flight.header
        print(f"flight dump: node {header.get('node', '?')} — "
              f"reason {header.get('reason', '?')}")
        for key in ("topology", "seed", "capacity", "dropped"):
            if header.get(key) is not None:
                print(f"  {key}: {header[key]}")
        print(f"  spans: {len(flight.spans)}")
        kinds: dict = {}
        for record in flight.records:
            label = record.get("event") or record.get("rec", "?")
            kinds[label] = kinds.get(label, 0) + 1
        print(f"  records: {len(flight.records)}")
        for label in sorted(kinds):
            print(f"    {label}: {kinds[label]}")
        if flight.skipped:
            print(f"  skipped lines: {flight.skipped} (truncated or foreign)")
        return 0

    # Span and timeline artefacts carry a ``source`` header too, so they
    # must also be sniffed before the generic metrics branch.
    span_file = _try_spans(path)
    if span_file is not None:
        spans = span_file.spans
        closed = sum(1 for s in spans if s.closed)
        events = sum(len(s.events) for s in spans)
        print(f"span log: {len(spans)} spans ({closed} closed, "
              f"{events} events)")
        for key in ("node", "topology", "seed"):
            if span_file.header.get(key) is not None:
                print(f"  {key}: {span_file.header[key]}")
        names: dict = {}
        for span in spans:
            names[span.name] = names.get(span.name, 0) + 1
        for name in sorted(names):
            print(f"  {name}: {names[name]} spans")
        if span_file.skipped:
            print(f"  skipped lines: {span_file.skipped} "
                  "(truncated or foreign)")
        return 0

    timeline = _try_timeline(path)
    if timeline is not None:
        nodes = timeline.header.get("nodes") or sorted(
            {e.node for e in timeline.entries}
        )
        print(f"timeline: {len(timeline.entries)} entries across "
              f"{len(nodes)} nodes")
        for key in ("causality_ok", "matched_messages"):
            if timeline.header.get(key) is not None:
                print(f"  {key}: {timeline.header[key]}")
        kinds: dict = {}
        for entry in timeline.entries:
            kinds[entry.ev] = kinds.get(entry.ev, 0) + 1
        for kind in sorted(kinds):
            print(f"  {kind}: {kinds[kind]}")
        if timeline.skipped:
            print(f"  skipped lines: {timeline.skipped} "
                  "(truncated or foreign)")
        return 0

    metrics = read_metrics(path)
    if metrics.metrics or metrics.header.get("source"):
        print(f"metrics file: {len(metrics.metrics)} metrics")
        for key in sorted(k for k in metrics.header if k not in ("format",)):
            print(f"  {key}: {metrics.header[key]}")
        for name, payload in metrics.metrics.items():
            body = {k: v for k, v in payload.items() if k != "type"}
            print(f"  {payload.get('type', '?'):9s} {name} = "
                  + json.dumps(body, sort_keys=True))
        return 0

    records = read_records(path)
    if records:
        kinds = {}
        durations = []
        for record in records:
            kinds[record.kind] = kinds.get(record.kind, 0) + 1
            if record.duration_s is not None:
                durations.append(record.duration_s)
        print(f"campaign records: {len(records)}")
        for kind in sorted(kinds):
            print(f"  {kind}: {kinds[kind]} shards")
        if durations:
            print(
                f"  duration_s: total {sum(durations):.3f}, "
                f"mean {sum(durations) / len(durations):.3f}, "
                f"max {max(durations):.3f}"
            )
        return 0

    from .obs import read_trace
    from .sim.errors import SimulationError

    try:
        trace = read_trace(path)
    except SimulationError:
        raise SystemExit(
            f"{path}: not a metrics, campaign-records, trace, or BENCH file"
        ) from None
    counts = {}
    for event in trace.events:
        counts[event.kind.value] = counts.get(event.kind.value, 0) + 1
    header = trace.header
    print(
        f"trace file: {header.get('model')} / {header.get('algorithm')} on "
        f"{header.get('topology')}, {header.get('steps_taken')} steps"
    )
    for kind in sorted(counts):
        print(f"  {kind}: {counts[kind]} events")
    print(f"  snapshots: {len(trace.snapshots)}")
    return 0


def _try_cluster_events(path: str):
    """The parsed event log, or ``None`` if ``path`` is not one.

    Event logs are JSONL whose first line is a header with a ``source``
    from :data:`repro.net.cluster.EVENT_SOURCES` — checked on the first
    line alone, so foreign files cost one readline.
    """
    from .net import EVENT_SOURCES, read_cluster_events

    try:
        with open(path, "r", encoding="utf-8") as handle:
            first = json.loads(handle.readline())
    except (ValueError, UnicodeDecodeError):
        return None
    if (
        not isinstance(first, dict)
        or first.get("kind") != "header"
        or first.get("source") not in EVENT_SOURCES
    ):
        return None
    return read_cluster_events(path)


def _first_header(path: str):
    """The file's first line as a parsed JSONL header dict, else ``None``
    — shared sniffing primitive: foreign files cost one readline."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            first = json.loads(handle.readline())
    except (ValueError, UnicodeDecodeError):
        return None
    if not isinstance(first, dict) or first.get("kind") != "header":
        return None
    return first


def _try_spans(path: str):
    """The parsed span artefact, or ``None`` if ``path`` is not one."""
    from .obs import read_spans
    from .obs.tracing import SPANS_SOURCE

    first = _first_header(path)
    if first is None or first.get("source") != SPANS_SOURCE:
        return None
    return read_spans(path)


def _try_flight(path: str):
    """The parsed flight dump, or ``None`` if ``path`` is not one."""
    from .obs import read_flight
    from .obs.flight import FLIGHT_SOURCE

    first = _first_header(path)
    if first is None or first.get("source") != FLIGHT_SOURCE:
        return None
    return read_flight(path)


def _try_slo_report(path: str):
    """The parsed SLO report document, or ``None`` if ``path`` is not one."""
    from .obs import read_slo_report

    try:
        return read_slo_report(path)
    except (OSError, ValueError):
        return None


def _try_timeline(path: str):
    """The parsed timeline artefact, or ``None`` if ``path`` is not one."""
    from .obs import read_timeline
    from .obs.timeline import TIMELINE_SOURCE

    first = _first_header(path)
    if first is None or first.get("source") != TIMELINE_SOURCE:
        return None
    return read_timeline(path)


def _try_loadgen(path: str):
    """The parsed loadgen report, or ``None`` if ``path`` is not one."""
    from .gateway import read_loadgen_report

    try:
        return read_loadgen_report(path)
    except (OSError, ValueError):
        return None


def _try_bench(path: str):
    """The parsed BENCH document, or ``None`` if ``path`` is not one.

    BENCH files are single JSON documents (not JSONL), so a whole-file
    parse distinguishes them from every line-oriented artefact cheaply —
    JSONL with more than one line fails ``json.loads`` immediately.
    """
    from .perf import read_bench

    try:
        return read_bench(path)
    except ValueError:
        return None


def cmd_bench(args: argparse.Namespace) -> int:
    """Run the benchmark suite, write/compare BENCH files, or profile."""
    from .perf import (
        compare,
        format_compare,
        read_bench,
        run_benchmarks,
        select,
        write_bench,
    )

    if args.threshold < 0:
        raise SystemExit("--threshold must be non-negative")
    if args.history:
        from .perf import format_history, scan_bench_history

        try:
            entries, ignored = scan_bench_history(args.history)
        except OSError as exc:
            raise SystemExit(str(exc)) from None
        if not entries:
            raise SystemExit(f"{args.history}: no BENCH_*.json files")
        print(format_history(entries))
        if ignored:
            print(f"ignored {len(ignored)} non-BENCH file(s): "
                  + ", ".join(ignored))
        return 0
    if args.compare:
        old_path, new_path = args.compare
        try:
            old = read_bench(old_path)
            new = read_bench(new_path)
        except (OSError, ValueError) as exc:
            raise SystemExit(str(exc)) from None
        report = compare(old, new, threshold=args.threshold)
        print(format_compare(report))
        return 0 if report.ok else 1

    benches = select(args.filter)
    if not benches:
        raise SystemExit(
            f"no benchmark matches --filter {args.filter!r}; "
            f"try `repro bench --list`"
        )
    if args.list:
        for bench in benches:
            plan = bench.plan(args.quick)
            print(f"{bench.name}  (ops={bench.ops}, rounds={plan.rounds}, "
                  f"warmup={plan.warmup})")
        return 0

    profiler = None
    if args.profile:
        import cProfile

        profiler = cProfile.Profile()

    def progress(result):
        stats = result.stats
        rate = result.ops_per_sec
        print(
            f"{result.name:35s} median {stats['median_s']:.6f}s  "
            f"iqr {stats['iqr_s']:.6f}s  min {stats['min_s']:.6f}s  "
            f"{'' if rate is None else f'{rate:,.0f} ops/s'}"
        )

    mode = "quick" if args.quick else "full"
    print(f"running {len(benches)} benchmarks ({mode})")
    results = run_benchmarks(
        benches, quick=args.quick, profiler=profiler, progress=progress
    )
    if args.out:
        path = write_bench(
            args.out,
            results,
            options={
                "quick": args.quick,
                "filter": args.filter,
                "profiled": args.profile,
            },
        )
        print(f"bench: {path}")
    if profiler is not None:
        from .perf import format_hotspots, hotspots, write_profile_metrics

        rows = hotspots(profiler, top=args.profile_top)
        print(format_hotspots(rows))
        path = write_profile_metrics(
            args.profile_out,
            profiler,
            header={"benchmarks": len(results), "quick": args.quick},
            top=args.profile_top,
        )
        print(f"profile: {path}")
        print("note: profiled round times are inflated; do not commit them "
              "as a baseline")
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    from .analysis import SuiteConfig, run_suite, to_markdown

    config = SuiteConfig(quick=not args.full, seed=args.seed)
    result = run_suite(
        config,
        jobs=args.jobs,
        records_path=args.records,
        metrics_out=args.metrics_out,
    )
    markdown = to_markdown(result)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(markdown)
        print(f"wrote {args.output}")
    else:
        print(markdown)
    if args.metrics_out:
        print(f"metrics: {args.metrics_out}")
    return 0


# ------------------------------------------------------------- live cluster


async def _node_main(args: argparse.Namespace) -> None:
    import asyncio

    from .mp.diners_mp import DinersMpProcess
    from .net import LockDinerProcess, NodeServer

    topology = parse_topology(args.topology)
    if not 0 <= args.pid < len(topology):
        raise SystemExit(
            f"--pid {args.pid} out of range for {args.topology} "
            f"(has {len(topology)} processes)"
        )
    pid = topology.nodes[args.pid]
    if args.lock_service:
        process = LockDinerProcess(pid, topology, seed=args.seed)
    else:
        process = DinersMpProcess(pid, topology, eat_ticks=2, seed=args.seed)
    server = NodeServer(
        pid,
        topology,
        process,
        host=args.host,
        port=args.port,
        tick_interval=args.tick_interval,
    )
    await server.start_listening()
    print(f"node {pid!r} listening on {args.host}:{server.port}", flush=True)
    peers = {}
    for spec in args.peer or []:
        index, sep, address = spec.partition("=")
        host, sep2, port = address.rpartition(":")
        if not sep or not sep2:
            raise SystemExit(f"--peer {spec!r}: expected IDX=HOST:PORT")
        try:
            q = topology.nodes[int(index)]
            peers[q] = (host, int(port))
        except (ValueError, IndexError):
            raise SystemExit(f"--peer {spec!r}: bad node index or port") from None
    try:
        await server.connect_peers(peers)
    except ValueError as exc:
        await server.stop()
        raise SystemExit(f"{exc} (give --peer for every neighbour)") from None
    try:
        if args.duration > 0:
            await asyncio.sleep(args.duration)
        else:
            await asyncio.Event().wait()  # serve until interrupted
    finally:
        await server.stop()
    print(f"counters: {json.dumps(server.counters(), sort_keys=True)}")


def cmd_node(args: argparse.Namespace) -> int:
    import asyncio

    try:
        asyncio.run(_node_main(args))
    except KeyboardInterrupt:
        pass
    return 0


def _cluster_config(args: argparse.Namespace, *, lock_service: bool):
    from .net import ClusterConfig, RestartPolicy

    loaded = None
    if getattr(args, "schedule_file", None):
        from .adversary.corpus import read_schedule

        try:
            loaded = read_schedule(args.schedule_file)
        except (OSError, ValueError) as exc:
            raise SystemExit(str(exc)) from None
        # The file is the experiment: topology, seed, duration, and the
        # complete fault plan all come from it, never from other flags.
        spec = loaded.topology_spec
        topology = loaded.topology
        seed = loaded.schedule.seed
        args.duration = loaded.schedule.duration_s
    else:
        spec = args.topology or f"ring:{args.nodes}"
        if args.nodes < 2 and not args.topology:
            raise SystemExit("--nodes must be >= 2")
        topology = parse_topology(spec)
        seed = args.seed
    restart = None
    if args.restart_policy != "off":
        if args.max_restarts < 1:
            raise SystemExit("--max-restarts must be >= 1 with a restart policy")
        restart = RestartPolicy(
            max_restarts=args.max_restarts,
            delay_s=args.restart_delay,
            arbitrary_state=args.restart_policy == "arbitrary",
        )
    elif loaded is not None:
        # A replayed plan that schedules restarts must be allowed to
        # execute them, or the replay silently runs a different experiment.
        restart_counts: dict = {}
        for event in loaded.schedule.events:
            if event.kind == "restart":
                key = repr(event.node)
                restart_counts[key] = restart_counts.get(key, 0) + 1
        if restart_counts:
            restart = RestartPolicy(
                max_restarts=max(restart_counts.values()),
                delay_s=0.0,
                arbitrary_state=True,
            )
    slo_spec = None
    if getattr(args, "slo", None):
        from .obs import read_slo_spec

        try:
            slo_spec = read_slo_spec(args.slo)
        except (OSError, ValueError) as exc:
            raise SystemExit(str(exc)) from None
    if getattr(args, "flight_capacity", None) is not None and args.flight_capacity < 1:
        raise SystemExit("--flight-capacity must be >= 1")
    from .obs.flight import DEFAULT_CAPACITY

    return ClusterConfig(
        topology=topology,
        topology_spec=spec,
        seed=seed,
        tick_interval=args.tick_interval,
        lock_service=lock_service,
        chaos=not args.no_chaos,
        partitions=args.partitions,
        malicious_crashes=args.malicious,
        host=args.host,
        restart=restart,
        schedule=None if loaded is None else loaded.schedule,
        byzantine=getattr(args, "byzantine", 0),
        adaptive=getattr(args, "adaptive", False),
        adaptive_interval=getattr(args, "adaptive_interval", 0.4),
        trace_dir=getattr(args, "trace", None),
        metrics_port=getattr(args, "metrics_port", None),
        stream_events=getattr(args, "events_out", None),
        flight_dir=getattr(args, "flight", None),
        flight_capacity=getattr(args, "flight_capacity", None) or DEFAULT_CAPACITY,
        slo=slo_spec,
    )


def _run_interruptible(coro):
    """``asyncio.run`` with SIGTERM/SIGINT routed to task cancellation.

    The cluster entry points treat cancellation as an early, orderly
    shutdown (teardown still runs, partial artefacts still flush), so a
    killed soak keeps its event/span tail instead of dying mid-write.
    """
    import asyncio
    import signal

    async def _main():
        task = asyncio.ensure_future(coro)
        loop = asyncio.get_running_loop()
        installed = []
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(sig, task.cancel)
                installed.append(sig)
            except (NotImplementedError, RuntimeError, ValueError):
                pass  # non-unix loop; KeyboardInterrupt still works
        try:
            return await task
        finally:
            for sig in installed:
                loop.remove_signal_handler(sig)

    return asyncio.run(_main())


def _print_metrics_url(args) -> None:
    port = getattr(args, "metrics_port", None)
    if port:
        # Ephemeral (0) binds after the loop starts, so only a fixed port
        # can be announced upfront for `repro top` to attach to.
        print(f"metrics endpoint: http://{args.host}:{port}/metrics",
              flush=True)


def _print_cluster_summary(result) -> None:
    interrupted = " (interrupted)" if result.interrupted else ""
    print(
        f"cluster {result.topology_spec} seed={result.seed}: "
        f"{result.mode} for {result.duration_s}s, {len(result.nodes)} nodes"
        f"{interrupted}"
    )
    for node in result.nodes:
        c = result.counters.get(node, {})
        print(
            f"  {node}: eats={c.get('eats', 0)} grants={c.get('grants', 0)} "
            f"msgs in/out={c.get('msgs_in', 0)}/{c.get('msgs_out', 0)} "
            f"garbage={c.get('garbage_bytes', 0)}B junk={c.get('junk_frames', 0)}"
        )
    scheduled = len(result.schedule.get("events", ())) if result.schedule else 0
    print(f"  chaos: {scheduled} scheduled faults", end="")
    if result.chunk_faults:
        detail = ", ".join(
            f"{kind}×{count}" for kind, count in sorted(result.chunk_faults.items())
        )
        print(f"; link-level {detail}", end="")
    print()
    if result.killed:
        print(f"  maliciously crashed: {', '.join(result.killed)}")
    if result.byzantine:
        print(f"  byzantine (never halted): {', '.join(result.byzantine)}")
    if result.restarts:
        restarted = ", ".join(
            f"{node}×{count}" for node, count in sorted(result.restarts.items())
        )
        print(f"  restarted: {restarted}")
    for node, elapsed in sorted(result.convergence_s.items()):
        print(f"  convergence: {node} re-granted {elapsed:.3f}s after restart")
    for path in result.trace_paths:
        print(f"  spans: {path}")
    for path in result.flight_paths:
        print(f"  flight: {path}")


def _write_cluster_artefacts(args, result, *, extra_header=None) -> None:
    from .net import write_cluster_events, write_cluster_metrics

    if args.metrics_out:
        path = write_cluster_metrics(
            args.metrics_out, result, extra_header=extra_header
        )
        print(f"metrics: {path}")
    if args.events_out:
        path = write_cluster_events(args.events_out, result)
        print(f"events: {path}")


def cmd_cluster_run(args: argparse.Namespace) -> int:
    from .net import run_cluster

    config = _cluster_config(args, lock_service=False)
    _print_metrics_url(args)
    result = _run_interruptible(run_cluster(config, args.duration))
    _print_cluster_summary(result)
    _write_cluster_artefacts(args, result)
    return 0


def cmd_cluster_soak(args: argparse.Namespace) -> int:
    from .net import soak

    config = _cluster_config(args, lock_service=True)
    _print_metrics_url(args)
    result = _run_interruptible(
        soak(
            config,
            args.duration,
            hold_s=args.hold,
            acquire_timeout=args.acquire_timeout,
        )
    )
    cluster = result.cluster
    _print_cluster_summary(cluster)
    acquired = sum(c.acquired for c in result.clients)
    timeouts = sum(c.timeouts for c in result.clients)
    errors = sum(c.errors for c in result.clients)
    print(
        f"  clients: {acquired} acquisitions, {timeouts} timeouts, "
        f"{errors} errors"
    )
    print(
        f"  progress: {result.nodes_with_grants}/{len(cluster.nodes)} "
        f"nodes granted at least once"
    )
    if result.safe:
        print("  safety: OK (no neighbouring holders)")
    else:
        print(f"  safety: VIOLATED ({len(result.violations)} overlaps)")
        for violation in result.violations[:10]:
            print(
                f"    {violation.node_a} ∦ {violation.node_b}: "
                f"[{violation.overlap_start:.3f}, {violation.overlap_end:.3f}]s"
            )
        blamed = result.blamed
        print(f"  attribution: blames {', '.join(blamed) or 'nobody'}", end="")
        if result.byzantine:
            match = sorted(blamed) == sorted(result.byzantine)
            print(
                f" (byzantine set {'matches' if match else 'MISMATCHES'}: "
                f"{', '.join(result.byzantine)})"
            )
        else:
            print()
    _write_cluster_artefacts(
        args,
        cluster,
        extra_header={"safe": result.safe, "violations": len(result.violations)},
    )
    status = 0 if result.safe else 1
    if result.slo_report is not None:
        from .obs import format_report, write_slo_report

        for line_ in format_report(result.slo_report).splitlines():
            print(f"  {line_}")
        if args.slo_report:
            path = write_slo_report(args.slo_report, result.slo_report)
            print(f"  slo report: {path}")
        if result.slo_report.exhausted:
            status = 1
    if args.require_progress:
        # Every node the schedule did not kill must have granted.
        survivors = [n for n in cluster.nodes if n not in cluster.killed]
        starved = [
            n for n in survivors
            if cluster.counters.get(n, {}).get("grants", 0) == 0
        ]
        if starved:
            print(f"  progress: FAILED — no grants at {', '.join(starved)}")
            status = 1
    return status


def cmd_loadgen(args: argparse.Namespace) -> int:
    """Drive a fleet of logical clients through the gateway tier.

    ``--sim`` runs the seeded virtual-time engine (byte-stable report);
    otherwise a real cluster is spawned behind a real gateway and the
    neighbour-exclusion audit runs over the event stream.  Exit 1 on a
    safety violation.
    """
    from .gateway import (
        AdmissionConfig,
        FlushPolicy,
        LoadgenConfig,
        run_live,
        run_sim,
        write_loadgen_report,
    )

    spec = args.topology or f"ring:{args.nodes}"
    topology = parse_topology(spec)
    admission = AdmissionConfig(
        max_per_client=args.max_per_client,
        max_queue_depth=args.queue_depth,
        max_in_flight=args.max_in_flight,
        retry_after_s=args.retry_after,
    )
    flush = FlushPolicy(
        max_frames=args.batch_frames,
        max_bytes=args.batch_bytes,
        max_delay_s=args.batch_delay,
    )
    config = LoadgenConfig(
        clients=args.clients,
        nodes=len(list(topology.nodes)),
        topology=spec,
        seed=args.seed,
        duration_s=args.duration,
        mode=args.mode,
        arrival_rate_hz=args.arrival_rate,
        think_s=args.think,
        hold_s=args.hold,
        max_retries=args.max_retries,
        upstreams_per_node=args.upstreams_per_node,
        max_upstreams=args.max_upstreams,
        admission=admission,
        flush=flush,
    )
    try:
        config.validate()
    except ValueError as exc:
        raise SystemExit(str(exc)) from None
    violations: list = []
    if args.sim:
        report = run_sim(config)
    else:
        cluster_config = _cluster_config(args, lock_service=True)
        _print_metrics_url(args)
        report, cluster_result, violations = _run_interruptible(
            run_live(config, cluster_config)
        )
        _write_cluster_artefacts(
            args,
            cluster_result,
            extra_header={
                "safe": not violations,
                "violations": len(violations),
            },
        )
    res = report["results"]
    lat = res["latency"]
    fair = res["fairness"]
    engine = report["spec"]["engine"]
    print(
        f"loadgen [{engine}]: {spec} seed={args.seed} "
        f"clients={args.clients} mode={args.mode} "
        f"duration={args.duration}s"
    )
    print(
        f"  grants: {res['grants']} ({res['throughput_hz']:.1f}/s), "
        f"releases {res['releases']}, shed {res['shed_total']}, "
        f"retries {res['retries']}, abandoned {res['abandoned']}, "
        f"failures {res['failures']}"
    )
    if lat.get("count"):
        print(
            f"  latency: p50={lat['p50_s']}s p99={lat['p99_s']}s "
            f"p999={lat['p999_s']}s (n={lat['count']})"
        )
    else:
        print("  latency: no grants observed")
    print(
        f"  fairness: grant_count_cv={fair['grant_count_cv']} "
        f"mean_wait_cv={fair['mean_wait_cv']} "
        f"active={fair['clients_active']} "
        f"granted={fair['clients_granted']}"
    )
    for reason in sorted(res["sheds"]):
        print(f"    shed[{reason}]: {res['sheds'][reason]}")
    batching = res.get("batching") or {}
    if batching.get("upstream_flushes"):
        print(
            f"  batching: {batching['upstream_frames']} frames in "
            f"{batching['upstream_flushes']} flushes "
            f"(mean batch {batching['mean_batch']:.2f}, "
            f"{batching['dials']} dials)"
        )
    safety = res["safety"]
    if safety["mode"] == "live":
        if violations:
            print(f"  safety: VIOLATED ({len(violations)} overlaps)")
            for violation in violations[:10]:
                print(
                    f"    {violation.node_a} ∦ {violation.node_b}: "
                    f"[{violation.overlap_start:.3f}, "
                    f"{violation.overlap_end:.3f}]s"
                )
        else:
            print(
                f"  safety: OK (audited {safety['audited_events']} "
                f"events, killed: {', '.join(safety['killed']) or 'none'})"
            )
    else:
        print("  safety: modelled (sim engine; audit needs a live run)")
    if args.out:
        path = write_loadgen_report(args.out, report)
        print(f"  loadgen report: {path}")
    return 1 if violations else 0


def cmd_fuzz(args: argparse.Namespace) -> int:
    from .adversary.fuzz import FuzzLimits, run_fuzz

    say = (lambda msg: None) if args.quiet else print
    result = run_fuzz(
        args.topology,
        seed=args.seed,
        budget=args.budget,
        duration_s=args.duration,
        jobs=args.jobs,
        keep=args.keep,
        corpus_dir=args.corpus_dir,
        limits=FuzzLimits(steps=args.steps, sample_every=args.sample_every),
        byzantine=args.byzantine,
        minimise_budget=args.minimise_budget,
        progress=say,
    )
    print(
        f"fuzz {result.topology_spec} seed={result.seed}: "
        f"{result.executed} runs, {result.coverage} distinct signatures"
    )
    for rank, entry in enumerate(result.entries[: args.keep]):
        print(
            f"  #{rank}: score={entry.score:.0f} "
            f"signature={list(entry.signature)} "
            f"events={len(entry.schedule.events)} ({entry.origin})"
        )
    for path in result.written:
        print(f"corpus: {path}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Dining philosophers that tolerate malicious crashes "
        "(Nesterenko & Arora, ICDCS 2002) — reproduction toolkit.",
    )
    from . import version as _version

    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {_version()}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p, steps_default=20_000):
        p.add_argument("--topology", default="ring:8", help="e.g. ring:8, line:12, grid:4:3")
        p.add_argument("--algorithm", default="na-diners", choices=sorted(ALGORITHMS))
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--steps", type=int, default=steps_default)

    def observability(p):
        p.add_argument("--trace", default=None, metavar="PATH",
                       help="record the run as versioned trace JSONL")
        p.add_argument("--metrics-out", default=None, dest="metrics_out",
                       metavar="PATH", help="write probe metrics JSONL")
        p.add_argument("--snapshot-every", type=int, default=0,
                       dest="snapshot_every",
                       help="configuration snapshot cadence in steps "
                       "(0 = auto, ~100 snapshots per run)")
        p.add_argument("--timings-out", default=None, dest="timings_out",
                       metavar="PATH",
                       help="write live per-action wall-clock timers "
                       "(meta metrics JSONL; see StepTimerProbe)")

    p = sub.add_parser("run", help="simulate and report meals + invariant")
    common(p)
    observability(p)
    p.add_argument("--backend", choices=["object", "fast"], default="object",
                   help="state backend: the object model (reference) or the "
                   "packed fast core (same computation, 10x+ faster)")
    p.add_argument("--profile-out", default=None, dest="profile_out",
                   metavar="PATH",
                   help="cProfile the run's hot loop; write top hotspots "
                   "as meta metrics JSONL (readable by `repro stats`)")
    p.set_defaults(fn=cmd_run)

    p = sub.add_parser("locality", help="crash a victim while eating; measure radius")
    common(p, steps_default=40_000)
    p.add_argument("--victim", type=int, default=0, help="index into topology nodes")
    p.add_argument("--malicious", type=int, default=0, help="havoc steps (0 = benign)")
    observability(p)
    p.set_defaults(fn=cmd_locality)

    p = sub.add_parser("stabilize", help="corrupt the state and time recovery")
    common(p)
    observability(p)
    p.add_argument("--plant-cycle", action="store_true")
    p.add_argument("--nc-only", action="store_true", help="wait for NC instead of full I")
    p.add_argument("--corrected-threshold", action="store_true",
                   help="use longest-simple-path instead of the diameter")
    p.add_argument("--max-steps", type=int, default=500_000)
    p.set_defaults(fn=cmd_stabilize)

    p = sub.add_parser("figure2", help="replay the paper's Figure 2")
    p.set_defaults(fn=cmd_figure2)

    p = sub.add_parser("check", help="model-check a small instance exhaustively")
    p.add_argument("--topology", default="line:3")
    p.add_argument("--corrected-threshold", action="store_true")
    p.add_argument("--jobs", type=int, default=1,
                   help="worker processes; >1 shards the state space")
    p.add_argument("--progress", type=int, default=0, metavar="N",
                   help="heartbeat: one stderr line per N completed shards")
    p.add_argument("--backend", choices=["object", "fast"], default="object",
                   help="state backend for --reachable sweeps (counts are "
                   "identical; the fast core hashes packed states)")
    p.add_argument("--reachable", action="store_true",
                   help="BFS states reachable from the all-hungry initial "
                   "configuration and audit eating-exclusion, instead of "
                   "the full-space closure/convergence check")
    p.add_argument("--max-states", type=int, default=1_000_000,
                   dest="max_states",
                   help="abort a --reachable sweep past this many states")
    p.set_defaults(fn=cmd_check)

    p = sub.add_parser(
        "sweep",
        help="many-seed randomized campaign with checkpoint/resume",
        description="Shard (topology, algorithm, fault-plan, seed) trials "
        "across a worker pool, stream JSONL records, and aggregate. "
        "Re-running against an existing --out file skips recorded shards.",
    )
    p.add_argument("--topology", action="append", default=None,
                   help="topology spec; repeatable (default ring:8)")
    p.add_argument("--algorithm", action="append", default=None,
                   choices=sorted(ALGORITHMS),
                   help="algorithm; repeatable (default na-diners)")
    p.add_argument("--trials", type=int, default=8,
                   help="independent seeds per (topology, algorithm) point")
    p.add_argument("--steps", type=int, default=5_000)
    p.add_argument("--seed", type=int, default=0, help="campaign base seed")
    p.add_argument("--jobs", type=int, default=1, help="worker processes")
    p.add_argument("--out", default=None,
                   help="JSONL record/checkpoint file (enables resume)")
    p.add_argument("--fresh", action="store_true",
                   help="ignore existing records in --out and re-run everything")
    p.add_argument("--no-meta", action="store_true",
                   help="omit worker/timing metadata (byte-reproducible records)")
    p.add_argument("--crash-victim", type=int, default=None, dest="crash_victim",
                   help="node index to crash in every trial")
    p.add_argument("--crash-at", type=int, default=0, dest="crash_at",
                   help="engine step of the crash")
    p.add_argument("--malicious", type=int, default=0,
                   help="arbitrary steps before halting (0 = benign crash)")
    p.add_argument("--backend", choices=["object", "fast"], default="object",
                   help="state backend for every trial; records are "
                   "byte-identical either way (RNG parity), fast is 10x+")
    p.add_argument("--quiet", action="store_true", help="no per-shard progress")
    p.add_argument("--progress", type=int, default=0, metavar="N",
                   help="heartbeat: one stderr line (with ETA) per N "
                   "completed shards instead of one per shard")
    p.add_argument("--trace", default=None, metavar="PATH",
                   help="log shard completions (with durations) as JSONL")
    p.add_argument("--metrics-out", default=None, dest="metrics_out",
                   metavar="PATH", help="write campaign aggregate metrics JSONL")
    p.set_defaults(fn=cmd_sweep)

    p = sub.add_parser(
        "trace",
        help="replay a recorded trace file offline",
        description="Load a --trace JSONL file, replay it through the "
        "standard probes, and print the same summary (and optionally the "
        "same metrics file) the live run produced.",
    )
    p.add_argument("path", help="trace JSONL file written by --trace")
    p.add_argument("--metrics-out", default=None, dest="metrics_out",
                   metavar="PATH", help="write probe metrics JSONL")
    p.add_argument("--limit", type=int, default=0,
                   help="also print the first N events")
    p.set_defaults(fn=cmd_trace)

    p = sub.add_parser(
        "stats",
        help="summarise a metrics / records / trace / events JSONL file",
    )
    p.add_argument("path", help="any JSONL artefact this toolkit writes")
    p.set_defaults(fn=cmd_stats)

    p = sub.add_parser(
        "bench",
        help="run the performance benchmark suite; write/compare BENCH files",
        description="Execute the shared benchmark registry (engine step "
        "loops, snapshot/invariant/checker kernels, mp ticks, campaign "
        "shards) with warmup and repeated rounds, reduce to robust stats "
        "(median, IQR, min), and optionally write a versioned BENCH_*.json "
        "with environment provenance.  --compare OLD NEW applies the "
        "noise-tolerant regression gate and exits nonzero on regression.",
    )
    p.add_argument("--quick", action="store_true",
                   help="fewer rounds/warmup (CI smoke mode)")
    p.add_argument("--filter", default=None, metavar="SUBSTR",
                   help="only benchmarks whose name contains SUBSTR")
    p.add_argument("--list", action="store_true",
                   help="list matching benchmarks and exit")
    p.add_argument("--out", default=None, metavar="PATH",
                   help="write results as a BENCH_*.json trajectory file")
    p.add_argument("--compare", nargs=2, metavar=("OLD", "NEW"),
                   help="compare two BENCH files instead of running")
    p.add_argument("--history", default=None, metavar="DIR",
                   help="scan DIR's BENCH_*.json files into a per-kernel "
                   "median trajectory table instead of running")
    from .perf.bench_io import DEFAULT_THRESHOLD

    p.add_argument("--threshold", type=float, default=DEFAULT_THRESHOLD,
                   help="relative median slowdown tolerated by --compare "
                   f"(default {DEFAULT_THRESHOLD})")
    p.add_argument("--profile", action="store_true",
                   help="cProfile the timed rounds; print + write hotspots")
    p.add_argument("--profile-out", default="bench_profile.metrics",
                   dest="profile_out", metavar="PATH",
                   help="hotspot metrics JSONL path for --profile")
    p.add_argument("--profile-top", type=int, default=15, dest="profile_top",
                   help="hotspot rows to keep with --profile")
    p.set_defaults(fn=cmd_bench)

    p = sub.add_parser(
        "node",
        help="serve one live cluster node (asyncio TCP daemon)",
        description="Host one §4 message-passing process behind real "
        "sockets.  Prints the bound port on startup; give --peer for every "
        "neighbour in the topology (links reconnect with backoff, so peers "
        "may come up in any order).",
    )
    p.add_argument("--topology", default="ring:5", help="the shared topology spec")
    p.add_argument("--pid", type=int, required=True,
                   help="index into topology nodes: which process this is")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=0,
                   help="listen port (0 = ephemeral)")
    p.add_argument("--peer", action="append", default=None,
                   metavar="IDX=HOST:PORT",
                   help="neighbour address; repeat for every neighbour")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--tick-interval", type=float, default=0.01,
                   dest="tick_interval", help="seconds between process ticks")
    p.add_argument("--duration", type=float, default=0.0,
                   help="seconds to serve (0 = until interrupted)")
    p.add_argument("--lock-service", action="store_true", dest="lock_service",
                   help="host the client-driven lock process instead of an "
                   "always-hungry diner")
    p.set_defaults(fn=cmd_node)

    p = sub.add_parser(
        "cluster",
        help="run/soak a live N-node cluster with chaos on localhost",
        description="Spawn every node of a topology on 127.0.0.1 (one "
        "process, one event loop, real TCP), route every link through a "
        "chaos proxy playing a seeded fault schedule (delay, drop, "
        "duplicate, reorder, partition, malicious garbage-then-halt), and "
        "write the standard metrics/event artefacts.",
    )
    cluster_sub = p.add_subparsers(dest="cluster_command", required=True)

    def cluster_common(cp):
        cp.add_argument("--nodes", type=int, default=5,
                        help="ring size (shorthand for --topology ring:N)")
        cp.add_argument("--topology", default=None,
                        help="explicit spec (e.g. grid:3:3); overrides --nodes")
        cp.add_argument("--seed", type=int, default=0,
                        help="seeds the fault schedule and every process")
        cp.add_argument("--duration", type=float, default=10.0, help="seconds")
        cp.add_argument("--tick-interval", type=float, default=0.01,
                        dest="tick_interval")
        cp.add_argument("--host", default="127.0.0.1")
        cp.add_argument("--no-chaos", action="store_true", dest="no_chaos",
                        help="clean links: no fault schedule at all")
        cp.add_argument("--partitions", type=int, default=1,
                        help="partition/heal windows to schedule")
        cp.add_argument("--malicious", type=int, default=1,
                        help="malicious crashes (garbage burst, then halt)")
        cp.add_argument("--restart-policy", dest="restart_policy",
                        choices=("off", "fresh", "arbitrary"), default="off",
                        help="relaunch crashed nodes: 'fresh' boots clean "
                        "state, 'arbitrary' boots seeded-random state (the "
                        "stabilization theorem's restart setting)")
        cp.add_argument("--max-restarts", type=int, default=1,
                        dest="max_restarts",
                        help="relaunches allowed per crashed node")
        cp.add_argument("--restart-delay", type=float, default=0.5,
                        dest="restart_delay",
                        help="seconds of downtime before a relaunch")
        cp.add_argument("--byzantine", type=int, default=0,
                        help="nodes subverted at 'crash' time to keep "
                        "emitting protocol-shaped frames instead of halting "
                        "(the beyond-the-model fault; expect violations "
                        "attributed to the subverted node)")
        cp.add_argument("--adaptive", action="store_true",
                        help="drive chaos with the feedback adversary: it "
                        "watches the event stream and aims partitions/"
                        "replays at the most vulnerable node")
        cp.add_argument("--adaptive-interval", type=float, default=0.4,
                        dest="adaptive_interval",
                        help="seconds between adaptive-adversary decisions")
        cp.add_argument("--schedule-file", default=None, dest="schedule_file",
                        metavar="PATH",
                        help="replay this exact corpus schedule file "
                        "(topology, seed, duration and fault plan all come "
                        "from the file; see `repro fuzz`)")
        cp.add_argument("--metrics-out", default=None, dest="metrics_out",
                        metavar="PATH", help="write cluster metrics JSONL")
        cp.add_argument("--events-out", default=None, dest="events_out",
                        metavar="PATH", help="write the event-log artefact "
                        "(streamed line-by-line during the run, finalised "
                        "atomically at teardown)")
        cp.add_argument("--trace", default=None, metavar="DIR",
                        help="causal tracing: stamp every frame with a "
                        "Lamport clock + span id and write per-node "
                        "spans-<node>.jsonl artefacts into DIR at teardown "
                        "(merge offline with `repro timeline DIR`)")
        cp.add_argument("--metrics-port", type=int, default=None,
                        dest="metrics_port", metavar="PORT",
                        help="serve live Prometheus text metrics at "
                        "http://HOST:PORT/metrics while the cluster runs "
                        "(watch with `repro top --port PORT`); implies "
                        "tracing")
        cp.add_argument("--flight", default=None, metavar="DIR",
                        help="arm a per-node flight recorder (bounded "
                        "in-memory ring of recent events/frames) and dump "
                        "flight-<node>.jsonl black boxes into DIR on a "
                        "safety violation, SLO exhaustion, node crash, "
                        "watchdog stall, or SIGTERM; implies tracing "
                        "(merge dumps with `repro timeline DIR`)")
        cp.add_argument("--flight-capacity", type=int, default=None,
                        dest="flight_capacity", metavar="N",
                        help="flight-recorder ring size per node "
                        "(default 512)")

    cp = cluster_sub.add_parser(
        "run", help="always-hungry diners under chaos; report counters"
    )
    cluster_common(cp)
    cp.set_defaults(fn=cmd_cluster_run)

    cp = cluster_sub.add_parser(
        "soak",
        help="lock-service clients under chaos; audit safety, exit 1 on "
        "violation",
    )
    cluster_common(cp)
    cp.add_argument("--hold", type=float, default=0.05,
                    help="mean client hold/think time scale in seconds")
    cp.add_argument("--acquire-timeout", type=float, default=5.0,
                    dest="acquire_timeout")
    cp.add_argument("--require-progress", action="store_true",
                    dest="require_progress",
                    help="also exit 1 if any surviving node never granted")
    cp.add_argument("--slo", default=None, metavar="SPEC",
                    help="evaluate this SLO spec live against the event "
                    "stream: a newly exhausted budget annotates the "
                    "implicated spans, triggers a flight dump (with "
                    "--flight), and forces exit 1; remaining budget and "
                    "burn rate are exported at --metrics-port")
    cp.add_argument("--slo-report", default=None, dest="slo_report",
                    metavar="PATH",
                    help="write the final byte-stable slo-report.json")
    cp.set_defaults(fn=cmd_cluster_soak)

    p = sub.add_parser(
        "loadgen",
        help="drive 10^4-10^6 logical clients through the gateway tier; "
        "report latency percentiles + fairness, exit 1 on violation",
        description="Closed- or open-loop load generation against the "
        "lock service through the multiplexing gateway (binary v3 wire "
        "frames, batching, admission control). Live mode spawns a real "
        "cluster (all the chaos flags apply) and audits neighbour "
        "exclusion over the event stream; --sim runs the seeded "
        "virtual-time twin whose loadgen-report.json is byte-stable "
        "and feeds `repro slo`.",
    )
    cluster_common(p)
    p.add_argument("--clients", type=int, default=10000,
                   help="logical clients in the fleet")
    p.add_argument("--mode", choices=("closed", "open"), default="closed",
                   help="closed: think/hold cycles; open: Poisson arrivals")
    p.add_argument("--arrival-rate", type=float, default=2000.0,
                   dest="arrival_rate", metavar="HZ",
                   help="open-loop aggregate arrival rate")
    p.add_argument("--think", type=float, default=0.5,
                   help="closed-loop mean think time (seconds)")
    p.add_argument("--hold", type=float, default=0.01,
                   help="mean lock-hold time (seconds)")
    p.add_argument("--max-retries", type=int, default=8, dest="max_retries",
                   help="shed retries per acquire before abandoning")
    p.add_argument("--upstreams-per-node", type=int, default=1,
                   dest="upstreams_per_node",
                   help="pooled TCP connections per node")
    p.add_argument("--max-upstreams", type=int, default=8,
                   dest="max_upstreams",
                   help="hard cap on total upstream connections")
    p.add_argument("--max-per-client", type=int, default=1,
                   dest="max_per_client",
                   help="admission: in-flight ops per logical client")
    p.add_argument("--queue-depth", type=int, default=256,
                   dest="queue_depth",
                   help="admission: un-granted acquires parked per node")
    p.add_argument("--max-in-flight", type=int, default=1024,
                   dest="max_in_flight",
                   help="admission: ops outstanding per upstream pipe")
    p.add_argument("--retry-after", type=float, default=0.05,
                   dest="retry_after",
                   help="retry hint (seconds) carried by shed responses")
    p.add_argument("--batch-frames", type=int, default=64,
                   dest="batch_frames",
                   help="flush a batch at this many buffered frames")
    p.add_argument("--batch-bytes", type=int, default=32768,
                   dest="batch_bytes",
                   help="flush a batch at this many buffered bytes")
    p.add_argument("--batch-delay", type=float, default=0.002,
                   dest="batch_delay",
                   help="max seconds a buffered frame waits for a batch")
    p.add_argument("--sim", action="store_true",
                   help="virtual-time engine: no sockets, byte-stable "
                   "report (same spec+seed => identical bytes)")
    p.add_argument("--out", default=None, metavar="PATH",
                   help="write the versioned loadgen-report.json")
    p.set_defaults(fn=cmd_loadgen)

    p = sub.add_parser(
        "fuzz",
        help="coverage-guided chaos-schedule fuzzing; write worst finds "
        "as a replayable corpus",
        description="Mutate seeded fault schedules, execute each candidate "
        "on the deterministic message-passing engine, and keep every "
        "schedule whose behaviour signature (waiting-chain shape, "
        "exclusion-overlap trajectory, starvation/convergence buckets) is "
        "new.  Fully deterministic for a fixed seed+budget: two runs write "
        "byte-identical corpus files.  Replay a find with "
        "`repro cluster soak --schedule-file <file>`.",
    )
    p.add_argument("--topology", default="ring:4",
                   help="spec the schedules target (e.g. ring:4, grid:3:3)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--budget", type=int, default=40,
                   help="candidate executions (seed schedules included)")
    p.add_argument("--duration", type=float, default=5.0,
                   help="scheduled duration of each candidate, in seconds "
                   "(mapped onto engine steps; no wall-clock involved)")
    p.add_argument("--steps", type=int, default=4000,
                   help="engine steps per candidate execution")
    p.add_argument("--sample-every", type=int, default=25, dest="sample_every",
                   help="steps between behaviour samples")
    p.add_argument("--jobs", type=int, default=1,
                   help="parallel evaluation workers (result-invariant)")
    p.add_argument("--keep", type=int, default=3,
                   help="top signatures to minimise and write")
    p.add_argument("--corpus-dir", default=None, dest="corpus_dir",
                   metavar="DIR", help="write kept schedules here")
    p.add_argument("--byzantine", action="store_true",
                   help="include a beyond-the-model seed schedule (its "
                   "finds violate safety on live replay by design)")
    p.add_argument("--minimise-budget", type=int, default=24,
                   dest="minimise_budget",
                   help="extra evaluations per kept entry for shrinking")
    p.add_argument("--quiet", action="store_true",
                   help="suppress per-round progress lines")
    p.set_defaults(fn=cmd_fuzz)

    p = sub.add_parser(
        "timeline",
        help="merge per-node span logs into one causal global timeline",
        description="Read the spans-<node>.jsonl artefacts a traced "
        "cluster run wrote (pass the --trace directory or the files "
        "themselves, in any order), merge them into one happened-before-"
        "consistent global order, verify causal consistency (a cycle or a "
        "clock inversion means a corrupted trace; exit 1), and attribute "
        "each grant's latency to queueing, fork transfer, or chaos-induced "
        "retransmits.  With --events, the soak's neighbour-exclusion "
        "violations are walked back to the spans open across them — a "
        "byzantine violation is localised to the subverted node.  --out "
        "writes a byte-stable timeline artefact.",
    )
    p.add_argument("paths", nargs="+",
                   help="span JSONL files, or directories of spans-*.jsonl")
    p.add_argument("--events", default=None, metavar="PATH",
                   help="the soak's event-log artefact (--events-out): "
                   "reconstruct exclusion violations against the spans")
    p.add_argument("--out", default=None, metavar="PATH",
                   help="write the merged timeline as canonical JSONL")
    p.add_argument("--limit", type=int, default=0,
                   help="also print the first N timeline entries")
    p.set_defaults(fn=cmd_timeline)

    p = sub.add_parser(
        "slo",
        help="evaluate a declarative SLO spec against recorded artefacts",
        description="Load a versioned slo-spec JSON file (grant-latency "
        "percentiles, fairness, waiting chains, convergence deadlines, "
        "hunger bounds, safety as a zero-budget hard objective), digest "
        "any mix of soak event logs, span files, flight dumps, and metrics "
        "JSONL, and print per-objective error-budget verdicts with worst-"
        "window burn rates.  --out writes a byte-stable slo-report.json "
        "(a pure function of spec + artefacts).  Exits 1 when any "
        "objective's budget is exhausted.",
    )
    p.add_argument("spec", help="slo-spec JSON file (see examples/slo.json)")
    p.add_argument("artefacts", nargs="+",
                   help="event logs, span/flight JSONL files, metrics "
                   "files, or directories of spans-*/flight-* artefacts")
    p.add_argument("--out", default=None, metavar="PATH",
                   help="write the slo-report.json document")
    p.set_defaults(fn=cmd_slo)

    p = sub.add_parser(
        "top",
        help="live terminal dashboard over a cluster's /metrics endpoint",
        description="Poll the Prometheus text endpoint a cluster run "
        "serves with --metrics-port, and render waiting-chain length, "
        "hunger-latency percentiles, per-edge retransmit rates, and "
        "per-node counters, refreshed in place until interrupted.",
    )
    p.add_argument("--url", default=None,
                   help="full endpoint URL (overrides --host/--port)")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=None,
                   help="the cluster's --metrics-port")
    p.add_argument("--interval", type=float, default=1.0,
                   help="seconds between refreshes")
    p.add_argument("--once", action="store_true",
                   help="render a single frame and exit (no screen clear)")
    p.set_defaults(fn=cmd_top)

    p = sub.add_parser("report", help="run the experiment suite, emit markdown")
    p.add_argument("--full", action="store_true")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--jobs", type=int, default=1, help="worker processes")
    p.add_argument("--records", default=None,
                   help="JSONL checkpoint file for the suite's campaign")
    p.add_argument("--metrics-out", default=None, dest="metrics_out",
                   metavar="PATH",
                   help="write per-section scalar snapshots + campaign "
                   "aggregates as metrics JSONL")
    p.add_argument("--output", default=None, help="write to a file instead of stdout")
    p.set_defaults(fn=cmd_report)

    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except BrokenPipeError:
        # downstream pager/head closed the pipe; exit quietly like other
        # unix tools (redirect stdout so the interpreter's exit flush
        # does not raise a second time)
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
