"""Command-line interface: run the paper's scenarios without writing code.

Subcommands
-----------

``run``        simulate an algorithm on a topology, report meals/safety
``locality``   crash a process while it eats; report the starvation radius
``stabilize``  corrupt the state (optionally plant a cycle); time recovery
``figure2``    replay the paper's Figure 2, panel by panel
``check``      model-check closure + convergence on a small instance
``sweep``      many-seed randomized campaign across a worker pool
``report``     run the experiment suite, emit markdown

Examples
--------

::

    python -m repro run --topology ring:10 --algorithm na-diners --steps 20000
    python -m repro locality --topology line:12 --algorithm hygienic --victim 0
    python -m repro stabilize --topology ring:8 --plant-cycle
    python -m repro figure2
    python -m repro check --topology line:3 --jobs 4
    python -m repro sweep --topology ring:8 --trials 32 --jobs 4 --out out.jsonl
"""

from __future__ import annotations

import argparse
import os
import random
import sys

from .analysis import (
    find_live_cycles,
    measure_failure_locality,
    plant_priority_cycle,
    steps_to_predicate,
)
from .campaign.shard import ALGORITHMS  # canonical registry, re-exported
from .core import (
    NADiners,
    invariant_report,
    invariant_with_threshold,
    nc_holds,
    red_set,
    run_figure2,
)
from .sim import AlwaysHungry, Engine, System, Topology, from_spec
from .sim.errors import TopologyError


def parse_topology(spec: str) -> Topology:
    """Parse ``kind:arg[:arg]`` specs like ``ring:8`` or ``grid:4:3``.

    CLI-flavoured wrapper over :func:`repro.sim.topology.from_spec`: bad
    specs exit with a message instead of raising.
    """
    try:
        return from_spec(spec)
    except TopologyError as exc:
        raise SystemExit(str(exc)) from None


def make_algorithm(name: str):
    try:
        return ALGORITHMS[name]()
    except KeyError:
        raise SystemExit(f"unknown algorithm {name!r}; one of {sorted(ALGORITHMS)}")


def cmd_run(args: argparse.Namespace) -> int:
    topology = parse_topology(args.topology)
    system = System(topology, make_algorithm(args.algorithm))
    engine = Engine(system, hunger=AlwaysHungry(), seed=args.seed)
    result = engine.run(args.steps)
    print(f"{topology} / {system.algorithm.name}: ran {result.steps} steps")
    for pid in topology.nodes:
        print(f"  {pid}: {engine.eats_of(pid)} meals")
    final = system.snapshot()
    variables = set(system.local_variable_names())
    if "depth" in variables:
        # NADiners family: the full invariant applies.
        print(f"invariant: {invariant_report(final)}")
    else:
        # Other diners: only the eating-exclusion conjunct is meaningful
        # (fork-ordering's edge cells are forks, not priorities).
        from .core import e_holds

        print(f"no neighbours eating together: {e_holds(final)}")
    return 0


def cmd_locality(args: argparse.Namespace) -> int:
    topology = parse_topology(args.topology)
    victim = topology.nodes[args.victim]
    report = measure_failure_locality(
        make_algorithm(args.algorithm),
        topology,
        [victim],
        malicious_steps=args.malicious or None,
        warmup_steps=args.steps,
        settle_steps=args.steps // 3,
        window=args.steps,
        seed=args.seed,
    )
    kind = f"malicious({args.malicious})" if args.malicious else "benign"
    print(f"{topology} / {report.algorithm}: {kind} crash of {victim!r} while eating")
    print(f"  starving: {sorted(report.starving)}")
    print(f"  starvation radius: {report.starvation_radius}")
    for d, (count, total) in report.eats_by_distance(topology).items():
        print(f"  distance {d}: {count} processes, {total} meals")
    return 0


def cmd_stabilize(args: argparse.Namespace) -> int:
    topology = parse_topology(args.topology)
    system = System(topology, make_algorithm(args.algorithm))
    system.randomize(random.Random(args.seed))
    if args.plant_cycle:
        from .analysis.stabilization import _find_cycle

        cycle = _find_cycle(topology)
        if cycle is None:
            print("topology has no cycle to plant; corruption only")
        else:
            plant_priority_cycle(system, cycle)
            print(f"planted priority cycle: {cycle}")
    if args.nc_only:
        predicate = nc_holds
    elif args.corrected_threshold:
        predicate = invariant_with_threshold(topology.longest_simple_path())
    else:
        from .core import invariant_holds

        predicate = invariant_holds
    result = steps_to_predicate(
        system, predicate, max_steps=args.max_steps, seed=args.seed
    )
    if result.converged:
        print(f"converged after {result.steps} steps")
        print(f"live cycles now: {find_live_cycles(system.snapshot()) or 'none'}")
        return 0
    print(f"did NOT converge within {args.max_steps} steps")
    return 1


def cmd_figure2(args: argparse.Namespace) -> int:
    replay = run_figure2()
    topo = replay.initial.topology
    for i, config in enumerate(replay.configurations, start=1):
        print(f"panel {i}:")
        states = ", ".join(
            f"{p}={config.local(p, 'state')}" for p in topo.nodes
        )
        print(f"  {states}")
        print(f"  red: {sorted(red_set(config))}")
        print(f"  live cycles: {find_live_cycles(config) or 'none'}")
    print(f"transitions replayed: {replay.executed}")
    return 0


def cmd_check(args: argparse.Namespace) -> int:
    from .verification import (
        TransitionSystem,
        check_closure,
        check_convergence,
        enumerate_configurations,
        space_size,
    )

    topology = parse_topology(args.topology)
    threshold = (
        topology.longest_simple_path()
        if args.corrected_threshold
        else topology.diameter
    )
    algo = NADiners(depth_cap=threshold + 1, diameter_override=threshold)
    predicate = invariant_with_threshold(threshold)
    ts = TransitionSystem(algo, topology)
    jobs = getattr(args, "jobs", 1)
    if jobs < 1:
        raise SystemExit("--jobs must be >= 1")

    if jobs > 1:
        # Sharded path: the enumeration splits into `jobs` deterministic
        # slices; closure runs as campaign shards, convergence merges the
        # per-shard reachability graphs before one SCC pass.
        from .campaign import Shard, parallel_map, run_shards
        from .campaign.shard import build_graph_shard

        params = {"topology": args.topology, "threshold": threshold}
        states = space_size(algo, topology, fixed_locals={"needs": True})
        print(f"{topology}, threshold={threshold}: {states} states ({jobs} shards)")
        closure_shards = [
            Shard(
                "check-closure",
                {**params, "shard_index": i, "shard_count": jobs},
                seed=0,
            )
            for i in range(jobs)
        ]
        campaign = run_shards(closure_shards, jobs=jobs)
        results = [campaign.records[key].result for key in sorted(campaign.records)]
        closure_holds = all(r["holds"] for r in results)
        checked = sum(r["checked_states"] for r in results)
        print(f"I closed: {closure_holds} ({checked} legit states)")
        fragments = parallel_map(
            build_graph_shard,
            [(params, i, jobs) for i in range(jobs)],
            jobs=jobs,
        )
        graph = {}
        for fragment in fragments:
            graph.update(fragment)
        convergence = check_convergence(ts, predicate, (), graph=graph)
        print(
            f"converges: {convergence.converges} "
            f"({convergence.scc_count} SCCs, {convergence.legit_states} legit states)"
        )
        return 0 if closure_holds and convergence.converges else 1

    configs = list(
        enumerate_configurations(algo, topology, fixed_locals={"needs": True})
    )
    print(f"{topology}, threshold={threshold}: {len(configs)} states")
    closure = check_closure(ts, predicate, configs)
    print(f"I closed: {closure.holds} ({closure.checked_states} legit states)")
    convergence = check_convergence(ts, predicate, configs)
    print(
        f"converges: {convergence.converges} "
        f"({convergence.scc_count} SCCs, {convergence.legit_states} legit states)"
    )
    return 0 if closure.holds and convergence.converges else 1


def cmd_sweep(args: argparse.Namespace) -> int:
    from .campaign import SweepSpec, aggregate_sim, run_shards

    if args.jobs < 1:
        raise SystemExit("--jobs must be >= 1")
    topologies = tuple(args.topology or ["ring:8"])
    for spec in topologies:
        topology = parse_topology(spec)  # fail fast on bad specs, before forking
        if args.crash_victim is not None and not 0 <= args.crash_victim < len(topology):
            raise SystemExit(
                f"--crash-victim {args.crash_victim} out of range for {spec} "
                f"(has {len(topology)} processes)"
            )
    algorithms = tuple(args.algorithm or ["na-diners"])
    for name in algorithms:
        if name not in ALGORITHMS:
            raise SystemExit(f"unknown algorithm {name!r}; one of {sorted(ALGORITHMS)}")
    fault = None
    if args.crash_victim is not None:
        fault = {
            "victim": args.crash_victim,
            "at_step": args.crash_at,
            "malicious_steps": args.malicious,
        }
    sweep = SweepSpec(
        topologies=topologies,
        algorithms=algorithms,
        trials=args.trials,
        steps=args.steps,
        seed=args.seed,
        fault=fault,
    )

    def progress(record, done, total):
        if not args.quiet:
            print(
                f"[{done}/{total}] {record.kind} "
                f"{record.params.get('topology')} "
                f"{record.params.get('algorithm')} seed={record.seed}",
                file=sys.stderr,
            )

    result = run_shards(
        sweep.shards(),
        jobs=args.jobs,
        out_path=args.out,
        resume=not args.fresh,
        include_meta=not args.no_meta,
        progress=progress,
    )
    print(
        f"shards: {result.total} "
        f"(executed {result.executed}, resumed {result.resumed})"
    )
    for line_ in aggregate_sim(result.records).lines():
        print(line_)
    if result.path is not None:
        print(f"records: {result.path}")
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    from .analysis import SuiteConfig, run_suite, to_markdown

    config = SuiteConfig(quick=not args.full, seed=args.seed)
    result = run_suite(config, jobs=args.jobs, records_path=args.records)
    markdown = to_markdown(result)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(markdown)
        print(f"wrote {args.output}")
    else:
        print(markdown)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Dining philosophers that tolerate malicious crashes "
        "(Nesterenko & Arora, ICDCS 2002) — reproduction toolkit.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p, steps_default=20_000):
        p.add_argument("--topology", default="ring:8", help="e.g. ring:8, line:12, grid:4:3")
        p.add_argument("--algorithm", default="na-diners", choices=sorted(ALGORITHMS))
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--steps", type=int, default=steps_default)

    p = sub.add_parser("run", help="simulate and report meals + invariant")
    common(p)
    p.set_defaults(fn=cmd_run)

    p = sub.add_parser("locality", help="crash a victim while eating; measure radius")
    common(p, steps_default=40_000)
    p.add_argument("--victim", type=int, default=0, help="index into topology nodes")
    p.add_argument("--malicious", type=int, default=0, help="havoc steps (0 = benign)")
    p.set_defaults(fn=cmd_locality)

    p = sub.add_parser("stabilize", help="corrupt the state and time recovery")
    common(p)
    p.add_argument("--plant-cycle", action="store_true")
    p.add_argument("--nc-only", action="store_true", help="wait for NC instead of full I")
    p.add_argument("--corrected-threshold", action="store_true",
                   help="use longest-simple-path instead of the diameter")
    p.add_argument("--max-steps", type=int, default=500_000)
    p.set_defaults(fn=cmd_stabilize)

    p = sub.add_parser("figure2", help="replay the paper's Figure 2")
    p.set_defaults(fn=cmd_figure2)

    p = sub.add_parser("check", help="model-check a small instance exhaustively")
    p.add_argument("--topology", default="line:3")
    p.add_argument("--corrected-threshold", action="store_true")
    p.add_argument("--jobs", type=int, default=1,
                   help="worker processes; >1 shards the state space")
    p.set_defaults(fn=cmd_check)

    p = sub.add_parser(
        "sweep",
        help="many-seed randomized campaign with checkpoint/resume",
        description="Shard (topology, algorithm, fault-plan, seed) trials "
        "across a worker pool, stream JSONL records, and aggregate. "
        "Re-running against an existing --out file skips recorded shards.",
    )
    p.add_argument("--topology", action="append", default=None,
                   help="topology spec; repeatable (default ring:8)")
    p.add_argument("--algorithm", action="append", default=None,
                   choices=sorted(ALGORITHMS),
                   help="algorithm; repeatable (default na-diners)")
    p.add_argument("--trials", type=int, default=8,
                   help="independent seeds per (topology, algorithm) point")
    p.add_argument("--steps", type=int, default=5_000)
    p.add_argument("--seed", type=int, default=0, help="campaign base seed")
    p.add_argument("--jobs", type=int, default=1, help="worker processes")
    p.add_argument("--out", default=None,
                   help="JSONL record/checkpoint file (enables resume)")
    p.add_argument("--fresh", action="store_true",
                   help="ignore existing records in --out and re-run everything")
    p.add_argument("--no-meta", action="store_true",
                   help="omit worker/timing metadata (byte-reproducible records)")
    p.add_argument("--crash-victim", type=int, default=None, dest="crash_victim",
                   help="node index to crash in every trial")
    p.add_argument("--crash-at", type=int, default=0, dest="crash_at",
                   help="engine step of the crash")
    p.add_argument("--malicious", type=int, default=0,
                   help="arbitrary steps before halting (0 = benign crash)")
    p.add_argument("--quiet", action="store_true", help="no per-shard progress")
    p.set_defaults(fn=cmd_sweep)

    p = sub.add_parser("report", help="run the experiment suite, emit markdown")
    p.add_argument("--full", action="store_true")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--jobs", type=int, default=1, help="worker processes")
    p.add_argument("--records", default=None,
                   help="JSONL checkpoint file for the suite's campaign")
    p.add_argument("--output", default=None, help="write to a file instead of stdout")
    p.set_defaults(fn=cmd_report)

    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except BrokenPipeError:
        # downstream pager/head closed the pipe; exit quietly like other
        # unix tools (redirect stdout so the interpreter's exit flush
        # does not raise a second time)
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
