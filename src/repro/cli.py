"""Command-line interface: run the paper's scenarios without writing code.

Subcommands
-----------

``run``        simulate an algorithm on a topology, report meals/safety
``locality``   crash a process while it eats; report the starvation radius
``stabilize``  corrupt the state (optionally plant a cycle); time recovery
``figure2``    replay the paper's Figure 2, panel by panel
``check``      model-check closure + convergence on a small instance

Examples
--------

::

    python -m repro run --topology ring:10 --algorithm na-diners --steps 20000
    python -m repro locality --topology line:12 --algorithm hygienic --victim 0
    python -m repro stabilize --topology ring:8 --plant-cycle
    python -m repro figure2
    python -m repro check --topology line:3
"""

from __future__ import annotations

import argparse
import random
import sys
from typing import Callable, Dict

from .analysis import (
    find_live_cycles,
    measure_failure_locality,
    plant_priority_cycle,
    steps_to_predicate,
)
from .baselines import ChoySinghDiners, ForkOrderingDiners, HygienicDiners
from .core import (
    NADiners,
    NoDynamicThresholdDiners,
    NoFixdepthDiners,
    invariant_report,
    invariant_with_threshold,
    nc_holds,
    red_set,
    run_figure2,
)
from .sim import (
    AlwaysHungry,
    Engine,
    System,
    Topology,
    binary_tree,
    complete,
    grid,
    line,
    random_connected,
    ring,
    star,
)

ALGORITHMS: Dict[str, Callable[[], object]] = {
    "na-diners": NADiners,
    "choy-singh": ChoySinghDiners,
    "hygienic": HygienicDiners,
    "fork-ordering": ForkOrderingDiners,
    "no-fixdepth": NoFixdepthDiners,
    "no-threshold": NoDynamicThresholdDiners,
}


def parse_topology(spec: str) -> Topology:
    """Parse ``kind:arg[:arg]`` specs like ``ring:8`` or ``grid:4:3``."""
    kind, _, rest = spec.partition(":")
    args = [int(x) for x in rest.split(":") if x] if rest else []
    builders: Dict[str, Callable[..., Topology]] = {
        "ring": ring,
        "line": line,
        "star": star,
        "complete": complete,
        "grid": grid,
        "tree": binary_tree,
        "random": lambda n, seed=0: random_connected(n, 0.15, seed=seed),
    }
    if kind not in builders:
        raise SystemExit(f"unknown topology kind {kind!r}; one of {sorted(builders)}")
    try:
        return builders[kind](*args)
    except TypeError as exc:
        raise SystemExit(f"bad arguments for {kind}: {exc}") from None


def make_algorithm(name: str):
    try:
        return ALGORITHMS[name]()
    except KeyError:
        raise SystemExit(f"unknown algorithm {name!r}; one of {sorted(ALGORITHMS)}")


def cmd_run(args: argparse.Namespace) -> int:
    topology = parse_topology(args.topology)
    system = System(topology, make_algorithm(args.algorithm))
    engine = Engine(system, hunger=AlwaysHungry(), seed=args.seed)
    result = engine.run(args.steps)
    print(f"{topology} / {system.algorithm.name}: ran {result.steps} steps")
    for pid in topology.nodes:
        print(f"  {pid}: {engine.eats_of(pid)} meals")
    final = system.snapshot()
    variables = set(system.local_variable_names())
    if "depth" in variables:
        # NADiners family: the full invariant applies.
        print(f"invariant: {invariant_report(final)}")
    else:
        # Other diners: only the eating-exclusion conjunct is meaningful
        # (fork-ordering's edge cells are forks, not priorities).
        from .core import e_holds

        print(f"no neighbours eating together: {e_holds(final)}")
    return 0


def cmd_locality(args: argparse.Namespace) -> int:
    topology = parse_topology(args.topology)
    victim = topology.nodes[args.victim]
    report = measure_failure_locality(
        make_algorithm(args.algorithm),
        topology,
        [victim],
        malicious_steps=args.malicious or None,
        warmup_steps=args.steps,
        settle_steps=args.steps // 3,
        window=args.steps,
        seed=args.seed,
    )
    kind = f"malicious({args.malicious})" if args.malicious else "benign"
    print(f"{topology} / {report.algorithm}: {kind} crash of {victim!r} while eating")
    print(f"  starving: {sorted(report.starving)}")
    print(f"  starvation radius: {report.starvation_radius}")
    for d, (count, total) in report.eats_by_distance(topology).items():
        print(f"  distance {d}: {count} processes, {total} meals")
    return 0


def cmd_stabilize(args: argparse.Namespace) -> int:
    topology = parse_topology(args.topology)
    system = System(topology, make_algorithm(args.algorithm))
    system.randomize(random.Random(args.seed))
    if args.plant_cycle:
        from .analysis.stabilization import _find_cycle

        cycle = _find_cycle(topology)
        if cycle is None:
            print("topology has no cycle to plant; corruption only")
        else:
            plant_priority_cycle(system, cycle)
            print(f"planted priority cycle: {cycle}")
    if args.nc_only:
        predicate = nc_holds
    elif args.corrected_threshold:
        predicate = invariant_with_threshold(topology.longest_simple_path())
    else:
        from .core import invariant_holds

        predicate = invariant_holds
    result = steps_to_predicate(
        system, predicate, max_steps=args.max_steps, seed=args.seed
    )
    if result.converged:
        print(f"converged after {result.steps} steps")
        print(f"live cycles now: {find_live_cycles(system.snapshot()) or 'none'}")
        return 0
    print(f"did NOT converge within {args.max_steps} steps")
    return 1


def cmd_figure2(args: argparse.Namespace) -> int:
    replay = run_figure2()
    topo = replay.initial.topology
    for i, config in enumerate(replay.configurations, start=1):
        print(f"panel {i}:")
        states = ", ".join(
            f"{p}={config.local(p, 'state')}" for p in topo.nodes
        )
        print(f"  {states}")
        print(f"  red: {sorted(red_set(config))}")
        print(f"  live cycles: {find_live_cycles(config) or 'none'}")
    print(f"transitions replayed: {replay.executed}")
    return 0


def cmd_check(args: argparse.Namespace) -> int:
    from .verification import (
        TransitionSystem,
        check_closure,
        check_convergence,
        enumerate_configurations,
    )

    topology = parse_topology(args.topology)
    threshold = (
        topology.longest_simple_path()
        if args.corrected_threshold
        else topology.diameter
    )
    algo = NADiners(depth_cap=threshold + 1, diameter_override=threshold)
    predicate = invariant_with_threshold(threshold)
    configs = list(
        enumerate_configurations(algo, topology, fixed_locals={"needs": True})
    )
    print(f"{topology}, threshold={threshold}: {len(configs)} states")
    ts = TransitionSystem(algo, topology)
    closure = check_closure(ts, predicate, configs)
    print(f"I closed: {closure.holds} ({closure.checked_states} legit states)")
    convergence = check_convergence(ts, predicate, configs)
    print(
        f"converges: {convergence.converges} "
        f"({convergence.scc_count} SCCs, {convergence.legit_states} legit states)"
    )
    return 0 if closure.holds and convergence.converges else 1


def cmd_report(args: argparse.Namespace) -> int:
    from .analysis import SuiteConfig, run_suite, to_markdown

    config = SuiteConfig(quick=not args.full, seed=args.seed)
    result = run_suite(config)
    markdown = to_markdown(result)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(markdown)
        print(f"wrote {args.output}")
    else:
        print(markdown)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Dining philosophers that tolerate malicious crashes "
        "(Nesterenko & Arora, ICDCS 2002) — reproduction toolkit.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p, steps_default=20_000):
        p.add_argument("--topology", default="ring:8", help="e.g. ring:8, line:12, grid:4:3")
        p.add_argument("--algorithm", default="na-diners", choices=sorted(ALGORITHMS))
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--steps", type=int, default=steps_default)

    p = sub.add_parser("run", help="simulate and report meals + invariant")
    common(p)
    p.set_defaults(fn=cmd_run)

    p = sub.add_parser("locality", help="crash a victim while eating; measure radius")
    common(p, steps_default=40_000)
    p.add_argument("--victim", type=int, default=0, help="index into topology nodes")
    p.add_argument("--malicious", type=int, default=0, help="havoc steps (0 = benign)")
    p.set_defaults(fn=cmd_locality)

    p = sub.add_parser("stabilize", help="corrupt the state and time recovery")
    common(p)
    p.add_argument("--plant-cycle", action="store_true")
    p.add_argument("--nc-only", action="store_true", help="wait for NC instead of full I")
    p.add_argument("--corrected-threshold", action="store_true",
                   help="use longest-simple-path instead of the diameter")
    p.add_argument("--max-steps", type=int, default=500_000)
    p.set_defaults(fn=cmd_stabilize)

    p = sub.add_parser("figure2", help="replay the paper's Figure 2")
    p.set_defaults(fn=cmd_figure2)

    p = sub.add_parser("check", help="model-check a small instance exhaustively")
    p.add_argument("--topology", default="line:3")
    p.add_argument("--corrected-threshold", action="store_true")
    p.set_defaults(fn=cmd_check)

    p = sub.add_parser("report", help="run the experiment suite, emit markdown")
    p.add_argument("--full", action="store_true")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--output", default=None, help="write to a file instead of stdout")
    p.set_defaults(fn=cmd_report)

    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
