"""Failure-locality measurement (experiments E2 and E6).

Failure locality *m* (Choy & Singh, the paper's §1) means: every process
affected by a crash lies within distance *m* of some crashed process.  For
diners, "affected" operationally means *starving* — the process continuously
wants to eat after the crash, yet never eats again.

:func:`measure_failure_locality` runs the canonical worst-case scenario:

1. every process is continuously hungry;
2. the run warms up until each victim is **eating** (a crashed eater is the
   strongest blocker: its neighbours can never satisfy their ``enter``
   guards again), then the victim crashes — benignly or maliciously;
3. after a settling period, eats are counted over a long observation window;
   a live process with zero eats in the window is starving.

The report's :attr:`~LocalityReport.starvation_radius` is the maximum, over
starving processes, of the distance to the nearest crash site.  The paper's
claim (Theorem 2, optimal locality): for its program the radius never
exceeds 2, on any topology, while the chain-prone baselines grow with the
topology.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, Mapping, Optional, Sequence, Tuple

from ..core.state import VAR_STATE, DinerState
from ..sim.engine import Engine
from ..sim.errors import SimulationError
from ..sim.faults import BenignCrash, MaliciousCrash
from ..sim.hunger import AlwaysHungry
from ..sim.network import System
from ..sim.process import Algorithm
from ..sim.scheduler import Daemon, WeaklyFairDaemon
from ..sim.topology import Pid, Topology
from ..sim.trace import TraceRecorder


@dataclass(frozen=True)
class LocalityReport:
    """Outcome of one failure-locality scenario."""

    algorithm: str
    topology_size: int
    crash_sites: Tuple[Pid, ...]
    #: Live processes with zero eats in the observation window.
    starving: FrozenSet[Pid]
    #: max over starving processes of distance to the nearest crash site;
    #: None when nothing starves.
    starvation_radius: Optional[int]
    #: eats in the observation window per live process.
    eats: Mapping[Pid, int]
    #: observation window length in engine steps.
    window: int

    def eats_by_distance(self, topology: Topology) -> Dict[int, Tuple[int, int]]:
        """``distance -> (number of live processes, total eats)`` grouping."""
        grouped: Dict[int, Tuple[int, int]] = {}
        for pid, count in self.eats.items():
            d = min(topology.distance(pid, c) for c in self.crash_sites)
            n, total = grouped.get(d, (0, 0))
            grouped[d] = (n + 1, total + count)
        return dict(sorted(grouped.items()))

    def all_beyond_radius_eat(self, topology: Topology, radius: int = 2) -> bool:
        """True when every live process strictly beyond ``radius`` ate."""
        for pid, count in self.eats.items():
            d = min(topology.distance(pid, c) for c in self.crash_sites)
            if d > radius and count == 0:
                return False
        return True


def run_until_eating(engine: Engine, pid: Pid, max_steps: int) -> None:
    """Advance ``engine`` until ``pid`` is eating.

    Raises :class:`SimulationError` if that does not happen within
    ``max_steps`` — liveness itself would then be broken.
    """
    for _ in range(max_steps):
        if engine.system.read_local(pid, VAR_STATE) == DinerState.EATING.value:
            return
        if not engine.step():
            break
    if engine.system.read_local(pid, VAR_STATE) != DinerState.EATING.value:
        raise SimulationError(
            f"{pid!r} did not reach the eating state within {max_steps} steps"
        )


def measure_failure_locality(
    algorithm: Algorithm,
    topology: Topology,
    victims: Sequence[Pid],
    *,
    malicious_steps: int | None = None,
    crash_while_eating: bool = True,
    warmup_steps: int = 20_000,
    settle_steps: int = 5_000,
    window: int = 40_000,
    seed: int = 0,
    daemon_factory: Callable[[], Daemon] | None = None,
    recorder: "TraceRecorder | None" = None,
) -> LocalityReport:
    """Run the worst-case crash scenario and report who starves.

    Parameters
    ----------
    algorithm:
        Any diners algorithm built on this repository's conventions.
    victims:
        Processes to crash (one at a time, each while eating when
        ``crash_while_eating``).
    malicious_steps:
        ``None`` crashes benignly; an integer crashes maliciously with that
        many arbitrary steps before halting.
    warmup_steps / settle_steps / window:
        Budget to reach the eating state per victim; steps allowed for the
        system to settle after the crashes; and the observation window over
        which eats are counted.
    """
    system = System(topology, algorithm)
    daemon = daemon_factory() if daemon_factory is not None else WeaklyFairDaemon()
    engine = Engine(
        system, daemon, hunger=AlwaysHungry(), recorder=recorder, seed=seed
    )

    for victim in victims:
        if crash_while_eating:
            run_until_eating(engine, victim, warmup_steps)
        if malicious_steps is None:
            engine.inject(BenignCrash(victim))
        else:
            engine.inject(MaliciousCrash(victim, malicious_steps=malicious_steps))

    engine.run(settle_steps)
    baseline = dict(engine.action_counts)
    engine.run(window)

    enter = algorithm.enter_action
    eats: Dict[Pid, int] = {}
    for pid in topology.nodes:
        if not system.is_live(pid):
            continue
        key = (pid, enter)
        eats[pid] = engine.action_counts.get(key, 0) - baseline.get(key, 0)

    starving = frozenset(pid for pid, count in eats.items() if count == 0)
    radius: Optional[int] = None
    if starving:
        radius = max(
            min(topology.distance(pid, c) for c in victims) for pid in starving
        )
    return LocalityReport(
        algorithm=algorithm.name,
        topology_size=len(topology),
        crash_sites=tuple(victims),
        starving=starving,
        starvation_radius=radius,
        eats=eats,
        window=window,
    )


def frozen_chain_scenario(
    algorithm: Algorithm,
    topology: Topology,
    head: Pid | None = None,
) -> System:
    """The Choy–Singh worst case, constructed directly.

    The head of the node order crashes while eating and *every* other
    process is already hungry, with the priority chain (the node-order
    initial orientation) pointing away from the crash.  Every process's
    ``enter`` is blocked by a hungry ancestor, so without the dynamic
    threshold the whole chain freezes; with it, only the 2-ball around the
    crash stays affected.  Random warmup rarely aligns hunger and priorities
    like this, which is why the worst-case claim needs the construction.

    Returns a ready-to-run system (pair with ``Engine`` + ``AlwaysHungry``).
    """
    system = System(topology, algorithm)
    head = topology.nodes[0] if head is None else head
    system.write_local(head, "state", DinerState.EATING.value)
    system.kill(head)
    for p in topology.nodes:
        if p == head:
            continue
        system.write_local(p, "state", DinerState.HUNGRY.value)
        system.write_local(p, "needs", True)
    return system


def frozen_chain_radius(
    algorithm: Algorithm,
    topology: Topology,
    *,
    window: int = 40_000,
    seed: int = 0,
) -> int:
    """Starvation radius of :func:`frozen_chain_scenario` after ``window``
    steps (0 when nothing starves)."""
    system = frozen_chain_scenario(algorithm, topology)
    head = topology.nodes[0]
    engine = Engine(system, WeaklyFairDaemon(), hunger=AlwaysHungry(), seed=seed)
    engine.run(window)
    starving = [
        p
        for p in topology.nodes
        if system.is_live(p) and engine.eats_of(p) == 0
    ]
    return max((topology.distance(head, p) for p in starving), default=0)


def locality_sweep(
    algorithms: Sequence[Algorithm],
    topology_factory: Callable[[int], Topology],
    sizes: Sequence[int],
    *,
    victim: Callable[[Topology], Pid] = lambda t: t.nodes[0],
    seed: int = 0,
    **kwargs,
) -> Dict[Tuple[str, int], LocalityReport]:
    """Cross product of algorithms × system sizes (one benign crash each).

    Returns ``{(algorithm name, size): report}``.  Keyword arguments are
    forwarded to :func:`measure_failure_locality`.
    """
    results: Dict[Tuple[str, int], LocalityReport] = {}
    for size in sizes:
        topology = topology_factory(size)
        for algorithm in algorithms:
            report = measure_failure_locality(
                algorithm, topology, [victim(topology)], seed=seed, **kwargs
            )
            results[(algorithm.name, size)] = report
    return results
