"""Measurement suite backing experiments E2–E6, E8, E10 and the report
generator: failure locality (including the frozen-chain worst case),
stabilization time in steps and asynchronous rounds, throughput and
fairness, the masking census, priority-graph analytics, ASCII rendering,
and the one-call experiment suite (`run_suite`/`to_markdown`)."""

from .locality import (
    LocalityReport,
    frozen_chain_radius,
    frozen_chain_scenario,
    locality_sweep,
    measure_failure_locality,
    run_until_eating,
)
from .masking import (
    MaskingReport,
    classify_violations,
    masking_probe,
    masking_sweep,
)
from .metrics import (
    StepMonitor,
    ThroughputReport,
    eating_pairs_count,
    live_eating_pairs_count,
    run_monitored,
    throughput_report,
)
from .render import STATE_GLYPHS, render_configuration, render_strip
from .priority_graph import (
    PriorityGraphStats,
    depth_errors,
    find_live_cycles,
    graph_stats,
    longest_live_chain,
    to_networkx,
)
from .suite import (
    Section,
    SectionSpec,
    SuiteConfig,
    SuiteResult,
    run_suite,
    suite_metrics,
    suite_specs,
    to_markdown,
)
from .stabilization import (
    ConvergenceResult,
    ConvergenceSummary,
    convergence_study,
    plant_priority_cycle,
    rounds_to_predicate,
    steps_to_predicate,
)

__all__ = [
    "LocalityReport",
    "frozen_chain_radius",
    "frozen_chain_scenario",
    "MaskingReport",
    "classify_violations",
    "masking_probe",
    "masking_sweep",
    "locality_sweep",
    "measure_failure_locality",
    "run_until_eating",
    "StepMonitor",
    "ThroughputReport",
    "eating_pairs_count",
    "live_eating_pairs_count",
    "run_monitored",
    "throughput_report",
    "STATE_GLYPHS",
    "render_configuration",
    "render_strip",
    "PriorityGraphStats",
    "depth_errors",
    "find_live_cycles",
    "graph_stats",
    "longest_live_chain",
    "to_networkx",
    "Section",
    "SectionSpec",
    "SuiteConfig",
    "SuiteResult",
    "run_suite",
    "suite_metrics",
    "suite_specs",
    "to_markdown",
    "ConvergenceResult",
    "ConvergenceSummary",
    "convergence_study",
    "plant_priority_cycle",
    "rounds_to_predicate",
    "steps_to_predicate",
]
