"""Masking analysis — probing the paper's concluding open problem.

The paper distinguishes its guarantee ("eventual correctness outside the
failure locality") from the stronger *masking* tolerance it leaves to future
work: a masking program "always operates correctly outside of failure
locality **during** the crash".

This module quantifies exactly how non-masking the paper's program is.
During a malicious crash the faulty process can set its own ``state`` to
``E`` while a neighbour eats, so safety violations involving the faulty
process are possible *during* the arbitrary phase.  But the enter guard is
local: a live process only starts eating when every neighbour it must watch
is not eating, so a violation between two **live non-faulty** processes can
never be manufactured remotely — which is itself a masking-flavoured
property worth measuring.

:func:`masking_probe` runs a malicious-crash scenario while classifying
every sampled violation as *faulty-involved* (includes the malicious/dead
process) or *clean-pair* (two live non-faulty processes).  The paper's
program should show zero clean-pair violations ever, and faulty-involved
violations only during/immediately after the arbitrary phase.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..core.predicates import eating_pairs
from ..sim.configuration import Configuration
from ..sim.engine import Engine
from ..sim.faults import MaliciousCrash
from ..sim.hunger import AlwaysHungry
from ..sim.network import System
from ..sim.process import Algorithm
from ..sim.topology import Pid, Topology


@dataclass(frozen=True)
class MaskingReport:
    """Violation census of one malicious-crash run."""

    victim: Pid
    malicious_steps: int
    sampled_states: int
    #: sampled states with a violating pair that includes the faulty process.
    faulty_involved: int
    #: sampled states with a violating pair of two live non-faulty processes.
    clean_pair: int
    #: last sampled step index at which any violation was observed (-1: none).
    last_violation_step: int

    @property
    def masks_clean_pairs(self) -> bool:
        """True when no two healthy processes ever violated safety."""
        return self.clean_pair == 0

    @property
    def violations_transient(self) -> bool:
        """True when every observed violation cleared before the run's end."""
        return self.last_violation_step < self.sampled_states - 1


def classify_violations(config: Configuration) -> Tuple[int, int]:
    """(faulty-involved, clean-pair) violating-pair counts in one state."""
    faulty = config.faulty
    involved = clean = 0
    for pair in eating_pairs(config):
        if all(p in faulty for p in pair):
            continue  # both dead: frozen garbage, not an active violation
        if faulty & pair:
            involved += 1
        else:
            clean += 1
    return involved, clean


def masking_probe(
    algorithm: Algorithm,
    topology: Topology,
    victim: Pid,
    *,
    malicious_steps: int = 20,
    warmup: int = 2_000,
    observe: int = 30_000,
    sample_every: int = 1,
    seed: int = 0,
) -> MaskingReport:
    """Crash ``victim`` maliciously mid-run and census the violations."""
    system = System(topology, algorithm)
    engine = Engine(system, hunger=AlwaysHungry(), seed=seed)
    engine.run(warmup)
    engine.inject(MaliciousCrash(victim, malicious_steps=malicious_steps))

    sampled = faulty_involved = clean_pair = 0
    last_violation = -1
    for _ in range(observe):
        if not engine.step():
            break
        if engine.step_count % sample_every:
            continue
        involved, clean = classify_violations(system.snapshot())
        if involved:
            faulty_involved += 1
        if clean:
            clean_pair += 1
        if involved or clean:
            last_violation = sampled
        sampled += 1
    return MaskingReport(
        victim=victim,
        malicious_steps=malicious_steps,
        sampled_states=sampled,
        faulty_involved=faulty_involved,
        clean_pair=clean_pair,
        last_violation_step=last_violation,
    )


def masking_sweep(
    algorithm_factory,
    topology: Topology,
    victim: Pid,
    malice_budgets: List[int],
    *,
    seeds: range = range(5),
    **kwargs,
) -> List[MaskingReport]:
    """One probe per (budget, seed); reports in budget-major order."""
    reports = []
    for budget in malice_budgets:
        for seed in seeds:
            reports.append(
                masking_probe(
                    algorithm_factory(),
                    topology,
                    victim,
                    malicious_steps=budget,
                    seed=seed,
                    **kwargs,
                )
            )
    return reports
