"""Stabilization measurement (experiment E3).

Theorem 1: the paper's program converges from an *arbitrary* state to the
invariant ``I = NC ∧ ST ∧ E``.  The functions here quantify that claim:

* :func:`steps_to_predicate` — drive one system until a predicate holds and
  report how many steps it took;
* :func:`convergence_study` — repeat from many random arbitrary states
  (optionally with adversarially planted priority cycles) and summarise the
  distribution of convergence times;
* :func:`plant_priority_cycle` — construct the worst-case transient
  perturbation the program must recover from: a directed cycle in the
  priority graph plus corrupted depth values.
"""

from __future__ import annotations

import math
import random
import statistics
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from ..core.predicates import invariant_holds
from ..core.state import VAR_DEPTH
from ..sim.configuration import Configuration
from ..sim.engine import Engine
from ..sim.hunger import AlwaysHungry, HungerPolicy
from ..sim.network import System
from ..sim.process import Algorithm
from ..sim.scheduler import Daemon, WeaklyFairDaemon
from ..sim.topology import Pid, Topology, edge
from ..sim.trace import TraceRecorder

Predicate = Callable[[Configuration], bool]


@dataclass(frozen=True)
class ConvergenceResult:
    """One convergence attempt."""

    converged: bool
    steps: Optional[int]  #: steps until the predicate held (None if never)


@dataclass(frozen=True)
class ConvergenceSummary:
    """Aggregate over many convergence attempts from random states."""

    trials: int
    converged: int
    steps: Tuple[int, ...]  #: per-trial convergence steps (converged only)

    @property
    def all_converged(self) -> bool:
        return self.converged == self.trials

    @property
    def mean_steps(self) -> float:
        return statistics.fmean(self.steps) if self.steps else math.nan

    @property
    def max_steps(self) -> int:
        return max(self.steps) if self.steps else 0

    @property
    def median_steps(self) -> float:
        return statistics.median(self.steps) if self.steps else math.nan


def steps_to_predicate(
    system: System,
    predicate: Predicate = invariant_holds,
    *,
    max_steps: int = 100_000,
    seed: int = 0,
    daemon: Daemon | None = None,
    hunger: HungerPolicy | None = None,
    check_every: int = 1,
    recorder: "TraceRecorder | None" = None,
) -> ConvergenceResult:
    """Run ``system`` until ``predicate`` holds on a snapshot."""
    engine = Engine(
        system,
        daemon if daemon is not None else WeaklyFairDaemon(),
        hunger=hunger if hunger is not None else AlwaysHungry(),
        recorder=recorder,
        seed=seed,
    )
    result = engine.run(max_steps, stop_when=predicate, check_every=check_every)
    if result.stopped:
        return ConvergenceResult(converged=True, steps=result.steps)
    if result.quiescent and predicate(result.final):
        return ConvergenceResult(converged=True, steps=result.steps)
    return ConvergenceResult(converged=False, steps=None)


def rounds_to_predicate(
    system: System,
    predicate: Predicate = invariant_holds,
    *,
    max_steps: int = 500_000,
    seed: int = 0,
    hunger: HungerPolicy | None = None,
) -> Optional[int]:
    """Asynchronous rounds until ``predicate`` holds (None if never).

    Runs under a :class:`~repro.sim.scheduler.RoundDaemon`; rounds are the
    stabilization literature's time unit — within a round every
    continuously enabled action executes at least once — so results are
    directly comparable to "converges in O(D) rounds"-style statements.
    """
    from ..sim.scheduler import RoundDaemon

    daemon = RoundDaemon()
    result = steps_to_predicate(
        system,
        predicate,
        max_steps=max_steps,
        seed=seed,
        daemon=daemon,
        hunger=hunger,
    )
    if not result.converged:
        return None
    return daemon.rounds_completed


def plant_priority_cycle(
    system: System,
    cycle: Sequence[Pid],
    *,
    corrupt_depths: bool = True,
) -> None:
    """Install a directed priority cycle along ``cycle`` (must be a closed
    walk of neighbours) and optionally zero the cycle's depth values — the
    slowest-to-detect corruption, since depth must climb past ``D`` hop by
    hop before ``exit`` can break the cycle.
    """
    n = len(cycle)
    if n < 3:
        raise ValueError("a priority cycle needs at least 3 processes")
    for i, p in enumerate(cycle):
        q = cycle[(i + 1) % n]
        if not system.topology.are_neighbors(p, q):
            raise ValueError(f"{p!r} and {q!r} are not neighbours")
        # p is the ancestor of q along the cycle: store p in the edge cell.
        system.write_edge(edge(p, q), p)
    if corrupt_depths:
        for p in cycle:
            system.write_local(p, VAR_DEPTH, 0)


def convergence_study(
    algorithm_factory: Callable[[], Algorithm],
    topology: Topology,
    *,
    trials: int = 20,
    max_steps: int = 200_000,
    seed: int = 0,
    plant_cycle: bool = False,
    predicate: Predicate = invariant_holds,
    check_every: int = 4,
) -> ConvergenceSummary:
    """Convergence times from ``trials`` random arbitrary initial states.

    Each trial randomizes the full system state (the paper's transient
    fault).  With ``plant_cycle=True`` a directed priority cycle around a
    shortest ring of the topology is additionally installed when one exists,
    forcing the depth-propagation machinery to do real work.
    """
    results: List[ConvergenceResult] = []
    for trial in range(trials):
        rng = random.Random(seed * 10_007 + trial)
        system = System(topology, algorithm_factory())
        system.randomize(rng)
        if plant_cycle:
            cycle = _find_cycle(topology)
            if cycle is not None:
                plant_priority_cycle(system, cycle)
        results.append(
            steps_to_predicate(
                system,
                predicate,
                max_steps=max_steps,
                seed=rng.randrange(2**31),
                check_every=check_every,
            )
        )
    converged = [r for r in results if r.converged]
    return ConvergenceSummary(
        trials=trials,
        converged=len(converged),
        steps=tuple(r.steps for r in converged if r.steps is not None),
    )


def _find_cycle(topology: Topology) -> Optional[Tuple[Pid, ...]]:
    """Some simple cycle of the topology (shortest through node 0's edges),
    or None for trees."""
    # BFS from each neighbour pair of a node to find a short cycle.
    for start in topology.nodes:
        parents = {start: None}
        queue = [start]
        while queue:
            node = queue.pop(0)
            for nxt in topology.neighbors(node):
                if nxt not in parents:
                    parents[nxt] = node
                    queue.append(nxt)
                elif parents[node] != nxt and parents.get(nxt) is not node:
                    # Found a non-tree edge: build the cycle through it.
                    path_a = _path_to_root(parents, node)
                    path_b = _path_to_root(parents, nxt)
                    common = set(path_a) & set(path_b)
                    cut_a = next(i for i, p in enumerate(path_a) if p in common)
                    meet = path_a[cut_a]
                    cut_b = path_b.index(meet)
                    cycle = path_a[:cut_a + 1] + list(reversed(path_b[:cut_b]))
                    if len(cycle) >= 3:
                        return tuple(cycle)
        break  # one start suffices: the graph is connected
    return None


def _path_to_root(parents: dict, node: Pid) -> List[Pid]:
    path = [node]
    while parents[path[-1]] is not None:
        path.append(parents[path[-1]])
    return path
