"""One-call experiment suite with a markdown report.

``run_suite`` executes a configurable-size subset of the repository's
experiments (locality contrast, stabilization, safety decay, throughput and
fairness, malicious-crash recovery, masking census) against the paper's
program and the baselines, and returns a structured result that
``to_markdown`` renders into a self-contained report — the programmatic
counterpart of the ``benchmarks/`` suite for users who want numbers inside
their own pipelines.

>>> from repro.analysis.suite import SuiteConfig, run_suite, to_markdown
>>> result = run_suite(SuiteConfig(quick=True))     # doctest: +SKIP
>>> print(to_markdown(result))                      # doctest: +SKIP
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from ..baselines import ChoySinghDiners, ForkOrderingDiners, HygienicDiners
from ..core import NADiners, invariant_holds
from ..sim import AlwaysHungry, Engine, MaliciousCrash, System, line, ring
from .locality import measure_failure_locality
from .masking import masking_probe
from .metrics import throughput_report
from .stabilization import convergence_study


@dataclass(frozen=True)
class SuiteConfig:
    """Knobs for :func:`run_suite`.

    ``quick`` trades precision for wall-clock: smaller systems, shorter
    windows, fewer seeds.  Either mode asserts nothing — the suite reports;
    the benchmark targets enforce.
    """

    quick: bool = True
    seed: int = 0

    @property
    def line_n(self) -> int:
        return 8 if self.quick else 14

    @property
    def window(self) -> int:
        return 20_000 if self.quick else 60_000

    @property
    def trials(self) -> int:
        return 5 if self.quick else 15


@dataclass
class Section:
    """One report section: a titled table plus a one-paragraph reading."""

    title: str
    header: Tuple[str, ...]
    rows: List[Tuple] = field(default_factory=list)
    commentary: str = ""


@dataclass
class SuiteResult:
    config: SuiteConfig
    sections: List[Section] = field(default_factory=list)


def _locality_section(config: SuiteConfig) -> Section:
    topology = line(config.line_n)
    section = Section(
        title="Failure locality (benign crash of an eating process)",
        header=("algorithm", "starvation radius", "starving processes"),
        commentary=(
            "The paper's program and the Choy–Singh baseline contain the "
            "crash within distance 2; hygienic's blocked chain covers the "
            "whole line."
        ),
    )
    for algorithm in (NADiners(), ChoySinghDiners(), HygienicDiners()):
        report = measure_failure_locality(
            algorithm,
            topology,
            [0],
            warmup_steps=2 * config.window,
            settle_steps=config.window // 2,
            window=config.window,
            seed=config.seed,
        )
        section.rows.append(
            (
                algorithm.name,
                report.starvation_radius if report.starvation_radius is not None else 0,
                ",".join(str(p) for p in sorted(report.starving)) or "-",
            )
        )
    return section


def _stabilization_section(config: SuiteConfig) -> Section:
    section = Section(
        title="Stabilization from random corruption",
        header=("topology", "converged", "mean steps", "max steps"),
        commentary=(
            "Theorem 1: every trial converges to the invariant I from a "
            "fully randomized state."
        ),
    )
    for name, topology in (("line", line(config.line_n)), ("ring", ring(config.line_n))):
        if name == "ring":
            # literal-threshold I may be unsatisfiable on rings (see
            # DESIGN.md 4a); measure NC restoration instead.
            from ..core import nc_holds as predicate
        else:
            predicate = invariant_holds
        summary = convergence_study(
            NADiners,
            topology,
            trials=config.trials,
            max_steps=500_000,
            seed=config.seed,
            predicate=predicate,
        )
        section.rows.append(
            (
                f"{name}({config.line_n})",
                f"{summary.converged}/{summary.trials}",
                f"{summary.mean_steps:.0f}",
                summary.max_steps,
            )
        )
    return section


def _throughput_section(config: SuiteConfig) -> Section:
    section = Section(
        title="Fault-free throughput and fairness",
        header=("algorithm", "meals/1k steps", "jain index", "min meals"),
        commentary=(
            "Liveness: everyone eats under every algorithm.  The paper's "
            "program pays a measurable premium over hygienic for its two "
            "tolerances; static fork ordering is positionally unfair."
        ),
    )
    for factory in (NADiners, ChoySinghDiners, HygienicDiners, ForkOrderingDiners):
        system = System(ring(config.line_n), factory())
        engine = Engine(system, hunger=AlwaysHungry(), seed=config.seed)
        report = throughput_report(engine, config.window)
        section.rows.append(
            (
                report.algorithm,
                f"{report.per_1000_steps:.1f}",
                f"{report.jain_index:.3f}",
                report.min_eats,
            )
        )
    return section


def _malicious_section(config: SuiteConfig) -> Section:
    section = Section(
        title="Malicious crash: recovery and containment",
        header=("malice steps", "recovered to I", "far processes eating"),
        commentary=(
            "The headline property: after the arbitrary phase, the "
            "invariant returns and everything beyond distance 2 eats."
        ),
    )
    topology = line(config.line_n)
    for malice in (5, 40):
        system = System(topology, NADiners())
        engine = Engine(system, hunger=AlwaysHungry(), seed=config.seed)
        engine.run(1000)
        engine.inject(MaliciousCrash(0, malicious_steps=malice))
        engine.run(malice + 1)
        result = engine.run(500_000, stop_when=invariant_holds, check_every=8)
        recovered = result.stopped or invariant_holds(system.snapshot())
        before = {p: engine.eats_of(p) for p in topology.nodes}
        engine.run(config.window)
        far_ok = all(
            engine.eats_of(p) > before[p]
            for p in topology.nodes
            if system.is_live(p) and topology.distance(0, p) > 2
        )
        section.rows.append((malice, "yes" if recovered else "NO", "yes" if far_ok else "NO"))
    return section


def _masking_section(config: SuiteConfig) -> Section:
    section = Section(
        title="Masking census during the arbitrary phase",
        header=("seed", "faulty-involved violations", "clean-pair violations"),
        commentary=(
            "Every safety violation during malice involves the faulty "
            "process; two healthy neighbours never violate — the paper's "
            "future-work masking gap is confined to the crash's own edges."
        ),
    )
    for seed in range(3):
        report = masking_probe(
            NADiners(),
            ring(max(6, config.line_n // 2)),
            1,
            malicious_steps=100,
            observe=config.window // 2,
            seed=config.seed + seed,
        )
        section.rows.append((seed, report.faulty_involved, report.clean_pair))
    return section


def run_suite(config: SuiteConfig | None = None) -> SuiteResult:
    """Run every section and collect the tables."""
    config = config or SuiteConfig()
    result = SuiteResult(config=config)
    result.sections.append(_locality_section(config))
    result.sections.append(_stabilization_section(config))
    result.sections.append(_throughput_section(config))
    result.sections.append(_malicious_section(config))
    result.sections.append(_masking_section(config))
    return result


def to_markdown(result: SuiteResult) -> str:
    """Render a :class:`SuiteResult` as a self-contained markdown report."""
    mode = "quick" if result.config.quick else "full"
    lines = [
        "# repro experiment suite",
        "",
        f"Mode: **{mode}** (seed {result.config.seed}, "
        f"n={result.config.line_n}, window={result.config.window}).",
        "",
    ]
    for section in result.sections:
        lines.append(f"## {section.title}")
        lines.append("")
        lines.append("| " + " | ".join(section.header) + " |")
        lines.append("|" + "|".join("---" for _ in section.header) + "|")
        for row in section.rows:
            lines.append("| " + " | ".join(str(c) for c in row) + " |")
        lines.append("")
        if section.commentary:
            lines.append(section.commentary)
            lines.append("")
    return "\n".join(lines)
